//! End-to-end pipeline tests: architectural correctness first, then the
//! microarchitectural behaviours (speculation, runahead, INV propagation)
//! the SPECRUN reproduction depends on.

use specrun_cpu::{Core, CpuConfig, RunaheadPolicy, RunaheadTrigger};
use specrun_isa::{AluOp, BranchCond, IntReg, MemWidth, Program, ProgramBuilder};
use specrun_mem::HitLevel;

fn r(i: u8) -> IntReg {
    IntReg::new(i).unwrap()
}

fn run_program(core: &mut Core, program: &Program, limit: u64) {
    core.load_program(program);
    let exit = core.run(limit);
    assert_eq!(exit, specrun_cpu::RunExit::Halted, "program must halt (stats: {})", core.stats());
}

#[test]
fn straight_line_arithmetic() {
    let mut b = ProgramBuilder::new(0x1000);
    b.li(r(1), 6);
    b.li(r(2), 7);
    b.mul(r(3), r(1), r(2));
    b.alui(AluOp::Xor, r(4), r(3), 0xff);
    b.halt();
    let p = b.build().unwrap();
    let mut core = Core::new(CpuConfig::default());
    run_program(&mut core, &p, 10_000);
    assert_eq!(core.read_int_reg(r(3)), 42);
    assert_eq!(core.read_int_reg(r(4)), 42 ^ 0xff);
}

#[test]
fn dependent_chain_and_division() {
    let mut b = ProgramBuilder::new(0);
    b.li(r(1), 1000);
    b.alui(AluOp::Div, r(2), r(1), 7); // 142
    b.alui(AluOp::Rem, r(3), r(1), 7); // 6
    b.alu(AluOp::Slt, r(4), r(3), r(2)); // 1
    b.halt();
    let p = b.build().unwrap();
    let mut core = Core::new(CpuConfig::default());
    run_program(&mut core, &p, 10_000);
    assert_eq!(core.read_int_reg(r(2)), 142);
    assert_eq!(core.read_int_reg(r(3)), 6);
    assert_eq!(core.read_int_reg(r(4)), 1);
}

#[test]
fn loop_sums_one_to_n() {
    let mut b = ProgramBuilder::new(0);
    b.li(r(1), 0); // sum
    b.for_loop(r(2), 100, |b| {
        b.add(r(1), r(1), r(2));
    });
    b.halt();
    let p = b.build().unwrap();
    let mut core = Core::new(CpuConfig::default());
    run_program(&mut core, &p, 100_000);
    assert_eq!(core.read_int_reg(r(1)), (0..100).sum::<u64>());
}

#[test]
fn store_load_round_trip() {
    let mut b = ProgramBuilder::new(0);
    b.li(r(1), 0x2000);
    b.li(r(2), 0x1234_5678);
    b.sd(r(2), r(1), 0);
    b.ld(r(3), r(1), 0);
    b.store(MemWidth::B1, r(2), r(1), 64);
    b.load(MemWidth::B1, r(4), r(1), 64);
    b.halt();
    let p = b.build().unwrap();
    let mut core = Core::new(CpuConfig::default());
    run_program(&mut core, &p, 10_000);
    assert_eq!(core.read_int_reg(r(3)), 0x1234_5678);
    assert_eq!(core.read_int_reg(r(4)), 0x78);
}

#[test]
fn store_to_load_forwarding_before_commit() {
    // The load issues while the store is still in the SQ: forwarding.
    let mut b = ProgramBuilder::new(0);
    b.li(r(1), 0x3000);
    b.li(r(2), 99);
    b.sd(r(2), r(1), 0);
    b.ld(r(3), r(1), 0);
    b.add(r(4), r(3), r(3));
    b.halt();
    let p = b.build().unwrap();
    let mut core = Core::new(CpuConfig::default());
    run_program(&mut core, &p, 10_000);
    assert_eq!(core.read_int_reg(r(4)), 198);
}

#[test]
fn call_and_return() {
    let mut b = ProgramBuilder::new(0x1000);
    b.li(r(1), 5);
    b.call("double");
    b.addi(r(1), r(1), 1); // returns here: r1 = 11
    b.halt();
    b.label("double");
    b.add(r(1), r(1), r(1));
    b.ret();
    let p = b.build().unwrap();
    let mut core = Core::new(CpuConfig::default());
    run_program(&mut core, &p, 10_000);
    assert_eq!(core.read_int_reg(r(1)), 11);
}

#[test]
fn nested_calls() {
    let mut b = ProgramBuilder::new(0x1000);
    b.li(r(1), 1);
    b.call("f");
    b.halt();
    b.label("f");
    b.addi(r(1), r(1), 10);
    b.call("g");
    b.addi(r(1), r(1), 100);
    b.ret();
    b.label("g");
    b.addi(r(1), r(1), 1000);
    b.ret();
    let p = b.build().unwrap();
    let mut core = Core::new(CpuConfig::default());
    run_program(&mut core, &p, 20_000);
    assert_eq!(core.read_int_reg(r(1)), 1111);
}

#[test]
fn data_dependent_branches_commit_correctly() {
    // Count even numbers in 0..50 with an unpredictable-ish pattern.
    let mut b = ProgramBuilder::new(0);
    b.li(r(1), 0); // count
    b.for_loop(r(2), 50, |b| {
        b.alui(AluOp::And, r(3), r(2), 1);
        b.if_block(BranchCond::Eq, r(3), IntReg::ZERO, |b| {
            b.addi(r(1), r(1), 1);
        });
    });
    b.halt();
    let p = b.build().unwrap();
    let mut core = Core::new(CpuConfig::default());
    run_program(&mut core, &p, 200_000);
    assert_eq!(core.read_int_reg(r(1)), 25);
    assert!(core.stats().branches > 0);
}

#[test]
fn misprediction_recovery_preserves_architecture() {
    // A branch that's always taken after training not-taken: forces at
    // least one misprediction, which must not corrupt state.
    let mut b = ProgramBuilder::new(0);
    b.li(r(1), 0);
    b.li(r(4), 1); // make the branch condition flip at i == 40
    b.for_loop(r(2), 80, |b| {
        b.alui(AluOp::Slt, r(3), r(2), 40); // 1 while i < 40
        b.if_block(BranchCond::Eq, r(3), IntReg::ZERO, |b| {
            b.addi(r(1), r(1), 1); // counted for i in 40..80
        });
    });
    b.halt();
    let p = b.build().unwrap();
    let mut core = Core::new(CpuConfig::default());
    run_program(&mut core, &p, 400_000);
    assert_eq!(core.read_int_reg(r(1)), 40);
    assert!(core.stats().branch_mispredicts > 0, "flip must mispredict at least once");
}

#[test]
fn rdcycle_measures_cache_latency() {
    let mut b = ProgramBuilder::new(0);
    b.li(r(1), 0x8000);
    // Warm access.
    b.ld(r(2), r(1), 0);
    // Timed warm load.
    b.rdcycle(r(3));
    b.ld(r(2), r(1), 0);
    b.rdcycle(r(4));
    // Flush, then timed cold load.
    b.flush(r(1), 0);
    b.rdcycle(r(5));
    b.ld(r(2), r(1), 0);
    b.rdcycle(r(6));
    b.halt();
    let p = b.build().unwrap();
    let mut core = Core::new(CpuConfig::no_runahead());
    run_program(&mut core, &p, 100_000);
    let warm = core.read_int_reg(r(4)) - core.read_int_reg(r(3));
    let cold = core.read_int_reg(r(6)) - core.read_int_reg(r(5));
    assert!(warm < 30, "warm load should be fast, took {warm}");
    assert!(cold > 150, "flushed load must pay DRAM latency, took {cold}");
}

fn runahead_trigger_program() -> Program {
    // flush x; load x; dependent branch would stall; plenty of nops follow
    // to fill the ROB and trigger runahead.
    let mut b = ProgramBuilder::new(0);
    b.li(r(1), 0x9000);
    b.flush(r(1), 0);
    b.ld(r(2), r(1), 0);
    b.nops(600);
    b.halt();
    b.build().unwrap()
}

#[test]
fn runahead_enters_and_exits() {
    let p = runahead_trigger_program();
    let mut core = Core::new(CpuConfig::default());
    run_program(&mut core, &p, 100_000);
    let s = core.stats();
    assert!(s.runahead_entries >= 1, "expected runahead entry: {s}");
    assert_eq!(s.runahead_entries, s.runahead_exits);
    assert!(s.pseudo_retired > 0);
    // Architectural commit count unaffected by runahead replay.
    assert_eq!(s.committed, p.len() as u64);
}

#[test]
fn no_runahead_machine_never_enters() {
    let p = runahead_trigger_program();
    let mut core = Core::new(CpuConfig::no_runahead());
    run_program(&mut core, &p, 100_000);
    assert_eq!(core.stats().runahead_entries, 0);
    assert_eq!(core.stats().max_stall_window, 255, "N1: ROB size minus the stalled load");
}

#[test]
fn runahead_architectural_equivalence() {
    // The same program must produce identical architectural results with
    // and without runahead (runahead is purely speculative).
    let mut b = ProgramBuilder::new(0);
    b.li(r(1), 0x9000);
    b.li(r(5), 3);
    b.flush(r(1), 0);
    b.ld(r(2), r(1), 0); // loads 0 (cold memory)
    b.add(r(5), r(5), r(2));
    b.for_loop(r(3), 20, |b| {
        b.add(r(5), r(5), r(3));
        b.sd(r(5), r(1), 128);
    });
    b.ld(r(6), r(1), 128);
    b.halt();
    let p = b.build().unwrap();

    let mut plain = Core::new(CpuConfig::no_runahead());
    run_program(&mut plain, &p, 200_000);
    let mut ra_cfg = CpuConfig::default();
    ra_cfg.runahead.trigger = RunaheadTrigger::HeadMiss; // short program, ROB never fills
    let mut ra = Core::new(ra_cfg);
    run_program(&mut ra, &p, 200_000);
    for reg in [r(2), r(3), r(5), r(6)] {
        assert_eq!(plain.read_int_reg(reg), ra.read_int_reg(reg), "register {reg}");
    }
    assert!(ra.stats().runahead_entries >= 1);
}

#[test]
fn runahead_prefetches_independent_loads() {
    // Two independent DRAM misses behind a stalling load: runahead
    // overlaps them, so total runtime shrinks.
    let build = || {
        let mut b = ProgramBuilder::new(0);
        b.li(r(1), 0x20000);
        b.li(r(2), 0x30000);
        b.li(r(3), 0x40000);
        b.flush(r(1), 0);
        b.flush(r(2), 0);
        b.flush(r(3), 0);
        b.ld(r(4), r(1), 0);
        b.nops(300); // fill the window so runahead triggers
        b.ld(r(5), r(2), 0);
        b.ld(r(6), r(3), 0);
        b.halt();
        b.build().unwrap()
    };
    let p = build();
    let mut plain = Core::new(CpuConfig::no_runahead());
    plain.load_program(&p);
    plain.run(1_000_000);
    let cycles_plain = plain.stats().cycles;

    let mut ra = Core::new(CpuConfig::default());
    ra.load_program(&p);
    ra.run(1_000_000);
    let cycles_ra = ra.stats().cycles;
    assert!(ra.stats().runahead_entries >= 1, "stats: {}", ra.stats());
    assert!(ra.stats().runahead_prefetches >= 1, "stats: {}", ra.stats());
    assert!(
        cycles_ra < cycles_plain,
        "runahead should overlap the misses: {cycles_ra} vs {cycles_plain}"
    );
}

#[test]
fn inv_branch_never_resolves_and_leaks_cache_state() {
    // The SPECRUN core primitive: a branch predicated on the stalling load
    // is predicted, never resolved, and its shadow performs a load whose
    // cache fill survives the episode.
    let secret_line = 0x5_0000u64; // line touched only under the INV branch
    let mut b = ProgramBuilder::new(0);
    b.li(r(1), 0x9000); // x (the stalling predicate load)
    b.li(r(3), secret_line as i32);
    // Train the branch towards "fall through into the body".
    b.for_loop(r(4), 24, |b| {
        b.li(r(5), 0); // x_value stand-in: 0 < 1 → body runs
        b.if_block(BranchCond::Lt, r(5), r(6), |b| {
            b.nop();
        });
    });
    b.li(r(6), 1);
    b.flush(r(1), 0);
    b.ld(r(2), r(1), 0); // stalling load, returns 0
                         // Branch depends on the stalling load: INV during runahead. Body loads
                         // the "secret" line. Architecturally 0 < 1 so the body *would* run, but
                         // during runahead the branch can't resolve — prediction rules.
    b.if_block(BranchCond::Lt, r(2), r(6), |b| {
        b.ld(r(7), r(3), 0);
    });
    b.nops(400); // keep the window full
    b.halt();
    let p = b.build().unwrap();

    let mut core = Core::new(CpuConfig::default());
    run_program(&mut core, &p, 1_000_000);
    assert!(core.stats().runahead_entries >= 1, "stats: {}", core.stats());
    assert_ne!(
        core.mem().residency(secret_line),
        HitLevel::Mem,
        "runahead shadow load must have filled the cache"
    );
}

#[test]
fn head_miss_trigger_enters_without_full_rob() {
    let mut b = ProgramBuilder::new(0);
    b.li(r(1), 0x9000);
    b.flush(r(1), 0);
    b.ld(r(2), r(1), 0);
    b.nops(20); // far fewer than the ROB size
    b.halt();
    let p = b.build().unwrap();
    let mut cfg = CpuConfig::default();
    cfg.runahead.trigger = RunaheadTrigger::HeadMiss;
    let mut core = Core::new(cfg);
    run_program(&mut core, &p, 100_000);
    assert!(core.stats().runahead_entries >= 1);
}

#[test]
fn precise_and_vector_policies_run() {
    let p = runahead_trigger_program();
    for policy in [RunaheadPolicy::Precise, RunaheadPolicy::Vector] {
        let mut cfg = CpuConfig::default();
        cfg.runahead.policy = policy;
        let mut core = Core::new(cfg);
        run_program(&mut core, &p, 200_000);
        assert!(core.stats().runahead_entries >= 1, "{policy:?} must enter runahead");
    }
}

#[test]
fn vector_runahead_prefetches_strided_stream() {
    // A strided pointer-free loop of DRAM misses inside runahead: the
    // stride engine should emit extra lanes.
    let mut b = ProgramBuilder::new(0);
    b.li(r(1), 0x9000);
    b.flush(r(1), 0);
    b.ld(r(2), r(1), 0); // stalling load
    b.li(r(3), 0x100000);
    b.label("loop");
    b.ld(r(4), r(3), 0);
    b.addi(r(3), r(3), 4096); // new line (and page) each iteration
    b.alui(AluOp::Slt, r(5), r(3), 0x110000);
    b.bne(r(5), IntReg::ZERO, "loop");
    b.halt();
    let p = b.build().unwrap();
    let mut cfg = CpuConfig::default();
    cfg.runahead.policy = RunaheadPolicy::Vector;
    cfg.runahead.trigger = RunaheadTrigger::HeadMiss;
    let mut core = Core::new(cfg);
    core.load_program(&p);
    core.run(1_000_000);
    assert!(core.stats().vector_lane_prefetches > 0, "stats: {}", core.stats());
}

#[test]
fn scheduled_flush_chains_episodes() {
    // Scenario ➂ of §5.3: a co-resident attacker re-flushes the trigger
    // line, chaining a second runahead episode.
    let p = runahead_trigger_program();
    let mut cfg = CpuConfig::default();
    cfg.runahead.trigger = RunaheadTrigger::HeadMiss;
    cfg.runahead.min_episode_yield = 0; // nop windows yield no prefetches
    let mut core = Core::new(cfg.clone());
    core.load_program(&p);
    core.run(1_000_000);
    let single = core.stats().runahead_entries;

    let mut chained = Core::new(cfg);
    chained.load_program(&p);
    // Flush the line shortly before the first episode would end.
    for t in (150..800).step_by(120) {
        chained.schedule_flush(t, 0x9000);
    }
    chained.run(1_000_000);
    assert!(
        chained.stats().runahead_entries > single,
        "repeated flush must chain episodes: {} vs {single}",
        chained.stats().runahead_entries
    );
    assert!(chained.stats().total_episode_window > core.stats().total_episode_window);
}

#[test]
fn deterministic_across_runs() {
    let p = runahead_trigger_program();
    let run = || {
        let mut core = Core::new(CpuConfig::default());
        core.load_program(&p);
        core.run(1_000_000);
        (core.stats().cycles, core.stats().committed, core.stats().pseudo_retired)
    };
    assert_eq!(run(), run());
}
