//! Property-based tests for the core: the strongest invariant is that
//! runahead execution (and the secure defense) is architecturally invisible
//! — any program computes the same results on every machine variant.

use proptest::prelude::*;
use specrun_cpu::probe::CountingObserver;
use specrun_cpu::{Core, CpuConfig, RunaheadPolicy};
use specrun_isa::{AluOp, IntReg, MemWidth, Program, ProgramBuilder};

fn r(i: u8) -> IntReg {
    IntReg::new(i).unwrap()
}

/// One step of a random straight-line program over registers r1–r8 and a
/// small scratch data region, with occasional flushed loads to provoke
/// runahead episodes.
#[derive(Debug, Clone)]
enum Op {
    Alu(AluOp, u8, u8, u8),
    Li(u8, i32),
    Store(u8, u32),
    Load(u8, u32),
    FlushedLoad(u8, u32),
}

fn op() -> impl Strategy<Value = Op> {
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Xor),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Mul),
    ];
    prop_oneof![
        (alu, 1u8..=8, 1u8..=8, 1u8..=8).prop_map(|(op, d, a, b)| Op::Alu(op, d, a, b)),
        (1u8..=8, any::<i32>()).prop_map(|(d, v)| Op::Li(d, v)),
        (1u8..=8, 0u32..32).prop_map(|(s, slot)| Op::Store(s, slot)),
        (1u8..=8, 0u32..32).prop_map(|(d, slot)| Op::Load(d, slot)),
        (1u8..=8, 0u32..32).prop_map(|(d, slot)| Op::FlushedLoad(d, slot)),
    ]
}

fn build(ops: &[Op]) -> Program {
    const DATA: i32 = 0x20000;
    let mut b = ProgramBuilder::new(0x1000);
    b.li(r(9), DATA);
    for op in ops {
        match *op {
            Op::Alu(alu, d, a, bb) => {
                b.alu(alu, r(d), r(a), r(bb));
            }
            Op::Li(d, v) => {
                b.li(r(d), v);
            }
            Op::Store(s, slot) => {
                b.store(MemWidth::B8, r(s), r(9), slot as i32 * 8);
            }
            Op::Load(d, slot) => {
                b.load(MemWidth::B8, r(d), r(9), slot as i32 * 8);
            }
            Op::FlushedLoad(d, slot) => {
                b.flush(r(9), slot as i32 * 8);
                b.load(MemWidth::B8, r(d), r(9), slot as i32 * 8);
                // Give the window something to chew on so runahead can
                // trigger while the flushed load stalls.
                b.nops(40);
            }
        }
    }
    b.halt();
    b.build().expect("random program is closed")
}

fn final_regs(program: &Program, cfg: CpuConfig) -> Vec<u64> {
    let mut core = Core::new(cfg);
    core.load_program(program);
    let exit = core.run(5_000_000);
    assert_eq!(exit, specrun_cpu::RunExit::Halted, "must halt: {}", core.stats());
    (1..=9).map(|i| core.read_int_reg(r(i))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Runahead (all policies) and the §6 defenses never change
    /// architectural results.
    #[test]
    fn machines_agree_architecturally(ops in proptest::collection::vec(op(), 1..40)) {
        let program = build(&ops);
        let reference = final_regs(&program, CpuConfig::no_runahead());
        prop_assert_eq!(&reference, &final_regs(&program, CpuConfig::default()));
        prop_assert_eq!(&reference, &final_regs(&program, CpuConfig::secure_runahead()));
        let mut precise = CpuConfig::default();
        precise.runahead.policy = RunaheadPolicy::Precise;
        prop_assert_eq!(&reference, &final_regs(&program, precise));
    }

    /// Idle-cycle fast-forward is invisible: identical cycle counts, stats
    /// and architectural results for arbitrary programs on every machine.
    #[test]
    fn fast_forward_is_cycle_exact(ops in proptest::collection::vec(op(), 1..40)) {
        let program = build(&ops);
        for base in [CpuConfig::no_runahead(), CpuConfig::default(), CpuConfig::secure_runahead()] {
            let run = |ff: bool| {
                let mut cfg = base.clone();
                cfg.fast_forward = ff;
                let mut core = Core::new(cfg);
                core.load_program(&program);
                core.run(5_000_000);
                let regs: Vec<u64> = (1..=9).map(|i| core.read_int_reg(r(i))).collect();
                (*core.stats(), regs)
            };
            prop_assert_eq!(run(true), run(false));
        }
    }

    /// The event-driven scheduler is decision-identical to the scan-based
    /// one on arbitrary programs: `sched_check` re-runs the retired ROB
    /// scans in parallel every cycle (panicking on any divergence in
    /// writeback due-sets, the issue-ready queue, or the serializer gate)
    /// and the resulting stats and architectural state stay bit-identical.
    #[test]
    fn event_scheduler_matches_scan_pipeline(ops in proptest::collection::vec(op(), 1..40)) {
        let program = build(&ops);
        for base in [CpuConfig::no_runahead(), CpuConfig::default(), CpuConfig::secure_runahead()] {
            let run = |check: bool| {
                let mut cfg = base.clone();
                cfg.sched_check = check;
                let mut core = Core::new(cfg);
                core.load_program(&program);
                core.run(5_000_000);
                let regs: Vec<u64> = (1..=9).map(|i| core.read_int_reg(r(i))).collect();
                (*core.stats(), regs)
            };
            prop_assert_eq!(run(true), run(false));
        }
    }

    /// The predecode audit (`predecode_check`: every fetched micro-op's
    /// metadata re-derived from the `Inst` enum and compared) holds on
    /// arbitrary programs and never perturbs stats or architectural state.
    #[test]
    fn predecode_check_matches_inst_derivations(ops in proptest::collection::vec(op(), 1..40)) {
        let program = build(&ops);
        for base in [CpuConfig::no_runahead(), CpuConfig::default()] {
            let run = |check: bool| {
                let mut cfg = base.clone();
                cfg.predecode_check = check;
                let mut core = Core::new(cfg);
                core.load_program(&program);
                core.run(5_000_000);
                let regs: Vec<u64> = (1..=9).map(|i| core.read_int_reg(r(i))).collect();
                (*core.stats(), regs)
            };
            prop_assert_eq!(run(true), run(false));
        }
    }

    /// An attached observer is invisible: a core with a `CountingObserver`
    /// produces bit-identical `CpuStats` and architectural state to a
    /// detached run on arbitrary programs — and the observer's event totals
    /// reconcile with the stats counters bumped at the same pipeline points
    /// (squash sum == `stats.squashed`, runahead enters ==
    /// `stats.runahead_entries`, and so on).
    #[test]
    fn observer_is_invisible_and_reconciles(ops in proptest::collection::vec(op(), 1..40)) {
        let program = build(&ops);
        for base in [CpuConfig::no_runahead(), CpuConfig::default(), CpuConfig::secure_runahead()] {
            let detached = {
                let mut core = Core::new(base.clone());
                core.load_program(&program);
                core.run(5_000_000);
                let regs: Vec<u64> = (1..=9).map(|i| core.read_int_reg(r(i))).collect();
                (*core.stats(), regs)
            };
            let mut core = Core::with_observer(base, CountingObserver::default());
            core.load_program(&program);
            core.run(5_000_000);
            let regs: Vec<u64> = (1..=9).map(|i| core.read_int_reg(r(i))).collect();
            let stats = *core.stats();
            prop_assert_eq!(&detached, &(stats, regs), "observer must not perturb the run");
            let seen = core.observer();
            prop_assert_eq!(seen.runahead_enters, stats.runahead_entries);
            prop_assert_eq!(seen.runahead_exits, stats.runahead_exits);
            prop_assert_eq!(seen.squashed_total, stats.squashed);
            prop_assert_eq!(seen.commits, stats.committed);
            prop_assert_eq!(seen.mispredicts, stats.branch_mispredicts);
        }
    }

    /// The simulator is deterministic for arbitrary programs.
    #[test]
    fn simulation_is_deterministic(ops in proptest::collection::vec(op(), 1..30)) {
        let program = build(&ops);
        let run = || {
            let mut core = Core::new(CpuConfig::default());
            core.load_program(&program);
            core.run(5_000_000);
            (core.stats().cycles, core.stats().committed, core.stats().pseudo_retired)
        };
        prop_assert_eq!(run(), run());
    }
}
