//! The out-of-order core: fetch → decode → rename/dispatch → issue →
//! execute → writeback → commit, with runahead mode layered on top.
//!
//! The pipeline is cycle-stepped. Stages run back-to-front within
//! [`Core::step`] so results written this cycle wake dependants this cycle;
//! the 6-stage front end is modelled as a fetch-to-rename delay line.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use specrun_bp::{BranchKind, BranchPredictor, Prediction};
use specrun_isa::{
    ArchReg, BranchCond, CtrlClass, DecodedProgram, Inst, IntReg, Program, UopMeta, INST_BYTES,
};
use specrun_mem::{
    AccessKind, FillPolicy, HitLevel, MemHierarchy, RunaheadCache, RunaheadRead, SlCache,
};

use crate::config::CpuConfig;
use crate::fu::{FuKind, FuPool};
use crate::lsq::{LoadCheck, StoreQueue};
use crate::probe::{NoopObserver, PipelineEvent, PipelineObserver};
use crate::regs::{ArchCheckpoint, FreeLists, PhysRef, Rat, RegClass, RegFile};
use crate::rob::{BranchInfo, DestInfo, EntryState, Rob, RobEntry};
use crate::runahead::{Episode, StrideEntry};
use crate::sched::{Scheduler, TimerQueue};
use crate::secure::SecureState;
use crate::stats::CpuStats;
use crate::taint::TaintTracker;

/// Why [`Core::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// The program committed a `halt`.
    Halted,
    /// The cycle limit elapsed first.
    CycleLimit,
    /// Control flow left the program image with nothing left in flight
    /// (e.g. an indirect jump to an unmapped address); no further progress
    /// is possible.
    Wedged,
    /// A [`RunGovernor`](crate::cancel::RunGovernor) checkpoint asked the
    /// run to stop ([`Core::run_governed`]); state is consistent and the
    /// run could in principle be continued.
    Cancelled,
}

/// Execution mode of the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Ordinary out-of-order execution.
    Normal,
    /// Runahead mode (paper §2.1): the stalling load pseudo-retired, all
    /// retirement is pseudo-retirement, INV bits propagate.
    Runahead(Episode),
}

/// An instruction moving through the front-end delay line, carrying its
/// predecoded metadata so rename never re-derives static facts.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fetched {
    pub pc: u64,
    pub inst: Inst,
    pub meta: UopMeta,
    pub available_at: u64,
    pub pred: Option<PredInfo>,
}

/// The slice of a ROB entry that (pseudo-)retirement consumes.
#[derive(Debug, Clone, Copy)]
struct RetireInfo {
    seq: u64,
    pc: u64,
    dest: Option<DestInfo>,
    is_load: bool,
    is_store: bool,
    is_halt: bool,
}

/// Prediction attached to a fetched control instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PredInfo {
    pub kind: BranchKind,
    pub taken: bool,
    pub target: u64,
    pub rsb_checkpoint: usize,
}

/// Runahead bookkeeping that lives across the episode.
#[derive(Debug, Clone, Default)]
pub(crate) struct RunaheadMachinery {
    pub cache: Option<RunaheadCache>,
    /// Cleared cache allocation parked between episodes (entry/exit happen
    /// hundreds of times per run; reusing the buffers keeps the allocator
    /// off that path).
    pub cache_pool: Option<RunaheadCache>,
    pub checkpoint: Option<ArchCheckpoint>,
    pub rsb_checkpoint: usize,
    pub history_checkpoint: Option<Vec<u64>>,
}

/// The simulated processor core, including its memory hierarchy.
///
/// The core is generic over a [`PipelineObserver`] that receives typed
/// microarchitectural events ([`crate::probe`]). The default
/// [`NoopObserver`] is statically inert — a detached core compiles to
/// exactly the un-instrumented pipeline.
#[derive(Debug, Clone)]
pub struct Core<O: PipelineObserver = NoopObserver> {
    pub(crate) cfg: CpuConfig,
    /// The attached pipeline observer (see [`crate::probe`]).
    obs: O,
    pub(crate) mem: MemHierarchy,
    pub(crate) bp: BranchPredictor,
    pub(crate) regs: RegFile,
    pub(crate) rat: Rat,
    pub(crate) retire_rat: Rat,
    pub(crate) free: FreeLists,
    pub(crate) rob: Rob,
    pub(crate) sq: StoreQueue,
    pub(crate) lq_occupancy: usize,
    pub(crate) iq_occupancy: usize,
    pub(crate) fu: FuPool,
    pub(crate) program: Option<Arc<DecodedProgram>>,
    pub(crate) scope_map: HashMap<u64, u64>,
    // Front end.
    pub(crate) fetch_pc: u64,
    pub(crate) fetch_stalled_until: u64,
    pub(crate) fetch_halted: bool,
    pub(crate) pipe: VecDeque<Fetched>,
    pub(crate) ipf_frontier: u64,
    /// Stream-prefetch probe memo: the last frontier line that hit L1I and
    /// the L1I content generation it was observed under. While the
    /// generation is unchanged the line is still resident, so re-probing it
    /// (after a redirect re-anchors the frontier) is skipped.
    ipf_probe_memo: (u64, u64),
    // Sequencing.
    pub(crate) next_seq: u64,
    pub(crate) cycle: u64,
    pub(crate) halted: bool,
    // Runahead.
    pub(crate) mode: Mode,
    pub(crate) ra: RunaheadMachinery,
    pub(crate) tracker: TaintTracker,
    pub(crate) secure: SecureState,
    pub(crate) strides: HashMap<u64, StrideEntry>,
    pub(crate) ra_backoff_until: u64,
    /// Quiescence-probe throttle: after a failed fast-forward probe the
    /// next one waits, so a busy pipeline (where probes keep failing) pays
    /// almost nothing for having fast-forward enabled.
    ff_probe_at: u64,
    /// Consecutive failed quiescence probes. The probe backoff doubles
    /// with the streak (capped), so a pipeline that is *never* quiet —
    /// always-busy mcf — stops paying for probes entirely, while one
    /// successful skip resets to eager probing.
    ff_fail_streak: u32,
    pub(crate) scheduled_flushes: TimerQueue<u64>,
    // Event-driven scheduling: completion events, ready queue, wakeups.
    pub(crate) sched: Scheduler,
    pub(crate) stats: CpuStats,
    // Reusable per-cycle scratch buffers (the hot loop must not allocate).
    scratch_completed: Vec<u64>,
    scratch_resolutions: Vec<u64>,
    scratch_due: Vec<(u64, u64)>,
}

impl Core {
    /// Creates a detached core ([`NoopObserver`]) with empty caches and
    /// predictor state.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`CpuConfig::validate`]).
    pub fn new(cfg: CpuConfig) -> Core {
        Core::with_observer(cfg, NoopObserver)
    }
}

impl<O: PipelineObserver> Core<O> {
    /// Creates a core with `obs` attached as its pipeline observer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`CpuConfig::validate`]).
    pub fn with_observer(cfg: CpuConfig, obs: O) -> Core<O> {
        cfg.validate();
        let sl_entries = cfg.runahead.secure.sl_entries.max(1);
        Core {
            obs,
            mem: MemHierarchy::new(cfg.mem),
            bp: BranchPredictor::new(cfg.predictor),
            regs: RegFile::new(cfg.int_prf, cfg.fp_prf),
            rat: Rat::identity(),
            retire_rat: Rat::identity(),
            free: FreeLists::new(cfg.int_prf, cfg.fp_prf),
            rob: Rob::new(cfg.rob_entries),
            sq: StoreQueue::new(cfg.sq_entries),
            lq_occupancy: 0,
            iq_occupancy: 0,
            fu: FuPool::new(&cfg.fu),
            program: None,
            scope_map: HashMap::new(),
            fetch_pc: 0,
            fetch_stalled_until: 0,
            fetch_halted: true,
            pipe: VecDeque::new(),
            ipf_frontier: 0,
            ipf_probe_memo: (u64::MAX, 0),
            next_seq: 0,
            cycle: 0,
            halted: true,
            mode: Mode::Normal,
            ra: RunaheadMachinery::default(),
            tracker: TaintTracker::new(),
            secure: SecureState::new(SlCache::new(sl_entries)),
            strides: HashMap::new(),
            ra_backoff_until: 0,
            ff_probe_at: 0,
            ff_fail_streak: 0,
            scheduled_flushes: TimerQueue::new(),
            sched: Scheduler::new(cfg.int_prf, cfg.fp_prf),
            stats: CpuStats::default(),
            scratch_completed: Vec::new(),
            scratch_resolutions: Vec::new(),
            scratch_due: Vec::new(),
            cfg,
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// The attached pipeline observer.
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// Mutable access to the attached pipeline observer (e.g. to reset its
    /// counters between phases of an experiment).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// Consumes the core, returning the observer with everything it saw.
    pub fn into_observer(self) -> O {
        self.obs
    }

    /// Hands an event to the observer. With an inert observer
    /// (`O::ACTIVE == false`) the whole call — including the event
    /// construction at the emission site — monomorphizes away.
    #[inline(always)]
    pub(crate) fn emit(&mut self, event: PipelineEvent) {
        if O::ACTIVE {
            self.obs.on_event(&event);
        }
    }

    /// Loads a program: architectural state is reset (registers zeroed,
    /// `r31` set to the configured stack top, PC at the entry point) while
    /// **microarchitectural state persists** — caches, predictor tables and
    /// DRAM contention carry over, which is what lets one program train
    /// structures another program will consult (the paper's threat model).
    pub fn load_program(&mut self, program: &Program) {
        // Predecode once: every instruction is lowered to its `UopMeta`
        // here, and the pipeline never re-derives static facts per cycle.
        self.load_program_predecoded(Arc::new(DecodedProgram::new(program.clone())));
    }

    /// [`Core::load_program`] for an already-predecoded program. The `Arc`
    /// is stored as-is, so campaign forks running the same attack program
    /// share one `DecodedProgram` (it is immutable after construction)
    /// instead of re-lowering and re-allocating it per session.
    pub fn load_program_predecoded(&mut self, decoded: Arc<DecodedProgram>) {
        self.flush_pipeline();
        self.rat = Rat::identity();
        self.retire_rat = Rat::identity();
        self.free = FreeLists::new(self.cfg.int_prf, self.cfg.fp_prf);
        self.regs = RegFile::new(self.cfg.int_prf, self.cfg.fp_prf);
        let sp = self.retire_rat.get(ArchReg::Int(IntReg::SP));
        self.regs.restore(sp, self.cfg.stack_top);
        let program = decoded.program();
        self.scope_map = program.branch_scopes().iter().map(|s| (s.branch_pc, s.end_pc)).collect();
        self.fetch_pc = program.entry();
        self.program = Some(decoded);
        self.fetch_halted = false;
        self.halted = false;
        self.mode = Mode::Normal;
        self.ra = RunaheadMachinery::default();
        self.tracker.reset();
        self.strides.clear();
    }

    /// Clears all in-flight state (used on program load).
    fn flush_pipeline(&mut self) {
        self.rob = Rob::new(self.cfg.rob_entries);
        self.sq = StoreQueue::new(self.cfg.sq_entries);
        self.pipe.clear();
        self.lq_occupancy = 0;
        self.iq_occupancy = 0;
        self.fu.clear();
        self.sched.clear_inflight();
        self.fetch_stalled_until = 0;
    }

    /// Current cycle count (monotonic across [`Core::load_program`] calls so
    /// `rdcycle` deltas remain meaningful between programs).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether the machine has committed a `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// Resets statistics (state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CpuStats::default();
        self.mem.reset_stats();
        self.bp.reset_stats();
    }

    /// The memory subsystem.
    pub fn mem(&self) -> &MemHierarchy {
        &self.mem
    }

    /// Mutable access to the memory subsystem (host-side setup: writing
    /// arrays, warming or flushing lines).
    pub fn mem_mut(&mut self) -> &mut MemHierarchy {
        &mut self.mem
    }

    /// The branch predictor.
    pub fn predictor(&self) -> &BranchPredictor {
        &self.bp
    }

    /// Mutable access to the branch predictor (direct training in tests).
    pub fn predictor_mut(&mut self) -> &mut BranchPredictor {
        &mut self.bp
    }

    /// Committed (architectural) value of an integer register.
    pub fn read_int_reg(&self, r: IntReg) -> u64 {
        self.regs.value(self.retire_rat.get(ArchReg::Int(r)))
    }

    /// Committed (architectural) value of a floating-point register.
    pub fn read_fp_reg(&self, r: specrun_isa::FpReg) -> u64 {
        self.regs.value(self.retire_rat.get(ArchReg::Fp(r)))
    }

    /// FNV-1a fingerprint of the committed architectural state: every
    /// integer and floating-point register plus the halt flag. Two runs of
    /// the same program on identically configured cores must agree — this
    /// is the oracle `specrun-lab fuzz`'s determinism invariant re-runs
    /// plans against. Microarchitectural state (caches, predictors, cycle
    /// count) is deliberately excluded: the fingerprint answers "did the
    /// program compute the same thing", not "did it take the same time".
    pub fn arch_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for i in 0..specrun_isa::NUM_INT_REGS {
            let r = IntReg::new(i as u8).expect("index in range");
            mix(self.read_int_reg(r));
        }
        for i in 0..specrun_isa::NUM_FP_REGS {
            let r = specrun_isa::FpReg::new(i as u8).expect("index in range");
            mix(self.read_fp_reg(r));
        }
        mix(u64::from(self.halted));
        h
    }

    /// Number of entries currently resident in the defense's SL cache.
    pub fn sl_counter(&self) -> usize {
        self.secure.sl.counter()
    }

    /// Injects a host-scheduled `clflush` of `addr` at `cycle` — models the
    /// co-resident attacker thread of the paper's §5.3 scenario ➂, which
    /// re-flushes the trigger line to chain runahead episodes.
    pub fn schedule_flush(&mut self, cycle: u64, addr: u64) {
        self.scheduled_flushes.push(cycle, addr);
    }

    /// Runs until `halt` commits, progress becomes impossible, or
    /// `max_cycles` cycles elapse.
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        self.run_governed(max_cycles, &crate::cancel::NeverCancel)
    }

    /// [`Core::run`] under a [`RunGovernor`](crate::cancel::RunGovernor):
    /// every [`CHECK_INTERVAL_CYCLES`](crate::cancel::CHECK_INTERVAL_CYCLES)
    /// simulated cycles the governor is polled (publishing a heartbeat) and
    /// may stop the run with [`RunExit::Cancelled`]. With a statically
    /// inactive governor (`G::ACTIVE == false` — the [`Core::run`] default)
    /// the checkpoint site compiles away entirely, so the ungoverned loop
    /// pays nothing; the perf gate enforces that.
    pub fn run_governed<G: crate::cancel::RunGovernor>(
        &mut self,
        max_cycles: u64,
        governor: &G,
    ) -> RunExit {
        let limit = self.cycle.saturating_add(max_cycles);
        let mut exit = RunExit::CycleLimit;
        let mut next_check = self.cycle.saturating_add(crate::cancel::CHECK_INTERVAL_CYCLES);
        while !self.halted && self.cycle < limit {
            self.step();
            if self.fetch_halted
                && !self.halted
                && self.pipe.is_empty()
                && self.rob.is_empty()
                && !self.in_runahead()
            {
                exit = RunExit::Wedged;
                break;
            }
            // `>=` rather than `==`: fast-forward can jump the cycle
            // counter past the threshold in one step.
            if G::ACTIVE && self.cycle >= next_check {
                if governor.checkpoint(self.cycle, self.stats.committed) {
                    exit = RunExit::Cancelled;
                    break;
                }
                next_check = self.cycle.saturating_add(crate::cancel::CHECK_INTERVAL_CYCLES);
            }
            if self.cfg.fast_forward && self.cycle >= self.ff_probe_at {
                self.fast_forward(limit);
            }
        }
        if self.halted {
            exit = RunExit::Halted;
        }
        // Land any fills that completed during the run so host-side
        // residency checks see them. A halted program's last loads may
        // still be travelling; drain exactly to the latest pending fill
        // (the MSHR view of the event queue) rather than a fixed slack.
        let settle =
            self.mem.latest_inflight_completion().map_or(self.cycle, |at| at.max(self.cycle));
        self.mem.drain_completed(settle);
        exit
    }

    /// Advances the machine by one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        let now = self.cycle;
        self.stats.cycles += 1;
        self.apply_scheduled_flushes(now);
        self.check_runahead_exit(now);
        self.drain_sl_fills(now);
        self.writeback(now);
        self.commit(now);
        self.issue(now);
        self.dispatch(now);
        self.fetch(now);
    }

    fn apply_scheduled_flushes(&mut self, now: u64) {
        // O(1) peek when the queue is idle; due events pop in insertion
        // order, matching the retired `retain` sweep.
        while let Some(addr) = self.scheduled_flushes.pop_due(now) {
            self.mem.flush_line(addr, now);
            self.emit(PipelineEvent::Flush { cycle: now, line: self.mem.line_of(addr) });
        }
    }

    pub(crate) fn in_runahead(&self) -> bool {
        matches!(self.mode, Mode::Runahead(_))
    }

    fn seq_of_head(&self) -> Option<u64> {
        self.rob.head().map(|e| e.seq)
    }

    // ------------------------------------------------------------------
    // Idle-cycle fast-forward
    // ------------------------------------------------------------------

    /// Jumps the cycle counter to just before the next scheduled event when
    /// the whole pipeline is provably quiescent (see
    /// [`Core::next_quiet_event`]). Equivalent to stepping the skipped
    /// cycles one at a time: statistics advance only by the skipped cycle
    /// count, all other state is untouched.
    fn fast_forward(&mut self, limit: u64) {
        // A failed probe throttles the next attempt, and consecutive
        // failures double the wait up to a cap: a pipeline that stays busy
        // (mcf never goes quiet) decays to one probe every couple of
        // thousand cycles — measurably free — while quiescence windows
        // (hundreds of cycles of DRAM latency) remain long compared to
        // even the capped backoff, so little skippable time is lost. One
        // success resets to eager probing. Purely a host-side heuristic —
        // fast-forward stays stats-invisible whether a window is entered
        // at its first cycle or a few in.
        const PROBE_BACKOFF: u64 = 16;
        const PROBE_BACKOFF_DOUBLINGS: u32 = 7; // cap: 16 << 7 = 2048 cycles
        let Some(event) = self.next_quiet_event() else {
            let backoff = PROBE_BACKOFF << self.ff_fail_streak.min(PROBE_BACKOFF_DOUBLINGS);
            self.ff_fail_streak = self.ff_fail_streak.saturating_add(1);
            self.ff_probe_at = self.cycle + backoff;
            return;
        };
        debug_assert!(event > self.cycle, "quiet event must lie in the future");
        let target = event.min(limit).saturating_sub(1);
        if target <= self.cycle {
            // The pipeline is quiet but the next event is one cycle out:
            // nothing to skip, so the probe paid for itself and saved
            // nothing. Treat it as a failure for throttling — a stalled
            // pipeline draining a dense completion stream (runahead mcf)
            // hits this every probe, and resetting the streak here kept
            // the probe rate at one per cycle. State cannot change before
            // `event`, so the next probe is never worth paying sooner.
            let backoff = PROBE_BACKOFF << self.ff_fail_streak.min(PROBE_BACKOFF_DOUBLINGS);
            self.ff_fail_streak = self.ff_fail_streak.saturating_add(1);
            self.ff_probe_at = self.cycle + backoff.max(event - self.cycle);
            return;
        }
        let skipped = target - self.cycle;
        if skipped >= PROBE_BACKOFF {
            // A real quiescence window (DRAM-latency scale): back to eager
            // probing, the next windows are likely just as long. A skip
            // smaller than one backoff step is still taken — it is free —
            // but keeps the streak: dense completion streams (runahead
            // mcf) yield an endless run of few-cycle gaps, and resetting
            // on each would buy the next gap at the price of a
            // climb-back's worth of failed probes.
            self.ff_fail_streak = 0;
        }
        if self.cfg.ff_check {
            self.verify_fast_forward(skipped);
        }
        self.cycle = target;
        self.stats.cycles += skipped;
    }

    /// If no pipeline stage can change any state before some future cycle,
    /// returns that cycle (the earliest scheduled event). Returns `None`
    /// when any stage could act on the next step, or when no event is
    /// pending at all.
    ///
    /// The argument is inductive: every state change the core can make —
    /// writeback, commit, runahead entry/exit, issue, dispatch, fetch,
    /// stream prefetch, SL-fill drain, scheduled flushes — is shown below
    /// to be impossible *now* for a reason that can only lapse at one of the
    /// collected event cycles. Since the state is therefore identical at
    /// `now + 1`, the same reasoning applies until the earliest event.
    ///
    /// With the event-driven scheduler this check is O(ready queue), not
    /// O(ROB): every `Executing` entry's completion is in the event queue
    /// (its minimum is the earliest writeback), and every `Waiting` entry
    /// outside the ready queue is operand-blocked, so the pipeline can jump
    /// even while instructions are *in flight* — the busy-but-stalled state
    /// (e.g. runahead mcf waiting on a DRAM batch) where the old full-scan
    /// check was too expensive to pay every cycle and bailed out behind a
    /// minimum-stall heuristic.
    fn next_quiet_event(&mut self) -> Option<u64> {
        if self.halted {
            return None;
        }
        let now = self.cycle;
        let mut next = u64::MAX;

        // Cheap O(1) gates first: an actively fetching or dispatching core
        // is the common non-quiescent state.

        // Fetch and the stream prefetcher.
        if !self.fetch_halted {
            let stalled = self.fetch_stalled_until > now;
            let has_room = self.pipe.len() < self.cfg.fetch_queue;
            if !stalled && has_room {
                // Fetch is live and has room: it will act next step. This
                // is the common busy-pipeline case — reject it before the
                // prefetcher check below pays a division.
                return None;
            }
            // The prefetcher must have saturated its lookahead, or it will
            // issue requests next step regardless of the demand stall.
            let depth = self.cfg.ifetch_prefetch_lines;
            if depth > 0 {
                let cur = self.mem.line_of(self.fetch_pc);
                if self.ipf_frontier < cur + depth || self.ipf_frontier > cur + 2 * depth {
                    return None;
                }
            }
            if stalled && has_room {
                // Demand fetch resumes at the stall deadline — an event
                // only if the pipe has room by then; a full pipe gates the
                // resumption on dispatch, which is tracked below.
                next = next.min(self.fetch_stalled_until);
            }
        }

        // Dispatch: the pipe front either matures at a known cycle or is
        // blocked on a back-end resource that only commits/issues free up.
        if let Some(front) = self.pipe.front() {
            if front.available_at > now {
                next = next.min(front.available_at);
            } else {
                let blocked = self.rob.is_full()
                    || self.iq_occupancy >= self.cfg.iq_entries
                    || (front.meta.is_load() && self.lq_occupancy >= self.cfg.lq_entries)
                    || (front.meta.needs_sq() && self.sq.is_full())
                    || front.meta.dest.is_some_and(|d| self.free.available(RegClass::of(d)) == 0);
                if !blocked {
                    return None;
                }
            }
        }

        // Commit: a Done head would (pseudo-)retire next step; any other
        // head advances only on a tracked completion event. The commit-side
        // observations while a DRAM load stalls at the head (stall-window
        // maximum, runahead entry trigger) are frozen during quiescence:
        // occupancies cannot change, and the only time-varying input — the
        // useless-episode backoff — is collected below.
        if self.rob.head().is_some_and(|h| h.state == EntryState::Done) {
            return None;
        }

        // Host-scheduled flushes fire at fixed cycles.
        if let Some(at) = self.scheduled_flushes.peek_at() {
            if at <= now {
                return None;
            }
            next = next.min(at);
        }
        // Runahead exit is scheduled for the stalling load's data return.
        if let Mode::Runahead(ep) = self.mode {
            if ep.exit_at <= now {
                return None;
            }
            next = next.min(ep.exit_at);
        }
        // SL-cache fills land at their DRAM completion cycles.
        if let Some(at) = self.secure.pending_fills.peek_at() {
            if at <= now {
                return None;
            }
            next = next.min(at);
        }
        // Runahead entry while a DRAM load stalls at the head: the trigger
        // conditions (queue occupancies, policy) are frozen while quiescent,
        // except the useless-episode backoff, which lapses at a known cycle.
        if !self.in_runahead() && self.ra_backoff_until > now {
            next = next.min(self.ra_backoff_until);
        }

        // Execute/writeback: every `Executing` entry has a completion event
        // in the queue, so its minimum (after shedding stale events left by
        // squashes) is the earliest possible writeback.
        self.prune_stale_completions();
        if let Some((at, _)) = self.sched.completions.peek() {
            if at <= now {
                return None;
            }
            next = next.min(at);
        }

        // Issue: `Waiting` entries outside the ready queue are blocked on an
        // operand whose production is itself a tracked completion event (or
        // a runahead entry/exit, both tracked). Ready entries could act
        // unless pinned by the serializing rules, which only lapse when the
        // serializer completes or the head changes — tracked events both.
        let head_seq = self.seq_of_head();
        let gate = self.sched.serializer_gate();
        for &seq in self.sched.ready_seqs() {
            if gate.is_some_and(|g| seq > g) {
                // Younger than a pending serializer: issue() skips these.
                break;
            }
            let Some(e) = self.rob.get(seq) else { continue };
            if e.meta.is_serializing() && Some(seq) != head_seq {
                // Serializers issue only from the head of the ROB.
                continue;
            }
            // An issue candidate may act (or at least probe a functional
            // unit or the store queue) next step: not quiescent.
            return None;
        }

        (next != u64::MAX).then_some(next)
    }

    /// Discards completion events whose ROB entry no longer exists or is no
    /// longer `Executing` with that deadline (misprediction squashes and
    /// runahead-entry poisoning orphan their events).
    fn prune_stale_completions(&mut self) {
        while let Some((at, seq)) = self.sched.completions.peek() {
            let live = self
                .rob
                .get(seq)
                .is_some_and(|e| e.state == EntryState::Executing && e.ready_at == at);
            if live {
                break;
            }
            self.sched.completions.pop();
        }
    }

    /// Whether a `Waiting` entry cannot issue (nor make partial progress,
    /// such as a store's address phase) until an operand is produced. This
    /// is the scan-side twin of the wakeup network's ready criterion, used
    /// by the `sched_check` audit.
    fn stuck_on_operands(&self, e: &RobEntry) -> bool {
        match e.inst {
            // Two-phase stores make progress per phase; mirror the operand
            // layout of `issue_store_two_phase`.
            Inst::Store { .. } | Inst::FpStore { .. } => {
                let (data_phys, base_phys) = store_operand_phys(e);
                let gating = if e.addr_ready { data_phys } else { base_phys };
                gating.is_some_and(|p| !self.regs.is_ready(p))
            }
            // Everything else issues in one shot once all sources are
            // ready; a single pending source pins it (INV counts as ready —
            // poisoned registers complete instantly at issue).
            _ => e.srcs.iter().flatten().any(|p| !self.regs.is_ready(*p)),
        }
    }

    /// Fast-forward self-check (`CpuConfig::ff_check`): steps a cloned core
    /// through the window about to be skipped and asserts that nothing but
    /// the cycle counter advanced.
    fn verify_fast_forward(&self, skipped: u64) {
        let mut shadow = self.clone();
        shadow.cfg.ff_check = false;
        shadow.cfg.fast_forward = false;
        for _ in 0..skipped {
            shadow.step();
        }
        let mut expected = self.stats;
        expected.cycles += skipped;
        assert_eq!(
            shadow.stats, expected,
            "fast-forward would skip a state change over {skipped} cycles at cycle {}",
            self.cycle
        );
        assert_eq!(shadow.cycle, self.cycle + skipped);
    }

    // ------------------------------------------------------------------
    // Writeback
    // ------------------------------------------------------------------

    fn writeback(&mut self, now: u64) {
        let mut resolutions = std::mem::take(&mut self.scratch_resolutions);
        let mut completed = std::mem::take(&mut self.scratch_completed);
        resolutions.clear();
        completed.clear();
        // Pop due completion events instead of scanning the ROB. Issue
        // always schedules completions in the future and writeback runs on
        // every live cycle, so all *live* due events carry the same
        // `ready_at` and sorting by `(ready_at, seq)` reproduces the old
        // oldest-first scan order exactly (stale events sort first but are
        // dropped by the liveness check anyway). Stale events are ones left
        // behind by squashes or runahead-entry poisoning.
        let mut due = std::mem::take(&mut self.scratch_due);
        due.clear();
        self.sched.completions.pop_due_into(now, &mut due);
        due.sort_unstable();
        for &(at, seq) in &due {
            let live = self
                .rob
                .get(seq)
                .is_some_and(|e| e.state == EntryState::Executing && e.ready_at == at);
            if live {
                completed.push(seq);
            }
        }
        self.scratch_due = due;
        if self.cfg.sched_check {
            self.check_writeback_set(&completed, now);
        }
        for seq in completed.drain(..) {
            let e = self.rob.get_mut(seq).expect("entry exists");
            // Loads from memory read their data at completion so stores
            // that committed in the meantime are visible.
            if e.is_load && !e.inv && e.load_level.is_some() {
                if let Some(addr) = e.load_addr {
                    e.result = self.mem.read_data(addr, u64::from(e.meta.mem_width));
                }
            }
            let is_ret = e.meta.ctrl == CtrlClass::Return;
            let result = e.result;
            let aux_sp = e.aux_sp;
            let serializing = e.meta.is_serializing();
            let mut dest_write: Option<(PhysRef, u64, bool, u64)> = None;
            if let Some(d) = e.dest {
                // `Ret` writes the SP update, not the loaded value.
                let value = if is_ret { aux_sp } else { result };
                dest_write = Some((d.new, value, e.inv, e.taint));
            }
            e.state = EntryState::Done;
            let resolve = e.branch.is_some_and(|b| !b.resolved) && !e.inv;
            if resolve {
                if let Some(b) = e.branch.as_mut() {
                    if is_ret {
                        b.actual_target = result;
                        b.actual_taken = true;
                    }
                }
                resolutions.push(seq);
            }
            if serializing {
                // A completed serializer stops gating younger issue.
                self.sched.retire_serializer(seq);
            }
            if let Some((phys, value, inv, taint)) = dest_write {
                if inv {
                    self.produce_inv(phys);
                } else {
                    self.produce(phys, value);
                }
                self.regs.set_taint(phys, taint);
            }
        }
        for seq in resolutions.drain(..) {
            self.resolve_branch(seq, now);
        }
        self.scratch_resolutions = resolutions;
        self.scratch_completed = completed;
    }

    // ------------------------------------------------------------------
    // Operand-wakeup network
    // ------------------------------------------------------------------

    /// Produces a valid value into `p` and wakes its waiters.
    pub(crate) fn produce(&mut self, p: PhysRef, value: u64) {
        self.regs.write(p, value);
        self.wake_reg(p);
    }

    /// Produces an INV (poisoned) result into `p` and wakes its waiters —
    /// poison satisfies operand readiness just like a valid value.
    pub(crate) fn produce_inv(&mut self, p: PhysRef) {
        self.regs.write_inv(p);
        self.wake_reg(p);
    }

    /// Delivers wakeups for a newly produced register: every waiter's
    /// pending-operand count drops, and entries reaching zero join the
    /// issue-ready queue. Waiter lists never hold live entries for a
    /// *reallocated* register — a physical register is freed only when the
    /// instruction that overwrote its architectural mapping commits, by
    /// which point every reader of the old mapping has retired (or, on a
    /// squash, the readers died in the same squash) — so a stale sequence
    /// number here simply no longer resolves in the ROB and is skipped.
    fn wake_reg(&mut self, p: PhysRef) {
        let mut woken = std::mem::take(&mut self.sched.scratch);
        self.sched.take_waiters(p, &mut woken);
        for seq in woken.drain(..) {
            let Some(e) = self.rob.get_mut(seq) else { continue };
            if e.state != EntryState::Waiting {
                continue;
            }
            e.wait_count = e.wait_count.saturating_sub(1);
            if e.wait_count == 0 {
                self.sched.mark_ready(seq);
                self.stats.sched_wakeups += 1;
            }
        }
        self.sched.scratch = woken;
    }

    /// `sched_check`: recomputes writeback's due set with the retired full
    /// ROB scan and asserts the event queue delivered exactly it, in order.
    fn check_writeback_set(&self, completed: &[u64], now: u64) {
        let expected: Vec<u64> = self
            .rob
            .iter()
            .filter(|e| e.state == EntryState::Executing && e.ready_at <= now)
            .map(|e| e.seq)
            .collect();
        assert_eq!(
            completed,
            &expected[..],
            "sched_check: completion events diverge from the ROB scan at cycle {now}"
        );
    }

    /// `sched_check`: audits the ready queue and serializer gate against
    /// the retired scan-based issue logic.
    fn check_issue_invariants(&self) {
        let scan_gate = self
            .rob
            .iter()
            .find(|e| e.inst.is_serializing() && e.state != EntryState::Done)
            .map(|e| e.seq);
        assert_eq!(
            self.sched.serializer_gate(),
            scan_gate,
            "sched_check: serializer gate diverges from the ROB scan"
        );
        for e in self.rob.iter() {
            if e.state == EntryState::Waiting {
                if !self.sched.contains_ready(e.seq) {
                    assert!(
                        self.stuck_on_operands(e),
                        "sched_check: entry {} (pc {:#x}) is issueable but absent from the \
                         ready queue",
                        e.seq,
                        e.pc
                    );
                }
            } else {
                assert!(
                    !self.sched.contains_ready(e.seq),
                    "sched_check: non-waiting entry {} in the ready queue",
                    e.seq
                );
            }
        }
    }

    /// Resolves a branch whose operands were valid. May squash.
    fn resolve_branch(&mut self, seq: u64, now: u64) {
        let Some(e) = self.rob.get_mut(seq) else { return };
        let pc = e.pc;
        let Some(b) = e.branch.as_mut() else { return };
        if b.resolved {
            return;
        }
        b.resolved = true;
        let info = *b;
        let mispredicted = info.actual_taken != info.predicted_taken
            || (info.actual_taken && info.actual_target != info.predicted_target);
        self.emit(PipelineEvent::BranchResolved {
            cycle: now,
            pc,
            taken: info.actual_taken,
            mispredicted,
        });
        let in_runahead = self.in_runahead();
        let train = !in_runahead || self.cfg.runahead.train_predictor;
        match info.kind {
            BranchKind::Conditional => {
                self.stats.branches += 1;
                if mispredicted {
                    self.stats.branch_mispredicts += 1;
                }
                if train {
                    self.bp.resolve_conditional(pc, info.actual_taken, mispredicted);
                }
            }
            BranchKind::Indirect | BranchKind::Call => {
                if train {
                    self.bp.resolve_target(pc, info.actual_target, mispredicted);
                }
            }
            BranchKind::Return => {
                if train {
                    self.bp.resolve_return(mispredicted);
                }
            }
            BranchKind::Direct => {}
        }
        // Secure-runahead verdict bookkeeping (Algorithm 1's S[] / deletion).
        if matches!(info.kind, BranchKind::Conditional) {
            self.secure_on_resolution(pc, info.actual_taken, info.scope_id, in_runahead);
        }
        if mispredicted {
            let redirect = if info.actual_taken { info.actual_target } else { pc + INST_BYTES };
            self.squash_after(seq, now);
            // Repair the RSB to just-after this branch's own effects.
            self.bp.rsb_restore(info.rsb_checkpoint);
            match info.kind {
                BranchKind::Call => {
                    self.bp.rsb_mut().push(pc + INST_BYTES);
                }
                BranchKind::Return => {
                    self.bp.rsb_mut().pop();
                }
                _ => {}
            }
            self.redirect_fetch(redirect, now + 1);
        }
    }

    /// Removes all entries younger than `seq`, unwinding renames.
    pub(crate) fn squash_after(&mut self, seq: u64, now: u64) {
        self.sched.squash_younger(seq);
        let removed = self.rob.squash_younger(seq);
        self.emit(PipelineEvent::Squash { cycle: now, squashed: removed.len() as u64 });
        for e in &removed {
            if let Some(d) = e.dest {
                self.rat.set(d.arch, d.prev);
                self.free.free(d.new);
            }
            if e.is_load {
                self.lq_occupancy = self.lq_occupancy.saturating_sub(1);
            }
            if e.state == EntryState::Waiting {
                self.iq_occupancy = self.iq_occupancy.saturating_sub(1);
            }
            self.stats.squashed += 1;
        }
        self.sq.squash_younger(seq);
        self.pipe.clear();
    }

    /// Points fetch at `target` starting from cycle `from` (any stall
    /// belonging to the abandoned path is discarded).
    pub(crate) fn redirect_fetch(&mut self, target: u64, from: u64) {
        self.fetch_pc = target;
        self.fetch_stalled_until = from;
        self.fetch_halted = false;
        self.pipe.clear();
    }

    // ------------------------------------------------------------------
    // Commit / pseudo-retire
    // ------------------------------------------------------------------

    fn commit(&mut self, now: u64) {
        for _ in 0..self.cfg.width {
            let Some(head) = self.rob.head() else { break };
            if head.state != EntryState::Done {
                // A DRAM-bound load stalling at the head: record the window
                // statistic and consider entering runahead.
                if head.is_load
                    && head.state == EntryState::Executing
                    && head.load_level == Some(HitLevel::Mem)
                    && head.ready_at > now
                {
                    let behind = self.rob.len() as u64 - 1;
                    if behind > self.stats.max_stall_window {
                        self.stats.max_stall_window = behind;
                    }
                    if !self.in_runahead() && self.runahead_trigger_met() {
                        self.enter_runahead(now);
                    }
                }
                break;
            }
            // Retirement needs only a handful of the entry's fields; copy
            // them out and discard the entry in place instead of moving the
            // whole ~200-byte struct out of the buffer.
            let retire = RetireInfo {
                seq: head.seq,
                pc: head.pc,
                dest: head.dest,
                is_load: head.is_load,
                is_store: head.is_store,
                is_halt: head.meta.is_halt(),
            };
            self.rob.pop_head_discard();
            if self.in_runahead() {
                self.pseudo_retire(retire);
            } else {
                self.commit_entry(retire, now);
                if self.halted {
                    break;
                }
            }
        }
    }

    fn commit_entry(&mut self, e: RetireInfo, now: u64) {
        if let Some(d) = e.dest {
            self.retire_rat.set(d.arch, d.new);
            self.free.free(d.prev);
        }
        if e.is_load {
            self.lq_occupancy = self.lq_occupancy.saturating_sub(1);
            self.stats.loads += 1;
        }
        if e.is_store {
            if let Some(se) = self.sq.release(e.seq) {
                let addr = se.addr.expect("committed store has an address");
                if se.is_flush {
                    self.mem.flush_line(addr, now);
                    self.emit(PipelineEvent::Flush { cycle: now, line: self.mem.line_of(addr) });
                } else {
                    let access = self.mem.access(addr, now, AccessKind::Store, FillPolicy::Normal);
                    if access.filled {
                        self.emit(PipelineEvent::CacheFill {
                            cycle: now,
                            level: access.level,
                            line: self.mem.line_of(addr),
                            transient: false,
                        });
                    }
                    self.mem.write_data(addr, se.width, se.value.unwrap_or(0));
                    self.stats.stores += 1;
                }
            }
        }
        if e.is_halt {
            self.halted = true;
        }
        self.stats.committed += 1;
        self.emit(PipelineEvent::Commit { cycle: now, pc: e.pc });
    }

    fn pseudo_retire(&mut self, e: RetireInfo) {
        if let Some(d) = e.dest {
            self.retire_rat.set(d.arch, d.new);
            self.free.free(d.prev);
        }
        if e.is_load {
            self.lq_occupancy = self.lq_occupancy.saturating_sub(1);
        }
        if e.is_store {
            // Runahead stores touched only the runahead cache at issue.
            self.sq.release(e.seq);
        }
        self.stats.pseudo_retired += 1;
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    fn issue(&mut self, now: u64) {
        if self.cfg.sched_check {
            self.check_issue_invariants();
        }
        let mut issued = 0usize;
        let head_seq = self.seq_of_head();
        // The oldest in-flight serializer blocks everything younger, even in
        // the cycle it issues itself (it stops gating only once Done). If it
        // is squashed mid-loop the stale gate is harmless: every entry the
        // gate would wrongly block is younger and died in the same squash.
        let gate = self.sched.serializer_gate();
        // Walk the ready queue in program order through a cursor, so
        // wakeups delivered mid-issue (an older entry poisoning its INV
        // destination) are picked up this same cycle, exactly like the
        // in-order scan, while squashes prune unvisited candidates.
        let mut cursor: Option<u64> = None;
        while issued < self.cfg.width {
            let Some(seq) = self.sched.first_ready_after(cursor) else { break };
            cursor = Some(seq);
            if gate.is_some_and(|g| seq > g) {
                break;
            }
            // Gather operand state without holding a ROB borrow.
            let Some(e) = self.rob.get(seq) else {
                // Squashed since it was queued (stale entry).
                self.sched.remove_ready(seq);
                continue;
            };
            debug_assert!(e.state == EntryState::Waiting, "ready queue holds only Waiting entries");
            let (inst, meta, pc, srcs) = (e.inst, e.meta, e.pc, e.srcs);
            if self.try_issue_entry(seq, inst, meta, pc, srcs, head_seq, now) {
                issued += 1;
                self.sched.remove_ready(seq);
                self.iq_occupancy = self.iq_occupancy.saturating_sub(1);
            }
        }
    }

    /// Attempts to issue one entry (its invariant fields pre-gathered by
    /// the caller's single ROB lookup). Returns whether it left `Waiting`.
    #[allow(clippy::too_many_arguments)]
    fn try_issue_entry(
        &mut self,
        seq: u64,
        inst: Inst,
        meta: UopMeta,
        pc: u64,
        srcs: [Option<PhysRef>; 3],
        head_seq: Option<u64>,
        now: u64,
    ) -> bool {
        // Stores split into address generation (base ready) and data
        // delivery (data ready), so younger loads can disambiguate without
        // waiting for the store's data.
        if meta.is_data_store() {
            return self.issue_store_two_phase(seq, inst, now);
        }
        let mut vals = [0u64; 3];
        let mut inv = false;
        let mut taint = 0u64;
        for (i, src) in srcs.iter().enumerate() {
            if let Some(phys) = src {
                if !self.regs.is_ready(*phys) {
                    return false;
                }
                vals[i] = self.regs.value(*phys);
                inv |= self.regs.is_inv(*phys);
                taint |= self.regs.taint(*phys);
            }
        }
        // Precise runahead executes only the address-generating slices;
        // suppressed work completes instantly as INV.
        if self.runahead_suppressed(&inst) {
            let e = self.rob.get_mut(seq).expect("entry exists");
            e.state = EntryState::Done;
            e.inv = true;
            let dest = e.dest;
            if let Some(d) = dest {
                self.produce_inv(d.new);
            }
            return true;
        }
        match inst {
            Inst::RdCycle { .. } => {
                // Serializing: issues only as the oldest instruction (all
                // older work, including stores, has already committed).
                if head_seq != Some(seq) {
                    return false;
                }
                self.finish_alu(seq, now, 1, now, false, 0)
            }
            Inst::Branch { cond, rs1, rs2, offset } => {
                self.issue_branch(seq, pc, cond, rs1, rs2, offset, vals, inv, taint, now)
            }
            Inst::Load { .. } | Inst::FpLoad { .. } | Inst::Ret => {
                self.issue_load(seq, pc, inst, vals, inv, taint, now)
            }
            Inst::Flush { .. } => self.issue_store(seq, inst, vals, inv, taint, now),
            Inst::Call { offset } => {
                self.issue_call(seq, pc, Some(offset), None, vals, inv, taint, now)
            }
            Inst::CallInd { .. } => {
                self.issue_call(seq, pc, None, Some(vals[0]), vals, inv, taint, now)
            }
            Inst::JumpInd { base, offset } => {
                if inv && self.in_runahead() {
                    // An INV-target indirect jump never resolves: the (BTB)
                    // prediction steers the rest of the episode — the
                    // SpectreBTB-in-runahead primitive.
                    self.stats.inv_unresolved_branches += 1;
                    self.skip_inv_park(seq, now);
                    let e = self.rob.get_mut(seq).expect("entry exists");
                    e.state = EntryState::Done;
                    e.inv = true;
                    e.taint = taint;
                    return true;
                }
                let Some(latency) = self.fu.try_issue(FuKind::IntAdd, now) else { return false };
                let base_val = if base.is_zero() { 0 } else { vals[0] };
                let target = base_val.wrapping_add_signed(i64::from(offset));
                let e = self.rob.get_mut(seq).expect("entry exists");
                e.state = EntryState::Executing;
                e.ready_at = now + latency;
                e.taint = taint;
                if let Some(b) = e.branch.as_mut() {
                    b.actual_taken = true;
                    b.actual_target = target;
                }
                self.sched.completions.schedule(now, now + latency, seq);
                true
            }
            _ => {
                let result = eval_simple(&inst, vals, now);
                let Some(latency) = self.fu.try_issue(FuKind::of_class(meta.exec), now) else {
                    return false;
                };
                self.finish_alu(seq, now, latency, result, inv, taint)
            }
        }
    }

    /// The skip-INV mitigation ("the branch is skipped rather than
    /// unresolved", §6): suppress speculation past unresolvable control
    /// flow by squashing its shadow and parking fetch for the episode.
    /// Applies uniformly to INV conditional branches, indirect jumps and
    /// returns — following either static direction of an unresolvable
    /// branch would still execute attacker-chosen code.
    fn skip_inv_park(&mut self, seq: u64, now: u64) {
        if !self.cfg.runahead.secure.skip_inv_branches || !self.in_runahead() {
            return;
        }
        self.stats.skipped_inv_branches += 1;
        let exit_at = match self.mode {
            Mode::Runahead(ep) => ep.exit_at,
            Mode::Normal => now,
        };
        self.squash_after(seq, now);
        self.fetch_stalled_until = self.fetch_stalled_until.max(exit_at);
        self.fetch_halted = true;
    }

    /// Completes issue of a simple (register-result) operation.
    fn finish_alu(
        &mut self,
        seq: u64,
        now: u64,
        latency: u64,
        result: u64,
        inv: bool,
        taint: u64,
    ) -> bool {
        let e = self.rob.get_mut(seq).expect("entry exists");
        e.state = EntryState::Executing;
        e.ready_at = now + latency;
        e.result = result;
        e.inv = inv;
        e.taint = taint;
        if let Some(b) = e.branch.as_mut() {
            // Only direct jumps reach this path; their prediction is exact.
            debug_assert!(matches!(e.inst, Inst::Jump { .. } | Inst::RdCycle { .. }));
            b.actual_taken = b.predicted_taken;
            b.actual_target = b.predicted_target;
        }
        self.sched.completions.schedule(now, now + latency, seq);
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_branch(
        &mut self,
        seq: u64,
        pc: u64,
        cond: BranchCond,
        rs1: IntReg,
        rs2: IntReg,
        offset: i32,
        vals: [u64; 3],
        inv: bool,
        taint: u64,
        now: u64,
    ) -> bool {
        // Operand values: sources() skips r0 reads, so reconstruct operand
        // positions — a branch reading r0 compares against zero.
        let (v1, v2) = two_operands(rs1, rs2, vals);
        if inv && self.in_runahead() {
            // The SPECRUN vulnerability: an INV-source branch never resolves;
            // the (attacker-trained) prediction stands for the whole episode.
            self.stats.inv_unresolved_branches += 1;
            self.skip_inv_park(seq, now);
            let e = self.rob.get_mut(seq).expect("entry exists");
            e.state = EntryState::Done;
            e.inv = true;
            e.taint = taint;
            return true;
        }
        let Some(latency) = self.fu.try_issue(FuKind::IntAdd, now) else { return false };
        let taken = cond.eval(v1, v2);
        let e = self.rob.get_mut(seq).expect("entry exists");
        e.state = EntryState::Executing;
        e.ready_at = now + latency;
        e.taint = taint;
        if let Some(b) = e.branch.as_mut() {
            b.actual_taken = taken;
            b.actual_target =
                if taken { pc.wrapping_add_signed(i64::from(offset)) } else { pc + INST_BYTES };
        }
        self.sched.completions.schedule(now, now + latency, seq);
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_call(
        &mut self,
        seq: u64,
        pc: u64,
        direct_offset: Option<i32>,
        indirect_target: Option<u64>,
        vals: [u64; 3],
        inv: bool,
        taint: u64,
        now: u64,
    ) -> bool {
        // Source layout: a direct call reads [SP]; an indirect call reads
        // [target_base, SP].
        let sp_val = match direct_offset {
            Some(_) => vals[0],
            None => vals[1],
        };
        if self.fu.try_issue(FuKind::Mem, now).is_none() {
            return false;
        }
        let new_sp = sp_val.wrapping_sub(8);
        let ret_addr = pc + INST_BYTES;
        self.sq.fill(seq, new_sp, Some(ret_addr), inv);
        if self.in_runahead() {
            if let Some(rc) = self.ra.cache.as_mut() {
                rc.write(new_sp, 8, ret_addr, inv);
            }
        }
        let actual_target = match direct_offset {
            Some(off) => pc.wrapping_add_signed(i64::from(off)),
            None => indirect_target.unwrap_or(0),
        };
        let e = self.rob.get_mut(seq).expect("entry exists");
        e.state = EntryState::Executing;
        e.ready_at = now + 1;
        e.result = new_sp;
        e.inv = inv;
        e.taint = taint;
        if let Some(b) = e.branch.as_mut() {
            b.actual_taken = true;
            b.actual_target = actual_target;
            if direct_offset.is_some() {
                b.resolved = true; // direct target can never mispredict
            }
        }
        self.sched.completions.schedule(now, now + 1, seq);
        true
    }

    /// Issues a `clflush` (address-only store-queue occupant).
    #[allow(clippy::too_many_arguments)]
    fn issue_store(
        &mut self,
        seq: u64,
        inst: Inst,
        vals: [u64; 3],
        inv: bool,
        taint: u64,
        now: u64,
    ) -> bool {
        let Inst::Flush { base, offset } = inst else {
            unreachable!("issue_store handles flushes only")
        };
        let base_v = if base.is_zero() { 0 } else { vals[0] };
        let addr = base_v.wrapping_add_signed(i64::from(offset));
        if inv && self.in_runahead() {
            // INV-address flushes vanish (their slot still drains at retire).
            let e = self.rob.get_mut(seq).expect("entry exists");
            e.state = EntryState::Done;
            e.inv = true;
            return true;
        }
        if self.fu.try_issue(FuKind::Mem, now).is_none() {
            return false;
        }
        self.sq.fill(seq, addr, None, inv);
        let e = self.rob.get_mut(seq).expect("entry exists");
        e.state = EntryState::Executing;
        e.ready_at = now + 1;
        e.inv = inv;
        e.taint = taint;
        e.load_addr = Some(addr);
        self.sched.completions.schedule(now, now + 1, seq);
        true
    }

    /// Two-phase store issue: phase A generates the address once the base
    /// register is ready (claiming an AGU port); phase B delivers the data
    /// once it is ready and completes the store. Returns whether the entry
    /// left `Waiting`.
    fn issue_store_two_phase(&mut self, seq: u64, inst: Inst, now: u64) -> bool {
        let (width, offset) = match inst {
            Inst::Store { width, offset, .. } => (width.bytes(), offset),
            Inst::FpStore { offset, .. } => (8, offset),
            _ => unreachable!("two-phase issue is for data stores"),
        };
        let (data_phys, base_phys, addr_done) = {
            let e = self.rob.get(seq).expect("entry exists");
            let (data, base) = store_operand_phys(e);
            (data, base, e.addr_ready)
        };
        let in_runahead = self.in_runahead();
        // Phase A: address generation.
        if !addr_done {
            let (base_val, base_inv, base_taint) = match base_phys {
                Some(p) => {
                    if !self.regs.is_ready(p) {
                        return false;
                    }
                    (self.regs.value(p), self.regs.is_inv(p), self.regs.taint(p))
                }
                None => (0, false, 0),
            };
            if base_inv && in_runahead {
                // INV-address stores vanish.
                let e = self.rob.get_mut(seq).expect("entry exists");
                e.state = EntryState::Done;
                e.inv = true;
                return true;
            }
            if self.fu.try_issue(FuKind::Mem, now).is_none() {
                return false;
            }
            let addr = base_val.wrapping_add_signed(i64::from(offset));
            self.sq.fill_addr(seq, addr);
            let e = self.rob.get_mut(seq).expect("entry exists");
            e.addr_ready = true;
            e.load_addr = Some(addr);
            e.taint |= base_taint;
        }
        // Phase B: data delivery.
        let (value, data_inv, data_taint) = match data_phys {
            Some(p) => {
                if !self.regs.is_ready(p) {
                    // Address done, data still in flight: park on the data
                    // register's waiter list instead of burning a retry
                    // every cycle — its production re-queues the entry.
                    self.sched.remove_ready(seq);
                    self.sched.add_waiter(p, seq);
                    let e = self.rob.get_mut(seq).expect("entry exists");
                    e.wait_count = 1;
                    return false;
                }
                (self.regs.value(p), self.regs.is_inv(p), self.regs.taint(p))
            }
            None => (0, false, 0),
        };
        let inv = data_inv && in_runahead;
        let (addr, taint) = {
            let e = self.rob.get_mut(seq).expect("entry exists");
            (e.load_addr.expect("phase A filled the address"), e.taint | data_taint)
        };
        self.sq.fill_data(seq, value, inv);
        if in_runahead {
            if let Some(rc) = self.ra.cache.as_mut() {
                rc.write(addr, width, value, inv);
            }
        }
        let e = self.rob.get_mut(seq).expect("entry exists");
        e.state = EntryState::Executing;
        e.ready_at = now + 1;
        e.inv = inv;
        e.taint = taint;
        self.sched.completions.schedule(now, now + 1, seq);
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_load(
        &mut self,
        seq: u64,
        pc: u64,
        inst: Inst,
        vals: [u64; 3],
        inv: bool,
        taint: u64,
        now: u64,
    ) -> bool {
        let in_runahead = self.in_runahead();
        let (addr, width, sp_like) = match inst {
            Inst::Load { base, offset, width, .. } => {
                let base_v = if base.is_zero() { 0 } else { vals[0] };
                (base_v.wrapping_add_signed(i64::from(offset)), width.bytes(), false)
            }
            Inst::FpLoad { base, offset, .. } => {
                let base_v = if base.is_zero() { 0 } else { vals[0] };
                (base_v.wrapping_add_signed(i64::from(offset)), 8, false)
            }
            Inst::Ret => (vals[0], 8, true),
            _ => unreachable!("issue_load on non-load"),
        };
        if inv && in_runahead {
            // INV address: poison the destination immediately.
            let e = self.rob.get_mut(seq).expect("entry exists");
            e.state = EntryState::Done;
            e.inv = true;
            e.taint = taint;
            let dest = e.dest;
            if let Some(d) = dest {
                self.produce_inv(d.new);
                self.regs.set_taint(d.new, taint);
            }
            if sp_like {
                self.stats.inv_unresolved_branches += 1; // ret never resolves
                self.skip_inv_park(seq, now);
            }
            return true;
        }
        // Store-queue disambiguation first (no FU consumed on a stall).
        let line_bytes = self.mem.line_bytes();
        match self.sq.check_load(seq, addr, width, line_bytes) {
            LoadCheck::UnknownAddr | LoadCheck::Conflict => return false,
            LoadCheck::Forward { value, inv: fwd_inv } => {
                if self.fu.try_issue(FuKind::Mem, now).is_none() {
                    return false;
                }
                if in_runahead {
                    self.emit(PipelineEvent::TransientLoad {
                        cycle: now,
                        pc,
                        addr,
                        tainted: taint != 0,
                    });
                }
                let poison = fwd_inv && in_runahead;
                if poison && sp_like {
                    // A ret popping poisoned data never resolves
                    // (SpectreRSB-in-runahead, Fig. 4b).
                    self.stats.inv_unresolved_branches += 1;
                    self.skip_inv_park(seq, now);
                }
                return self.complete_load(
                    seq,
                    addr,
                    None,
                    value,
                    poison,
                    taint,
                    now + 1,
                    sp_like,
                    now,
                );
            }
            LoadCheck::NoConflict => {}
        }
        // Runahead cache (runahead store-to-load forwarding). Empty until
        // the episode's first store, so the common probe is one counter
        // read, not a hash lookup.
        if in_runahead {
            if let Some(rc) = self.ra.cache.as_ref().filter(|rc| !rc.is_empty()) {
                match rc.read(addr, width) {
                    RunaheadRead::Hit(value) => {
                        if self.fu.try_issue(FuKind::Mem, now).is_none() {
                            return false;
                        }
                        self.emit(PipelineEvent::TransientLoad {
                            cycle: now,
                            pc,
                            addr,
                            tainted: taint != 0,
                        });
                        return self.complete_load(
                            seq,
                            addr,
                            None,
                            value,
                            false,
                            taint,
                            now + 2,
                            sp_like,
                            now,
                        );
                    }
                    RunaheadRead::Invalid => {
                        if sp_like {
                            self.stats.inv_unresolved_branches += 1;
                            self.skip_inv_park(seq, now);
                        }
                        let e = self.rob.get_mut(seq).expect("entry exists");
                        e.state = EntryState::Done;
                        e.inv = true;
                        e.taint = taint;
                        let dest = e.dest;
                        if let Some(d) = dest {
                            self.produce_inv(d.new);
                            self.regs.set_taint(d.new, taint);
                        }
                        return true;
                    }
                    RunaheadRead::Miss => {}
                }
            }
        }
        // SL cache (defense): consulted while its counter is nonzero.
        if self.cfg.runahead.secure.sl_cache && self.secure.sl.counter() != 0 {
            match self.secure_load_check(seq, addr, now, in_runahead) {
                crate::secure::SlOutcome::NotPresent => {}
                crate::secure::SlOutcome::Wait => {
                    self.stats.sl_verdict_waits += 1;
                    return false;
                }
                crate::secure::SlOutcome::Serve { latency } => {
                    if self.fu.try_issue(FuKind::Mem, now).is_none() {
                        return false;
                    }
                    if in_runahead {
                        self.emit(PipelineEvent::TransientLoad {
                            cycle: now,
                            pc,
                            addr,
                            tainted: taint != 0,
                        });
                    }
                    let value = self.mem.read_data(addr, width);
                    return self.complete_load(
                        seq,
                        addr,
                        None,
                        value,
                        false,
                        taint,
                        now + latency,
                        sp_like,
                        now,
                    );
                }
            }
        }
        // Memory hierarchy.
        if self.fu.try_issue(FuKind::Mem, now).is_none() {
            return false;
        }
        let policy = if in_runahead && self.cfg.runahead.secure.sl_cache {
            FillPolicy::NoFill
        } else {
            FillPolicy::Normal
        };
        let sl_penalty = if self.cfg.runahead.secure.sl_cache && self.secure.sl.counter() != 0 {
            self.cfg.runahead.secure.sl_latency
        } else {
            0
        };
        let access = self.mem.access(addr, now, AccessKind::Load, policy);
        if in_runahead {
            self.emit(PipelineEvent::TransientLoad { cycle: now, pc, addr, tainted: taint != 0 });
        }
        if access.filled {
            self.emit(PipelineEvent::CacheFill {
                cycle: now,
                level: access.level,
                line: self.mem.line_of(addr),
                transient: in_runahead,
            });
        }
        if in_runahead && access.level == HitLevel::Mem {
            // Long-latency runahead load: issue the request (the prefetch
            // that carries the covert channel) and poison the destination.
            self.stats.runahead_prefetches += 1;
            self.vector_prefetch(seq, addr, now);
            if self.cfg.runahead.secure.sl_cache {
                self.secure_record_fill(seq, addr, access.ready_at, taint);
            }
            if sp_like {
                // A ret whose pop misses to DRAM never resolves
                // (SpectreRSB-in-runahead, Fig. 4c).
                self.stats.inv_unresolved_branches += 1;
                self.skip_inv_park(seq, now);
            }
            let e = self.rob.get_mut(seq).expect("entry exists");
            e.state = EntryState::Done;
            e.inv = true;
            e.taint = taint;
            e.load_level = Some(access.level);
            e.load_addr = Some(addr);
            let dest = e.dest;
            if let Some(d) = dest {
                self.produce_inv(d.new);
                self.regs.set_taint(d.new, taint);
            }
            return true;
        }
        if in_runahead {
            self.vector_prefetch(seq, addr, now);
        }
        self.complete_load(
            seq,
            addr,
            Some(access.level),
            0,
            false,
            taint,
            access.ready_at + sl_penalty,
            sp_like,
            now,
        )
    }

    /// Finishes a load issue: value either known (forwarded) or read from
    /// memory at writeback when `level` is `Some`.
    #[allow(clippy::too_many_arguments)]
    fn complete_load(
        &mut self,
        seq: u64,
        addr: u64,
        level: Option<HitLevel>,
        value: u64,
        poison: bool,
        taint: u64,
        ready_at: u64,
        is_ret: bool,
        _now: u64,
    ) -> bool {
        // Loads inherit the taint of their address (secure runahead); the
        // loaded value becomes tainted data.
        let e = self.rob.get_mut(seq).expect("entry exists");
        e.state = EntryState::Executing;
        e.ready_at = ready_at;
        e.result = value;
        e.inv = poison;
        e.taint = taint;
        e.load_level = level;
        e.load_addr = Some(addr);
        if is_ret {
            // The pop address *is* the old SP; stash the SP update (the
            // destination value — `result` carries the popped target).
            e.aux_sp = addr.wrapping_add(8);
        }
        self.sched.completions.schedule(_now, ready_at, seq);
        true
    }

    // ------------------------------------------------------------------
    // Dispatch (rename)
    // ------------------------------------------------------------------

    fn dispatch(&mut self, now: u64) {
        for _ in 0..self.cfg.width {
            let Some(front) = self.pipe.front() else { break };
            if front.available_at > now {
                break;
            }
            if self.rob.is_full() || self.iq_occupancy >= self.cfg.iq_entries {
                break;
            }
            if front.meta.is_load() && self.lq_occupancy >= self.cfg.lq_entries {
                break;
            }
            if front.meta.needs_sq() && self.sq.is_full() {
                break;
            }
            if let Some(dest) = front.meta.dest {
                if self.free.available(RegClass::of(dest)) == 0 {
                    break;
                }
            }
            let f = self.pipe.pop_front().expect("front exists");
            self.dispatch_one(f, now);
        }
    }

    fn dispatch_one(&mut self, f: Fetched, _now: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut entry = RobEntry::with_meta(seq, f.pc, f.inst, f.meta);
        entry.runahead = self.in_runahead();
        // Rename sources (predecoded — `Inst::sources` ran once at load).
        for (i, src) in f.meta.srcs.iter().enumerate() {
            if let Some(arch) = src {
                entry.srcs[i] = Some(self.rat.get(*arch));
            }
        }
        // Secure-runahead scope tracking at rename, in speculative order.
        let (scope_id, dispatch_scope) = self.secure_on_dispatch(&f, &entry);
        entry.dispatch_scope = dispatch_scope;
        // Rename destination.
        if let Some(arch) = f.meta.dest {
            let new = self.free.allocate(RegClass::of(arch)).expect("checked in dispatch");
            self.sched.clear_waiters(new);
            self.regs.mark_pending(new);
            let prev = self.rat.set(arch, new);
            entry.dest = Some(DestInfo { arch, new, prev });
        }
        // Operand-wakeup registration: the entry joins the issue-ready
        // queue once its gating operands are produced. Data stores gate on
        // the base register first (address generation runs ahead of the
        // data, see `issue_store_two_phase`); everything else gates on all
        // of its sources (INV counts as produced).
        if f.meta.is_serializing() {
            self.sched.add_serializer(seq);
        }
        if f.meta.is_data_store() {
            let (_, base_phys) = store_operand_phys(&entry);
            match base_phys.filter(|p| !self.regs.is_ready(*p)) {
                Some(p) => {
                    entry.wait_count = 1;
                    self.sched.add_waiter(p, seq);
                }
                None => self.sched.mark_ready(seq),
            }
        } else {
            let mut waits = 0u8;
            for p in entry.srcs.iter().flatten() {
                if !self.regs.is_ready(*p) {
                    waits += 1;
                    self.sched.add_waiter(*p, seq);
                }
            }
            entry.wait_count = waits;
            if waits == 0 {
                self.sched.mark_ready(seq);
            }
        }
        // Branch bookkeeping.
        if let Some(p) = f.pred {
            entry.branch = Some(BranchInfo {
                kind: p.kind,
                predicted_taken: p.taken,
                predicted_target: p.target,
                rsb_checkpoint: p.rsb_checkpoint,
                resolved: f.meta.ctrl == CtrlClass::Direct,
                actual_taken: p.taken,
                actual_target: p.target,
                scope_id,
            });
        }
        if entry.is_load {
            self.lq_occupancy += 1;
        }
        if entry.is_store {
            self.sq.allocate(seq, u64::from(f.meta.mem_width), f.meta.is_flush());
        }
        self.iq_occupancy += 1;
        self.stats.dispatched += 1;
        if self.in_runahead() {
            self.stats.runahead_dispatched += 1;
            if let Mode::Runahead(ep) = &mut self.mode {
                ep.dispatched += 1;
            }
        }
        self.rob.push(entry);
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn fetch(&mut self, now: u64) {
        if self.fetch_halted {
            return;
        }
        // The stream prefetcher keeps requesting ahead even while demand
        // fetch is stalled on a miss.
        self.stream_prefetch(now);
        if now < self.fetch_stalled_until {
            return;
        }
        // Borrow the program once per step by parking it: cloning the `Arc`
        // here put refcount traffic on every simulated cycle.
        let Some(program) = self.program.take() else { return };
        // Once-per-line I-fetch: the first instruction of a 64-byte line
        // probes the hierarchy; the rest of the line streams for free this
        // cycle (hardware reads the whole fetch line out of L1I once — the
        // paper's Fig. 6 trace-cache front end). A width-4 fetch group on
        // one line thus costs one `MemHierarchy::access`, not four.
        let mut probed_line = u64::MAX;
        for _ in 0..self.cfg.width {
            if self.pipe.len() >= self.cfg.fetch_queue {
                break;
            }
            let pc = self.fetch_pc;
            let Some((inst, &meta)) = program.fetch(pc) else {
                // Ran off the text image (wrong-path fetch): stop until a
                // redirect arrives.
                self.fetch_halted = true;
                break;
            };
            if self.cfg.predecode_check {
                audit_predecode(&inst, pc, &meta);
            }
            // Instruction cache: L1 hits stream at full width; anything
            // slower stalls fetch until the line arrives.
            let line = self.mem.line_of(pc);
            if line != probed_line {
                let access = self.mem.access(pc, now, AccessKind::IFetch, FillPolicy::Normal);
                if access.level != HitLevel::L1 {
                    self.fetch_stalled_until = access.ready_at;
                    break;
                }
                probed_line = line;
            }
            let fallthrough = pc + INST_BYTES;
            let pred = if meta.is_control() {
                let rsb_checkpoint = self.bp.rsb_checkpoint();
                let kind = kind_of_ctrl(meta.ctrl);
                let p: Prediction = self.bp.predict(pc, kind, meta.direct_target(), fallthrough);
                Some(PredInfo { kind, taken: p.taken, target: p.target, rsb_checkpoint })
            } else {
                None
            };
            self.pipe.push_back(Fetched {
                pc,
                inst,
                meta,
                available_at: now + self.cfg.frontend_stages,
                pred,
            });
            self.stats.fetched += 1;
            self.fetch_pc = match &pred {
                Some(p) if p.taken => p.target,
                _ => fallthrough,
            };
            if meta.is_halt() {
                self.fetch_halted = true;
                break;
            }
        }
        self.program = Some(program);
    }

    /// Streaming instruction prefetcher (stands in for the trace cache and
    /// trace queue of the paper's Fig. 6 front end). Keeps up to
    /// `ifetch_prefetch_lines` of lookahead in flight so sequential fetch is
    /// DRAM-*bandwidth*-bound instead of DRAM-*latency*-bound — without it
    /// a cold nop slide crawls at one line per memory round trip and the
    /// ROB can never fill behind a stalling load.
    fn stream_prefetch(&mut self, now: u64) {
        let depth = self.cfg.ifetch_prefetch_lines;
        if depth == 0 {
            return;
        }
        let line_bytes = self.mem.line_bytes();
        let cur = self.mem.line_of(self.fetch_pc);
        // Re-anchor after redirects.
        if self.ipf_frontier < cur || self.ipf_frontier > cur + 2 * depth {
            self.ipf_frontier = cur;
        }
        // A few requests per cycle keeps post-redirect bursts bounded.
        let mut budget = 4;
        while self.ipf_frontier < cur + depth && budget > 0 {
            self.ipf_frontier += 1;
            let line = self.ipf_frontier;
            // Redirect re-anchors walk the frontier back over lines the
            // prefetcher already pulled in; skip re-probing a line the memo
            // proves is still L1I-resident (the generation counter tracks
            // every L1I fill/eviction, so a skipped probe can never mask a
            // line that has since left the cache). The skip still consumes
            // its probe-budget slot so the walk advances at the same rate
            // as a probing one; what it elides is the probe's LRU touch and
            // hit-statistic — a model-level refinement, like the
            // once-per-line demand fetch above.
            if (line, self.mem.l1i_generation()) == self.ipf_probe_memo {
                budget -= 1;
                continue;
            }
            let access =
                self.mem.access(line * line_bytes, now, AccessKind::IFetch, FillPolicy::Normal);
            if access.level == HitLevel::L1 {
                self.ipf_probe_memo = (line, self.mem.l1i_generation());
            }
            budget -= 1;
        }
    }
}

/// Recovers a data store's `(data, base)` physical sources from the packed
/// source list `[data?, base?]` (reads of `r0` are elided by
/// `Inst::sources`). Returns `(None, None)` for non-stores.
fn store_operand_phys(e: &RobEntry) -> (Option<PhysRef>, Option<PhysRef>) {
    match e.inst {
        Inst::Store { src, base, .. } => {
            let data = if src.is_zero() { None } else { e.srcs[0] };
            let base_p = if base.is_zero() {
                None
            } else if data.is_some() {
                e.srcs[1]
            } else {
                e.srcs[0]
            };
            (data, base_p)
        }
        Inst::FpStore { base, .. } => {
            let data = e.srcs[0];
            let base_p = if base.is_zero() { None } else { e.srcs[1] };
            (data, base_p)
        }
        _ => (None, None),
    }
}

/// Maps a control instruction to its predictor classification (the retired
/// per-fetch derivation, kept as the `predecode_check` reference).
fn branch_kind(inst: &Inst) -> BranchKind {
    match inst {
        Inst::Branch { .. } => BranchKind::Conditional,
        Inst::Jump { .. } => BranchKind::Direct,
        Inst::JumpInd { .. } => BranchKind::Indirect,
        Inst::Call { .. } | Inst::CallInd { .. } => BranchKind::Call,
        Inst::Ret => BranchKind::Return,
        _ => unreachable!("not a control instruction"),
    }
}

/// Maps a predecoded control class to its predictor classification.
#[inline]
fn kind_of_ctrl(ctrl: CtrlClass) -> BranchKind {
    match ctrl {
        CtrlClass::Conditional => BranchKind::Conditional,
        CtrlClass::Direct => BranchKind::Direct,
        CtrlClass::Indirect => BranchKind::Indirect,
        CtrlClass::Call => BranchKind::Call,
        CtrlClass::Return => BranchKind::Return,
        CtrlClass::None => unreachable!("not a control instruction"),
    }
}

/// Access width in bytes of a load instruction (the retired per-writeback
/// derivation, kept as the `predecode_check` reference).
fn load_width(inst: &Inst) -> u64 {
    match inst {
        Inst::Load { width, .. } => width.bytes(),
        Inst::FpLoad { .. } | Inst::Ret => 8,
        _ => 8,
    }
}

/// `predecode_check`: re-derives every `UopMeta` field from the `Inst` enum
/// with the retired per-site derivations and asserts agreement. Runs once
/// per *fetched* instruction (so every micro-op the pipeline will consult
/// is audited before any stage reads its metadata).
fn audit_predecode(inst: &Inst, pc: u64, meta: &UopMeta) {
    let ctx = |what: &str| format!("predecode_check: {what} diverges for `{inst}` at {pc:#x}");
    assert_eq!(meta.srcs, inst.sources(), "{}", ctx("sources"));
    assert_eq!(meta.dest, inst.dest(), "{}", ctx("dest"));
    assert_eq!(meta.is_load(), inst.is_load(), "{}", ctx("is_load"));
    assert_eq!(meta.is_store(), inst.is_store(), "{}", ctx("is_store"));
    assert_eq!(meta.is_mem(), inst.is_mem(), "{}", ctx("is_mem"));
    assert_eq!(meta.is_flush(), matches!(inst, Inst::Flush { .. }), "{}", ctx("is_flush"));
    assert_eq!(
        meta.needs_sq(),
        inst.is_store() || matches!(inst, Inst::Flush { .. }),
        "{}",
        ctx("needs_sq")
    );
    assert_eq!(
        meta.is_data_store(),
        matches!(inst, Inst::Store { .. } | Inst::FpStore { .. }),
        "{}",
        ctx("is_data_store")
    );
    assert_eq!(meta.is_serializing(), inst.is_serializing(), "{}", ctx("is_serializing"));
    assert_eq!(meta.is_control(), inst.is_control(), "{}", ctx("is_control"));
    assert_eq!(meta.is_cond_branch(), inst.is_cond_branch(), "{}", ctx("is_cond_branch"));
    assert_eq!(meta.is_halt(), matches!(inst, Inst::Halt), "{}", ctx("is_halt"));
    assert_eq!(meta.direct_target(), inst.direct_target(pc), "{}", ctx("direct_target"));
    assert_eq!(FuKind::of_class(meta.exec), FuKind::for_inst(inst), "{}", ctx("FU class"));
    if inst.is_control() {
        assert_eq!(kind_of_ctrl(meta.ctrl), branch_kind(inst), "{}", ctx("branch kind"));
    } else {
        assert_eq!(meta.ctrl, CtrlClass::None, "{}", ctx("control class"));
    }
    if inst.is_load() {
        assert_eq!(u64::from(meta.mem_width), load_width(inst), "{}", ctx("load width"));
    }
    let sq_width = match inst {
        Inst::Store { width, .. } => Some(width.bytes()),
        Inst::FpStore { .. } | Inst::Call { .. } | Inst::CallInd { .. } => Some(8),
        Inst::Flush { .. } => Some(64),
        _ => None,
    };
    if let Some(w) = sq_width {
        assert_eq!(u64::from(meta.mem_width), w, "{}", ctx("store-queue width"));
    }
}

/// Evaluates a register-result instruction from its operand values.
fn eval_simple(inst: &Inst, vals: [u64; 3], now: u64) -> u64 {
    match *inst {
        Inst::Alu { op, rs1, rs2, .. } => {
            let (a, b) = two_operands(rs1, rs2, vals);
            op.eval(a, b)
        }
        Inst::AluImm { op, rs1, imm, .. } => {
            let a = if rs1.is_zero() { 0 } else { vals[0] };
            op.eval(a, imm as i64 as u64)
        }
        Inst::MovImm { imm, .. } => imm as i64 as u64,
        Inst::FpAlu { op, .. } => op.eval(vals[0], vals[1]),
        Inst::FpCvt { rs1, .. } => {
            let a = if rs1.is_zero() { 0 } else { vals[0] };
            ((a as i64) as f64).to_bits()
        }
        Inst::FpMov { .. } => vals[0],
        Inst::RdCycle { .. } => now,
        _ => 0,
    }
}

/// Reconstructs (rs1, rs2) operand values from the compressed source list
/// (reads of r0 are elided by `Inst::sources`).
fn two_operands(rs1: IntReg, rs2: IntReg, vals: [u64; 3]) -> (u64, u64) {
    match (rs1.is_zero(), rs2.is_zero()) {
        (true, true) => (0, 0),
        (true, false) => (0, vals[0]),
        (false, true) => (vals[0], 0),
        (false, false) => (vals[0], vals[1]),
    }
}
