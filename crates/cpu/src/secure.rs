//! Secure runahead execution (paper §6): SL-cache routing, taint tagging
//! and Algorithm 1's post-exit load path.
//!
//! During a secure runahead episode, loads that miss to DRAM are *not*
//! installed into the hierarchy; their fills are parked in the SL cache with
//! `Btag`/`IS` taint tags. After the episode, loads consult the SL cache
//! while its counter `C` is nonzero:
//!
//! * safe entries (and entries outside any branch scope, `Btag = 0`)
//!   promote to L1 and leave the SL cache;
//! * `Btag = B(n, m)` entries wait for branch `B_n`'s architectural verdict
//!   — a correct prediction promotes, a misprediction deletes the entries
//!   selected by the `IS` masks of `B_n` and its nested branches.

use std::collections::{HashMap, HashSet};

use specrun_mem::{Btag, SlCache, SlTags};

use crate::core::{Core, Fetched};
use crate::rob::RobEntry;
use crate::sched::TimerQueue;
use crate::taint::{scope_bit, ScopeId};

/// A DRAM fill headed for the SL cache (its completion cycle is the event
/// key in the pending-fill queue).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingFill {
    pub line: u64,
    pub tags: SlTags,
}

/// Result of consulting the SL cache on a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlOutcome {
    /// Line not in the SL cache; use the regular path.
    NotPresent,
    /// Entry is gated on an unresolved branch verdict; retry later.
    Wait,
    /// Entry serves the load with the given extra latency (already promoted
    /// or deleted as Algorithm 1 dictates).
    Serve {
        /// Extra cycles beyond the issue cycle.
        latency: u64,
    },
}

/// State of the §6 defense outside the taint tracker.
#[derive(Debug, Clone)]
pub(crate) struct SecureState {
    /// The SL cache itself.
    pub sl: SlCache,
    /// Fills still travelling from DRAM toward the SL cache, keyed on their
    /// completion cycle (same event-queue machinery as scheduled flushes).
    pub pending_fills: TimerQueue<PendingFill>,
    /// Runahead branches awaiting an architectural verdict: PC → scopes
    /// predicted at that PC with their predicted direction.
    pub records: HashMap<u64, Vec<(ScopeId, bool)>>,
    /// Scopes with a pending verdict.
    pub pending_scopes: HashSet<ScopeId>,
    /// Verdicts: scope → prediction was correct (the paper's `S[]` plus the
    /// negative outcomes).
    pub verdicts: HashMap<ScopeId, bool>,
    /// Nesting relation captured at episode end (scope → direct inner
    /// scopes).
    pub children: HashMap<ScopeId, Vec<ScopeId>>,
}

impl SecureState {
    pub(crate) fn new(sl: SlCache) -> SecureState {
        SecureState {
            sl,
            pending_fills: TimerQueue::new(),
            records: HashMap::new(),
            pending_scopes: HashSet::new(),
            verdicts: HashMap::new(),
            children: HashMap::new(),
        }
    }

    /// Starts a fresh episode: leftover SL entries are dropped (the paper
    /// drains the SL cache before the next round of runahead).
    pub(crate) fn begin_episode(&mut self) {
        self.sl.clear();
        self.pending_fills.clear();
        self.records.clear();
        self.pending_scopes.clear();
        self.verdicts.clear();
        self.children.clear();
    }

    /// Captures the nesting relation at episode end.
    pub(crate) fn end_episode(&mut self, tracker: &crate::taint::TaintTracker) {
        self.children = tracker.children_map();
    }

    /// `scope` plus all transitively nested scopes.
    fn scope_and_descendants(&self, scope: ScopeId) -> Vec<ScopeId> {
        let mut out = vec![scope];
        let mut i = 0;
        while i < out.len() {
            if let Some(kids) = self.children.get(&out[i]) {
                out.extend(kids.iter().copied());
            }
            i += 1;
        }
        out
    }

    /// Applies a branch verdict; on misprediction deletes the SL entries of
    /// the branch and its inner branches. Returns entries deleted.
    pub(crate) fn apply_verdict(&mut self, scope: ScopeId, correct: bool) -> usize {
        self.pending_scopes.remove(&scope);
        self.verdicts.insert(scope, correct);
        if correct {
            return 0;
        }
        let mut deleted = 0;
        for s in self.scope_and_descendants(scope) {
            deleted += self.sl.remove_tainted_by(scope_bit(s));
            deleted += self.sl.remove_in_scope(s);
            self.pending_scopes.remove(&s);
            self.verdicts.entry(s).or_insert(false);
        }
        deleted
    }
}

impl<O: crate::probe::PipelineObserver> Core<O> {
    /// Rename-time hook: tracks branch scopes in speculative order and
    /// seeds predicate taint. Returns `(scope id for a scoped conditional,
    /// innermost scope open at this instruction)`.
    #[inline]
    pub(crate) fn secure_on_dispatch(
        &mut self,
        f: &Fetched,
        entry: &RobEntry,
    ) -> (Option<u32>, Option<u32>) {
        if !self.cfg.runahead.secure.sl_cache || !self.in_runahead() {
            return (None, None);
        }
        self.tracker.on_inst(f.pc);
        let branch_scope = match self.scope_map.get(&f.pc).copied() {
            Some(end_pc) if f.inst.is_cond_branch() => {
                let id = self.tracker.on_branch(f.pc, end_pc);
                // Seed taint: the predicate's source registers become
                // tainted data within the new scope (Fig. 12: `rX` under
                // `B1`, `rY` under `B2`).
                for src in entry.srcs.iter().flatten() {
                    self.regs.add_taint(*src, scope_bit(id));
                }
                // Record for the post-exit verdict.
                self.secure
                    .records
                    .entry(f.pc)
                    .or_default()
                    .push((id, f.pred.is_some_and(|p| p.taken)));
                self.secure.pending_scopes.insert(id);
                Some(id)
            }
            _ => None,
        };
        (branch_scope, self.tracker.current_scope())
    }

    /// Registers a runahead DRAM fill destined for the SL cache, tagging it
    /// per Fig. 12: `Btag` from the scope open at dispatch (with a USL
    /// ordinal when the address is tainted) and `IS` from the address taint
    /// mask.
    pub(crate) fn secure_record_fill(&mut self, seq: u64, addr: u64, complete_at: u64, taint: u64) {
        let scope = self.rob.get_mut(seq).and_then(|e| e.dispatch_scope);
        let btag = scope.map(|scope| {
            let ordinal = if taint != 0 { self.tracker.next_usl_ordinal(scope) } else { 0 };
            Btag { branch: scope, ordinal }
        });
        let line = self.mem.line_of(addr);
        let tags = SlTags { btag, is_mask: taint };
        self.secure.pending_fills.push(complete_at, PendingFill { line, tags });
    }

    /// Moves completed fills into the SL cache. A fill that is already
    /// provably safe (no scope, no taint) arriving while the core is back in
    /// normal mode promotes straight to the hierarchy — Algorithm 1 would
    /// promote it on first touch anyway, and this keeps the SL cache free of
    /// orphaned safe entries.
    pub(crate) fn drain_sl_fills(&mut self, now: u64) {
        if self.secure.pending_fills.is_empty() {
            return;
        }
        let in_runahead = self.in_runahead();
        let line_bytes = self.mem.line_bytes();
        // Due fills pop in insertion order (the old sweep's processing
        // order); the SL cache's eviction behaviour depends on it.
        while let Some(f) = self.secure.pending_fills.pop_due(now) {
            if !in_runahead && f.tags.is_safe() {
                self.mem.install(f.line * line_bytes);
                self.stats.sl_promotions += 1;
            } else {
                self.secure.sl.insert(f.line, f.tags);
            }
        }
    }

    /// Branch-resolution hook for verdict bookkeeping. Called for every
    /// resolved conditional; during runahead, scoped branches that resolve
    /// (valid sources) get their verdict immediately.
    pub(crate) fn secure_on_resolution(
        &mut self,
        pc: u64,
        actual_taken: bool,
        scope_id: Option<u32>,
        in_runahead: bool,
    ) {
        if !self.cfg.runahead.secure.sl_cache {
            return;
        }
        if in_runahead {
            if let Some(id) = scope_id {
                let predicted = self
                    .secure
                    .records
                    .get(&pc)
                    .and_then(|v| v.iter().find(|(s, _)| *s == id).map(|(_, p)| *p));
                if let Some(predicted) = predicted {
                    let deleted = self.secure.apply_verdict(id, predicted == actual_taken);
                    self.stats.sl_deletions += deleted as u64;
                }
            }
            return;
        }
        // Post-exit: the architectural re-execution of the branch supplies
        // the verdict for every runahead scope recorded at this PC.
        let Some(records) = self.secure.records.remove(&pc) else { return };
        for (scope, predicted) in records {
            if self.secure.verdicts.contains_key(&scope) {
                continue;
            }
            let correct = predicted == actual_taken;
            let deleted = self.secure.apply_verdict(scope, correct);
            self.stats.sl_deletions += deleted as u64;
        }
    }

    /// Algorithm 1: consults the SL cache for a load to `addr`.
    pub(crate) fn secure_load_check(
        &mut self,
        _seq: u64,
        addr: u64,
        _now: u64,
        in_runahead: bool,
    ) -> SlOutcome {
        let line = self.mem.line_of(addr);
        let Some(tags) = self.secure.sl.lookup(line).copied() else {
            return SlOutcome::NotPresent;
        };
        self.stats.sl_hits += 1;
        let latency = self.cfg.runahead.secure.sl_latency + self.cfg.mem.l1d.hit_latency;
        if in_runahead {
            // Runahead loads may read SL data but never move it.
            return SlOutcome::Serve { latency };
        }
        match tags.btag {
            None => {
                // Algorithm 1 lines 21–23: Btag = 0 promotes directly.
                self.secure.sl.remove(line);
                self.mem.install(addr);
                self.stats.sl_promotions += 1;
                SlOutcome::Serve { latency }
            }
            Some(btag) => {
                match self.secure.verdicts.get(&btag.branch) {
                    Some(true) => {
                        // Lines 11–14: branch in S[], promote.
                        self.secure.sl.remove(line);
                        self.mem.install(addr);
                        self.stats.sl_promotions += 1;
                        SlOutcome::Serve { latency }
                    }
                    Some(false) => {
                        // Should already be deleted; drop defensively.
                        self.secure.sl.remove(line);
                        self.stats.sl_deletions += 1;
                        SlOutcome::NotPresent
                    }
                    None => {
                        if self.secure.pending_scopes.contains(&btag.branch) {
                            // Line 10: wait for the resolution of B_n.
                            SlOutcome::Wait
                        } else {
                            // No pending branch can ever supply a verdict
                            // (divergent path): treat as unsafe and drop.
                            self.secure.sl.remove(line);
                            self.stats.sl_deletions += 1;
                            SlOutcome::NotPresent
                        }
                    }
                }
            }
        }
    }
}
