//! Pipeline observation: typed microarchitectural events and the
//! zero-cost-when-detached [`PipelineObserver`] trait.
//!
//! Every experiment before this module inferred transient behaviour from
//! the outside — probe-timing buffers read back out of guest memory, or
//! [`CpuStats`](crate::CpuStats) counters. An observer instead receives the
//! events *directly*, at exactly the pipeline points where the counters
//! bump: runahead entry/exit, squashes, commits, branch resolutions,
//! transient loads and the cache fills they cause. That is ground truth —
//! the SPECULOSE methodology of watching transient loads rather than timing
//! their side effects — and it lets an experiment cross-check a
//! timing-based inference against what the pipeline actually did.
//!
//! The core is generic over its observer
//! ([`Core<O>`](crate::Core)); the default [`NoopObserver`] sets
//! [`PipelineObserver::ACTIVE`] to `false`, so every emission site
//! monomorphizes to nothing and a detached core pays zero cost — the perf
//! gate (`specrun-lab perf`) is the proof.
//!
//! ```
//! use specrun_cpu::probe::CountingObserver;
//! use specrun_cpu::{Core, CpuConfig};
//! use specrun_isa::{IntReg, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new(0x1000);
//! b.li(IntReg::new(1).unwrap(), 42);
//! b.halt();
//! let program = b.build().unwrap();
//!
//! let mut core = Core::with_observer(CpuConfig::default(), CountingObserver::default());
//! core.load_program(&program);
//! core.run(10_000);
//! assert_eq!(core.observer().commits, core.stats().committed);
//! ```

use specrun_mem::HitLevel;

/// One microarchitectural event, emitted from the pipeline at the points
/// where [`CpuStats`](crate::CpuStats) counters bump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineEvent {
    /// The core entered runahead mode (a DRAM-bound load stalled at the
    /// head of a blocked window).
    RunaheadEnter {
        /// Cycle of entry.
        cycle: u64,
        /// PC of the stalling load (fetch restarts here on exit).
        stall_pc: u64,
    },
    /// The core left runahead mode (the stalling load's data returned).
    RunaheadExit {
        /// Cycle of exit.
        cycle: u64,
        /// The episode's transient window: instructions in the ROB at entry
        /// plus instructions dispatched during the episode.
        window: u64,
    },
    /// In-flight instructions were thrown away — a misprediction recovery,
    /// a skip-INV suppression, or the pipeline flush at runahead exit.
    Squash {
        /// Cycle of the squash.
        cycle: u64,
        /// ROB entries removed (may be 0 when the squash point was the
        /// youngest instruction). Summed over a run this reconciles with
        /// [`CpuStats::squashed`](crate::CpuStats::squashed).
        squashed: u64,
    },
    /// An instruction architecturally committed (runahead pseudo-retirement
    /// is *not* a commit and is deliberately not reported here).
    Commit {
        /// Cycle of commitment.
        cycle: u64,
        /// PC of the committed instruction.
        pc: u64,
    },
    /// A branch resolved with valid operands. INV-source branches in
    /// runahead never resolve — the SPECRUN signature is precisely the
    /// *absence* of this event for the unresolvable branch.
    BranchResolved {
        /// Cycle of resolution.
        cycle: u64,
        /// PC of the branch.
        pc: u64,
        /// Architecturally taken?
        taken: bool,
        /// Did the prediction (direction or target) miss?
        mispredicted: bool,
    },
    /// A load executed during runahead mode that reached the memory system
    /// (hierarchy, runahead cache, SL cache, or a store-queue forward) with
    /// a valid address. Loads whose address was INV never get this far.
    TransientLoad {
        /// Cycle of issue.
        cycle: u64,
        /// PC of the load.
        pc: u64,
        /// Effective byte address.
        addr: u64,
        /// Whether the address was tainted (secure-runahead taint tracking;
        /// always `false` when the defense is off).
        tainted: bool,
    },
    /// A data-side access created new cache state (promotion into an upper
    /// level, or an installing DRAM fill). Emitted at the access that
    /// allocated the fill; instruction fetch and host-side warming are not
    /// reported.
    CacheFill {
        /// Cycle of the access.
        cycle: u64,
        /// The level that serviced the access (the fill installs *above*
        /// it; [`HitLevel::Mem`] means an installing DRAM fill was
        /// allocated).
        level: HitLevel,
        /// Line index (byte address >> line shift).
        line: u64,
        /// Whether the filling access executed transiently (in runahead
        /// mode). A transient fill of a secret-dependent line *is* the
        /// covert channel; the secure defense's `NoFill` policy suppresses
        /// these fills, and with them this event.
        transient: bool,
    },
    /// A line left the hierarchy through the pipeline: a committed
    /// `clflush` or a host-scheduled mid-run flush (the co-resident
    /// attacker of §5.3 ➂). Host-side setup flushes are not reported.
    Flush {
        /// Cycle of the flush.
        cycle: u64,
        /// Line index of the flushed line.
        line: u64,
    },
}

impl PipelineEvent {
    /// The cycle the event was emitted at.
    pub fn cycle(&self) -> u64 {
        match *self {
            PipelineEvent::RunaheadEnter { cycle, .. }
            | PipelineEvent::RunaheadExit { cycle, .. }
            | PipelineEvent::Squash { cycle, .. }
            | PipelineEvent::Commit { cycle, .. }
            | PipelineEvent::BranchResolved { cycle, .. }
            | PipelineEvent::TransientLoad { cycle, .. }
            | PipelineEvent::CacheFill { cycle, .. }
            | PipelineEvent::Flush { cycle, .. } => cycle,
        }
    }
}

/// A pipeline observer: receives [`PipelineEvent`]s as the core emits them.
///
/// The trait is consumed through the core's type parameter
/// ([`Core<O>`](crate::Core)), never through dynamic dispatch, so an
/// observer adds exactly the cost of its `on_event` body — and none at all
/// for [`NoopObserver`], whose [`ACTIVE`](PipelineObserver::ACTIVE) constant
/// compiles every emission site away.
///
/// Observers must be [`Clone`] (the fast-forward self-check steps a cloned
/// core through the window it is about to skip; the clone's events are
/// discarded with the shadow core) and [`Debug`] (the core derives it).
///
/// **Invisibility contract:** observers receive state, they never change
/// it. An attached observer must leave cycle counts,
/// [`CpuStats`](crate::CpuStats) and architectural results bit-identical
/// to a detached run — enforced by proptests in
/// `crates/cpu/tests/proptests.rs`.
pub trait PipelineObserver: Clone + std::fmt::Debug {
    /// Whether the core should emit events at all. The default `true` suits
    /// any real observer; [`NoopObserver`] overrides it to `false`, which
    /// removes the emission sites at monomorphization time.
    const ACTIVE: bool = true;

    /// Receives one event.
    fn on_event(&mut self, event: &PipelineEvent);
}

/// The detached observer: receives nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl PipelineObserver for NoopObserver {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn on_event(&mut self, _event: &PipelineEvent) {}
}

/// Two observers side by side: both receive every event. Composition is
/// still static — `(CountingObserver, LeakTraceObserver)` pays exactly the
/// two bodies.
impl<A: PipelineObserver, B: PipelineObserver> PipelineObserver for (A, B) {
    const ACTIVE: bool = A::ACTIVE || B::ACTIVE;

    #[inline]
    fn on_event(&mut self, event: &PipelineEvent) {
        self.0.on_event(event);
        self.1.on_event(event);
    }
}

/// Counts every event kind — the reconciliation observer: its totals must
/// agree with the [`CpuStats`](crate::CpuStats) counters bumped at the same
/// pipeline points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingObserver {
    /// Runahead entries (reconciles with `CpuStats::runahead_entries`).
    pub runahead_enters: u64,
    /// Runahead exits (reconciles with `CpuStats::runahead_exits`).
    pub runahead_exits: u64,
    /// Squash *events* (one per squash action).
    pub squash_events: u64,
    /// Sum of squashed-entry counts (reconciles with `CpuStats::squashed`).
    pub squashed_total: u64,
    /// Architectural commits (reconciles with `CpuStats::committed`).
    pub commits: u64,
    /// Branch resolutions of every kind.
    pub branches_resolved: u64,
    /// Mispredicted resolutions.
    pub mispredicts: u64,
    /// Transient (runahead) loads that reached the memory system.
    pub transient_loads: u64,
    /// Transient loads whose address was tainted.
    pub tainted_loads: u64,
    /// Data-side cache fills.
    pub fills: u64,
    /// Fills caused by transient loads.
    pub transient_fills: u64,
    /// In-pipeline line flushes.
    pub flushes: u64,
}

impl PipelineObserver for CountingObserver {
    fn on_event(&mut self, event: &PipelineEvent) {
        match *event {
            PipelineEvent::RunaheadEnter { .. } => self.runahead_enters += 1,
            PipelineEvent::RunaheadExit { .. } => self.runahead_exits += 1,
            PipelineEvent::Squash { squashed, .. } => {
                self.squash_events += 1;
                self.squashed_total += squashed;
            }
            PipelineEvent::Commit { .. } => self.commits += 1,
            PipelineEvent::BranchResolved { mispredicted, .. } => {
                self.branches_resolved += 1;
                self.mispredicts += u64::from(mispredicted);
            }
            PipelineEvent::TransientLoad { tainted, .. } => {
                self.transient_loads += 1;
                self.tainted_loads += u64::from(tainted);
            }
            PipelineEvent::CacheFill { transient, .. } => {
                self.fills += 1;
                self.transient_fills += u64::from(transient);
            }
            PipelineEvent::Flush { .. } => self.flushes += 1,
        }
    }
}

/// Ground-truth leakage tracing over a flush+reload probe array.
///
/// Configured with the probe array's geometry (`array2` of the attack
/// layout), the observer watches [`PipelineEvent::CacheFill`] for
/// *transient* fills landing in probe lines — each one is a
/// secret-dependent fill, because the only transient path into the probe
/// array is the secret-indexed transmit load — and records which probe
/// index was touched. It optionally watches a secret line for transient
/// reads. Where `specrun::attack::ProbeTimings`
/// *infers* the leak from latencies, this observer *sees* it happen: the
/// two must agree, and on a defended machine the transient fill count must
/// be zero — the "secure runahead transient secret fills = 0" invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakTraceObserver {
    probe_base: u64,
    probe_stride: u64,
    probe_entries: u64,
    line_bytes: u64,
    watched_secret_line: Option<u64>,
    /// Transient fill count per probe index.
    fills_per_entry: Vec<u64>,
    /// Transient loads that read the watched secret line.
    secret_reads: u64,
    /// All transient loads seen (context for reports).
    transient_loads: u64,
}

impl LeakTraceObserver {
    /// Creates a tracer for a probe array at `probe_base` with
    /// `probe_entries` entries `probe_stride` bytes apart, on a hierarchy
    /// with `line_bytes`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero or `probe_stride < line_bytes`
    /// (entries sharing a line cannot be distinguished).
    pub fn new(probe_base: u64, probe_stride: u64, probe_entries: u64, line_bytes: u64) -> Self {
        assert!(line_bytes > 0, "line size must be positive");
        assert!(probe_stride >= line_bytes, "probe entries must not share cache lines");
        LeakTraceObserver {
            probe_base,
            probe_stride,
            probe_entries,
            line_bytes,
            watched_secret_line: None,
            fills_per_entry: vec![0; probe_entries as usize],
            secret_reads: 0,
            transient_loads: 0,
        }
    }

    /// Additionally watches the line containing `secret_addr` for transient
    /// reads (builder style).
    pub fn watch_secret(mut self, secret_addr: u64) -> Self {
        self.watched_secret_line = Some(secret_addr / self.line_bytes);
        self
    }

    /// Maps a line index to the probe entry it belongs to, if any.
    fn probe_index_of_line(&self, line: u64) -> Option<u64> {
        let addr = line * self.line_bytes;
        if addr < self.probe_base {
            return None;
        }
        let off = addr - self.probe_base;
        let index = off / self.probe_stride;
        (index < self.probe_entries && off % self.probe_stride < self.line_bytes).then_some(index)
    }

    /// Total transient secret-dependent fills (transient fills landing in
    /// probe lines). Zero on a machine whose defense works.
    pub fn transient_secret_fills(&self) -> u64 {
        self.fills_per_entry.iter().sum()
    }

    /// Per-probe-index transient fill counts.
    pub fn fills_per_entry(&self) -> &[u64] {
        &self.fills_per_entry
    }

    /// Probe indices that were transiently filled, excluding `exclude`
    /// (e.g. index 0, which PHT training also touches architecturally).
    pub fn hot_indices(&self, exclude: &[usize]) -> Vec<usize> {
        self.fills_per_entry
            .iter()
            .enumerate()
            .filter(|&(i, &n)| n > 0 && !exclude.contains(&i))
            .map(|(i, _)| i)
            .collect()
    }

    /// The leaked byte as the observer *saw* it: the unique transiently
    /// filled probe index outside `exclude`. `None` when no index (or more
    /// than one) was filled — the ground-truth twin of
    /// `ProbeTimings::leaked_byte`.
    pub fn ground_truth_byte(&self, exclude: &[usize]) -> Option<u8> {
        match self.hot_indices(exclude)[..] {
            // try_from: an observer may be configured with more than 256
            // probe entries; an index beyond a byte is not a byte leak.
            [one] => u8::try_from(one).ok(),
            _ => None,
        }
    }

    /// Transient reads of the watched secret line.
    pub fn secret_reads(&self) -> u64 {
        self.secret_reads
    }

    /// All transient loads observed.
    pub fn transient_loads(&self) -> u64 {
        self.transient_loads
    }
}

impl PipelineObserver for LeakTraceObserver {
    fn on_event(&mut self, event: &PipelineEvent) {
        match *event {
            PipelineEvent::TransientLoad { addr, .. } => {
                self.transient_loads += 1;
                if self.watched_secret_line == Some(addr / self.line_bytes) {
                    self.secret_reads += 1;
                }
            }
            PipelineEvent::CacheFill { line, transient: true, .. } => {
                if let Some(index) = self.probe_index_of_line(line) {
                    self.fills_per_entry[index as usize] += 1;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(line: u64, transient: bool) -> PipelineEvent {
        PipelineEvent::CacheFill { cycle: 1, level: HitLevel::Mem, line, transient }
    }

    #[test]
    fn counting_observer_sums_squashes() {
        let mut c = CountingObserver::default();
        c.on_event(&PipelineEvent::Squash { cycle: 1, squashed: 3 });
        c.on_event(&PipelineEvent::Squash { cycle: 2, squashed: 0 });
        assert_eq!(c.squash_events, 2);
        assert_eq!(c.squashed_total, 3);
    }

    #[test]
    fn leak_trace_maps_probe_lines() {
        // Probe entries at 0x1000 + 512 * v, 64-byte lines.
        let mut t = LeakTraceObserver::new(0x1000, 512, 256, 64).watch_secret(0x500);
        t.on_event(&fill((0x1000 + 512 * 86) / 64, true));
        t.on_event(&fill((0x1000 + 512 * 86) / 64, false)); // architectural: ignored
        t.on_event(&fill((0x1000 + 512 * 86 + 64) / 64, true)); // off-entry line in the stride gap
        t.on_event(&fill(0x10, true)); // outside the probe array
        assert_eq!(t.transient_secret_fills(), 1);
        assert_eq!(t.ground_truth_byte(&[]), Some(86));
        assert_eq!(t.ground_truth_byte(&[86]), None);
        t.on_event(&PipelineEvent::TransientLoad { cycle: 3, pc: 0, addr: 0x510, tainted: false });
        assert_eq!(t.secret_reads(), 1);
        assert_eq!(t.transient_loads(), 1);
    }

    #[test]
    fn leak_trace_two_hot_indices_is_ambiguous() {
        let mut t = LeakTraceObserver::new(0x0, 64, 4, 64);
        t.on_event(&fill(0, true));
        t.on_event(&fill(2, true));
        assert_eq!(t.hot_indices(&[]), vec![0, 2]);
        assert_eq!(t.ground_truth_byte(&[]), None);
        assert_eq!(t.ground_truth_byte(&[0]), Some(2));
    }

    #[test]
    fn tuple_observer_feeds_both() {
        let mut pair = (CountingObserver::default(), CountingObserver::default());
        pair.on_event(&PipelineEvent::Commit { cycle: 1, pc: 0x1000 });
        assert_eq!(pair.0.commits, 1);
        assert_eq!(pair.1.commits, 1);
        // ACTIVE composition: a pair is active when either side is.
        const PAIR_ACTIVE: bool = <(CountingObserver, NoopObserver)>::ACTIVE;
        const NOOP_ACTIVE: bool = NoopObserver::ACTIVE;
        assert_eq!((PAIR_ACTIVE, NOOP_ACTIVE), (true, false));
    }

    #[test]
    fn event_cycle_accessor() {
        assert_eq!(PipelineEvent::Flush { cycle: 7, line: 1 }.cycle(), 7);
        assert_eq!(PipelineEvent::Commit { cycle: 9, pc: 4 }.cycle(), 9);
    }
}
