//! Runahead mode: entry, exit, and the per-policy behaviours.
//!
//! The flow follows the original scheme (Mutlu et al., HPCA'03), which the
//! paper's Fig. 6 instantiates: when a DRAM-bound load stalls at the head of
//! a full ROB the core checkpoints architectural state, poisons the load's
//! destination with INV, pseudo-retires everything that follows, and keeps
//! fetching/executing purely for its prefetch side effects. The stalling
//! load's data return ends the episode: the pipeline is flushed, the
//! checkpoint restored, and fetch resumes at the stalling load.
//!
//! Policy differences:
//! * [`RunaheadPolicy::Precise`] — entry/exit cost nothing (the scheme
//!   recycles free back-end resources instead of checkpoint/flush) and
//!   floating-point work is suppressed in runahead mode (only stall slices
//!   execute). Branch handling is unchanged — which is why the paper's §4.3
//!   finds it equally vulnerable.
//! * [`RunaheadPolicy::Vector`] — a stride detector issues extra prefetch
//!   lanes per runahead load, modelling vectorised runahead's deeper
//!   prefetching. Branch handling is again unchanged (§4.3: only the first
//!   lane steers the predicate mask).

use specrun_isa::ArchReg;
use specrun_mem::{AccessKind, FillPolicy, HitLevel, RunaheadCache};

use crate::config::{RunaheadPolicy, RunaheadTrigger};
use crate::core::{Core, Mode};
use crate::regs::{flat_to_arch, ArchCheckpoint, Rat};
use crate::rob::EntryState;

/// One runahead episode's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Episode {
    /// PC of the stalling load (fetch restarts here on exit).
    pub stall_pc: u64,
    /// Cycle at which the stalling load's data returns (episode end).
    pub exit_at: u64,
    /// Instructions that were in the window when the episode began.
    pub window: u64,
    /// Instructions dispatched during the episode.
    pub dispatched: u64,
    /// `runahead_prefetches` counter at entry (for useless-episode
    /// detection).
    pub prefetches_at_entry: u64,
}

/// Stride-detector entry for vector runahead.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StrideEntry {
    pub last_addr: u64,
    pub stride: i64,
    pub confidence: u8,
}

impl<O: crate::probe::PipelineObserver> Core<O> {
    /// Whether the configured entry condition holds (assumes the caller
    /// established that a DRAM-bound load is stalled at the ROB head).
    pub(crate) fn runahead_trigger_met(&self) -> bool {
        if self.cycle < self.ra_backoff_until {
            return false;
        }
        match self.cfg.runahead.policy {
            RunaheadPolicy::Disabled => false,
            _ => match self.cfg.runahead.trigger {
                RunaheadTrigger::WindowBlocked => {
                    if self.rob.is_full()
                        || self.lq_occupancy >= self.cfg.lq_entries
                        || self.sq.is_full()
                    {
                        return true;
                    }
                    // Issue-queue or physical-register exhaustion counts
                    // only when it is memory pressure, not a self-inflicted
                    // stall behind a serializing instruction (e.g. a timing
                    // probe's `rdcycle`).
                    let rename_blocked = self.iq_occupancy >= self.cfg.iq_entries
                        || self.free.available(crate::regs::RegClass::Int) == 0
                        || self.free.available(crate::regs::RegClass::Fp) == 0;
                    rename_blocked
                        && !self.rob.iter().any(|e| {
                            e.meta.is_serializing() && e.state != crate::rob::EntryState::Done
                        })
                }
                RunaheadTrigger::HeadMiss => true,
            },
        }
    }

    /// Enters runahead mode. The ROB head must be the stalling load.
    pub(crate) fn enter_runahead(&mut self, now: u64) {
        let (stall_pc, exit_at, head_seq) = {
            let head = self.rob.head().expect("stalling load at head");
            (head.pc, head.ready_at, head.seq)
        };
        self.stats.runahead_entries += 1;
        self.emit(crate::probe::PipelineEvent::RunaheadEnter { cycle: now, stall_pc });
        // Checkpoint: architectural values, RSB pointer, predictor history.
        self.ra.checkpoint = Some(ArchCheckpoint::capture(&self.retire_rat, &self.regs));
        self.ra.rsb_checkpoint = self.bp.rsb_checkpoint();
        self.ra.history_checkpoint = if self.cfg.runahead.checkpoint_predictor {
            Some(self.bp.history_checkpoint())
        } else {
            None
        };
        // Reuse the previous episode's (cleared) cache allocation.
        self.ra.cache = Some(match self.ra.cache_pool.take() {
            Some(cache) => cache,
            None => RunaheadCache::new(self.cfg.runahead.runahead_cache_bytes),
        });
        // The window at entry: everything behind the stalling load.
        let window = self.rob.len() as u64 - 1;
        self.mode = Mode::Runahead(Episode {
            stall_pc,
            exit_at,
            window,
            dispatched: 0,
            prefetches_at_entry: self.stats.runahead_prefetches,
        });
        // Secure mode: fresh taint scopes each episode; the SL cache drains
        // before the next round (paper §6: subsequent loads stop consulting
        // it), so purge leftovers.
        self.tracker.reset();
        if self.cfg.runahead.secure.sl_cache {
            self.secure.begin_episode();
            // The window already holds instructions dispatched *before*
            // entry (that is how the ROB filled); walk them in fetch order
            // so their branch scopes open and their predicate registers are
            // tainted, exactly as if the tracker had seen them dispatch.
            self.retro_track_window();
        }
        // Poison the stalling load and every other in-flight DRAM load: they
        // all become prefetches (their requests stay in flight).
        let mut to_poison = vec![head_seq];
        for e in self.rob.iter() {
            if e.seq != head_seq
                && e.is_load
                && e.state == EntryState::Executing
                && e.load_level == Some(HitLevel::Mem)
                && e.ready_at > now
            {
                to_poison.push(e.seq);
            }
        }
        for seq in to_poison {
            let dest = {
                let e = self.rob.get_mut(seq).expect("entry exists");
                e.state = EntryState::Done;
                e.inv = true;
                e.dest
            };
            if let Some(d) = dest {
                // Wake-aware poison: waiters on the load's result must move
                // to the issue-ready queue (poison counts as produced).
                self.produce_inv(d.new);
            }
        }
        // Entry penalty: the checkpoint is not free.
        let penalty = match self.cfg.runahead.policy {
            RunaheadPolicy::Precise => 0,
            _ => self.cfg.runahead.enter_penalty,
        };
        self.fetch_stalled_until = self.fetch_stalled_until.max(now + penalty);
    }

    /// Exits runahead mode if the stalling load's data has returned.
    pub(crate) fn check_runahead_exit(&mut self, now: u64) {
        let Mode::Runahead(ep) = self.mode else { return };
        if now < ep.exit_at {
            return;
        }
        self.stats.runahead_exits += 1;
        let episode_window = ep.window + ep.dispatched;
        if episode_window > self.stats.max_episode_window {
            self.stats.max_episode_window = episode_window;
        }
        self.stats.total_episode_window += episode_window;
        self.emit(crate::probe::PipelineEvent::RunaheadExit { cycle: now, window: episode_window });
        // Flush everything; restore the checkpoint. The squashed entries
        // are never inspected — the RAT and free lists are rebuilt whole.
        self.emit(crate::probe::PipelineEvent::Squash {
            cycle: now,
            squashed: self.rob.len() as u64,
        });
        self.stats.squashed += self.rob.len() as u64;
        self.rob.clear();
        self.sq.clear();
        self.pipe.clear();
        self.lq_occupancy = 0;
        self.iq_occupancy = 0;
        self.fu.clear();
        self.sched.clear_inflight();
        self.rat = Rat::identity();
        self.retire_rat = Rat::identity();
        self.free.reset(self.cfg.int_prf, self.cfg.fp_prf);
        let checkpoint = self.ra.checkpoint.take().expect("entered with checkpoint");
        for i in 0..ArchReg::COUNT {
            let arch = flat_to_arch(i);
            let phys = self.rat.get(arch);
            self.regs.restore(phys, checkpoint.value(arch));
        }
        self.bp.rsb_restore(self.ra.rsb_checkpoint);
        if let Some(hist) = self.ra.history_checkpoint.take() {
            self.bp.history_restore(&hist);
        }
        // Park the cache allocation for the next episode.
        if let Some(mut cache) = self.ra.cache.take() {
            cache.clear();
            self.ra.cache_pool = Some(cache);
        }
        // Secure mode: hand the episode's nesting relation to the verdict
        // bookkeeping (deletions by `IS` need the inner-branch sets).
        if self.cfg.runahead.secure.sl_cache {
            self.secure.end_episode(&self.tracker);
        }
        // Resume at the stalling load; its line was filled by its own
        // request, so the re-execution hits in the cache.
        let penalty = match self.cfg.runahead.policy {
            RunaheadPolicy::Precise => 0,
            _ => self.cfg.runahead.exit_penalty,
        };
        // Useless-runahead avoidance: an episode that prefetched next to
        // nothing predicts that the next one won't either; back off.
        let yielded = self.stats.runahead_prefetches - ep.prefetches_at_entry;
        if self.cfg.runahead.min_episode_yield > 0 && yielded < self.cfg.runahead.min_episode_yield
        {
            self.ra_backoff_until = now + self.cfg.runahead.useless_backoff;
        }
        self.mode = Mode::Normal;
        self.redirect_fetch(ep.stall_pc, now + penalty);
        self.halted = false;
    }

    /// Walks the ROB at runahead entry, feeding the taint tracker the
    /// instructions that were dispatched before the episode began. Scoped
    /// conditional branches that have not yet resolved open their scopes,
    /// seed predicate taint, and register for post-exit verdicts.
    fn retro_track_window(&mut self) {
        let Core { rob, tracker, regs, secure, scope_map, .. } = self;
        for entry in rob.iter_mut() {
            tracker.on_inst(entry.pc);
            if let Some(end_pc) = scope_map.get(&entry.pc).copied() {
                if entry.inst.is_cond_branch() {
                    if let Some(branch) = entry.branch.as_mut() {
                        if !branch.resolved {
                            let id = tracker.on_branch(entry.pc, end_pc);
                            branch.scope_id = Some(id);
                            for src in entry.srcs.iter().flatten() {
                                regs.add_taint(*src, crate::taint::scope_bit(id));
                            }
                            secure
                                .records
                                .entry(entry.pc)
                                .or_default()
                                .push((id, branch.predicted_taken));
                            secure.pending_scopes.insert(id);
                        }
                    }
                }
            }
            entry.dispatch_scope = tracker.current_scope();
        }
    }

    /// Whether this instruction is suppressed in the current runahead policy
    /// (precise runahead executes only the address-generating slices; FP
    /// arithmetic never feeds addresses in this ISA).
    pub(crate) fn runahead_suppressed(&self, inst: &specrun_isa::Inst) -> bool {
        use specrun_isa::Inst;
        self.in_runahead()
            && self.cfg.runahead.policy == RunaheadPolicy::Precise
            && matches!(inst, Inst::FpAlu { .. } | Inst::FpCvt { .. } | Inst::FpStore { .. })
    }

    /// Vector runahead: on a strided runahead load, issue extra prefetch
    /// lanes ahead of the detected stream.
    pub(crate) fn vector_prefetch(&mut self, _seq: u64, addr: u64, now: u64) {
        if self.cfg.runahead.policy != RunaheadPolicy::Vector {
            return;
        }
        let pc = self.rob.iter().find(|e| e.seq == _seq).map(|e| e.pc).unwrap_or(0);
        let entry = self.strides.entry(pc).or_default();
        let stride = addr.wrapping_sub(entry.last_addr) as i64;
        if entry.last_addr != 0 && stride == entry.stride && stride != 0 {
            entry.confidence = entry.confidence.saturating_add(1);
        } else {
            entry.confidence = 0;
            entry.stride = stride;
        }
        entry.last_addr = addr;
        if entry.confidence >= 2 {
            let stride = entry.stride;
            let lanes = self.cfg.runahead.vector_lanes;
            for lane in 1..=lanes {
                let target = addr.wrapping_add_signed(stride * lane as i64);
                let access = self.mem.access(target, now, AccessKind::Load, FillPolicy::Normal);
                if access.filled {
                    self.emit(crate::probe::PipelineEvent::CacheFill {
                        cycle: now,
                        level: access.level,
                        line: self.mem.line_of(target),
                        transient: true,
                    });
                }
                self.stats.vector_lane_prefetches += 1;
            }
        }
    }
}
