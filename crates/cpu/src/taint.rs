//! Branch-scope tracking and taint propagation for the secure-runahead
//! defense (paper §6, Fig. 12).
//!
//! The compiler communicates each structured branch's start/end addresses
//! (`B_ns`/`B_ne`, carried by [`specrun_isa::BranchScope`]). During runahead
//! the tracker follows the *speculative fetch order*: encountering a branch
//! before the enclosing scope's end address means the branches are nested
//! (the paper's matching-order rule), so the inner scope's end must match
//! first.
//!
//! Register taint is a 64-bit mask with one bit per dynamic branch scope
//! (scopes beyond 63 share the last bit, erring toward *more* deletion —
//! conservative for security). Seeds are the predicate source registers of
//! each scope's branch; propagation is union over instruction inputs, and a
//! load's output inherits the taint of its address.

use std::collections::HashMap;

/// A dynamic branch-scope identifier (the `n` of `B_n`).
pub type ScopeId = u32;

/// Taint bit for a scope (scopes ≥ 63 saturate onto bit 63).
pub fn scope_bit(id: ScopeId) -> u64 {
    1u64 << id.min(63)
}

#[derive(Debug, Clone, Copy)]
struct ActiveScope {
    id: ScopeId,
    end_pc: u64,
}

/// Tracks nested branch scopes and per-scope USL ordinals during one
/// runahead episode.
#[derive(Debug, Clone, Default)]
pub struct TaintTracker {
    stack: Vec<ActiveScope>,
    next_id: ScopeId,
    usl_counts: HashMap<ScopeId, u32>,
    children: HashMap<ScopeId, Vec<ScopeId>>,
}

impl TaintTracker {
    /// Creates an idle tracker.
    pub fn new() -> TaintTracker {
        TaintTracker::default()
    }

    /// Resets all state (runahead entry).
    pub fn reset(&mut self) {
        self.stack.clear();
        self.next_id = 0;
        self.usl_counts.clear();
        self.children.clear();
    }

    /// Observes the next instruction in fetch order, closing scopes whose
    /// end address has been reached.
    pub fn on_inst(&mut self, pc: u64) {
        while let Some(top) = self.stack.last() {
            if pc >= top.end_pc {
                self.stack.pop();
            } else {
                break;
            }
        }
    }

    /// Observes a scoped branch at `branch_pc` with scope end `end_pc`,
    /// opening a new dynamic scope nested in the current one. Returns the
    /// new scope id.
    pub fn on_branch(&mut self, branch_pc: u64, end_pc: u64) -> ScopeId {
        self.on_inst(branch_pc);
        let id = self.next_id;
        self.next_id += 1;
        if let Some(parent) = self.stack.last() {
            self.children.entry(parent.id).or_default().push(id);
        }
        self.stack.push(ActiveScope { id, end_pc });
        id
    }

    /// The innermost open scope, if any.
    pub fn current_scope(&self) -> Option<ScopeId> {
        self.stack.last().map(|s| s.id)
    }

    /// Allocates the next USL ordinal (`m` of `B_{n,m}`) within `scope`.
    pub fn next_usl_ordinal(&mut self, scope: ScopeId) -> u32 {
        let m = self.usl_counts.entry(scope).or_insert(0);
        *m += 1;
        *m
    }

    /// `scope` plus all scopes nested (transitively) inside it — the set
    /// whose SL-cache entries Algorithm 1 deletes when `scope` turns out
    /// mispredicted.
    #[allow(dead_code)] // the verdict bookkeeping keeps its own copy; tests use this
    pub fn scope_and_descendants(&self, scope: ScopeId) -> Vec<ScopeId> {
        let mut out = vec![scope];
        let mut i = 0;
        while i < out.len() {
            if let Some(kids) = self.children.get(&out[i]) {
                out.extend(kids.iter().copied());
            }
            i += 1;
        }
        out
    }

    /// Snapshot of the nesting relation (consumed by the post-exit verdict
    /// bookkeeping).
    pub fn children_map(&self) -> HashMap<ScopeId, Vec<ScopeId>> {
        self.children.clone()
    }

    /// Number of dynamic scopes opened so far this episode.
    #[allow(dead_code)] // diagnostic; exercised in tests
    pub fn scopes_opened(&self) -> u32 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_scope_opens_and_closes() {
        let mut t = TaintTracker::new();
        let b1 = t.on_branch(0x100, 0x140);
        assert_eq!(t.current_scope(), Some(b1));
        t.on_inst(0x108);
        assert_eq!(t.current_scope(), Some(b1));
        t.on_inst(0x140); // end reached
        assert_eq!(t.current_scope(), None);
    }

    #[test]
    fn nesting_matches_inner_end_first() {
        let mut t = TaintTracker::new();
        let b1 = t.on_branch(0x100, 0x200);
        let b2 = t.on_branch(0x120, 0x160); // encountered before B1's end ⇒ inner
        assert_eq!(t.current_scope(), Some(b2));
        t.on_inst(0x160); // inner end matches first
        assert_eq!(t.current_scope(), Some(b1));
        t.on_inst(0x200);
        assert_eq!(t.current_scope(), None);
    }

    #[test]
    fn usl_ordinals_count_per_scope() {
        let mut t = TaintTracker::new();
        let b1 = t.on_branch(0x100, 0x300);
        let b2 = t.on_branch(0x120, 0x200);
        assert_eq!(t.next_usl_ordinal(b1), 1);
        assert_eq!(t.next_usl_ordinal(b2), 1);
        assert_eq!(t.next_usl_ordinal(b1), 2);
    }

    #[test]
    fn descendants_cover_transitive_nesting() {
        let mut t = TaintTracker::new();
        let b1 = t.on_branch(0x100, 0x400);
        let b2 = t.on_branch(0x110, 0x300);
        let b3 = t.on_branch(0x120, 0x200);
        let mut set = t.scope_and_descendants(b1);
        set.sort_unstable();
        assert_eq!(set, vec![b1, b2, b3]);
        assert_eq!(t.scope_and_descendants(b3), vec![b3]);
    }

    #[test]
    fn scope_bits_saturate() {
        assert_eq!(scope_bit(0), 1);
        assert_eq!(scope_bit(5), 32);
        assert_eq!(scope_bit(63), 1 << 63);
        assert_eq!(scope_bit(200), 1 << 63);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = TaintTracker::new();
        t.on_branch(0x100, 0x200);
        t.reset();
        assert_eq!(t.current_scope(), None);
        assert_eq!(t.scopes_opened(), 0);
    }

    /// Reproduces the paper's Fig. 12 walkthrough: the machine-code sequence
    /// with outer branch `B1` and inner branch `B2`, checking the `Btag` and
    /// `IS` assignments of every load.
    ///
    /// Registers are modelled as a name → taint-mask map, with loads
    /// inheriting the taint of their address, exactly as the core's execute
    /// stage does.
    #[test]
    fn fig12_btag_and_is_assignment() {
        let mut t = TaintTracker::new();
        let mut taint: HashMap<&str, u64> = HashMap::new();
        // Addresses: one slot per listed instruction, 8 bytes apart.
        // B1 guards pcs 0x08..0x78 (ends after `load r9`), B2 guards
        // 0x30..0x60 (ends after `load r7`).
        let b1 = t.on_branch(0x00, 0x78);
        // Predicate rX is tainted by B1 (paper: `r1 = rB + rX  // tainted`).
        taint.insert("rX", scope_bit(b1));
        type LoadRecord = (&'static str, Option<(ScopeId, u32)>, u64);
        let mut results: Vec<LoadRecord> = Vec::new();
        let load = |t: &mut TaintTracker,
                    results: &mut Vec<LoadRecord>,
                    pc: u64,
                    name: &'static str,
                    addr_taint: u64| {
            t.on_inst(pc);
            let scope = t.current_scope();
            let btag = scope.map(|s| {
                let m = if addr_taint != 0 { t.next_usl_ordinal(s) } else { 0 };
                (s, m)
            });
            results.push((name, btag, addr_taint));
            addr_taint // the loaded value inherits the address taint
        };
        // load r0 (rA): untainted address, inside B1.
        let r0_taint = load(&mut t, &mut results, 0x08, "r0", 0);
        let _ = r0_taint;
        // r1 = rB + rX → tainted by B1.
        t.on_inst(0x10);
        let r1 = taint["rX"];
        // load r2 (r1): tainted load, B1,1.
        let r2 = load(&mut t, &mut results, 0x18, "r2", r1);
        // r3 = rC * r2 (tainted by B1).
        t.on_inst(0x20);
        let r3 = r2;
        // inner branch B2 at 0x30 (predicate rY tainted by B2).
        t.on_inst(0x28);
        let b2 = t.on_branch(0x30, 0x60);
        let ry = scope_bit(b2);
        // r4 = rD - rY → tainted by B2.
        t.on_inst(0x38);
        let r4 = ry;
        // load r5 (r4): tainted load, B2,1.
        let r5 = load(&mut t, &mut results, 0x40, "r5", r4);
        // r6 = r5 + r2 → tainted by B1 and B2.
        t.on_inst(0x48);
        let r6 = r5 | r2;
        // load r7 (r6): tainted load, B2,2, IS = {B1, B2}.
        let r7 = load(&mut t, &mut results, 0x50, "r7", r6);
        // end of B2 at 0x60; r8 = r3 - rE (tainted B1).
        t.on_inst(0x60);
        let r8 = r3;
        // load r9 (r8): tainted load, B1,2.
        let r9 = load(&mut t, &mut results, 0x68, "r9", r8);
        // end of B1 at 0x78; r10 = rF + r9 (taint escapes the scope).
        t.on_inst(0x78);
        let r10 = r9;
        // load r11 (r10): outside any scope (Btag 0) but IS = B1.
        let _r11 = load(&mut t, &mut results, 0x80, "r11", r10);
        // r12 = rG * r7.
        t.on_inst(0x88);
        let r12 = r7;
        // load r13 (r12): outside scope, IS = {B1, B2}.
        let _r13 = load(&mut t, &mut results, 0x90, "r13", r12);
        // load r14 (rH): completely safe.
        let _r14 = load(&mut t, &mut results, 0x98, "r14", 0);

        let expect: Vec<LoadRecord> = vec![
            ("r0", Some((b1, 0)), 0),
            ("r2", Some((b1, 1)), scope_bit(b1)),
            ("r5", Some((b2, 1)), scope_bit(b2)),
            ("r7", Some((b2, 2)), scope_bit(b1) | scope_bit(b2)),
            ("r9", Some((b1, 2)), scope_bit(b1)),
            ("r11", None, scope_bit(b1)),
            ("r13", None, scope_bit(b1) | scope_bit(b2)),
            ("r14", None, 0),
        ];
        assert_eq!(results, expect, "Fig. 12 Btag/IS table");
        // B2 is nested in B1.
        assert_eq!(t.scope_and_descendants(b1), vec![b1, b2]);
    }
}
