//! Physical register file, register alias tables and free lists.
//!
//! Renaming uses ROB-walk recovery: each ROB entry records the previous
//! mapping of its destination, so branch mispredictions unwind the RAT
//! without checkpoints. Every physical register additionally carries the
//! runahead **INV** bit (paper Fig. 6: "INV" columns beside each register
//! file) and, for the §6 defense, a taint mask of branch scopes.

use specrun_isa::{ArchReg, NUM_FP_REGS, NUM_INT_REGS};
use std::collections::VecDeque;

/// Register class of a physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RegClass {
    /// 64-bit integer.
    Int,
    /// 64-bit floating point (IEEE-754 double bits).
    Fp,
}

impl RegClass {
    /// The class holding `reg`.
    pub fn of(reg: ArchReg) -> RegClass {
        match reg {
            ArchReg::Int(_) => RegClass::Int,
            ArchReg::Fp(_) => RegClass::Fp,
        }
    }
}

/// A physical register reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhysRef {
    /// Register class.
    pub class: RegClass,
    /// Index within the class's file.
    pub index: u16,
}

/// Per-physical-register state, kept in one struct so the hot operand
/// checks (ready? value? INV? taint?) touch a single cache line per
/// register instead of four parallel arrays.
#[derive(Debug, Clone, Copy)]
struct RegSlot {
    value: u64,
    taint: u64,
    ready: bool,
    inv: bool,
}

#[derive(Debug, Clone)]
struct Bank {
    slots: Vec<RegSlot>,
}

impl Bank {
    fn new(size: usize) -> Bank {
        Bank { slots: vec![RegSlot { value: 0, taint: 0, ready: true, inv: false }; size] }
    }
}

/// The physical register file with per-register ready/INV/taint state.
#[derive(Debug, Clone)]
pub struct RegFile {
    int: Bank,
    fp: Bank,
}

impl RegFile {
    /// Creates a file with the given physical counts; all registers start
    /// ready, zero-valued, valid and untainted.
    pub fn new(int_regs: usize, fp_regs: usize) -> RegFile {
        RegFile { int: Bank::new(int_regs), fp: Bank::new(fp_regs) }
    }

    fn bank(&self, class: RegClass) -> &Bank {
        match class {
            RegClass::Int => &self.int,
            RegClass::Fp => &self.fp,
        }
    }

    fn bank_mut(&mut self, class: RegClass) -> &mut Bank {
        match class {
            RegClass::Int => &mut self.int,
            RegClass::Fp => &mut self.fp,
        }
    }

    /// Current value of `r`.
    pub fn value(&self, r: PhysRef) -> u64 {
        self.bank(r.class).slots[r.index as usize].value
    }

    /// Whether `r`'s value has been produced.
    pub fn is_ready(&self, r: PhysRef) -> bool {
        self.bank(r.class).slots[r.index as usize].ready
    }

    /// Whether `r` carries the runahead INV bit.
    pub fn is_inv(&self, r: PhysRef) -> bool {
        self.bank(r.class).slots[r.index as usize].inv
    }

    /// Taint mask of `r` (bit `n` = tainted by branch scope `n mod 64`).
    pub fn taint(&self, r: PhysRef) -> u64 {
        self.bank(r.class).slots[r.index as usize].taint
    }

    /// Marks `r` pending (allocated by rename, value not yet produced).
    pub fn mark_pending(&mut self, r: PhysRef) {
        let s = &mut self.bank_mut(r.class).slots[r.index as usize];
        s.ready = false;
        s.inv = false;
        s.taint = 0;
    }

    /// Produces a valid value into `r`.
    pub fn write(&mut self, r: PhysRef, value: u64) {
        let s = &mut self.bank_mut(r.class).slots[r.index as usize];
        s.value = value;
        s.ready = true;
        s.inv = false;
    }

    /// Produces an INV (poisoned) result into `r` (runahead mode).
    pub fn write_inv(&mut self, r: PhysRef) {
        let s = &mut self.bank_mut(r.class).slots[r.index as usize];
        s.value = 0;
        s.ready = true;
        s.inv = true;
    }

    /// Sets the taint mask of `r`.
    pub fn set_taint(&mut self, r: PhysRef, mask: u64) {
        self.bank_mut(r.class).slots[r.index as usize].taint = mask;
    }

    /// Ors `mask` into the taint of `r`.
    pub fn add_taint(&mut self, r: PhysRef, mask: u64) {
        self.bank_mut(r.class).slots[r.index as usize].taint |= mask;
    }

    /// Forces `r` ready with a value, clearing INV/taint (used when
    /// rebuilding architectural state from a checkpoint).
    pub fn restore(&mut self, r: PhysRef, value: u64) {
        self.bank_mut(r.class).slots[r.index as usize] =
            RegSlot { value, taint: 0, ready: true, inv: false };
    }
}

/// A register alias table: architectural → physical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rat {
    map: [PhysRef; ArchReg::COUNT],
}

impl Rat {
    /// The identity mapping: architectural register `i` → physical `i` of
    /// its class.
    pub fn identity() -> Rat {
        let mut map = [PhysRef { class: RegClass::Int, index: 0 }; ArchReg::COUNT];
        for (i, slot) in map.iter_mut().enumerate() {
            *slot = if i < NUM_INT_REGS {
                PhysRef { class: RegClass::Int, index: i as u16 }
            } else {
                PhysRef { class: RegClass::Fp, index: (i - NUM_INT_REGS) as u16 }
            };
        }
        Rat { map }
    }

    /// Current mapping of `reg`.
    pub fn get(&self, reg: ArchReg) -> PhysRef {
        self.map[reg.flat_index()]
    }

    /// Redirects `reg` to `phys`, returning the previous mapping.
    pub fn set(&mut self, reg: ArchReg, phys: PhysRef) -> PhysRef {
        std::mem::replace(&mut self.map[reg.flat_index()], phys)
    }
}

/// Free lists for both physical register classes.
#[derive(Debug, Clone)]
pub struct FreeLists {
    int: VecDeque<u16>,
    fp: VecDeque<u16>,
}

impl FreeLists {
    /// Free lists for files of the given sizes, with the first
    /// `NUM_INT_REGS`/`NUM_FP_REGS` registers reserved for the identity
    /// architectural mapping.
    pub fn new(int_regs: usize, fp_regs: usize) -> FreeLists {
        FreeLists {
            int: (NUM_INT_REGS as u16..int_regs as u16).collect(),
            fp: (NUM_FP_REGS as u16..fp_regs as u16).collect(),
        }
    }

    /// Refills both lists to the freshly-constructed state in place
    /// (runahead exit runs this once per episode; reusing the buffers keeps
    /// the allocator off the episode path).
    pub fn reset(&mut self, int_regs: usize, fp_regs: usize) {
        self.int.clear();
        self.int.extend(NUM_INT_REGS as u16..int_regs as u16);
        self.fp.clear();
        self.fp.extend(NUM_FP_REGS as u16..fp_regs as u16);
    }

    fn list(&mut self, class: RegClass) -> &mut VecDeque<u16> {
        match class {
            RegClass::Int => &mut self.int,
            RegClass::Fp => &mut self.fp,
        }
    }

    /// Takes a free register of `class`, or `None` when exhausted (rename
    /// stalls).
    pub fn allocate(&mut self, class: RegClass) -> Option<PhysRef> {
        self.list(class).pop_front().map(|index| PhysRef { class, index })
    }

    /// Returns a register to its free list.
    pub fn free(&mut self, r: PhysRef) {
        self.list(r.class).push_back(r.index);
    }

    /// Free registers remaining in `class`.
    pub fn available(&self, class: RegClass) -> usize {
        match class {
            RegClass::Int => self.int.len(),
            RegClass::Fp => self.fp.len(),
        }
    }
}

/// A snapshot of architectural register *values*, taken at runahead entry
/// ("Checkpointed Architectural Register File" in the paper's Fig. 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchCheckpoint {
    values: [u64; ArchReg::COUNT],
}

impl ArchCheckpoint {
    /// Captures the committed value of every architectural register.
    pub fn capture(retire_rat: &Rat, regs: &RegFile) -> ArchCheckpoint {
        let mut values = [0u64; ArchReg::COUNT];
        for (i, v) in values.iter_mut().enumerate() {
            let reg = flat_to_arch(i);
            *v = regs.value(retire_rat.get(reg));
        }
        ArchCheckpoint { values }
    }

    /// The checkpointed value of `reg`.
    pub fn value(&self, reg: ArchReg) -> u64 {
        self.values[reg.flat_index()]
    }
}

/// Inverse of [`ArchReg::flat_index`].
pub fn flat_to_arch(i: usize) -> ArchReg {
    if i < NUM_INT_REGS {
        ArchReg::Int(specrun_isa::IntReg::new(i as u8).expect("int index in range"))
    } else {
        ArchReg::Fp(specrun_isa::FpReg::new((i - NUM_INT_REGS) as u8).expect("fp index in range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrun_isa::{FpReg, IntReg};

    fn int(i: u8) -> ArchReg {
        ArchReg::Int(IntReg::new(i).unwrap())
    }

    #[test]
    fn identity_rat_maps_classes() {
        let rat = Rat::identity();
        assert_eq!(rat.get(int(5)), PhysRef { class: RegClass::Int, index: 5 });
        assert_eq!(
            rat.get(ArchReg::Fp(FpReg::new(3).unwrap())),
            PhysRef { class: RegClass::Fp, index: 3 }
        );
    }

    #[test]
    fn rat_set_returns_previous() {
        let mut rat = Rat::identity();
        let new = PhysRef { class: RegClass::Int, index: 40 };
        let prev = rat.set(int(5), new);
        assert_eq!(prev.index, 5);
        assert_eq!(rat.get(int(5)), new);
    }

    #[test]
    fn free_lists_exclude_identity_range() {
        let mut fl = FreeLists::new(80, 40);
        assert_eq!(fl.available(RegClass::Int), 80 - 32);
        assert_eq!(fl.available(RegClass::Fp), 40 - 16);
        let r = fl.allocate(RegClass::Int).unwrap();
        assert!(r.index >= 32);
    }

    #[test]
    fn allocate_exhausts_then_none() {
        let mut fl = FreeLists::new(34, 17);
        assert!(fl.allocate(RegClass::Int).is_some());
        assert!(fl.allocate(RegClass::Int).is_some());
        assert!(fl.allocate(RegClass::Int).is_none());
        fl.free(PhysRef { class: RegClass::Int, index: 33 });
        assert!(fl.allocate(RegClass::Int).is_some());
    }

    #[test]
    fn regfile_pending_write_cycle() {
        let mut rf = RegFile::new(80, 40);
        let r = PhysRef { class: RegClass::Int, index: 50 };
        rf.mark_pending(r);
        assert!(!rf.is_ready(r));
        rf.write(r, 99);
        assert!(rf.is_ready(r));
        assert!(!rf.is_inv(r));
        assert_eq!(rf.value(r), 99);
    }

    #[test]
    fn inv_write_poisons() {
        let mut rf = RegFile::new(80, 40);
        let r = PhysRef { class: RegClass::Fp, index: 20 };
        rf.mark_pending(r);
        rf.write_inv(r);
        assert!(rf.is_ready(r));
        assert!(rf.is_inv(r));
    }

    #[test]
    fn taint_masks_accumulate() {
        let mut rf = RegFile::new(80, 40);
        let r = PhysRef { class: RegClass::Int, index: 33 };
        rf.add_taint(r, 0b01);
        rf.add_taint(r, 0b10);
        assert_eq!(rf.taint(r), 0b11);
        rf.mark_pending(r);
        assert_eq!(rf.taint(r), 0, "allocation clears taint");
    }

    #[test]
    fn checkpoint_captures_committed_values() {
        let mut rf = RegFile::new(80, 40);
        let rat = Rat::identity();
        rf.write(PhysRef { class: RegClass::Int, index: 7 }, 1234);
        let cp = ArchCheckpoint::capture(&rat, &rf);
        assert_eq!(cp.value(int(7)), 1234);
        assert_eq!(cp.value(int(8)), 0);
    }

    #[test]
    fn flat_round_trip() {
        for i in 0..ArchReg::COUNT {
            assert_eq!(flat_to_arch(i).flat_index(), i);
        }
    }
}
