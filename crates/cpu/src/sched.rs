//! Event-driven pipeline scheduling: the unified event queue and the
//! operand-wakeup network that replace the per-cycle O(ROB) scans.
//!
//! Before this module, every simulated cycle paid a full reorder-buffer walk
//! in `writeback` (looking for due completions) and another in `issue`
//! (re-checking every waiting entry's operands), plus `retain` sweeps over
//! the host-scheduled flush list and the secure-mode SL-fill list. All of
//! that is replaced by three structures:
//!
//! * [`CompletionQueue`] — a min-heap keyed on `(ready_at, seq)`. Every ROB
//!   entry that enters `Executing` schedules exactly one completion event;
//!   `writeback` pops the due events instead of scanning. Squashed entries
//!   leave stale events behind; they are validated lazily against the ROB
//!   and discarded on pop. Because issue always produces `ready_at > now`
//!   and writeback runs every live cycle, all events due at a given cycle
//!   share that cycle as their key, so the `(ready_at, seq)` pop order is
//!   exactly the oldest-first ROB-scan order the scan-based scheduler used.
//! * [`TimerQueue`] — a min-heap of `(cycle, insertion order, payload)`
//!   used for host-scheduled `clflush`es and secure-runahead SL fills.
//!   Same-cycle events pop in insertion order, matching the retired
//!   `retain` sweeps bit for bit, and an idle queue costs one O(1) peek
//!   per cycle instead of a sweep.
//! * [`Scheduler`] — the operand-wakeup network: per-physical-register
//!   waiter lists, a program-ordered ready queue of issue candidates, and
//!   the pending-serializer list that gates issue. A dispatched entry whose
//!   gating operands are unready parks on the producers' waiter lists;
//!   when a producer writes back (or poisons its destination with INV) the
//!   waiters' pending counts drop and entries whose count reaches zero
//!   join the ready queue. `issue` then walks only the ready queue, in
//!   sequence order, preserving program-order issue priority.
//!
//! The `CpuConfig::sched_check` mode re-runs the retired scan logic in
//! parallel each cycle and asserts the event-driven structures reach
//! identical decisions (see `Core::check_issue_invariants` and
//! `Core::check_writeback_set`).

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::regs::{PhysRef, RegClass};

// ---------------------------------------------------------------------
// Completion events
// ---------------------------------------------------------------------

/// Completion events `(ready_at, seq)` for `Executing` ROB entries. Stale
/// events (squashed or runahead-poisoned entries) are the caller's
/// responsibility to detect on pop.
///
/// Two tiers: most completions land 1–3 cycles out (single-cycle ALU work,
/// L1 hits), so those go into a tiny 4-slot cycle wheel — a push is one
/// `Vec` append and the per-cycle drain empties exactly one slot. Only
/// long-latency events (DRAM fills, which can also linger as stale entries
/// for hundreds of cycles after a runahead poison) pay the binary heap.
///
/// Wheel invariant: an event is scheduled at most `NEAR-1` cycles ahead, so
/// its slot is visited for the first time exactly at its due cycle (or
/// later, if fast-forward proved the window event-free — then the event is
/// necessarily stale and is discarded by `at < now`).
#[derive(Debug, Clone, Default)]
pub(crate) struct CompletionQueue {
    near: [Vec<(u64, u64)>; NEAR],
    heap: BinaryHeap<Reverse<(u64, u64)>>,
}

/// Wheel span: events within `NEAR - 1` cycles go to the wheel.
const NEAR: usize = 4;

impl CompletionQueue {
    /// Schedules entry `seq` to complete at `ready_at` (strictly after the
    /// current cycle `now`; `CpuConfig::validate` rejects zero latencies).
    pub fn schedule(&mut self, now: u64, ready_at: u64, seq: u64) {
        debug_assert!(ready_at > now, "completions must land in the future");
        if ready_at - now < NEAR as u64 {
            self.near[(ready_at as usize) & (NEAR - 1)].push((ready_at, seq));
        } else {
            self.heap.push(Reverse((ready_at, seq)));
        }
    }

    /// Drains every event due at or before `now` into `out` (unsorted; the
    /// caller orders by `(ready_at, seq)`). Only the current cycle's wheel
    /// slot is swept: older events in other slots are provably stale and
    /// are discarded lazily when their slot comes around.
    pub fn pop_due_into(&mut self, now: u64, out: &mut Vec<(u64, u64)>) {
        let slot = &mut self.near[(now as usize) & (NEAR - 1)];
        if !slot.is_empty() {
            out.extend(slot.iter().copied().filter(|&(at, _)| at == now));
            slot.clear();
        }
        while let Some(&Reverse((at, seq))) = self.heap.peek() {
            if at > now {
                break;
            }
            self.heap.pop();
            out.push((at, seq));
        }
    }

    /// The earliest `(ready_at, seq)` event, if any (stale events
    /// included).
    pub fn peek(&self) -> Option<(u64, u64)> {
        let near_min = self.near.iter().flat_map(|s| s.iter().copied()).min();
        let heap_min = self.heap.peek().map(|Reverse(e)| *e);
        match (near_min, heap_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Removes and returns the earliest event (the one [`peek`] reports).
    pub fn pop(&mut self) -> Option<(u64, u64)> {
        let min = self.peek()?;
        for slot in &mut self.near {
            if let Some(i) = slot.iter().position(|&e| e == min) {
                slot.swap_remove(i);
                return Some(min);
            }
        }
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Drops every event (pipeline flush).
    pub fn clear(&mut self) {
        for slot in &mut self.near {
            slot.clear();
        }
        self.heap.clear();
    }
}

// ---------------------------------------------------------------------
// Timed host events
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct TimerEvent<T> {
    at: u64,
    order: u64,
    payload: T,
}

impl<T> PartialEq for TimerEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.order == other.order
    }
}

impl<T> Eq for TimerEvent<T> {}

impl<T> PartialOrd for TimerEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for TimerEvent<T> {
    // Reversed so the `BinaryHeap` becomes a min-heap on (cycle, order).
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.order).cmp(&(self.at, self.order))
    }
}

/// A min-heap of timed events carrying a payload. Events due at the same
/// cycle pop in insertion order, so replacing an insertion-ordered `Vec`
/// swept with `retain` preserves processing order exactly.
#[derive(Debug, Clone)]
pub(crate) struct TimerQueue<T> {
    heap: BinaryHeap<TimerEvent<T>>,
    next_order: u64,
}

impl<T> Default for TimerQueue<T> {
    fn default() -> Self {
        TimerQueue { heap: BinaryHeap::new(), next_order: 0 }
    }
}

impl<T> TimerQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: u64, payload: T) {
        let order = self.next_order;
        self.next_order += 1;
        self.heap.push(TimerEvent { at, order, payload });
    }

    /// Pops the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: u64) -> Option<T> {
        if self.heap.peek().is_some_and(|e| e.at <= now) {
            self.heap.pop().map(|e| e.payload)
        } else {
            None
        }
    }

    /// Cycle of the earliest pending event.
    pub fn peek_at(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.at)
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

// ---------------------------------------------------------------------
// Operand-wakeup network
// ---------------------------------------------------------------------

/// The wakeup network plus completion queue: everything the core needs to
/// schedule issue and writeback without scanning the ROB.
#[derive(Debug, Clone)]
pub(crate) struct Scheduler {
    /// Completion events for `Executing` entries.
    pub completions: CompletionQueue,
    /// Issue candidates in program order: `Waiting` entries whose gating
    /// operands are all produced (they may still be blocked on a functional
    /// unit, store disambiguation, or the serializing-at-head rule, and are
    /// retried each cycle like the scan-based scheduler did). A sorted
    /// `Vec`: the queue is bounded by the 40-entry issue queue, where
    /// shifting a few dozen `u64`s beats a B-tree's pointer chasing on the
    /// per-cycle cursor walk.
    ready: Vec<u64>,
    /// Per-physical-register waiter lists (sequence numbers of entries
    /// blocked on this register's production).
    int_waiters: Vec<Vec<u64>>,
    fp_waiters: Vec<Vec<u64>>,
    /// In-flight serializing instructions, oldest first. The front entry
    /// gates issue of everything younger until it leaves `Waiting`+`Executing`.
    serializers: Vec<u64>,
    /// Reusable drain buffer for wakeups (the hot loop must not allocate).
    pub scratch: Vec<u64>,
}

impl Scheduler {
    /// Creates a network sized to the physical register files.
    pub fn new(int_prf: usize, fp_prf: usize) -> Scheduler {
        Scheduler {
            completions: CompletionQueue::default(),
            ready: Vec::new(),
            int_waiters: vec![Vec::new(); int_prf],
            fp_waiters: vec![Vec::new(); fp_prf],
            serializers: Vec::new(),
            scratch: Vec::new(),
        }
    }

    fn waiters_mut(&mut self, p: PhysRef) -> &mut Vec<u64> {
        match p.class {
            RegClass::Int => &mut self.int_waiters[p.index as usize],
            RegClass::Fp => &mut self.fp_waiters[p.index as usize],
        }
    }

    /// Inserts `seq` into the ready queue.
    pub fn mark_ready(&mut self, seq: u64) {
        // Wakeups arrive roughly in program order, so the common insertion
        // point is the tail.
        if self.ready.last().is_some_and(|&s| s < seq) || self.ready.is_empty() {
            self.ready.push(seq);
            return;
        }
        if let Err(i) = self.ready.binary_search(&seq) {
            self.ready.insert(i, seq);
        }
    }

    /// Removes `seq` from the ready queue.
    pub fn remove_ready(&mut self, seq: u64) {
        if let Ok(i) = self.ready.binary_search(&seq) {
            self.ready.remove(i);
        }
    }

    /// Whether `seq` is an issue candidate.
    pub fn contains_ready(&self, seq: u64) -> bool {
        self.ready.binary_search(&seq).is_ok()
    }

    /// The smallest ready sequence number strictly greater than `prev`
    /// (`None` starts from the beginning). Cursor-based so wakeups fired
    /// mid-issue (INV poisoning by an older entry) are picked up in the
    /// same cycle, exactly like the in-order ROB scan.
    pub fn first_ready_after(&self, prev: Option<u64>) -> Option<u64> {
        let from = match prev {
            Some(s) => self.ready.partition_point(|&r| r <= s),
            None => 0,
        };
        self.ready.get(from).copied()
    }

    /// Iterates the ready queue in program order.
    pub fn ready_seqs(&self) -> impl Iterator<Item = &u64> {
        self.ready.iter()
    }

    /// Registers `seq` as blocked on the production of `p`.
    pub fn add_waiter(&mut self, p: PhysRef, seq: u64) {
        self.waiters_mut(p).push(seq);
    }

    /// Drains the waiter list of `p` into `out` (called when `p` is
    /// produced, valid or INV).
    pub fn take_waiters(&mut self, p: PhysRef, out: &mut Vec<u64>) {
        out.append(self.waiters_mut(p));
    }

    /// Drops any waiters parked on `p` (defensive: called when `p` is
    /// reallocated; the list is provably empty then, see `wake_reg`).
    pub fn clear_waiters(&mut self, p: PhysRef) {
        self.waiters_mut(p).clear();
    }

    /// Records a dispatched serializing instruction (dispatch order is
    /// ascending, so the list stays sorted).
    pub fn add_serializer(&mut self, seq: u64) {
        self.serializers.push(seq);
    }

    /// Removes a serializing instruction that reached `Done`.
    pub fn retire_serializer(&mut self, seq: u64) {
        self.serializers.retain(|&s| s != seq);
    }

    /// The oldest in-flight serializing instruction: entries younger than
    /// it must not issue this cycle.
    pub fn serializer_gate(&self) -> Option<u64> {
        self.serializers.first().copied()
    }

    /// Drops all bookkeeping for entries younger than `seq` (misprediction
    /// squash). Waiter-list entries are left to lazy validation: squashed
    /// sequence numbers are never reused, so a stale wakeup is ignored.
    pub fn squash_younger(&mut self, seq: u64) {
        self.ready.truncate(self.ready.partition_point(|&r| r <= seq));
        self.serializers.retain(|&s| s <= seq);
    }

    /// Drops all in-flight bookkeeping (pipeline flush, runahead exit).
    pub fn clear_inflight(&mut self) {
        self.completions.clear();
        self.ready.clear();
        self.serializers.clear();
        for w in &mut self.int_waiters {
            w.clear();
        }
        for w in &mut self.fp_waiters {
            w.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(i: u16) -> PhysRef {
        PhysRef { class: RegClass::Int, index: i }
    }

    #[test]
    fn completion_queue_orders_by_cycle_then_seq() {
        let mut q = CompletionQueue::default();
        q.schedule(0, 10, 7);
        q.schedule(0, 5, 9);
        q.schedule(0, 10, 3);
        assert_eq!(q.pop(), Some((5, 9)));
        assert_eq!(q.pop(), Some((10, 3)), "same cycle pops oldest seq first");
        assert_eq!(q.pop(), Some((10, 7)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn completion_queue_near_wheel_and_heap_agree() {
        let mut q = CompletionQueue::default();
        q.schedule(9, 10, 4); // wheel (1 ahead)
        q.schedule(9, 12, 2); // wheel (3 ahead)
        q.schedule(9, 300, 1); // heap
        assert_eq!(q.peek(), Some((10, 4)), "peek spans wheel and heap");
        let mut due = Vec::new();
        q.pop_due_into(10, &mut due);
        assert_eq!(due, vec![(10, 4)]);
        due.clear();
        q.pop_due_into(11, &mut due);
        assert!(due.is_empty(), "nothing lands at 11");
        q.pop_due_into(12, &mut due);
        assert_eq!(due, vec![(12, 2)]);
        assert_eq!(q.pop(), Some((300, 1)));
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn completion_queue_drops_skipped_stale_wheel_events() {
        let mut q = CompletionQueue::default();
        q.schedule(9, 10, 4);
        // The core fast-forwarded past cycle 10 (the event was stale); the
        // slot is visited again at cycle 14, which shares its wheel slot.
        let mut due = Vec::new();
        q.pop_due_into(14, &mut due);
        assert!(due.is_empty(), "an overdue wheel event is provably stale");
        assert_eq!(q.peek(), None, "the slot was reclaimed");
    }

    #[test]
    fn timer_queue_same_cycle_is_fifo() {
        let mut q: TimerQueue<u32> = TimerQueue::new();
        q.push(20, 1);
        q.push(10, 2);
        q.push(10, 3);
        assert_eq!(q.peek_at(), Some(10));
        assert_eq!(q.pop_due(9), None, "nothing due before its cycle");
        assert_eq!(q.pop_due(10), Some(2));
        assert_eq!(q.pop_due(10), Some(3), "same-cycle events keep insertion order");
        assert_eq!(q.pop_due(10), None);
        assert_eq!(q.pop_due(25), Some(1));
        assert!(q.is_empty());
    }

    #[test]
    fn ready_queue_cursor_iteration() {
        let mut s = Scheduler::new(4, 2);
        s.mark_ready(5);
        s.mark_ready(2);
        s.mark_ready(9);
        assert_eq!(s.first_ready_after(None), Some(2));
        assert_eq!(s.first_ready_after(Some(2)), Some(5));
        // Wakeups landing mid-iteration are seen if younger than the cursor.
        s.mark_ready(7);
        assert_eq!(s.first_ready_after(Some(5)), Some(7));
        assert_eq!(s.first_ready_after(Some(9)), None);
    }

    #[test]
    fn waiters_drain_once() {
        let mut s = Scheduler::new(4, 2);
        s.add_waiter(int(1), 10);
        s.add_waiter(int(1), 11);
        let mut out = Vec::new();
        s.take_waiters(int(1), &mut out);
        assert_eq!(out, vec![10, 11]);
        out.clear();
        s.take_waiters(int(1), &mut out);
        assert!(out.is_empty(), "a produced register has no residual waiters");
    }

    #[test]
    fn squash_prunes_ready_and_serializers() {
        let mut s = Scheduler::new(4, 2);
        for seq in [1, 4, 6, 9] {
            s.mark_ready(seq);
        }
        s.add_serializer(3);
        s.add_serializer(8);
        s.squash_younger(4);
        assert!(s.contains_ready(1) && s.contains_ready(4));
        assert!(!s.contains_ready(6) && !s.contains_ready(9));
        assert_eq!(s.serializer_gate(), Some(3));
        s.retire_serializer(3);
        assert_eq!(s.serializer_gate(), None, "seq 8 was squashed");
    }
}
