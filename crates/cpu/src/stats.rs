//! Core performance and security counters.

use core::fmt;

/// Counters accumulated by the core while running.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions fetched.
    pub fetched: u64,
    /// Instructions dispatched into the ROB.
    pub dispatched: u64,
    /// Instructions architecturally committed.
    pub committed: u64,
    /// Instructions squashed on misprediction recovery.
    pub squashed: u64,
    /// Conditional branches resolved.
    pub branches: u64,
    /// Conditional branches mispredicted.
    pub branch_mispredicts: u64,
    /// Loads executed (including returns).
    pub loads: u64,
    /// Stores committed (including call-pushes).
    pub stores: u64,
    /// Times the core entered runahead mode.
    pub runahead_entries: u64,
    /// Times the core exited runahead mode.
    pub runahead_exits: u64,
    /// Instructions pseudo-retired during runahead.
    pub pseudo_retired: u64,
    /// Instructions dispatched while in runahead mode.
    pub runahead_dispatched: u64,
    /// Branches whose sources were INV and therefore never resolved — the
    /// microarchitectural signature SPECRUN exploits.
    pub inv_unresolved_branches: u64,
    /// Prefetch requests issued by runahead loads that missed to DRAM.
    pub runahead_prefetches: u64,
    /// Extra prefetch lanes issued by the vector-runahead stride engine.
    pub vector_lane_prefetches: u64,
    /// Largest observed ROB occupancy behind a stalled DRAM load in normal
    /// mode (the paper's N1 measurement: ≈ ROB size − 1).
    pub max_stall_window: u64,
    /// Per-episode transient window, maximum over episodes (instructions in
    /// the window at entry plus those dispatched during the episode).
    pub max_episode_window: u64,
    /// Sum of per-episode transient windows over the whole run (the paper's
    /// N2/N3 measurement: cumulative across repeated-flush episodes).
    pub total_episode_window: u64,
    /// Loads serviced from the SL cache after runahead exit (defense).
    pub sl_hits: u64,
    /// SL-cache entries promoted to L1 by Algorithm 1.
    pub sl_promotions: u64,
    /// SL-cache entries deleted because their branch mispredicted.
    pub sl_deletions: u64,
    /// Loads that had to wait on a branch verdict before leaving the SL
    /// cache.
    pub sl_verdict_waits: u64,
    /// INV-source branches suppressed by the skip-INV-branch mitigation.
    pub skipped_inv_branches: u64,
    /// Operand wakeups delivered by the event-driven scheduler (a waiting
    /// instruction's last unproduced operand arriving moves it to the
    /// issue-ready queue). Identical across fast-forward and naive runs:
    /// wakeups only happen on cycles where state changes.
    pub sched_wakeups: u64,
}

impl CpuStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch misprediction rate in [0, 1].
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }
}

impl fmt::Display for CpuStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles               {:>12}", self.cycles)?;
        writeln!(f, "committed            {:>12}", self.committed)?;
        writeln!(f, "IPC                  {:>12.3}", self.ipc())?;
        writeln!(f, "fetched              {:>12}", self.fetched)?;
        writeln!(f, "dispatched           {:>12}", self.dispatched)?;
        writeln!(f, "squashed             {:>12}", self.squashed)?;
        writeln!(f, "branches             {:>12}", self.branches)?;
        writeln!(f, "mispredicts          {:>12}", self.branch_mispredicts)?;
        writeln!(f, "loads                {:>12}", self.loads)?;
        writeln!(f, "stores               {:>12}", self.stores)?;
        writeln!(f, "runahead entries     {:>12}", self.runahead_entries)?;
        writeln!(f, "pseudo-retired       {:>12}", self.pseudo_retired)?;
        writeln!(f, "INV branches         {:>12}", self.inv_unresolved_branches)?;
        writeln!(f, "runahead prefetches  {:>12}", self.runahead_prefetches)?;
        writeln!(f, "max stall window     {:>12}", self.max_stall_window)?;
        writeln!(f, "max episode window   {:>12}", self.max_episode_window)?;
        write!(f, "total episode window {:>12}", self.total_episode_window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_division() {
        let s = CpuStats { cycles: 200, committed: 100, ..CpuStats::default() };
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert_eq!(CpuStats::default().ipc(), 0.0);
    }

    #[test]
    fn mispredict_rate_guards_zero() {
        assert_eq!(CpuStats::default().mispredict_rate(), 0.0);
        let s = CpuStats { branches: 4, branch_mispredicts: 1, ..CpuStats::default() };
        assert!((s.mispredict_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_counters() {
        let text = CpuStats::default().to_string();
        assert!(text.contains("IPC"));
        assert!(text.contains("runahead"));
    }
}
