//! Store queue and load/store disambiguation.
//!
//! Loads are conservatively ordered: a load may not issue while any older
//! store's address is unknown. Once addresses are known, a fully-covering
//! older store forwards its data; partial overlaps (and pending `clflush`es
//! of the same line) make the load wait until the conflicting entry commits.
//! This conservative policy is what gives the attack programs their required
//! `clflush → load` ordering without explicit fences.

/// One store-queue slot (stores, call-pushes and `clflush`es).
#[derive(Debug, Clone, Copy)]
pub struct StoreEntry {
    /// ROB sequence number of the owning instruction.
    pub seq: u64,
    /// Effective address (None until the store issues).
    pub addr: Option<u64>,
    /// Access width in bytes (line-granular for flushes).
    pub width: u64,
    /// Store data (None until issue; always None for flushes).
    pub value: Option<u64>,
    /// Whether this is a `clflush` rather than a data store.
    pub is_flush: bool,
    /// Whether the store data is INV (runahead poison).
    pub inv: bool,
}

/// Outcome of querying the store queue on behalf of a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadCheck {
    /// No older store overlaps; the load may access memory.
    NoConflict,
    /// An older store's address is still unknown; retry later.
    UnknownAddr,
    /// The youngest fully-covering older store forwards this value
    /// (`inv` set when the forwarded data is runahead-poisoned).
    Forward {
        /// Forwarded data.
        value: u64,
        /// Whether the forwarded data carries the INV bit.
        inv: bool,
    },
    /// Partial overlap or same-line `clflush`; wait until it drains.
    Conflict,
}

/// The store queue.
#[derive(Debug, Clone, Default)]
pub struct StoreQueue {
    entries: Vec<StoreEntry>,
    capacity: usize,
}

impl StoreQueue {
    /// Creates a queue with `capacity` slots.
    pub fn new(capacity: usize) -> StoreQueue {
        StoreQueue { entries: Vec::with_capacity(capacity), capacity }
    }

    /// Current occupancy.
    #[allow(dead_code)] // part of the container API; exercised in tests
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue holds no entries.
    #[allow(dead_code)] // part of the container API; exercised in tests
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether dispatch of another store must stall.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Allocates a slot at dispatch (address/data arrive at issue).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full.
    pub fn allocate(&mut self, seq: u64, width: u64, is_flush: bool) {
        assert!(!self.is_full(), "SQ overflow");
        self.entries.push(StoreEntry { seq, addr: None, width, value: None, is_flush, inv: false });
    }

    /// Fills in address (and data for stores) at issue.
    pub fn fill(&mut self, seq: u64, addr: u64, value: Option<u64>, inv: bool) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.addr = Some(addr);
            e.value = value;
            e.inv = inv;
        }
    }

    /// Fills in the address only (store address generation, phase A).
    pub fn fill_addr(&mut self, seq: u64, addr: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.addr = Some(addr);
        }
    }

    /// Fills in the data only (store data arrival, phase B).
    pub fn fill_data(&mut self, seq: u64, value: u64, inv: bool) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.value = Some(value);
            e.inv = inv;
        }
    }

    /// Removes the entry for `seq` at commit, returning it.
    pub fn release(&mut self, seq: u64) -> Option<StoreEntry> {
        let idx = self.entries.iter().position(|e| e.seq == seq)?;
        Some(self.entries.remove(idx))
    }

    /// Removes all entries younger than `seq` (squash).
    pub fn squash_younger(&mut self, seq: u64) {
        self.entries.retain(|e| e.seq <= seq);
    }

    /// Empties the queue (runahead exit).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Checks whether a load at `load_seq` of `[addr, addr+width)` may
    /// proceed, forward, or must wait. `line_bytes` defines `clflush`
    /// conflict granularity.
    pub fn check_load(&self, load_seq: u64, addr: u64, width: u64, line_bytes: u64) -> LoadCheck {
        // Any older store with an unknown address blocks (conservative).
        if self.entries.iter().any(|e| e.seq < load_seq && e.addr.is_none()) {
            return LoadCheck::UnknownAddr;
        }
        // Wrong-path loads can carry wild addresses; saturate instead of
        // overflowing.
        let load_end = addr.saturating_add(width);
        // Youngest-first scan for forwarding priority.
        let mut best: Option<&StoreEntry> = None;
        let mut conflict = false;
        for e in self.entries.iter().filter(|e| e.seq < load_seq) {
            let e_addr = e.addr.expect("checked above");
            if e.is_flush {
                // clflush conflicts at line granularity.
                if e_addr / line_bytes == addr / line_bytes {
                    conflict = true;
                }
                continue;
            }
            let e_end = e_addr.saturating_add(e.width);
            let overlaps = e_addr < load_end && addr < e_end;
            if !overlaps {
                continue;
            }
            let covers = e_addr <= addr && load_end <= e_end;
            if covers {
                match best {
                    Some(b) if b.seq > e.seq => {}
                    _ => best = Some(e),
                }
            } else {
                conflict = true;
            }
        }
        if let Some(store) = best {
            // A younger partial overlap (between the covering store and the
            // load) would still conflict; the scan above set `conflict` for
            // any partial overlap, which is conservative but safe.
            if conflict {
                return LoadCheck::Conflict;
            }
            // Address known but data not yet produced: wait for it.
            let Some(value) = store.value else { return LoadCheck::Conflict };
            let offset = addr - store.addr.expect("filled");
            let data = value >> (8 * offset);
            let mask = if width == 8 { u64::MAX } else { (1u64 << (8 * width)) - 1 };
            return LoadCheck::Forward { value: data & mask, inv: store.inv };
        }
        if conflict {
            LoadCheck::Conflict
        } else {
            LoadCheck::NoConflict
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq() -> StoreQueue {
        StoreQueue::new(8)
    }

    #[test]
    fn unknown_addr_blocks() {
        let mut q = sq();
        q.allocate(1, 8, false);
        assert_eq!(q.check_load(2, 0x100, 8, 64), LoadCheck::UnknownAddr);
    }

    #[test]
    fn younger_stores_do_not_block() {
        let mut q = sq();
        q.allocate(5, 8, false);
        assert_eq!(q.check_load(2, 0x100, 8, 64), LoadCheck::NoConflict);
    }

    #[test]
    fn exact_forwarding() {
        let mut q = sq();
        q.allocate(1, 8, false);
        q.fill(1, 0x100, Some(0xdeadbeef), false);
        assert_eq!(
            q.check_load(2, 0x100, 8, 64),
            LoadCheck::Forward { value: 0xdeadbeef, inv: false }
        );
    }

    #[test]
    fn subset_forwarding_extracts_bytes() {
        let mut q = sq();
        q.allocate(1, 8, false);
        q.fill(1, 0x100, Some(0x8877_6655_4433_2211), false);
        assert_eq!(q.check_load(2, 0x102, 2, 64), LoadCheck::Forward { value: 0x4433, inv: false });
    }

    #[test]
    fn partial_overlap_conflicts() {
        let mut q = sq();
        q.allocate(1, 4, false);
        q.fill(1, 0x102, Some(7), false);
        assert_eq!(q.check_load(2, 0x100, 8, 64), LoadCheck::Conflict);
    }

    #[test]
    fn youngest_covering_store_wins() {
        let mut q = sq();
        q.allocate(1, 8, false);
        q.fill(1, 0x100, Some(1), false);
        q.allocate(3, 8, false);
        q.fill(3, 0x100, Some(2), false);
        assert_eq!(q.check_load(4, 0x100, 8, 64), LoadCheck::Forward { value: 2, inv: false });
    }

    #[test]
    fn flush_conflicts_at_line_granularity() {
        let mut q = sq();
        q.allocate(1, 64, true);
        q.fill(1, 0x1000, None, false);
        assert_eq!(q.check_load(2, 0x1020, 8, 64), LoadCheck::Conflict, "same line");
        assert_eq!(q.check_load(2, 0x1040, 8, 64), LoadCheck::NoConflict, "next line");
    }

    #[test]
    fn inv_store_forwards_poison() {
        let mut q = sq();
        q.allocate(1, 8, false);
        q.fill(1, 0x200, Some(0), true);
        assert_eq!(q.check_load(2, 0x200, 8, 64), LoadCheck::Forward { value: 0, inv: true });
    }

    #[test]
    fn release_and_squash() {
        let mut q = sq();
        q.allocate(1, 8, false);
        q.allocate(2, 8, false);
        q.allocate(3, 8, false);
        assert!(q.release(2).is_some());
        assert_eq!(q.len(), 2);
        q.squash_younger(1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn no_false_forward_after_release() {
        let mut q = sq();
        q.allocate(1, 8, false);
        q.fill(1, 0x100, Some(42), false);
        q.release(1);
        assert_eq!(q.check_load(2, 0x100, 8, 64), LoadCheck::NoConflict);
    }
}
