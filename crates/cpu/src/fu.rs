//! Functional-unit pool and issue-port arbitration.

use specrun_isa::{AluOp, ExecClass, FpOp, Inst};

use crate::config::{FuClass, FuConfig};

/// Functional-unit classes an instruction can require.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FuKind {
    /// Integer add/logic/shift/compare, branches, moves.
    IntAdd,
    /// Integer multiply.
    IntMul,
    /// Integer divide/remainder.
    IntDiv,
    /// FP add/subtract (also conversions).
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide.
    FpDiv,
    /// Load/store/flush address port.
    Mem,
}

impl FuKind {
    /// The unit class required by `inst`.
    pub fn for_inst(inst: &Inst) -> FuKind {
        match inst {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => match op {
                AluOp::Mul => FuKind::IntMul,
                AluOp::Div | AluOp::Rem => FuKind::IntDiv,
                _ => FuKind::IntAdd,
            },
            Inst::FpAlu { op, .. } => match op {
                FpOp::Add | FpOp::Sub => FuKind::FpAdd,
                FpOp::Mul => FuKind::FpMul,
                FpOp::Div => FuKind::FpDiv,
            },
            Inst::FpCvt { .. } => FuKind::FpAdd,
            Inst::Load { .. }
            | Inst::FpLoad { .. }
            | Inst::Store { .. }
            | Inst::FpStore { .. }
            | Inst::Flush { .. }
            | Inst::Call { .. }
            | Inst::CallInd { .. }
            | Inst::Ret => FuKind::Mem,
            _ => FuKind::IntAdd,
        }
    }

    /// The unit class for a predecoded execution class (the per-issue-site
    /// twin of [`FuKind::for_inst`]; the two agree by construction, audited
    /// by `CpuConfig::predecode_check`).
    pub fn of_class(class: ExecClass) -> FuKind {
        match class {
            ExecClass::IntAdd => FuKind::IntAdd,
            ExecClass::IntMul => FuKind::IntMul,
            ExecClass::IntDiv => FuKind::IntDiv,
            ExecClass::FpAdd => FuKind::FpAdd,
            ExecClass::FpMul => FuKind::FpMul,
            ExecClass::FpDiv => FuKind::FpDiv,
            ExecClass::Mem => FuKind::Mem,
        }
    }
}

#[derive(Debug, Clone)]
struct Pool {
    class: FuClass,
    busy_until: Vec<u64>,
}

impl Pool {
    fn new(class: FuClass) -> Pool {
        Pool { class, busy_until: vec![0; class.count] }
    }

    fn try_issue(&mut self, now: u64) -> Option<u64> {
        let unit = self.busy_until.iter_mut().find(|b| **b <= now)?;
        *unit = if self.class.pipelined { now + 1 } else { now + self.class.latency };
        Some(self.class.latency)
    }
}

/// All functional units of the core; arbitration is first-come first-served
/// within a cycle.
#[derive(Debug, Clone)]
pub struct FuPool {
    int_add: Pool,
    int_mul: Pool,
    int_div: Pool,
    fp_add: Pool,
    fp_mul: Pool,
    fp_div: Pool,
    mem: Pool,
}

impl FuPool {
    /// Creates the pool from the configured mix.
    pub fn new(config: &FuConfig) -> FuPool {
        FuPool {
            int_add: Pool::new(config.int_add),
            int_mul: Pool::new(config.int_mul),
            int_div: Pool::new(config.int_div),
            fp_add: Pool::new(config.fp_add),
            fp_mul: Pool::new(config.fp_mul),
            fp_div: Pool::new(config.fp_div),
            mem: Pool::new(config.mem_ports),
        }
    }

    fn pool(&mut self, kind: FuKind) -> &mut Pool {
        match kind {
            FuKind::IntAdd => &mut self.int_add,
            FuKind::IntMul => &mut self.int_mul,
            FuKind::IntDiv => &mut self.int_div,
            FuKind::FpAdd => &mut self.fp_add,
            FuKind::FpMul => &mut self.fp_mul,
            FuKind::FpDiv => &mut self.fp_div,
            FuKind::Mem => &mut self.mem,
        }
    }

    /// Claims a unit of `kind` at cycle `now`; returns the execution latency
    /// if one was free.
    pub fn try_issue(&mut self, kind: FuKind, now: u64) -> Option<u64> {
        self.pool(kind).try_issue(now)
    }

    /// Releases all units (pipeline squash).
    pub fn clear(&mut self) {
        for pool in [
            &mut self.int_add,
            &mut self.int_mul,
            &mut self.int_div,
            &mut self.fp_add,
            &mut self.fp_mul,
            &mut self.fp_div,
            &mut self.mem,
        ] {
            pool.busy_until.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FuConfig;
    use specrun_isa::IntReg;

    #[test]
    fn classification() {
        let r = IntReg::new(1).unwrap();
        assert_eq!(
            FuKind::for_inst(&Inst::Alu { op: AluOp::Mul, rd: r, rs1: r, rs2: r }),
            FuKind::IntMul
        );
        assert_eq!(
            FuKind::for_inst(&Inst::AluImm { op: AluOp::Div, rd: r, rs1: r, imm: 1 }),
            FuKind::IntDiv
        );
        assert_eq!(FuKind::for_inst(&Inst::Ret), FuKind::Mem);
        assert_eq!(FuKind::for_inst(&Inst::Nop), FuKind::IntAdd);
    }

    #[test]
    fn pipelined_units_accept_every_cycle() {
        let mut pool = FuPool::new(&FuConfig::default());
        // 4 int adders → 4 issues in one cycle, 5th fails.
        for _ in 0..4 {
            assert_eq!(pool.try_issue(FuKind::IntAdd, 10), Some(1));
        }
        assert_eq!(pool.try_issue(FuKind::IntAdd, 10), None);
        // next cycle all free again (pipelined).
        assert_eq!(pool.try_issue(FuKind::IntAdd, 11), Some(1));
    }

    #[test]
    fn unpipelined_divider_blocks_for_full_latency() {
        let mut pool = FuPool::new(&FuConfig::default());
        assert_eq!(pool.try_issue(FuKind::IntDiv, 0), Some(5));
        assert_eq!(pool.try_issue(FuKind::IntDiv, 4), None);
        assert_eq!(pool.try_issue(FuKind::IntDiv, 5), Some(5));
    }

    #[test]
    fn clear_releases_everything() {
        let mut pool = FuPool::new(&FuConfig::default());
        pool.try_issue(FuKind::FpDiv, 0);
        pool.clear();
        assert!(pool.try_issue(FuKind::FpDiv, 0).is_some());
    }
}
