//! # specrun-cpu
//!
//! A cycle-level out-of-order processor core with **runahead execution**,
//! reproducing the vulnerable microarchitecture of the SPECRUN paper
//! (Fig. 6) on the Table 1 configuration, plus the paper's §6 defenses.
//!
//! The core models: a 6-stage front end with a two-level adaptive branch
//! predictor, BTB and RSB; register renaming over 80 int / 40 fp physical
//! registers with ROB-walk recovery; a 256-entry ROB with 40-entry
//! issue/load/store queues; the Table 1 functional-unit mix; a full cache
//! hierarchy with MSHRs and a contention-modelled DRAM; and runahead mode
//! with INV propagation, a runahead cache, checkpointed architectural state
//! and pseudo-retirement. Three runahead policies (original, precise,
//! vector) and two defenses (SL cache + taint tracking per Algorithm 1, and
//! skip-INV-branches) are selectable via [`CpuConfig`].
//!
//! ```
//! use specrun_cpu::{Core, CpuConfig};
//! use specrun_isa::{IntReg, ProgramBuilder};
//!
//! let r1 = IntReg::new(1).unwrap();
//! let mut b = ProgramBuilder::new(0x1000);
//! b.li(r1, 2);
//! b.addi(r1, r1, 40);
//! b.halt();
//! let program = b.build().unwrap();
//!
//! let mut core = Core::new(CpuConfig::default());
//! core.load_program(&program);
//! core.run(10_000);
//! assert!(core.is_halted());
//! assert_eq!(core.read_int_reg(r1), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod config;
mod core;
mod fu;
mod lsq;
pub mod probe;
mod regs;
mod rob;
mod runahead;
mod sched;
mod secure;
mod stats;
mod taint;

pub use crate::core::{Core, RunExit};
pub use cancel::{CancelReason, CancelToken, NeverCancel, RunGovernor};
pub use config::{
    CpuConfig, FuClass, FuConfig, RunaheadConfig, RunaheadPolicy, RunaheadTrigger, SecureConfig,
};
pub use fu::FuKind;
pub use probe::{
    CountingObserver, LeakTraceObserver, NoopObserver, PipelineEvent, PipelineObserver,
};
pub use stats::CpuStats;

/// Commonly used items for examples and tests.
pub mod prelude {
    pub use crate::config::{CpuConfig, RunaheadPolicy, RunaheadTrigger, SecureConfig};
    pub use crate::probe::{
        CountingObserver, LeakTraceObserver, NoopObserver, PipelineEvent, PipelineObserver,
    };
    pub use crate::{Core, CpuStats, RunExit};
}
