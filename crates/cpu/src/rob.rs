//! Reorder buffer.

use specrun_bp::BranchKind;
use specrun_isa::{ArchReg, Inst, UopMeta};
use specrun_mem::HitLevel;
use std::collections::VecDeque;

use crate::regs::PhysRef;

/// Lifecycle of a ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Dispatched, waiting for operands or a functional unit.
    Waiting,
    /// Issued to a functional unit; result arrives at `ready_at`.
    Executing,
    /// Result produced; eligible for (pseudo-)retirement.
    Done,
}

/// Destination-rename record used for ROB-walk recovery.
#[derive(Debug, Clone, Copy)]
pub struct DestInfo {
    /// Architectural destination.
    pub arch: ArchReg,
    /// Newly allocated physical register.
    pub new: PhysRef,
    /// Previous mapping of `arch` (restored on squash, freed on commit).
    pub prev: PhysRef,
}

/// Control-flow bookkeeping for branch entries.
#[derive(Debug, Clone, Copy)]
pub struct BranchInfo {
    /// Predictor classification.
    pub kind: BranchKind,
    /// Predicted direction.
    pub predicted_taken: bool,
    /// Predicted next PC.
    pub predicted_target: u64,
    /// RSB top-of-stack before this instruction's prediction side effects.
    pub rsb_checkpoint: usize,
    /// Whether the branch has resolved (INV-source branches in runahead
    /// mode never do — the SPECRUN vulnerability).
    pub resolved: bool,
    /// Actual direction (valid once executed with valid sources).
    pub actual_taken: bool,
    /// Actual target (valid once executed with valid sources).
    pub actual_target: u64,
    /// Taint-scope id assigned by the secure-runahead tracker.
    pub scope_id: Option<u32>,
}

/// One in-flight instruction.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Global sequence number (also the SQ key).
    pub seq: u64,
    /// Instruction PC.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Predecoded static metadata (classification flags, FU class, memory
    /// width) — the pipeline consults this instead of re-matching `inst`.
    pub meta: UopMeta,
    /// Lifecycle state.
    pub state: EntryState,
    /// Completion cycle while `Executing`.
    pub ready_at: u64,
    /// Destination rename record.
    pub dest: Option<DestInfo>,
    /// Renamed sources.
    pub srcs: [Option<PhysRef>; 3],
    /// Result value to write at completion (loads read memory lazily).
    pub result: u64,
    /// Result taint mask (secure runahead).
    pub taint: u64,
    /// Whether the result is INV (runahead poison).
    pub inv: bool,
    /// Branch bookkeeping.
    pub branch: Option<BranchInfo>,
    /// Whether this entry occupies a load-queue slot.
    pub is_load: bool,
    /// Whether this entry occupies a store-queue slot (stores and flushes).
    pub is_store: bool,
    /// Where a load hit in the hierarchy.
    pub load_level: Option<HitLevel>,
    /// Load address (valid once issued).
    pub load_addr: Option<u64>,
    /// `Ret`'s stack-pointer update (its destination value; `result` holds
    /// the popped target).
    pub aux_sp: u64,
    /// Dispatched during runahead mode.
    pub runahead: bool,
    /// Innermost branch scope open when this instruction entered the window
    /// (secure runahead; feeds the SL cache's `Btag`).
    pub dispatch_scope: Option<u32>,
    /// Store address generated (stores compute their address as soon as the
    /// base register is ready, before the data arrives, so younger loads
    /// can disambiguate instead of stalling).
    pub addr_ready: bool,
    /// Unproduced gating operands remaining (operand-wakeup network): the
    /// entry joins the issue-ready queue when this reaches zero.
    pub wait_count: u8,
}

impl RobEntry {
    /// Creates a freshly dispatched entry, lowering `inst` on the spot
    /// (tests and cold paths; the dispatch stage uses
    /// [`RobEntry::with_meta`] with the program's predecoded table).
    #[allow(dead_code)] // constructor API; exercised in tests
    pub fn new(seq: u64, pc: u64, inst: Inst) -> RobEntry {
        RobEntry::with_meta(seq, pc, inst, UopMeta::of(&inst, pc))
    }

    /// Creates a freshly dispatched entry from predecoded metadata.
    pub fn with_meta(seq: u64, pc: u64, inst: Inst, meta: UopMeta) -> RobEntry {
        RobEntry {
            seq,
            pc,
            inst,
            meta,
            state: EntryState::Waiting,
            ready_at: 0,
            dest: None,
            srcs: [None; 3],
            result: 0,
            taint: 0,
            inv: false,
            branch: None,
            is_load: meta.is_load(),
            is_store: meta.needs_sq(),
            load_level: None,
            load_addr: None,
            aux_sp: 0,
            runahead: false,
            dispatch_scope: None,
            addr_ready: false,
            wait_count: 0,
        }
    }
}

/// The reorder buffer: a bounded FIFO of in-flight instructions.
#[derive(Debug, Clone, Default)]
pub struct Rob {
    entries: VecDeque<RobEntry>,
    /// Mirror of the entries' sequence numbers, kept in lockstep. Seq→slot
    /// lookups run every cycle from writeback, issue and the wakeup network;
    /// searching this compact array (2 KiB at 256 entries) stays resident in
    /// the host's L1 cache, where a binary search striding over the ~300-byte
    /// `RobEntry` structs themselves missed on nearly every probe.
    seqs: VecDeque<u64>,
    capacity: usize,
}

impl Rob {
    /// Creates an empty ROB with `capacity` entries.
    pub fn new(capacity: usize) -> Rob {
        Rob {
            entries: VecDeque::with_capacity(capacity),
            seqs: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum occupancy.
    #[allow(dead_code)] // part of the container API; exercised in tests
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ROB holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether dispatch must stall.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Appends a dispatched entry.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full (callers must check [`Rob::is_full`]).
    pub fn push(&mut self, entry: RobEntry) {
        assert!(!self.is_full(), "ROB overflow");
        self.seqs.push_back(entry.seq);
        self.entries.push_back(entry);
    }

    /// The oldest entry.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Removes and returns the oldest entry.
    #[allow(dead_code)] // container API; the core retires via head+discard
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        self.seqs.pop_front();
        self.entries.pop_front()
    }

    /// Removes the oldest entry without returning it (the retire stages
    /// copy the handful of fields they need out of [`Rob::head`] first, so
    /// the ~200-byte entry never has to be moved out of the buffer).
    pub fn pop_head_discard(&mut self) {
        self.seqs.pop_front();
        self.entries.pop_front();
    }

    /// Iterates oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Mutably iterates oldest → youngest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RobEntry> {
        self.entries.iter_mut()
    }

    /// Removes all entries younger than `seq`, youngest first, and returns
    /// them in removal order (for rename unwinding).
    pub fn squash_younger(&mut self, seq: u64) -> Vec<RobEntry> {
        let mut removed = Vec::new();
        while let Some(back) = self.entries.back() {
            if back.seq > seq {
                self.seqs.pop_back();
                removed.push(self.entries.pop_back().expect("back exists"));
            } else {
                break;
            }
        }
        removed
    }

    /// Removes every entry, youngest first (runahead exit).
    #[allow(dead_code)] // container API; the core uses `clear` (no return)
    pub fn squash_all(&mut self) -> Vec<RobEntry> {
        self.seqs.clear();
        let mut removed = Vec::with_capacity(self.entries.len());
        while let Some(e) = self.entries.pop_back() {
            removed.push(e);
        }
        removed
    }

    /// Drops every entry without returning them, for squashes whose
    /// unwinding is wholesale (runahead exit rebuilds the RAT and free
    /// lists from scratch, so the removed entries are never inspected).
    pub fn clear(&mut self) {
        self.seqs.clear();
        self.entries.clear();
    }

    /// Slot of sequence number `seq`. Entries are pushed in ascending
    /// sequence order and removed only at either end, so the (mirrored)
    /// sequence deque is always sorted and a binary search suffices; gaps
    /// from squashes simply fail the final equality check.
    #[inline]
    fn index_of(&self, seq: u64) -> Option<usize> {
        // Dense fast path: with no squash gap in range, the slot is exactly
        // `seq - head_seq` (the overwhelmingly common case).
        let head = *self.seqs.front()?;
        let guess = seq.wrapping_sub(head) as usize;
        if self.seqs.get(guess) == Some(&seq) {
            return Some(guess);
        }
        let i = self.seqs.partition_point(|&s| s < seq);
        (self.seqs.get(i) == Some(&seq)).then_some(i)
    }

    /// The entry with sequence number `seq`, if present.
    pub fn get(&self, seq: u64) -> Option<&RobEntry> {
        let i = self.index_of(seq)?;
        self.entries.get(i)
    }

    /// Mutable [`Rob::get`].
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        let i = self.index_of(seq)?;
        self.entries.get_mut(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> RobEntry {
        RobEntry::new(seq, seq * 8, Inst::Nop)
    }

    #[test]
    fn fifo_order() {
        let mut rob = Rob::new(4);
        rob.push(entry(1));
        rob.push(entry(2));
        assert_eq!(rob.head().unwrap().seq, 1);
        assert_eq!(rob.pop_head().unwrap().seq, 1);
        assert_eq!(rob.head().unwrap().seq, 2);
    }

    #[test]
    fn capacity_enforced() {
        let mut rob = Rob::new(2);
        rob.push(entry(1));
        rob.push(entry(2));
        assert!(rob.is_full());
    }

    #[test]
    #[should_panic(expected = "ROB overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(1));
        rob.push(entry(2));
    }

    #[test]
    fn squash_younger_removes_in_reverse_order() {
        let mut rob = Rob::new(8);
        for s in 1..=5 {
            rob.push(entry(s));
        }
        let removed = rob.squash_younger(2);
        assert_eq!(removed.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![5, 4, 3]);
        assert_eq!(rob.len(), 2);
    }

    #[test]
    fn squash_all_empties() {
        let mut rob = Rob::new(8);
        for s in 1..=3 {
            rob.push(entry(s));
        }
        let removed = rob.squash_all();
        assert_eq!(removed.len(), 3);
        assert!(rob.is_empty());
        assert_eq!(removed[0].seq, 3, "youngest first");
    }

    #[test]
    fn get_binary_search_handles_seq_gaps() {
        let mut rob = Rob::new(8);
        // Squashes leave gaps in the resident sequence numbers.
        for s in [3, 4, 9, 12] {
            rob.push(entry(s));
        }
        for s in [3, 4, 9, 12] {
            assert_eq!(rob.get(s).map(|e| e.seq), Some(s));
            assert_eq!(rob.get_mut(s).map(|e| e.seq), Some(s));
        }
        for s in [0, 5, 10, 13] {
            assert!(rob.get(s).is_none());
            assert!(rob.get_mut(s).is_none());
        }
    }

    #[test]
    fn classification_flags() {
        let load = RobEntry::new(1, 0, Inst::Ret);
        assert!(load.is_load, "ret pops the stack through the LQ");
        assert!(!load.is_store);
        let flush = RobEntry::new(
            2,
            0,
            Inst::Flush { base: specrun_isa::IntReg::new(1).unwrap(), offset: 0 },
        );
        assert!(flush.is_store);
        assert!(!flush.is_load);
    }
}
