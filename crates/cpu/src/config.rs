//! Processor configuration.
//!
//! [`CpuConfig::default`] reproduces Table 1 of the paper exactly; a unit
//! test asserts every row. The [`RunaheadConfig`] selects between no
//! runahead, the original scheme (Mutlu et al., HPCA'03), precise runahead
//! (Naithani et al., HPCA'20) and vector runahead (ISCA'21), plus the
//! paper's §6 defenses.

use specrun_bp::PredictorConfig;
use specrun_mem::MemConfig;

/// One functional-unit class: how many units and their latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FuClass {
    /// Number of identical units.
    pub count: usize,
    /// Execution latency in cycles.
    pub latency: u64,
    /// Whether the unit accepts a new operation every cycle.
    pub pipelined: bool,
}

/// The functional-unit mix (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FuConfig {
    /// Integer adders / logic / branches (Table 1: 4 × 1 cycle).
    pub int_add: FuClass,
    /// Integer multipliers (Table 1: 2 × 2 cycles).
    pub int_mul: FuClass,
    /// Integer divider (Table 1: 1 × 5 cycles).
    pub int_div: FuClass,
    /// FP adders (Table 1: 2 × 5 cycles).
    pub fp_add: FuClass,
    /// FP multiplier (Table 1: 1 × 10 cycles).
    pub fp_mul: FuClass,
    /// FP divider (Table 1: 1 × 15 cycles).
    pub fp_div: FuClass,
    /// Load/store address ports.
    pub mem_ports: FuClass,
}

impl Default for FuConfig {
    fn default() -> FuConfig {
        FuConfig {
            int_add: FuClass { count: 4, latency: 1, pipelined: true },
            int_mul: FuClass { count: 2, latency: 2, pipelined: true },
            int_div: FuClass { count: 1, latency: 5, pipelined: false },
            fp_add: FuClass { count: 2, latency: 5, pipelined: true },
            fp_mul: FuClass { count: 1, latency: 10, pipelined: false },
            fp_div: FuClass { count: 1, latency: 15, pipelined: false },
            mem_ports: FuClass { count: 2, latency: 1, pipelined: true },
        }
    }
}

/// Which runahead scheme the core implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RunaheadPolicy {
    /// Runahead disabled (the paper's "no-runahead" baseline machine).
    Disabled,
    /// Original runahead: full checkpoint, every instruction executes,
    /// pipeline flush on exit.
    #[default]
    Original,
    /// Precise runahead: only the stall slices execute (modelled as
    /// suppressing FP work in runahead mode) and entry/exit are free because
    /// the scheme reuses free back-end resources instead of flushing.
    Precise,
    /// Vector runahead: strided load chains are vectorised — a stride
    /// detector issues extra prefetch lanes per runahead load.
    Vector,
}

/// What makes the core enter runahead mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RunaheadTrigger {
    /// A DRAM-bound load reaches the ROB head *and* the window is blocked —
    /// the ROB, load queue or store queue is full, so the pipeline has
    /// halted. This is the original HPCA'03 condition ("the instruction
    /// window fills up and halts the pipeline"): with Table 1's 40-entry
    /// LQ/SQ, memory-bound loops block on the queues well before the
    /// 256-entry ROB fills. An issue-queue backlog alone does *not* count
    /// (that happens behind serializing instructions, not memory pressure).
    #[default]
    WindowBlocked,
    /// A DRAM-bound load reaches the ROB head, blocked window or not — the
    /// relaxed "data cache miss" trigger of the paper's §5.3 scenario ➂.
    HeadMiss,
}

/// Defense configuration (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SecureConfig {
    /// Enables the SL-cache + taint-tracking scheme: runahead DRAM fills go
    /// to the SL cache and Algorithm 1 gates their promotion after exit.
    pub sl_cache: bool,
    /// SL cache capacity in lines.
    pub sl_entries: usize,
    /// Extra latency in cycles for consulting the SL cache while `C != 0`.
    pub sl_latency: u64,
    /// The alternative mitigation: an INV-source branch is "skipped rather
    /// than unresolved" — fetch is forced down the fall-through path, so no
    /// attacker-trained prediction steers runahead.
    pub skip_inv_branches: bool,
}

impl SecureConfig {
    /// The defended configuration the paper proposes: SL cache of 64 lines
    /// with a 1-cycle lookup.
    pub fn sl_cache_default() -> SecureConfig {
        SecureConfig { sl_cache: true, sl_entries: 64, sl_latency: 1, skip_inv_branches: false }
    }

    /// The restriction-based mitigation of §6's closing paragraph.
    pub fn skip_inv_default() -> SecureConfig {
        SecureConfig { sl_cache: false, sl_entries: 0, sl_latency: 0, skip_inv_branches: true }
    }
}

/// Runahead execution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunaheadConfig {
    /// Scheme selection.
    pub policy: RunaheadPolicy,
    /// Entry condition.
    pub trigger: RunaheadTrigger,
    /// Runahead-cache capacity in bytes (buffers runahead stores).
    pub runahead_cache_bytes: usize,
    /// Cycles to take the entry checkpoint (architectural state snapshot).
    pub enter_penalty: u64,
    /// Cycles to restore state and refill-steer the front end on exit.
    pub exit_penalty: u64,
    /// Whether branches resolved during runahead train the predictor.
    pub train_predictor: bool,
    /// Whether predictor histories are checkpointed on entry and restored on
    /// exit (the original scheme checkpoints the history register).
    pub checkpoint_predictor: bool,
    /// Number of prefetch lanes issued per strided load under
    /// [`RunaheadPolicy::Vector`].
    pub vector_lanes: u64,
    /// Useless-runahead avoidance (Mutlu & Patt's efficiency throttling):
    /// an episode that issued fewer than this many prefetches triggers a
    /// backoff. 0 disables throttling.
    pub min_episode_yield: u64,
    /// Cycles to suppress re-entry after a useless episode.
    pub useless_backoff: u64,
    /// Defense selection.
    pub secure: SecureConfig,
}

impl Default for RunaheadConfig {
    fn default() -> RunaheadConfig {
        RunaheadConfig {
            policy: RunaheadPolicy::Original,
            trigger: RunaheadTrigger::WindowBlocked,
            runahead_cache_bytes: 4096,
            enter_penalty: 4,
            exit_penalty: 8,
            train_predictor: true,
            checkpoint_predictor: true,
            vector_lanes: 8,
            min_episode_yield: 2,
            useless_backoff: 2500,
            secure: SecureConfig::default(),
        }
    }
}

/// Full processor configuration (Table 1 defaults).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuConfig {
    /// Core frequency in GHz (cosmetic; Table 1: 2 GHz out-of-order).
    pub freq_ghz: f64,
    /// Fetch/decode/dispatch/commit width (Table 1: 4).
    pub width: usize,
    /// Front-end pipeline depth in stages (Table 1: 6).
    pub frontend_stages: u64,
    /// Reorder-buffer capacity (Table 1: 256).
    pub rob_entries: usize,
    /// Issue-queue capacity (Table 1: "i (40)").
    pub iq_entries: usize,
    /// Load-queue capacity (Table 1: 40).
    pub lq_entries: usize,
    /// Store-queue capacity (Table 1: 40).
    pub sq_entries: usize,
    /// Physical integer registers (Table 1: 80 × 64 bit).
    pub int_prf: usize,
    /// Physical floating-point registers (Table 1: 40 × 64 bit).
    pub fp_prf: usize,
    /// Functional-unit mix.
    pub fu: FuConfig,
    /// Branch prediction structures (Table 1: two-level adaptive).
    pub predictor: PredictorConfig,
    /// Memory hierarchy (Table 1 cache/memory rows).
    pub mem: MemConfig,
    /// Runahead scheme.
    pub runahead: RunaheadConfig,
    /// Initial stack pointer loaded into `r31` when a program starts.
    pub stack_top: u64,
    /// Fetch-queue capacity between fetch and rename.
    pub fetch_queue: usize,
    /// Next-line instruction-prefetch depth (models the trace-cache/queue
    /// front end of the paper's Fig. 6; 0 disables).
    pub ifetch_prefetch_lines: u64,
    /// Idle-cycle fast-forward: when every pipeline stage is provably
    /// quiescent (typically: all in-flight work is waiting on DRAM fills),
    /// [`Core::run`](crate::Core::run) jumps the cycle counter straight to
    /// the next scheduled event instead of ticking one cycle at a time.
    /// Bit-identical statistics to the naive loop; purely a host-side
    /// simulation speedup.
    pub fast_forward: bool,
    /// Fast-forward self-check: before every jump, a cloned core steps
    /// through the skipped window cycle-by-cycle and the stats are asserted
    /// equal. Orders of magnitude slower — for tests only.
    pub ff_check: bool,
    /// Event-scheduler self-check: every cycle, the retired scan-based
    /// scheduler logic runs in parallel with the event-driven one —
    /// writeback's due-completion set is recomputed by a full ROB scan, and
    /// the issue-ready queue is audited against every waiting entry's
    /// operand state — and any divergence panics. Orders of magnitude
    /// slower — for tests only.
    pub sched_check: bool,
    /// Predecode self-check: every fetched micro-op's
    /// [`UopMeta`](specrun_isa::UopMeta) is re-derived from the `Inst` enum with the
    /// retired per-site derivations — `sources`/`dest`, the
    /// load/store/serializer/control classification, the FU class, the
    /// direct branch target — and any divergence panics. Much slower — for
    /// tests only.
    pub predecode_check: bool,
}

impl Default for CpuConfig {
    fn default() -> CpuConfig {
        CpuConfig {
            freq_ghz: 2.0,
            width: 4,
            frontend_stages: 6,
            rob_entries: 256,
            iq_entries: 40,
            lq_entries: 40,
            sq_entries: 40,
            int_prf: 80,
            fp_prf: 40,
            fu: FuConfig::default(),
            predictor: PredictorConfig::default(),
            mem: MemConfig::default(),
            runahead: RunaheadConfig::default(),
            stack_top: 0x4000_0000,
            fetch_queue: 16,
            ifetch_prefetch_lines: 48,
            fast_forward: true,
            ff_check: false,
            sched_check: false,
            predecode_check: false,
        }
    }
}

impl CpuConfig {
    /// A machine without runahead execution (the paper's baseline).
    pub fn no_runahead() -> CpuConfig {
        let mut c = CpuConfig::default();
        c.runahead.policy = RunaheadPolicy::Disabled;
        c
    }

    /// A runahead machine hardened with the SL-cache defense (§6).
    pub fn secure_runahead() -> CpuConfig {
        let mut c = CpuConfig::default();
        c.runahead.secure = SecureConfig::sl_cache_default();
        c
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the physical register files cannot cover the architectural
    /// state or any structure has zero capacity.
    pub fn validate(&self) {
        assert!(self.width > 0, "width must be positive");
        assert!(self.rob_entries > 0, "ROB must be non-empty");
        assert!(
            self.int_prf > specrun_isa::NUM_INT_REGS,
            "need at least one spare int physical register"
        );
        assert!(
            self.fp_prf > specrun_isa::NUM_FP_REGS,
            "need at least one spare fp physical register"
        );
        assert!(self.iq_entries > 0 && self.lq_entries > 0 && self.sq_entries > 0);
        assert!(self.fetch_queue >= self.width);
        // The event-driven scheduler requires every completion to land
        // strictly after its issue cycle (the writeback pop order equals
        // the old oldest-first scan order only because all events due at a
        // given cycle share that cycle as their key), so zero-latency
        // functional units and caches are rejected here.
        for (name, latency) in [
            ("int_add", self.fu.int_add.latency),
            ("int_mul", self.fu.int_mul.latency),
            ("int_div", self.fu.int_div.latency),
            ("fp_add", self.fu.fp_add.latency),
            ("fp_mul", self.fu.fp_mul.latency),
            ("fp_div", self.fu.fp_div.latency),
            ("mem_ports", self.fu.mem_ports.latency),
        ] {
            assert!(latency > 0, "{name} latency must be at least one cycle");
        }
        for (name, latency) in [
            ("l1i", self.mem.l1i.hit_latency),
            ("l1d", self.mem.l1d.hit_latency),
            ("l2", self.mem.l2.hit_latency),
            ("l3", self.mem.l3.hit_latency),
            ("dram", self.mem.dram.latency),
        ] {
            assert!(latency > 0, "{name} latency must be at least one cycle");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1, row by row.
    #[test]
    fn default_matches_table_1() {
        let c = CpuConfig::default();
        assert_eq!(c.freq_ghz, 2.0);
        assert_eq!(c.width, 4);
        assert_eq!(c.frontend_stages, 6);
        assert_eq!(c.rob_entries, 256);
        assert_eq!(c.iq_entries, 40);
        assert_eq!(c.lq_entries, 40);
        assert_eq!(c.sq_entries, 40);
        assert_eq!(c.int_prf, 80);
        assert_eq!(c.fp_prf, 40);
        // functional units
        assert_eq!((c.fu.int_add.count, c.fu.int_add.latency), (4, 1));
        assert_eq!((c.fu.int_mul.count, c.fu.int_mul.latency), (2, 2));
        assert_eq!((c.fu.int_div.count, c.fu.int_div.latency), (1, 5));
        assert_eq!((c.fu.fp_add.count, c.fu.fp_add.latency), (2, 5));
        assert_eq!((c.fu.fp_mul.count, c.fu.fp_mul.latency), (1, 10));
        assert_eq!((c.fu.fp_div.count, c.fu.fp_div.latency), (1, 15));
        // caches
        assert_eq!(c.mem.l1i.size_bytes, 16 * 1024);
        assert_eq!((c.mem.l1i.ways, c.mem.l1i.hit_latency), (4, 2));
        assert_eq!(c.mem.l1d.size_bytes, 16 * 1024);
        assert_eq!((c.mem.l1d.ways, c.mem.l1d.hit_latency), (4, 2));
        assert_eq!(c.mem.l2.size_bytes, 128 * 1024);
        assert_eq!((c.mem.l2.ways, c.mem.l2.hit_latency), (8, 8));
        assert_eq!(c.mem.l3.size_bytes, 4 * 1024 * 1024);
        assert_eq!((c.mem.l3.ways, c.mem.l3.hit_latency), (8, 32));
        assert_eq!(c.mem.dram.latency, 200);
        c.validate();
    }

    #[test]
    fn preset_variants() {
        assert_eq!(CpuConfig::no_runahead().runahead.policy, RunaheadPolicy::Disabled);
        assert!(CpuConfig::secure_runahead().runahead.secure.sl_cache);
        CpuConfig::no_runahead().validate();
        CpuConfig::secure_runahead().validate();
    }

    #[test]
    #[should_panic(expected = "spare int physical register")]
    fn validate_rejects_tiny_prf() {
        let c = CpuConfig { int_prf: 32, ..CpuConfig::default() };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "latency must be at least one cycle")]
    fn validate_rejects_zero_latency_units() {
        let mut c = CpuConfig::default();
        c.fu.int_add.latency = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "latency must be at least one cycle")]
    fn validate_rejects_zero_latency_caches() {
        let mut c = CpuConfig::default();
        c.mem.l1d.hit_latency = 0;
        c.validate();
    }
}
