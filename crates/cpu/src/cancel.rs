//! Cooperative run cancellation: the supervision hook in
//! [`Core::run`](crate::Core::run).
//!
//! A campaign supervisor cannot preempt a simulation thread, but it can ask
//! the simulation to stop: [`Core::run_governed`](crate::Core::run_governed)
//! polls a [`RunGovernor`] every [`CHECK_INTERVAL_CYCLES`] simulated cycles
//! and returns [`RunExit::Cancelled`](crate::RunExit::Cancelled) when the
//! governor says so. The poll doubles as a **heartbeat**: each checkpoint
//! publishes the current cycle and committed-instruction counts, so an
//! external monitor can tell a run that is *slow but progressing* (beats
//! advance — a wall-clock deadline problem) from one that is *stalled*
//! (no beats — the host thread is wedged outside the simulation loop).
//!
//! The hook follows the same zero-cost discipline as
//! [`PipelineObserver`](crate::probe::PipelineObserver): the governor is a
//! generic parameter with a `const ACTIVE` flag, and the default
//! [`NeverCancel`] has `ACTIVE = false`, so the plain
//! [`Core::run`](crate::Core::run) monomorphizes to the exact
//! un-instrumented loop — the perf gate holds the proof.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// How many simulated cycles elapse between governor checkpoints. Chosen
/// so even a slow (~1 M cyc/s) configuration polls a few hundred times per
/// second while the atomic traffic stays invisible next to the pipeline
/// work a checkpoint's worth of cycles represents.
pub const CHECK_INTERVAL_CYCLES: u64 = 4096;

/// The cancellation hook [`Core::run_governed`](crate::Core::run_governed)
/// polls. `ACTIVE = false` compiles every checkpoint site away.
pub trait RunGovernor {
    /// Whether checkpoints are compiled in at all.
    const ACTIVE: bool = true;

    /// Called every [`CHECK_INTERVAL_CYCLES`] simulated cycles with the
    /// current cycle and committed-instruction counts. Returning `true`
    /// stops the run with [`RunExit::Cancelled`](crate::RunExit::Cancelled).
    fn checkpoint(&self, cycle: u64, committed: u64) -> bool;
}

/// The detached governor: checkpoints are statically compiled out, so
/// [`Core::run`](crate::Core::run) is exactly the ungoverned loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverCancel;

impl RunGovernor for NeverCancel {
    const ACTIVE: bool = false;

    #[inline]
    fn checkpoint(&self, _cycle: u64, _committed: u64) -> bool {
        false
    }
}

/// Why a [`CancelToken`] was tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The unit's wall-clock deadline elapsed while it was still making
    /// progress (heartbeats kept advancing).
    Deadline,
    /// No heartbeat advanced within the stall window — the run is wedged
    /// on the host side, not merely slow.
    Stalled,
}

const REASON_NONE: u8 = 0;
const REASON_DEADLINE: u8 = 1;
const REASON_STALLED: u8 = 2;

#[derive(Debug, Default)]
struct TokenState {
    reason: AtomicU8,
    beat_cycle: AtomicU64,
    beat_committed: AtomicU64,
}

/// A shared cancellation token: the supervisor's monitor thread trips it,
/// the simulation thread polls it (via its [`RunGovernor`] impl) and
/// publishes heartbeats through it. Cloning shares the same state.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<TokenState>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the token. The first reason wins; later calls are ignored, so
    /// a monitor racing itself cannot flip a deadline into a stall.
    pub fn cancel(&self, reason: CancelReason) {
        let code = match reason {
            CancelReason::Deadline => REASON_DEADLINE,
            CancelReason::Stalled => REASON_STALLED,
        };
        let _ = self.state.reason.compare_exchange(
            REASON_NONE,
            code,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.state.reason.load(Ordering::Relaxed) != REASON_NONE
    }

    /// Why the token was tripped, if it was.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.state.reason.load(Ordering::Relaxed) {
            REASON_DEADLINE => Some(CancelReason::Deadline),
            REASON_STALLED => Some(CancelReason::Stalled),
            _ => None,
        }
    }

    /// Publishes a heartbeat (also done implicitly by every checkpoint).
    pub fn beat(&self, cycle: u64, committed: u64) {
        self.state.beat_cycle.store(cycle, Ordering::Relaxed);
        self.state.beat_committed.store(committed, Ordering::Relaxed);
    }

    /// The last heartbeat's simulated cycle count.
    pub fn beat_cycle(&self) -> u64 {
        self.state.beat_cycle.load(Ordering::Relaxed)
    }

    /// The last heartbeat's committed-instruction count.
    pub fn beat_committed(&self) -> u64 {
        self.state.beat_committed.load(Ordering::Relaxed)
    }
}

impl fmt::Display for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason() {
            None => write!(f, "live"),
            Some(r) => write!(f, "cancelled ({r:?})"),
        }
    }
}

impl RunGovernor for CancelToken {
    #[inline]
    fn checkpoint(&self, cycle: u64, committed: u64) -> bool {
        self.beat(cycle, committed);
        self.is_cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_live_and_trips_once() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        t.cancel(CancelReason::Deadline);
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
        // First reason wins.
        t.cancel(CancelReason::Stalled);
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
        assert_eq!(t.to_string(), "cancelled (Deadline)");
    }

    #[test]
    fn clones_share_state_and_heartbeats_publish() {
        let t = CancelToken::new();
        let shared = t.clone();
        assert!(!t.checkpoint(100, 7), "live token does not cancel");
        assert_eq!(shared.beat_cycle(), 100);
        assert_eq!(shared.beat_committed(), 7);
        shared.cancel(CancelReason::Stalled);
        assert!(t.checkpoint(200, 8), "tripped token cancels at the next checkpoint");
        assert_eq!(t.beat_committed(), 8, "the final checkpoint still beats");
    }

    #[test]
    fn never_cancel_is_statically_inert() {
        const _: () = assert!(!NeverCancel::ACTIVE);
        assert!(!NeverCancel.checkpoint(0, 0));
    }
}
