//! Trace forensics: aligning two recorded runs of the *same program* on
//! *different machine configurations* and naming the first event where
//! their pipelines part ways.
//!
//! Two traces of the same plan share an architectural spine — the commit
//! sequence — because runahead (and every §6 defense) is architecturally
//! invisible. But the global interleaving of the streams is *not* shared:
//! a config that changes a cache latency shifts when a branch resolves
//! relative to a nearby commit, and an element-wise walk would blame that
//! timing skew long before the real behavioural difference. Alignment is
//! therefore **per event kind**: each stream is split into eight lanes
//! (one per [`PipelineEvent`] variant), and lanes are compared
//! independently. Within a lane, order tracks program order — latency
//! changes reorder events *between* kinds, not within one — so the first
//! lane mismatch is a genuine behavioural difference, e.g. the transient
//! secret fill the defended machine suppresses. The reported divergence
//! is the lane mismatch whose position (commit anchor, then stream index)
//! is earliest.
//!
//! Comparison is over *normalized* events: cycle numbers are stripped
//! (configs differ in latency, which is timing, not behaviour) and so is
//! the `tainted` annotation on transient loads (the defended machine
//! labels the same load the vulnerable machine performs — the behavioural
//! difference is what the load goes on to *fill*, and that is its own
//! event). Everything else — PCs, addresses, lines, fill levels, window
//! and squash magnitudes — counts as behaviour.

use specrun_cpu::probe::PipelineEvent;
use specrun_mem::HitLevel;

/// A [`PipelineEvent`] with config-dependent annotations removed — the
/// unit of comparison for [`first_divergence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NormEvent {
    RunaheadEnter { stall_pc: u64 },
    RunaheadExit { window: u64 },
    Squash { squashed: u64 },
    Commit { pc: u64 },
    BranchResolved { pc: u64, taken: bool, mispredicted: bool },
    TransientLoad { pc: u64, addr: u64 },
    CacheFill { level: HitLevel, line: u64, transient: bool },
    Flush { line: u64 },
}

fn normalize(event: &PipelineEvent) -> NormEvent {
    match *event {
        PipelineEvent::RunaheadEnter { stall_pc, .. } => NormEvent::RunaheadEnter { stall_pc },
        PipelineEvent::RunaheadExit { window, .. } => NormEvent::RunaheadExit { window },
        PipelineEvent::Squash { squashed, .. } => NormEvent::Squash { squashed },
        PipelineEvent::Commit { pc, .. } => NormEvent::Commit { pc },
        PipelineEvent::BranchResolved { pc, taken, mispredicted, .. } => {
            NormEvent::BranchResolved { pc, taken, mispredicted }
        }
        PipelineEvent::TransientLoad { pc, addr, .. } => NormEvent::TransientLoad { pc, addr },
        PipelineEvent::CacheFill { level, line, transient, .. } => {
            NormEvent::CacheFill { level, line, transient }
        }
        PipelineEvent::Flush { line, .. } => NormEvent::Flush { line },
    }
}

/// Lane index of an event: one lane per [`PipelineEvent`] variant.
fn lane_of(event: &PipelineEvent) -> usize {
    match event {
        PipelineEvent::RunaheadEnter { .. } => 0,
        PipelineEvent::RunaheadExit { .. } => 1,
        PipelineEvent::Squash { .. } => 2,
        PipelineEvent::Commit { .. } => 3,
        PipelineEvent::BranchResolved { .. } => 4,
        PipelineEvent::TransientLoad { .. } => 5,
        PipelineEvent::CacheFill { .. } => 6,
        PipelineEvent::Flush { .. } => 7,
    }
}

const LANES: usize = 8;

/// Counts that summarize one trace — printed beside a diff so the
/// divergence has scale.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Total events.
    pub events: u64,
    /// Architectural commits.
    pub commits: u64,
    /// Runahead episodes entered.
    pub runahead_enters: u64,
    /// Transient cache fills (the covert-channel events).
    pub transient_fills: u64,
}

/// Summarizes `events`.
pub fn stream_stats(events: &[PipelineEvent]) -> StreamStats {
    let mut s = StreamStats { events: events.len() as u64, ..StreamStats::default() };
    for e in events {
        match e {
            PipelineEvent::Commit { .. } => s.commits += 1,
            PipelineEvent::RunaheadEnter { .. } => s.runahead_enters += 1,
            PipelineEvent::CacheFill { transient: true, .. } => s.transient_fills += 1,
            _ => {}
        }
    }
    s
}

/// Where an event sits in its stream: the anchors a divergence report
/// carries.
#[derive(Debug, Clone, Copy)]
struct Anchors {
    index: usize,
    commit_anchor: u64,
    anchor_pc: Option<u64>,
    runahead_episode: u64,
    transient_fills_before: u64,
}

/// One stream split into per-kind lanes, each element keeping its
/// normalized form, its original event and its stream anchors.
fn lanes(events: &[PipelineEvent]) -> [Vec<(NormEvent, PipelineEvent, Anchors)>; LANES] {
    let mut lanes: [Vec<(NormEvent, PipelineEvent, Anchors)>; LANES] = Default::default();
    let mut at = Anchors {
        index: 0,
        commit_anchor: 0,
        anchor_pc: None,
        runahead_episode: 0,
        transient_fills_before: 0,
    };
    for (index, event) in events.iter().enumerate() {
        // A divergence *inside* episode N reads as "at the Nth
        // RunaheadEnter", so the episode counter bumps before filing the
        // enter event itself.
        if matches!(event, PipelineEvent::RunaheadEnter { .. }) {
            at.runahead_episode += 1;
        }
        at.index = index;
        lanes[lane_of(event)].push((normalize(event), *event, at));
        match *event {
            PipelineEvent::Commit { pc, .. } => {
                at.commit_anchor += 1;
                at.anchor_pc = Some(pc);
            }
            PipelineEvent::CacheFill { transient: true, .. } => at.transient_fills_before += 1,
            _ => {}
        }
    }
    lanes
}

/// The first point where two traces disagree, with the context needed to
/// read it: where in the program (commit anchor), where in the attack
/// (runahead episode), and what each side did there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Stream index of the divergent event in the trace that has it
    /// (trace A, unless A's lane is exhausted — then trace B).
    pub index: usize,
    /// Architectural commits before the divergent event: it happens after
    /// the `commit_anchor`-th commit.
    pub commit_anchor: u64,
    /// PC of the last commit before the divergence, if any committed.
    pub anchor_pc: Option<u64>,
    /// Runahead episodes entered up to and including the divergence
    /// point. A divergence inside episode *N* reads as "at the Nth
    /// RunaheadEnter".
    pub runahead_episode: u64,
    /// Transient fills before the divergence in the stream that carries
    /// the divergent event.
    pub transient_fills_before: u64,
    /// Trace A's event at the divergence; `None` if A has no matching
    /// event in this lane.
    pub a: Option<PipelineEvent>,
    /// Trace B's event at the divergence; `None` if B has no matching
    /// event in this lane.
    pub b: Option<PipelineEvent>,
}

impl Divergence {
    /// Renders the one-line forensic verdict, e.g.
    ///
    /// ```text
    /// first divergence at event 350 (after commit #315 @ 0x4038, runahead episode #1, 0 transient fills before): a = CacheFill { cycle: 1893, level: Mem, line: 0x403f8, transient: true }, b = <no matching event>
    /// ```
    ///
    /// Deterministic (no wall-clock content), so artifact text carrying it
    /// stays byte-stable.
    pub fn describe(&self) -> String {
        let anchor = match self.anchor_pc {
            Some(pc) => format!("after commit #{} @ {pc:#x}", self.commit_anchor),
            None => "before the first commit".to_string(),
        };
        let side = |e: &Option<PipelineEvent>| match e {
            Some(PipelineEvent::CacheFill { cycle, level, line, transient }) => format!(
                "CacheFill {{ cycle: {cycle}, level: {level:?}, line: {line:#x}, \
                 transient: {transient} }}"
            ),
            Some(event) => format!("{event:?}"),
            None => "<no matching event>".to_string(),
        };
        format!(
            "first divergence at event {} ({anchor}, runahead episode #{}, \
             {} transient fills before): a = {}, b = {}",
            self.index,
            self.runahead_episode,
            self.transient_fills_before,
            side(&self.a),
            side(&self.b),
        )
    }
}

/// Finds the first behavioural divergence between two traces, or `None`
/// when every lane matches (streams that differ only in cross-kind
/// interleaving, cycle timings or taint annotations are behaviourally
/// identical). See the module docs for the alignment model.
pub fn first_divergence(a: &[PipelineEvent], b: &[PipelineEvent]) -> Option<Divergence> {
    let la = lanes(a);
    let lb = lanes(b);
    let mut best: Option<Divergence> = None;
    let mut best_key = (u64::MAX, usize::MAX);
    for lane in 0..LANES {
        let (xa, xb) = (&la[lane], &lb[lane]);
        let common = xa.len().min(xb.len());
        let mismatch = (0..common)
            .find(|&i| xa[i].0 != xb[i].0)
            .or_else(|| (xa.len() != xb.len()).then_some(common));
        let Some(i) = mismatch else { continue };
        // Anchor on whichever side actually has the event there.
        let at = if i < xa.len() { xa[i].2 } else { xb[i].2 };
        let key = (at.commit_anchor, at.index);
        if key < best_key {
            best_key = key;
            best = Some(Divergence {
                index: at.index,
                commit_anchor: at.commit_anchor,
                anchor_pc: at.anchor_pc,
                runahead_episode: at.runahead_episode,
                transient_fills_before: at.transient_fills_before,
                a: xa.get(i).map(|e| e.1),
                b: xb.get(i).map(|e| e.1),
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(cycle: u64, pc: u64) -> PipelineEvent {
        PipelineEvent::Commit { cycle, pc }
    }

    fn branch(cycle: u64, pc: u64) -> PipelineEvent {
        PipelineEvent::BranchResolved { cycle, pc, taken: true, mispredicted: false }
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let a = vec![commit(1, 0x1000), commit(2, 0x1008)];
        assert_eq!(first_divergence(&a, &a.clone()), None);
    }

    #[test]
    fn timing_differences_alone_are_not_divergence() {
        let a = vec![commit(1, 0x1000), commit(2, 0x1008)];
        let b = vec![commit(5, 0x1000), commit(9, 0x1008)];
        assert_eq!(first_divergence(&a, &b), None, "cycles are config timing, not behaviour");
    }

    #[test]
    fn taint_annotation_alone_is_not_divergence() {
        let a = vec![PipelineEvent::TransientLoad { cycle: 3, pc: 1, addr: 64, tainted: false }];
        let b = vec![PipelineEvent::TransientLoad { cycle: 9, pc: 1, addr: 64, tainted: true }];
        assert_eq!(first_divergence(&a, &b), None);
    }

    #[test]
    fn interleaving_skew_alone_is_not_divergence() {
        // A latency change shifts when the branch resolves relative to the
        // commit; the per-lane alignment must not call that behavioural.
        let a = vec![commit(1, 0x1000), branch(2, 0x1008), commit(3, 0x1010)];
        let b = vec![commit(1, 0x1000), commit(2, 0x1010), branch(3, 0x1008)];
        assert_eq!(first_divergence(&a, &b), None);
    }

    #[test]
    fn missing_fill_is_pinpointed_through_interleaving_skew() {
        let prefix = vec![
            commit(1, 0x1000),
            commit(2, 0x1008),
            PipelineEvent::RunaheadEnter { cycle: 10, stall_pc: 0x1010 },
            PipelineEvent::TransientLoad { cycle: 12, pc: 0x1020, addr: 0xb_0000, tainted: false },
        ];
        let fill =
            PipelineEvent::CacheFill { cycle: 13, level: HitLevel::Mem, line: 7, transient: true };
        let exit = PipelineEvent::RunaheadExit { cycle: 40, window: 12 };
        let mut a = prefix.clone();
        a.push(fill);
        a.push(exit);
        let mut b = prefix;
        b.push(exit); // the defended machine suppressed the fill
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.index, 4, "the fill's position in trace a");
        assert_eq!(d.commit_anchor, 2);
        assert_eq!(d.anchor_pc, Some(0x1008));
        assert_eq!(d.runahead_episode, 1);
        assert_eq!(d.transient_fills_before, 0);
        assert_eq!(d.a, Some(fill));
        assert_eq!(d.b, None, "trace b has no fill to match");
        let line = d.describe();
        assert!(line.contains("after commit #2 @ 0x1008"), "{line}");
        assert!(line.contains("runahead episode #1"), "{line}");
        assert!(line.contains("transient: true"), "{line}");
        assert!(line.contains("<no matching event>"), "{line}");
    }

    #[test]
    fn earliest_lane_divergence_wins() {
        // Both the commit lane and the flush lane diverge; the flush does
        // so first in stream position and must be the one reported.
        let a =
            vec![commit(1, 0x1000), PipelineEvent::Flush { cycle: 2, line: 7 }, commit(3, 0x1008)];
        let b =
            vec![commit(1, 0x1000), PipelineEvent::Flush { cycle: 2, line: 9 }, commit(3, 0x2000)];
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.index, 1);
        assert_eq!(d.a, Some(PipelineEvent::Flush { cycle: 2, line: 7 }));
        assert_eq!(d.b, Some(PipelineEvent::Flush { cycle: 2, line: 9 }));
    }

    #[test]
    fn prefix_traces_diverge_at_the_tail() {
        let a = vec![commit(1, 0x1000), commit(2, 0x1008)];
        let b = vec![commit(1, 0x1000)];
        let d = first_divergence(&a, &b).expect("length mismatch diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.a, Some(commit(2, 0x1008)));
        assert_eq!(d.b, None);
        assert!(d.describe().contains("<no matching event>"));
    }

    #[test]
    fn stream_stats_count_the_forensic_signals() {
        let events = vec![
            commit(1, 0x1000),
            PipelineEvent::RunaheadEnter { cycle: 2, stall_pc: 0x1008 },
            PipelineEvent::CacheFill { cycle: 3, level: HitLevel::Mem, line: 1, transient: true },
            PipelineEvent::CacheFill { cycle: 4, level: HitLevel::L2, line: 2, transient: false },
        ];
        let s = stream_stats(&events);
        assert_eq!(
            s,
            StreamStats { events: 4, commits: 1, runahead_enters: 1, transient_fills: 1 }
        );
    }
}
