//! Recording and replaying: the observer that captures an event stream,
//! and the pass that re-drives any other observer from a captured stream.

use specrun_cpu::probe::{PipelineEvent, PipelineObserver};

/// A [`PipelineObserver`] that records every event it sees, in order.
///
/// The recorder buffers in memory and serializes at the end of the run
/// (see [`crate::encode_events`]) rather than streaming to a file handle.
/// That is deliberate: the core *clones* its observer wherever it steps a
/// shadow pipeline (`ff_check` verifies each fast-forward window on a
/// cloned core and discards it), so a recorder holding a shared writer
/// would double-record every verified window. A buffering recorder's
/// clone dies with the shadow core and the recorded stream stays exactly
/// the live run's — which is also what keeps the resulting log
/// byte-stable.
///
/// Compose it with analysis observers through the tuple impl, e.g.
/// `((CountingObserver, LeakTraceObserver), RecordingObserver)`: the
/// analysis pair sees the live run, the recorder captures the same stream
/// for offline replay, and replaying must then reproduce the pair's state
/// bit-identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordingObserver {
    events: Vec<PipelineEvent>,
}

impl RecordingObserver {
    /// An empty recorder.
    pub fn new() -> RecordingObserver {
        RecordingObserver::default()
    }

    /// The events recorded so far, in emission order.
    pub fn events(&self) -> &[PipelineEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the recorder, returning the recorded stream.
    pub fn into_events(self) -> Vec<PipelineEvent> {
        self.events
    }

    /// Encodes the recorded stream into a trace log (see
    /// [`crate::encode_events`]).
    pub fn encode(&self) -> Vec<u8> {
        crate::encode_events(&self.events)
    }
}

impl PipelineObserver for RecordingObserver {
    fn on_event(&mut self, event: &PipelineEvent) {
        self.events.push(*event);
    }
}

/// Re-drives `observer` from a recorded event stream — the detached
/// analysis pass. No simulator involved: any observer fed the same events
/// in the same order reaches the same state as it would have live, so a
/// replayed `CountingObserver` or `LeakTraceObserver` reproduces the live
/// run's totals bit for bit.
pub fn replay<O: PipelineObserver>(events: &[PipelineEvent], observer: &mut O) {
    for event in events {
        observer.on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrun_cpu::probe::CountingObserver;
    use specrun_mem::HitLevel;

    #[test]
    fn recorder_captures_in_order_and_replays() {
        let stream = vec![
            PipelineEvent::Commit { cycle: 1, pc: 0x1000 },
            PipelineEvent::CacheFill { cycle: 2, level: HitLevel::Mem, line: 9, transient: true },
            PipelineEvent::Squash { cycle: 3, squashed: 4 },
        ];
        let mut recorder = RecordingObserver::new();
        let mut live = CountingObserver::default();
        for e in &stream {
            recorder.on_event(e);
            live.on_event(e);
        }
        assert_eq!(recorder.events(), stream.as_slice());
        assert_eq!(recorder.len(), 3);
        let mut replayed = CountingObserver::default();
        replay(recorder.events(), &mut replayed);
        assert_eq!(replayed, live, "replay reproduces the live observer bit-identically");
    }

    #[test]
    fn cloned_recorder_diverges_without_touching_the_original() {
        // The ff_check discipline: the shadow core's clone absorbs events
        // and is discarded; the live recorder must be unaffected.
        let mut recorder = RecordingObserver::new();
        recorder.on_event(&PipelineEvent::Commit { cycle: 1, pc: 1 });
        let mut shadow = recorder.clone();
        shadow.on_event(&PipelineEvent::Commit { cycle: 2, pc: 2 });
        assert_eq!(recorder.len(), 1);
        assert_eq!(shadow.len(), 2);
        drop(shadow);
        assert_eq!(recorder.len(), 1);
    }

    #[test]
    fn empty_recorder_round_trips_through_encode() {
        let recorder = RecordingObserver::new();
        assert!(recorder.is_empty());
        let decoded = crate::decode_events(&recorder.encode()).unwrap();
        assert!(decoded.events.is_empty());
    }
}
