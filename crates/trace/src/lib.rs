//! Trace record/replay for the SPECRUN pipeline-event stream.
//!
//! Every artifact the lab emits is a *summary* — leak rates, fill counts,
//! invariant verdicts — while the ground truth behind them (the typed
//! [`PipelineEvent`] stream the observer API emits) evaporated at the end
//! of each run. This crate keeps it: the SPECULOSE move of capturing the
//! speculative execution trace once and analyzing it offline, in three
//! layers.
//!
//! * **Record** — [`RecordingObserver`] is a [`PipelineObserver`] that
//!   captures the live event stream; [`encode_events`] serializes it into
//!   a compact delta-encoded binary log (varint cycle deltas,
//!   per-event-kind tags, framed blocks whose trailing FNV digests make a
//!   torn tail self-identifying — the campaign-journal discipline, in
//!   binary). [`TraceSink`] is the atomic-write seam; `specrun-lab`
//!   adapts its `ArtifactSink` onto it so chaos fault injection covers
//!   trace writes too.
//! * **Replay** — [`decode_events`] recovers the stream and [`replay`]
//!   re-drives *any* observer from it, no simulator needed: a replayed
//!   `CountingObserver` or `LeakTraceObserver` reproduces the live run's
//!   analysis bit-identically (proptested against live `CpuStats`).
//! * **Forensics** — [`first_divergence`] aligns two traces of the same
//!   plan on different machine configurations (commit-anchored, timing
//!   and taint annotations normalized away) and names the first event
//!   where the pipelines part ways: "the transient secret fill at the Nth
//!   `RunaheadEnter` that the SL cache suppressed".
//!
//! ```
//! use specrun_cpu::probe::{CountingObserver, PipelineObserver};
//! use specrun_cpu::{Core, CpuConfig};
//! use specrun_isa::{IntReg, ProgramBuilder};
//! use specrun_trace::{decode_events, encode_events, replay, RecordingObserver};
//!
//! let mut b = ProgramBuilder::new(0x1000);
//! b.li(IntReg::new(1).unwrap(), 42);
//! b.halt();
//! let program = b.build().unwrap();
//!
//! // Record a live run…
//! let mut core = Core::with_observer(CpuConfig::default(), RecordingObserver::new());
//! core.load_program(&program);
//! core.run(10_000);
//! let log = encode_events(core.observer().events());
//!
//! // …and replay the log through a fresh analysis observer, detached.
//! let mut counts = CountingObserver::default();
//! replay(&decode_events(&log).unwrap().events, &mut counts);
//! assert_eq!(counts.commits, core.stats().committed);
//! ```

mod diff;
mod format;
mod record;

pub use diff::{first_divergence, stream_stats, Divergence, StreamStats};
pub use format::{
    decode_events, encode_events, read_trace_file, write_trace_file, DecodedTrace, FsTraceSink,
    TraceError, TraceFileError, TraceSink, BLOCK_EVENTS, TRACE_MAGIC,
};
pub use record::{replay, RecordingObserver};

// Re-exported so downstream trace consumers name the event types without
// a direct `specrun-cpu` dependency.
pub use specrun_cpu::probe::{PipelineEvent, PipelineObserver};
