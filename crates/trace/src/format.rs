//! The trace-log wire format: a compact, append-only binary encoding of
//! [`PipelineEvent`] streams.
//!
//! Layout:
//!
//! ```text
//! magic            "specrun-trace v1\n"                  (17 bytes)
//! block*           varint(payload_len) ‖ payload ‖ fnv1a64(payload) LE
//! ```
//!
//! Each block's payload holds up to [`BLOCK_EVENTS`] events, one after
//! another:
//!
//! ```text
//! event            tag u8 ‖ varint(zigzag(cycle − prev_cycle)) ‖ fields
//! ```
//!
//! Cycle numbers are delta-encoded against the previous event *across the
//! whole stream* (zigzag so an arbitrary — even non-monotonic — event
//! sequence round-trips); PCs, addresses and line indices are plain
//! varints; booleans pack into flag bytes; [`HitLevel`] gets a stable
//! 2-bit encoding. The framing mirrors the campaign-journal discipline
//! (PR 7): the digest comes *last*, so
//!
//! * a **torn tail** (crash mid-append) fails to complete its final block
//!   and is silently dropped — the intact prefix stays readable, and
//!   [`DecodedTrace::torn_tail`] says it happened;
//! * **mid-file corruption** lands inside a *complete* block, fails that
//!   block's digest, and is a hard [`TraceError`] — never a silently
//!   shortened trace.

use std::fmt;
use std::io::{self, Write};
use std::path::Path;

use specrun_cpu::probe::PipelineEvent;
use specrun_mem::HitLevel;

/// First bytes of every trace log; a version bump changes this string.
pub const TRACE_MAGIC: &[u8] = b"specrun-trace v1\n";

/// Events per framed block. Fixed (never host-dependent), so encoding the
/// same event stream always produces byte-identical logs.
pub const BLOCK_EVENTS: usize = 1024;

const TAG_RUNAHEAD_ENTER: u8 = 1;
const TAG_RUNAHEAD_EXIT: u8 = 2;
const TAG_SQUASH: u8 = 3;
const TAG_COMMIT: u8 = 4;
const TAG_BRANCH_RESOLVED: u8 = 5;
const TAG_TRANSIENT_LOAD: u8 = 6;
const TAG_CACHE_FILL: u8 = 7;
const TAG_FLUSH: u8 = 8;

/// FNV-1a over `bytes` — the same digest the campaign journal uses.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value: u64 = 0;
    for shift in 0..10 {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        let chunk = (byte & 0x7f) as u64;
        if shift == 9 && byte > 1 {
            return None; // an 11th significant bit cannot fit a u64
        }
        value |= chunk << (shift * 7);
        if byte & 0x80 == 0 {
            return Some(value);
        }
    }
    None
}

fn zigzag(delta: i64) -> u64 {
    ((delta << 1) ^ (delta >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn level_code(level: HitLevel) -> u8 {
    match level {
        HitLevel::L1 => 0,
        HitLevel::L2 => 1,
        HitLevel::L3 => 2,
        HitLevel::Mem => 3,
    }
}

fn level_from(code: u8) -> Option<HitLevel> {
    match code {
        0 => Some(HitLevel::L1),
        1 => Some(HitLevel::L2),
        2 => Some(HitLevel::L3),
        3 => Some(HitLevel::Mem),
        _ => None,
    }
}

fn put_event(out: &mut Vec<u8>, event: &PipelineEvent, prev_cycle: &mut u64) {
    let cycle = event.cycle();
    let delta = zigzag(cycle.wrapping_sub(*prev_cycle) as i64);
    *prev_cycle = cycle;
    match *event {
        PipelineEvent::RunaheadEnter { stall_pc, .. } => {
            out.push(TAG_RUNAHEAD_ENTER);
            put_varint(out, delta);
            put_varint(out, stall_pc);
        }
        PipelineEvent::RunaheadExit { window, .. } => {
            out.push(TAG_RUNAHEAD_EXIT);
            put_varint(out, delta);
            put_varint(out, window);
        }
        PipelineEvent::Squash { squashed, .. } => {
            out.push(TAG_SQUASH);
            put_varint(out, delta);
            put_varint(out, squashed);
        }
        PipelineEvent::Commit { pc, .. } => {
            out.push(TAG_COMMIT);
            put_varint(out, delta);
            put_varint(out, pc);
        }
        PipelineEvent::BranchResolved { pc, taken, mispredicted, .. } => {
            out.push(TAG_BRANCH_RESOLVED);
            put_varint(out, delta);
            put_varint(out, pc);
            out.push(taken as u8 | (mispredicted as u8) << 1);
        }
        PipelineEvent::TransientLoad { pc, addr, tainted, .. } => {
            out.push(TAG_TRANSIENT_LOAD);
            put_varint(out, delta);
            put_varint(out, pc);
            put_varint(out, addr);
            out.push(tainted as u8);
        }
        PipelineEvent::CacheFill { level, line, transient, .. } => {
            out.push(TAG_CACHE_FILL);
            put_varint(out, delta);
            put_varint(out, line);
            out.push(level_code(level) | (transient as u8) << 2);
        }
        PipelineEvent::Flush { line, .. } => {
            out.push(TAG_FLUSH);
            put_varint(out, delta);
            put_varint(out, line);
        }
    }
}

fn get_event(
    bytes: &[u8],
    pos: &mut usize,
    prev_cycle: &mut u64,
) -> Result<PipelineEvent, &'static str> {
    let tag = *bytes.get(*pos).ok_or("event truncated at tag")?;
    *pos += 1;
    let delta = get_varint(bytes, pos).ok_or("bad cycle delta varint")?;
    let cycle = prev_cycle.wrapping_add(unzigzag(delta) as u64);
    *prev_cycle = cycle;
    let mut varint = |what| get_varint(bytes, pos).ok_or(what);
    match tag {
        TAG_RUNAHEAD_ENTER => {
            Ok(PipelineEvent::RunaheadEnter { cycle, stall_pc: varint("bad stall_pc")? })
        }
        TAG_RUNAHEAD_EXIT => {
            Ok(PipelineEvent::RunaheadExit { cycle, window: varint("bad window")? })
        }
        TAG_SQUASH => Ok(PipelineEvent::Squash { cycle, squashed: varint("bad squashed")? }),
        TAG_COMMIT => Ok(PipelineEvent::Commit { cycle, pc: varint("bad pc")? }),
        TAG_BRANCH_RESOLVED => {
            let pc = varint("bad pc")?;
            let flags = *bytes.get(*pos).ok_or("branch flags truncated")?;
            *pos += 1;
            if flags > 3 {
                return Err("unknown branch flag bits");
            }
            Ok(PipelineEvent::BranchResolved {
                cycle,
                pc,
                taken: flags & 1 != 0,
                mispredicted: flags & 2 != 0,
            })
        }
        TAG_TRANSIENT_LOAD => {
            let pc = varint("bad pc")?;
            let addr = varint("bad addr")?;
            let flags = *bytes.get(*pos).ok_or("load flags truncated")?;
            *pos += 1;
            if flags > 1 {
                return Err("unknown load flag bits");
            }
            Ok(PipelineEvent::TransientLoad { cycle, pc, addr, tainted: flags != 0 })
        }
        TAG_CACHE_FILL => {
            let line = varint("bad line")?;
            let flags = *bytes.get(*pos).ok_or("fill flags truncated")?;
            *pos += 1;
            if flags > 7 {
                return Err("unknown fill flag bits");
            }
            let level = level_from(flags & 3).ok_or("bad hit level")?;
            Ok(PipelineEvent::CacheFill { cycle, level, line, transient: flags & 4 != 0 })
        }
        TAG_FLUSH => Ok(PipelineEvent::Flush { cycle, line: varint("bad line")? }),
        _ => Err("unknown event tag"),
    }
}

/// Encodes `events` into a complete trace log (magic + framed blocks).
/// The encoding is a pure function of the event sequence: same events,
/// same bytes, on every host.
pub fn encode_events(events: &[PipelineEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(TRACE_MAGIC.len() + events.len() * 4);
    out.extend_from_slice(TRACE_MAGIC);
    let mut prev_cycle = 0u64;
    for chunk in events.chunks(BLOCK_EVENTS) {
        let mut payload = Vec::with_capacity(chunk.len() * 4);
        for event in chunk {
            put_event(&mut payload, event, &mut prev_cycle);
        }
        put_varint(&mut out, payload.len() as u64);
        let digest = fnv1a(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&digest.to_le_bytes());
    }
    out
}

/// A decoding failure that is *not* a torn tail: the log is corrupt and
/// must be treated as unreadable (`specrun-lab` maps these to exit 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file does not start with [`TRACE_MAGIC`].
    Header,
    /// A complete block's payload does not match its recorded digest:
    /// mid-file corruption.
    DigestMismatch {
        /// Zero-based index of the corrupt block.
        block: usize,
    },
    /// A digest-valid block's payload failed to parse (impossible from
    /// this encoder; a crafted or version-skewed log).
    Corrupt {
        /// Zero-based index of the unparseable block.
        block: usize,
        /// What failed.
        reason: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Header => write!(f, "not a specrun trace (bad magic)"),
            TraceError::DigestMismatch { block } => {
                write!(f, "trace corrupt: digest mismatch in block {block}")
            }
            TraceError::Corrupt { block, reason } => {
                write!(f, "trace corrupt: block {block}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A successfully decoded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedTrace {
    /// The recorded event stream, in emission order.
    pub events: Vec<PipelineEvent>,
    /// Whether an incomplete final block was dropped (crash mid-append).
    /// The events above are the intact prefix.
    pub torn_tail: bool,
    /// Complete blocks decoded.
    pub blocks: usize,
}

/// Decodes a trace log produced by [`encode_events`].
///
/// A torn tail — the final block cut off mid-length, mid-payload or
/// mid-digest — is tolerated: the intact prefix is returned with
/// [`DecodedTrace::torn_tail`] set. Anything else wrong with the body is
/// a hard [`TraceError`].
pub fn decode_events(bytes: &[u8]) -> Result<DecodedTrace, TraceError> {
    if !bytes.starts_with(TRACE_MAGIC) {
        return Err(TraceError::Header);
    }
    let mut pos = TRACE_MAGIC.len();
    let mut events = Vec::new();
    let mut prev_cycle = 0u64;
    let mut blocks = 0usize;
    while pos < bytes.len() {
        let mut cursor = pos;
        let Some(len) = get_varint(bytes, &mut cursor) else {
            return Ok(DecodedTrace { events, torn_tail: true, blocks });
        };
        let remaining = (bytes.len() - cursor) as u64;
        if len + 8 > remaining {
            // The block never finished being written (its digest would
            // have come last) — drop it, keep the prefix.
            return Ok(DecodedTrace { events, torn_tail: true, blocks });
        }
        let payload = &bytes[cursor..cursor + len as usize];
        cursor += len as usize;
        let recorded = u64::from_le_bytes(bytes[cursor..cursor + 8].try_into().unwrap());
        cursor += 8;
        if fnv1a(payload) != recorded {
            return Err(TraceError::DigestMismatch { block: blocks });
        }
        let mut p = 0usize;
        while p < payload.len() {
            match get_event(payload, &mut p, &mut prev_cycle) {
                Ok(event) => events.push(event),
                Err(reason) => return Err(TraceError::Corrupt { block: blocks, reason }),
            }
        }
        blocks += 1;
        pos = cursor;
    }
    Ok(DecodedTrace { events, torn_tail: false, blocks })
}

/// Destination for an encoded trace log. `specrun-lab` adapts its
/// `ArtifactSink` onto this (so chaos fault injection covers trace writes
/// too); [`FsTraceSink`] is the plain filesystem implementation with the
/// same atomic discipline.
pub trait TraceSink {
    /// Writes `bytes` to `path` atomically (no torn files on crash —
    /// old-or-new, never a hybrid).
    fn write_trace(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
}

/// Filesystem [`TraceSink`]: temp file + fsync + rename, matching the
/// artifact-sink discipline.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsTraceSink;

impl TraceSink for FsTraceSink {
    fn write_trace(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }
}

/// Encodes `events` and writes the log to `path` through [`FsTraceSink`].
pub fn write_trace_file(path: &Path, events: &[PipelineEvent]) -> io::Result<()> {
    FsTraceSink.write_trace(path, &encode_events(events))
}

/// Reading a trace file can fail two ways: the file itself (I/O) or its
/// contents ([`TraceError`]).
#[derive(Debug)]
pub enum TraceFileError {
    /// The file could not be read.
    Io(io::Error),
    /// The file's contents are not a valid trace.
    Decode(TraceError),
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "cannot read trace: {e}"),
            TraceFileError::Decode(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

/// Reads and decodes the trace log at `path`.
pub fn read_trace_file(path: &Path) -> Result<DecodedTrace, TraceFileError> {
    let bytes = std::fs::read(path).map_err(TraceFileError::Io)?;
    decode_events(&bytes).map_err(TraceFileError::Decode)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<PipelineEvent> {
        vec![
            PipelineEvent::Commit { cycle: 3, pc: 0x1000 },
            PipelineEvent::RunaheadEnter { cycle: 10, stall_pc: 0x1008 },
            PipelineEvent::TransientLoad { cycle: 12, pc: 0x1010, addr: 0xb_0000, tainted: true },
            PipelineEvent::CacheFill { cycle: 12, level: HitLevel::Mem, line: 77, transient: true },
            PipelineEvent::BranchResolved {
                cycle: 13,
                pc: 0x1018,
                taken: true,
                mispredicted: true,
            },
            PipelineEvent::Squash { cycle: 400, squashed: 9 },
            PipelineEvent::RunaheadExit { cycle: 400, window: 120 },
            PipelineEvent::Flush { cycle: 401, line: 77 },
            PipelineEvent::CacheFill { cycle: 402, level: HitLevel::L2, line: 5, transient: false },
        ]
    }

    #[test]
    fn round_trips_every_event_kind() {
        let events = sample_events();
        let decoded = decode_events(&encode_events(&events)).unwrap();
        assert_eq!(decoded.events, events);
        assert!(!decoded.torn_tail);
        assert_eq!(decoded.blocks, 1);
    }

    #[test]
    fn empty_log_round_trips() {
        let bytes = encode_events(&[]);
        assert_eq!(bytes, TRACE_MAGIC);
        let decoded = decode_events(&bytes).unwrap();
        assert!(decoded.events.is_empty());
        assert!(!decoded.torn_tail);
        assert_eq!(decoded.blocks, 0);
    }

    #[test]
    fn encoding_is_deterministic_and_compact() {
        let events = sample_events();
        let a = encode_events(&events);
        let b = encode_events(&events);
        assert_eq!(a, b);
        // Delta + varint encoding: well under the 40-byte in-memory size.
        assert!(a.len() - TRACE_MAGIC.len() < events.len() * 12, "{} bytes", a.len());
    }

    #[test]
    fn multi_block_streams_carry_cycle_deltas_across_blocks() {
        let events: Vec<PipelineEvent> = (0..BLOCK_EVENTS as u64 * 2 + 37)
            .map(|i| PipelineEvent::Commit { cycle: i * 3 + 1_000_000, pc: 0x1000 + i * 8 })
            .collect();
        let decoded = decode_events(&encode_events(&events)).unwrap();
        assert_eq!(decoded.events, events);
        assert_eq!(decoded.blocks, 3);
    }

    #[test]
    fn torn_tail_is_tolerated_at_every_truncation_point() {
        let events = sample_events();
        let full = encode_events(&events);
        // (A file cut exactly at the magic is just an empty log.)
        for cut in TRACE_MAGIC.len() + 1..full.len() {
            let decoded = decode_events(&full[..cut]).expect("torn tail is not an error");
            assert!(decoded.torn_tail, "cut at {cut} must read as torn");
            assert!(decoded.events.is_empty(), "the only block is incomplete");
        }
        // Torn *second* block: the first block's events survive.
        let many: Vec<PipelineEvent> = (0..BLOCK_EVENTS as u64 + 10)
            .map(|i| PipelineEvent::Commit { cycle: i, pc: i })
            .collect();
        let bytes = encode_events(&many);
        let decoded = decode_events(&bytes[..bytes.len() - 3]).unwrap();
        assert!(decoded.torn_tail);
        assert_eq!(decoded.blocks, 1);
        assert_eq!(decoded.events, many[..BLOCK_EVENTS]);
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let events = sample_events();
        let mut bytes = encode_events(&events);
        let payload_mid = TRACE_MAGIC.len() + 6; // inside the first payload
        bytes[payload_mid] ^= 0x40;
        assert_eq!(decode_events(&bytes), Err(TraceError::DigestMismatch { block: 0 }));
    }

    #[test]
    fn corrupting_the_final_complete_block_is_still_hard() {
        // Unlike a torn tail, a *complete* final block with a bad digest is
        // corruption, exactly as the journal treats its final line.
        let events = sample_events();
        let mut bytes = encode_events(&events);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // flip the digest itself
        assert_eq!(decode_events(&bytes), Err(TraceError::DigestMismatch { block: 0 }));
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(decode_events(b"not a trace at all"), Err(TraceError::Header));
        assert_eq!(decode_events(&[]), Err(TraceError::Header));
    }

    #[test]
    fn unknown_tag_with_valid_digest_is_corrupt() {
        let mut bytes = TRACE_MAGIC.to_vec();
        let payload = vec![99u8, 0u8]; // tag 99, delta 0
        put_varint(&mut bytes, payload.len() as u64);
        let digest = fnv1a(&payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&digest.to_le_bytes());
        assert_eq!(
            decode_events(&bytes),
            Err(TraceError::Corrupt { block: 0, reason: "unknown event tag" })
        );
    }

    #[test]
    fn varint_round_trips_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        for d in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }

    #[test]
    fn non_monotonic_cycles_round_trip() {
        let events = vec![
            PipelineEvent::Commit { cycle: u64::MAX, pc: 1 },
            PipelineEvent::Commit { cycle: 0, pc: 2 },
            PipelineEvent::Commit { cycle: 5, pc: 3 },
            PipelineEvent::Commit { cycle: 2, pc: 4 },
        ];
        assert_eq!(decode_events(&encode_events(&events)).unwrap().events, events);
    }

    #[test]
    fn fs_sink_writes_atomically_named_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("specrun_trace_fmt_{}.trace", std::process::id()));
        let events = sample_events();
        write_trace_file(&path, &events).unwrap();
        let decoded = read_trace_file(&path).unwrap();
        assert_eq!(decoded.events, events);
        assert!(!path.with_extension("trace.tmp").exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_trace_file_distinguishes_io_from_decode() {
        let missing = Path::new("/nonexistent/specrun.trace");
        assert!(matches!(read_trace_file(missing), Err(TraceFileError::Io(_))));
        let dir = std::env::temp_dir();
        let path = dir.join(format!("specrun_trace_bad_{}.trace", std::process::id()));
        std::fs::write(&path, b"garbage").unwrap();
        assert!(matches!(read_trace_file(&path), Err(TraceFileError::Decode(TraceError::Header))));
        let _ = std::fs::remove_file(&path);
    }
}
