//! Property tests for the trace subsystem: the codec round-trips
//! arbitrary event streams, and record→replay through a fresh
//! `CountingObserver` reconciles bit-identically with the live run's
//! `CpuStats` — the detached analysis is as good as having watched live.

use proptest::prelude::*;
use specrun_cpu::probe::{CountingObserver, PipelineEvent};
use specrun_cpu::{Core, CpuConfig};
use specrun_isa::{AluOp, IntReg, MemWidth, Program, ProgramBuilder};
use specrun_mem::HitLevel;
use specrun_trace::{decode_events, encode_events, replay, RecordingObserver};

fn r(i: u8) -> IntReg {
    IntReg::new(i).unwrap()
}

/// One step of a random straight-line program, with occasional flushed
/// loads to provoke runahead episodes (the event-richest pipeline state).
#[derive(Debug, Clone)]
enum Op {
    Alu(AluOp, u8, u8, u8),
    Li(u8, i32),
    Store(u8, u32),
    Load(u8, u32),
    FlushedLoad(u8, u32),
}

fn op() -> impl Strategy<Value = Op> {
    let alu = prop_oneof![Just(AluOp::Add), Just(AluOp::Sub), Just(AluOp::Xor), Just(AluOp::Mul),];
    prop_oneof![
        (alu, 1u8..=8, 1u8..=8, 1u8..=8).prop_map(|(op, d, a, b)| Op::Alu(op, d, a, b)),
        (1u8..=8, any::<i32>()).prop_map(|(d, v)| Op::Li(d, v)),
        (1u8..=8, 0u32..32).prop_map(|(s, slot)| Op::Store(s, slot)),
        (1u8..=8, 0u32..32).prop_map(|(d, slot)| Op::Load(d, slot)),
        (1u8..=8, 0u32..32).prop_map(|(d, slot)| Op::FlushedLoad(d, slot)),
    ]
}

fn build(ops: &[Op]) -> Program {
    const DATA: i32 = 0x20000;
    let mut b = ProgramBuilder::new(0x1000);
    b.li(r(9), DATA);
    for op in ops {
        match *op {
            Op::Alu(alu, d, a, bb) => {
                b.alu(alu, r(d), r(a), r(bb));
            }
            Op::Li(d, v) => {
                b.li(r(d), v);
            }
            Op::Store(s, slot) => {
                b.store(MemWidth::B8, r(s), r(9), slot as i32 * 8);
            }
            Op::Load(d, slot) => {
                b.load(MemWidth::B8, r(d), r(9), slot as i32 * 8);
            }
            Op::FlushedLoad(d, slot) => {
                b.flush(r(9), slot as i32 * 8);
                b.load(MemWidth::B8, r(d), r(9), slot as i32 * 8);
                b.nops(40);
            }
        }
    }
    b.halt();
    b.build().expect("random program is closed")
}

fn event() -> impl Strategy<Value = PipelineEvent> {
    let level = prop_oneof![
        Just(HitLevel::L1),
        Just(HitLevel::L2),
        Just(HitLevel::L3),
        Just(HitLevel::Mem),
    ];
    prop_oneof![
        (any::<u64>(), any::<u64>())
            .prop_map(|(cycle, stall_pc)| PipelineEvent::RunaheadEnter { cycle, stall_pc }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(cycle, window)| PipelineEvent::RunaheadExit { cycle, window }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(cycle, squashed)| PipelineEvent::Squash { cycle, squashed }),
        (any::<u64>(), any::<u64>()).prop_map(|(cycle, pc)| PipelineEvent::Commit { cycle, pc }),
        (any::<u64>(), any::<u64>(), any::<bool>(), any::<bool>()).prop_map(
            |(cycle, pc, taken, mispredicted)| PipelineEvent::BranchResolved {
                cycle,
                pc,
                taken,
                mispredicted
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
            |(cycle, pc, addr, tainted)| PipelineEvent::TransientLoad { cycle, pc, addr, tainted }
        ),
        (any::<u64>(), level, any::<u64>(), any::<bool>()).prop_map(
            |(cycle, level, line, transient)| PipelineEvent::CacheFill {
                cycle,
                level,
                line,
                transient
            }
        ),
        (any::<u64>(), any::<u64>()).prop_map(|(cycle, line)| PipelineEvent::Flush { cycle, line }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The codec is lossless on arbitrary (even non-monotonic) streams.
    #[test]
    fn codec_round_trips_arbitrary_streams(
        events in proptest::collection::vec(event(), 0..200)
    ) {
        let decoded = decode_events(&encode_events(&events)).unwrap();
        prop_assert_eq!(decoded.events, events);
        prop_assert!(!decoded.torn_tail);
    }

    /// Record → encode → decode → replay through a fresh CountingObserver
    /// reconciles bit-identically with the live run's CpuStats, on
    /// arbitrary programs across machine variants. This is the lossless
    /// guarantee: the log alone carries everything the live analysis saw.
    #[test]
    fn record_replay_reconciles_with_live_cpu_stats(
        ops in proptest::collection::vec(op(), 1..40)
    ) {
        let program = build(&ops);
        for base in [CpuConfig::no_runahead(), CpuConfig::default(), CpuConfig::secure_runahead()] {
            let mut core = Core::with_observer(base, RecordingObserver::new());
            core.load_program(&program);
            core.run(5_000_000);
            let stats = *core.stats();
            let recorded = core.into_observer();
            let decoded = decode_events(&recorded.encode()).unwrap();
            prop_assert_eq!(decoded.events.as_slice(), recorded.events());
            let mut counts = CountingObserver::default();
            replay(&decoded.events, &mut counts);
            prop_assert_eq!(counts.runahead_enters, stats.runahead_entries);
            prop_assert_eq!(counts.runahead_exits, stats.runahead_exits);
            prop_assert_eq!(counts.squashed_total, stats.squashed);
            prop_assert_eq!(counts.commits, stats.committed);
            prop_assert_eq!(counts.mispredicts, stats.branch_mispredicts);
        }
    }
}
