//! Deterministic pseudo-random numbers for workload generation.
//!
//! A local SplitMix64 keeps workload layouts bit-identical across platforms
//! and crate versions — important because Fig. 7's IPC comparisons must be
//! reproducible.

/// SplitMix64 generator (public-domain constants).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_values_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "overwhelmingly likely");
    }
}
