//! Declarative fork campaigns: one [`CampaignSpec`] fanned out to N
//! sessions over the supervised executor, aggregated per shard.
//!
//! A campaign is a matrix: shared geometry (layout, warm-up, machine
//! knobs, victim scale) crossed with per-shard axes (gadget × policy ×
//! nop slide) and a per-unit axis (the planted secrets). The spec expands
//! to `shards × secrets` sessions, but the executor never materializes
//! them: each *shard* is one work unit of
//! [`supervised_map_with`], and
//! the shard runner is expected to warm **one** snapshot machine per
//! shard, fork a session from it per secret (copy-on-write pages, shared
//! predecoded programs — see `specrun_mem::BackingStore` and
//! `specrun::pool`), and fold every outcome into a streaming
//! [`ShardStats`] instead of collecting per-session results.
//!
//! This module is deliberately *data plus generic execution*: it knows
//! nothing about sessions. The fork bridge that turns a [`ShardSpec`]
//! into warmed machines lives in `specrun::pool` (the crate that owns
//! sessions), mirroring how the fuzz [`Plan`](crate::plan::Plan) grammar
//! here pairs with `specrun::plan`.
//!
//! ```
//! use specrun_workloads::clock::WallClock;
//! use specrun_workloads::pool::{CampaignSpec, SessionPool, ShardStats};
//!
//! let spec = CampaignSpec::paper_matrix();
//! assert_eq!(spec.shards.len(), 8, "the paper's PHT/BTB/RSB × policy matrix");
//! let pool = SessionPool::new(2);
//! // A stand-in runner: real campaigns fork sessions per secret here.
//! let report = pool.run_with(&spec, &WallClock::new(), |spec, _shard, _ctx| {
//!     let mut stats = ShardStats::default();
//!     for &secret in &spec.secrets {
//!         stats.record(Some(secret), secret, 1, 0, u64::from(secret));
//!     }
//!     Ok(stats)
//! });
//! assert_eq!(report.shards.len(), 8);
//! let metrics = report.metrics();
//! assert_eq!(metrics.get("pht_runahead_units"), Some(spec.secrets.len() as f64));
//! assert_eq!(metrics.get("total_leaks"), Some(spec.unit_count() as f64));
//! ```

use crate::clock::Clock;
use crate::harness::RunError;
use crate::metrics::{metric_key, MetricSet, MetricSource};
use crate::plan::{GadgetKind, KnobSpec, PlanLayout, PlanPolicy, WarmStep};
use crate::supervisor::{supervised_map_with, SupervisorConfig, UnitCtx, UnitOutcome};

/// One cell of the campaign matrix: which gadget, under which policy,
/// with how long a nop slide. Everything else a shard needs (layout,
/// knobs, warm-up, victim scale, secrets) is campaign-global, which is
/// exactly what makes one warmed snapshot per shard sufficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Gadget kind of the shard's victim.
    pub gadget: GadgetKind,
    /// Machine policy the shard's sessions run under.
    pub policy: PlanPolicy,
    /// Nops between bounds check and secret access (0 = Fig. 9 shape,
    /// beyond the ROB = Fig. 11 shape).
    pub nop_slide: u32,
}

impl ShardSpec {
    /// Stable artifact/metric label, e.g. `pht_runahead` or
    /// `pht_runahead_s300` when the slide is nonzero.
    pub fn label(&self) -> String {
        let base = format!(
            "{}_{}",
            self.gadget.label().to_ascii_lowercase(),
            self.policy.label().to_ascii_lowercase()
        );
        if self.nop_slide == 0 {
            base
        } else {
            format!("{base}_s{}", self.nop_slide)
        }
    }
}

/// A declarative fork campaign: shared geometry plus the shard and secret
/// axes. See the [module docs](self) for the execution model and
/// `specrun-lab pool spec` for the JSON rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign seed, recorded in artifacts (supervision backoff derives
    /// from it; the attack itself is deterministic and does not use it).
    pub seed: u64,
    /// Memory geometry shared by every shard.
    pub layout: PlanLayout,
    /// Machine knobs applied on top of every shard's policy.
    pub knobs: KnobSpec,
    /// Cache warm-up steps applied to every shard's snapshot.
    pub warm: Vec<WarmStep>,
    /// PHT training iterations.
    pub training_rounds: u32,
    /// Filler between victim call and probe (see
    /// [`VictimSpec`](crate::plan::VictimSpec)).
    pub attack_filler: u32,
    /// Cycle budget per program run.
    pub max_cycles: u64,
    /// The per-unit axis: one forked session per planted secret, per
    /// shard. Secrets must be nonzero (probe entry 0 is excluded from the
    /// channel).
    pub secrets: Vec<u8>,
    /// The per-shard axes.
    pub shards: Vec<ShardSpec>,
}

impl CampaignSpec {
    /// The full paper matrix as one campaign — the eight PHT/BTB/RSB ×
    /// policy sweeps the per-figure scenarios run one at a time:
    /// vulnerable runahead (Fig. 9 and Fig. 11 shapes), the no-runahead
    /// baseline, both §6 defenses, and the §4.4 BTB/RSB variants. Every
    /// shard except the Fig. 9 one uses the Fig. 11 slide (> ROB): with no
    /// slide plain speculation reaches the gadget on *any* machine
    /// (ordinary Spectre), so only the long-slide shape isolates the
    /// runahead channel that the paper's variants ride and its defenses
    /// block.
    pub fn paper_matrix() -> CampaignSpec {
        const FIG11_SLIDE: u32 = 300;
        CampaignSpec {
            seed: 0xf199,
            layout: PlanLayout::paper_default(),
            knobs: KnobSpec::default(),
            warm: Vec::new(),
            training_rounds: 24,
            attack_filler: 1200,
            max_cycles: 3_000_000,
            secrets: vec![86, 127, 201],
            shards: vec![
                ShardSpec { gadget: GadgetKind::Pht, policy: PlanPolicy::Runahead, nop_slide: 0 },
                ShardSpec {
                    gadget: GadgetKind::Pht,
                    policy: PlanPolicy::Runahead,
                    nop_slide: FIG11_SLIDE,
                },
                ShardSpec {
                    gadget: GadgetKind::Pht,
                    policy: PlanPolicy::NoRunahead,
                    nop_slide: FIG11_SLIDE,
                },
                ShardSpec {
                    gadget: GadgetKind::Pht,
                    policy: PlanPolicy::Secure,
                    nop_slide: FIG11_SLIDE,
                },
                ShardSpec {
                    gadget: GadgetKind::Pht,
                    policy: PlanPolicy::SkipInv,
                    nop_slide: FIG11_SLIDE,
                },
                ShardSpec {
                    gadget: GadgetKind::Btb,
                    policy: PlanPolicy::Runahead,
                    nop_slide: FIG11_SLIDE,
                },
                ShardSpec {
                    gadget: GadgetKind::Btb,
                    policy: PlanPolicy::Secure,
                    nop_slide: FIG11_SLIDE,
                },
                ShardSpec {
                    gadget: GadgetKind::Rsb,
                    policy: PlanPolicy::Runahead,
                    nop_slide: FIG11_SLIDE,
                },
            ],
        }
    }

    /// Total sessions the spec expands to: `shards × secrets`.
    pub fn unit_count(&self) -> u64 {
        self.shards.len() as u64 * self.secrets.len() as u64
    }

    /// Structural soundness: a valid layout, at least one shard, at least
    /// one secret, every secret nonzero, every warm step inside the
    /// scratch region.
    pub fn is_valid(&self) -> bool {
        self.layout.is_valid()
            && !self.shards.is_empty()
            && !self.secrets.is_empty()
            && self.secrets.iter().all(|&s| s != 0)
            && self.warm.iter().all(|w| w.addr >= crate::plan::WARM_SCRATCH_BASE)
    }

    /// Renders the spec as deterministic, insertion-ordered JSON —
    /// the document `specrun-lab pool run` accepts. `indent` is the
    /// nesting depth of the opening brace's line; the first line carries
    /// no leading whitespace.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = "  ".repeat(indent + 1);
        let pad2 = "  ".repeat(indent + 2);
        let close = "  ".repeat(indent);
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("{pad}\"pool_spec\": \"specrun\",\n"));
        // As a string: u64 seeds above 2^53 would round through f64.
        s.push_str(&format!("{pad}\"seed\": \"{}\",\n", self.seed));
        s.push_str(&format!("{pad}\"training_rounds\": {},\n", self.training_rounds));
        s.push_str(&format!("{pad}\"attack_filler\": {},\n", self.attack_filler));
        s.push_str(&format!("{pad}\"max_cycles\": {},\n", self.max_cycles));
        s.push_str(&format!("{pad}\"secrets\": ["));
        for (i, secret) in self.secrets.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&secret.to_string());
        }
        s.push_str("],\n");
        let l = &self.layout;
        s.push_str(&format!("{pad}\"layout\": {{\n"));
        s.push_str(&format!("{pad2}\"bound_addr\": \"{:#x}\",\n", l.bound_addr));
        s.push_str(&format!("{pad2}\"bound_value\": {},\n", l.bound_value));
        s.push_str(&format!("{pad2}\"array1_base\": \"{:#x}\",\n", l.array1_base));
        s.push_str(&format!("{pad2}\"secret_addr\": \"{:#x}\",\n", l.secret_addr));
        s.push_str(&format!("{pad2}\"probe_base\": \"{:#x}\",\n", l.probe_base));
        s.push_str(&format!("{pad2}\"probe_stride\": {},\n", l.probe_stride));
        s.push_str(&format!("{pad2}\"probe_entries\": {},\n", l.probe_entries));
        s.push_str(&format!("{pad2}\"results_base\": \"{:#x}\"\n", l.results_base));
        s.push_str(&format!("{pad}}},\n"));
        s.push_str(&format!("{pad}\"warm\": ["));
        for (i, w) in self.warm.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n{pad2}{{\"addr\": \"{:#x}\", \"len\": {}}}", w.addr, w.len));
        }
        if self.warm.is_empty() {
            s.push_str("],\n");
        } else {
            s.push_str(&format!("\n{pad}],\n"));
        }
        let k = &self.knobs;
        s.push_str(&format!("{pad}\"knobs\": {{\n"));
        s.push_str(&format!("{pad2}\"rob_entries\": {},\n", k.rob_entries));
        s.push_str(&format!("{pad2}\"lq_entries\": {},\n", k.lq_entries));
        s.push_str(&format!("{pad2}\"sq_entries\": {},\n", k.sq_entries));
        s.push_str(&format!("{pad2}\"enter_penalty\": {},\n", k.enter_penalty));
        s.push_str(&format!("{pad2}\"exit_penalty\": {},\n", k.exit_penalty));
        s.push_str(&format!("{pad2}\"train_predictor\": {},\n", k.train_predictor));
        s.push_str(&format!("{pad2}\"checkpoint_predictor\": {},\n", k.checkpoint_predictor));
        s.push_str(&format!("{pad2}\"vector_lanes\": {},\n", k.vector_lanes));
        s.push_str(&format!("{pad2}\"min_episode_yield\": {},\n", k.min_episode_yield));
        s.push_str(&format!("{pad2}\"useless_backoff\": {},\n", k.useless_backoff));
        s.push_str(&format!("{pad2}\"runahead_cache_bytes\": {},\n", k.runahead_cache_bytes));
        s.push_str(&format!("{pad2}\"sl_entries\": {},\n", k.sl_entries));
        s.push_str(&format!("{pad2}\"sl_latency\": {},\n", k.sl_latency));
        s.push_str(&format!("{pad2}\"fast_forward\": {}\n", k.fast_forward));
        s.push_str(&format!("{pad}}},\n"));
        s.push_str(&format!("{pad}\"shards\": [\n"));
        for (i, shard) in self.shards.iter().enumerate() {
            s.push_str(&format!(
                "{pad2}{{\"gadget\": \"{}\", \"policy\": \"{}\", \"nop_slide\": {}}}{}\n",
                shard.gadget.label(),
                shard.policy.label(),
                shard.nop_slide,
                if i + 1 < self.shards.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!("{pad}]\n"));
        s.push_str(&format!("{close}}}"));
        s
    }
}

/// Streaming per-shard aggregation: the shard runner folds every forked
/// session's outcome into this accumulator and the per-session results are
/// dropped on the spot — a million-unit shard costs a constant few words.
///
/// The default value is the well-formed **empty** shard: all counts zero
/// and [`ShardStats::leak_rate`] exactly `0.0` (never NaN), which is what
/// a shard that the circuit breaker skipped contributes to the report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Sessions aggregated.
    pub units: u64,
    /// Sessions whose channel recovered the planted secret.
    pub leaks: u64,
    /// Sessions whose channel recovered a *different* byte.
    pub wrong: u64,
    /// Sessions whose channel recovered nothing.
    pub silent: u64,
    /// Total runahead episodes across the shard's sessions.
    pub runahead_entries: u64,
    /// Total unresolved INV-source branches (the SPECRUN signature).
    pub inv_branches: u64,
    /// Order-sensitive FNV-style fold of every session's architectural
    /// fingerprint: two runs of the same shard must agree bit for bit, so
    /// this single word is the repro gate's whole-shard equality check.
    pub fingerprint: u64,
}

impl ShardStats {
    /// Folds one session outcome into the accumulator.
    pub fn record(
        &mut self,
        leaked: Option<u8>,
        expected: u8,
        runahead_entries: u64,
        inv_branches: u64,
        fingerprint: u64,
    ) {
        self.units += 1;
        match leaked {
            Some(byte) if byte == expected => self.leaks += 1,
            Some(_) => self.wrong += 1,
            None => self.silent += 1,
        }
        self.runahead_entries += runahead_entries;
        self.inv_branches += inv_branches;
        self.fingerprint = self
            .fingerprint
            .wrapping_mul(0x0000_0100_0000_01b3)
            .rotate_left(17)
            .wrapping_add(fingerprint ^ u64::from(expected));
    }

    /// Fraction of units that leaked their secret; `0.0` for an empty
    /// shard (a breaker-skipped shard must aggregate to a well-formed
    /// zero-count entry, not a NaN mean).
    pub fn leak_rate(&self) -> f64 {
        if self.units == 0 {
            0.0
        } else {
            self.leaks as f64 / self.units as f64
        }
    }
}

impl MetricSource for ShardStats {
    fn emit_metrics(&self, prefix: &str, out: &mut MetricSet) {
        out.push(metric_key(prefix, "units"), self.units as f64);
        out.push(metric_key(prefix, "leaks"), self.leaks as f64);
        out.push(metric_key(prefix, "wrong"), self.wrong as f64);
        out.push(metric_key(prefix, "silent"), self.silent as f64);
        out.push(metric_key(prefix, "leak_rate"), self.leak_rate());
        out.push(metric_key(prefix, "runahead_entries"), self.runahead_entries as f64);
        out.push(metric_key(prefix, "inv_branches"), self.inv_branches as f64);
    }
}

/// How one shard ended under supervision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardStatus {
    /// The shard ran to completion (possibly after retries).
    Done {
        /// Attempts consumed, counting the successful one.
        attempts: u32,
    },
    /// Every allowed attempt failed.
    Failed(String),
    /// The shard failed identically twice and was quarantined.
    Quarantined(String),
    /// The circuit breaker tripped before the shard started.
    Skipped,
}

impl ShardStatus {
    /// Stable artifact label.
    pub fn label(&self) -> &'static str {
        match self {
            ShardStatus::Done { .. } => "done",
            ShardStatus::Failed(_) => "failed",
            ShardStatus::Quarantined(_) => "quarantined",
            ShardStatus::Skipped => "skipped",
        }
    }
}

/// One shard's contribution to a [`PoolReport`]. A shard that did not
/// complete carries the empty [`ShardStats`] — zero counts, `0.0` rate —
/// so aggregation over a partially-run campaign stays well-formed.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// The shard's matrix cell.
    pub spec: ShardSpec,
    /// The streamed aggregate (empty unless the shard completed).
    pub stats: ShardStats,
    /// How the shard ended.
    pub status: ShardStatus,
}

/// A completed (possibly partial) campaign: per-shard outcomes in spec
/// order plus the breaker verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolReport {
    /// Per-shard outcomes, index-aligned with [`CampaignSpec::shards`].
    pub shards: Vec<ShardOutcome>,
    /// Whether the circuit breaker tripped (some shards are `Skipped`).
    pub breaker_tripped: bool,
}

impl PoolReport {
    /// Shards that ran to completion.
    pub fn completed(&self) -> u64 {
        self.shards.iter().filter(|s| matches!(s.status, ShardStatus::Done { .. })).count() as u64
    }

    /// Total sessions aggregated across completed shards.
    pub fn total_units(&self) -> u64 {
        self.shards.iter().map(|s| s.stats.units).sum()
    }

    /// Whether every shard completed.
    pub fn all_done(&self) -> bool {
        self.completed() == self.shards.len() as u64
    }

    /// Flattens the campaign into one deterministic [`MetricSet`]: every
    /// shard's stats under its [`ShardSpec::label`] prefix — including
    /// zero-count entries for shards that never ran — then the
    /// campaign-level totals.
    pub fn metrics(&self) -> MetricSet {
        let mut out = MetricSet::new();
        for shard in &self.shards {
            shard.stats.emit_metrics(&shard.spec.label(), &mut out);
        }
        out.push("total_units", self.total_units() as f64);
        out.push("total_leaks", self.shards.iter().map(|s| s.stats.leaks).sum::<u64>() as f64);
        out.push("shards_done", self.completed() as f64);
        out.push(
            "shards_skipped",
            self.shards.iter().filter(|s| s.status == ShardStatus::Skipped).count() as f64,
        );
        out
    }
}

/// The campaign executor: fans a [`CampaignSpec`]'s shards out over the
/// supervised work-stealing pool. The pool holds *how* to execute
/// (threads, supervision policy); *what* each shard does is the runner
/// closure, so this type stays free of any session dependency.
#[derive(Debug, Clone)]
pub struct SessionPool {
    /// Worker threads (`0` = all host cores, clamped like every harness).
    pub threads: usize,
    /// Supervision policy for the shard units.
    pub supervisor: SupervisorConfig,
}

impl SessionPool {
    /// A pool with passive supervision (no deadlines, retries or breaker).
    pub fn new(threads: usize) -> SessionPool {
        SessionPool { threads, supervisor: SupervisorConfig::default() }
    }

    /// Runs every shard of `spec` through `runner` and aggregates. The
    /// runner receives the campaign (for the shared geometry and secret
    /// axis), its shard, and the supervision context whose
    /// [`CancelToken`](crate::supervisor::CancelToken) it should attach to
    /// the machines it builds. Results arrive in spec order regardless of
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`CampaignSpec::is_valid`] — a malformed
    /// spec is a caller bug, not a per-shard failure.
    pub fn run_with<F>(&self, spec: &CampaignSpec, clock: &dyn Clock, runner: F) -> PoolReport
    where
        F: Fn(&CampaignSpec, &ShardSpec, &UnitCtx) -> Result<ShardStats, RunError> + Sync,
    {
        assert!(spec.is_valid(), "invalid campaign spec: {spec:?}");
        let cfg = SupervisorConfig { seed: spec.seed, ..self.supervisor.clone() };
        let threads =
            if self.threads == 0 { crate::harness::default_threads() } else { self.threads };
        let report = supervised_map_with(
            &spec.shards,
            threads,
            &cfg,
            clock,
            |_, shard, ctx| runner(spec, shard, ctx),
            |_, _| {},
        );
        let shards = spec
            .shards
            .iter()
            .zip(report.outcomes)
            .map(|(&shard, outcome)| {
                let (stats, status) = match outcome {
                    UnitOutcome::Done { result, attempts } => {
                        (result, ShardStatus::Done { attempts })
                    }
                    UnitOutcome::Failed { error, .. } => {
                        (ShardStats::default(), ShardStatus::Failed(error.to_string()))
                    }
                    UnitOutcome::Quarantined { error, .. } => {
                        (ShardStats::default(), ShardStatus::Quarantined(error.to_string()))
                    }
                    UnitOutcome::Skipped => (ShardStats::default(), ShardStatus::Skipped),
                };
                ShardOutcome { spec: shard, stats, status }
            })
            .collect();
        PoolReport { shards, breaker_tripped: report.breaker_tripped }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{ChaosClock, WallClock};

    fn counting_runner(
        spec: &CampaignSpec,
        _shard: &ShardSpec,
        _ctx: &UnitCtx,
    ) -> Result<ShardStats, RunError> {
        let mut stats = ShardStats::default();
        for &secret in &spec.secrets {
            stats.record(Some(secret), secret, 2, 1, u64::from(secret) << 8);
        }
        Ok(stats)
    }

    #[test]
    fn paper_matrix_is_valid_and_covers_all_gadgets() {
        let spec = CampaignSpec::paper_matrix();
        assert!(spec.is_valid());
        assert_eq!(spec.shards.len(), 8);
        assert_eq!(spec.unit_count(), 24);
        for gadget in [GadgetKind::Pht, GadgetKind::Btb, GadgetKind::Rsb] {
            assert!(spec.shards.iter().any(|s| s.gadget == gadget), "{gadget:?} missing");
        }
        let labels: Vec<String> = spec.shards.iter().map(ShardSpec::label).collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len(), "shard labels must be unique: {labels:?}");
    }

    #[test]
    fn shard_labels_encode_slide() {
        let spec =
            ShardSpec { gadget: GadgetKind::Pht, policy: PlanPolicy::Runahead, nop_slide: 0 };
        assert_eq!(spec.label(), "pht_runahead");
        let slid = ShardSpec { nop_slide: 300, ..spec };
        assert_eq!(slid.label(), "pht_runahead_s300");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut spec = CampaignSpec::paper_matrix();
        spec.secrets = vec![0];
        assert!(!spec.is_valid(), "secret 0 is unrecoverable by construction");
        let mut spec = CampaignSpec::paper_matrix();
        spec.shards.clear();
        assert!(!spec.is_valid());
        let mut spec = CampaignSpec::paper_matrix();
        spec.secrets.clear();
        assert!(!spec.is_valid());
    }

    #[test]
    fn spec_json_is_deterministic_and_self_describing() {
        let spec = CampaignSpec::paper_matrix();
        let a = spec.to_json(0);
        assert_eq!(a, spec.to_json(0));
        assert!(a.contains("\"pool_spec\": \"specrun\""));
        assert!(a.contains("\"seed\": \"61849\""));
        assert!(a.contains("\"secrets\": [86, 127, 201]"));
        assert!(a.contains("\"gadget\": \"Rsb\""));
        assert!(a.contains("\"nop_slide\": 300"));
    }

    #[test]
    fn pool_streams_shard_stats_in_spec_order() {
        let spec = CampaignSpec::paper_matrix();
        let report = SessionPool::new(4).run_with(&spec, &WallClock::new(), counting_runner);
        assert!(report.all_done());
        assert!(!report.breaker_tripped);
        assert_eq!(report.total_units(), spec.unit_count());
        for (outcome, shard) in report.shards.iter().zip(&spec.shards) {
            assert_eq!(outcome.spec, *shard, "outcomes keep spec order");
            assert_eq!(outcome.stats.units, spec.secrets.len() as u64);
            assert_eq!(outcome.stats.leak_rate(), 1.0);
        }
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let spec = CampaignSpec::paper_matrix();
        let clock = WallClock::new();
        let one = SessionPool::new(1).run_with(&spec, &clock, counting_runner);
        let many = SessionPool::new(8).run_with(&spec, &clock, counting_runner);
        assert_eq!(one, many);
        assert_eq!(one.metrics(), many.metrics());
    }

    #[test]
    fn empty_shard_aggregates_to_zero_counts_not_nan() {
        // Regression: a breaker-skipped shard contributes a well-formed
        // zero-count entry. A NaN mean would panic inside MetricSet::push.
        let stats = ShardStats::default();
        assert_eq!(stats.leak_rate(), 0.0);
        let mut set = MetricSet::new();
        stats.emit_metrics("ghost", &mut set);
        assert_eq!(set.get("ghost_units"), Some(0.0));
        assert_eq!(set.get("ghost_leak_rate"), Some(0.0));
        assert!(set.entries().iter().all(|(_, v)| v.is_finite()));
    }

    #[test]
    fn breaker_trip_yields_skipped_shards_with_wellformed_metrics() {
        let mut spec = CampaignSpec::paper_matrix();
        spec.seed = 7;
        let clock = ChaosClock::new();
        let mut pool = SessionPool::new(1);
        pool.supervisor.max_failure_rate = 0.2;
        pool.supervisor.breaker_min_units = 2;
        let report = pool.run_with(&spec, &clock, |_, shard, _| {
            Err::<ShardStats, _>(RunError::Io { what: shard.label(), detail: "injected".into() })
        });
        assert!(report.breaker_tripped);
        assert!(report.shards.iter().any(|s| s.status == ShardStatus::Skipped));
        // The whole-campaign aggregation over failed + skipped shards must
        // still be finite and zero-counted (the NaN-mean regression).
        let metrics = report.metrics();
        assert_eq!(metrics.get("total_units"), Some(0.0));
        assert_eq!(metrics.get("shards_done"), Some(0.0));
        assert!(metrics.entries().iter().all(|(_, v)| v.is_finite()));
        assert!(metrics.get("shards_skipped").unwrap() > 0.0);
    }

    #[test]
    fn fingerprint_fold_is_order_sensitive_and_deterministic() {
        let mut a = ShardStats::default();
        a.record(Some(1), 1, 0, 0, 100);
        a.record(Some(2), 2, 0, 0, 200);
        let mut b = ShardStats::default();
        b.record(Some(2), 2, 0, 0, 200);
        b.record(Some(1), 1, 0, 0, 100);
        assert_ne!(a.fingerprint, b.fingerprint, "the fold is order-sensitive");
        let mut c = ShardStats::default();
        c.record(Some(1), 1, 0, 0, 100);
        c.record(Some(2), 2, 0, 0, 200);
        assert_eq!(a, c, "same sequence, same aggregate");
    }
}
