//! The six SPEC2006-like kernels of Fig. 7.
//!
//! Each kernel reproduces the *memory behaviour* its SPEC namesake is known
//! for in the literature, scaled to simulator-friendly sizes. The paper uses
//! the benchmarks purely as memory-bound IPC workloads to demonstrate
//! runahead's speedup, so matching the access patterns — streams, stencils,
//! pointer chases, gather-ish sweeps — preserves what the experiment
//! measures. Memory sweeps touch fresh (cold) lines like the
//! cache-thrashing originals, diluted with the dependent integer arithmetic
//! real kernels carry between accesses.

use specrun_isa::{AluOp, FpOp, FpReg, IntReg, Program, ProgramBuilder};

use crate::rng::SplitMix64;

/// A runnable workload: its program and the memory image it needs.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (the SPEC2006 benchmark it models).
    pub name: &'static str,
    /// The kernel program.
    pub program: Program,
    /// Initial memory contents as `(address, bytes)` chunks.
    pub setup: Vec<(u64, Vec<u8>)>,
}

fn r(i: u8) -> IntReg {
    IntReg::new(i).unwrap()
}

fn f(i: u8) -> FpReg {
    FpReg::new(i).unwrap()
}

const TEXT_BASE: u64 = 0x1000;
const DATA_A: u64 = 0x0400_0000;
const DATA_B: u64 = 0x0800_0000;
const DATA_C: u64 = 0x0c00_0000;
const LINE: i32 = 64;

/// Emits the canonical counted loop: `for r20 in 0..iters { body }` with the
/// loop counter in `r20`.
fn counted_loop(b: &mut ProgramBuilder, iters: u32, body: impl FnOnce(&mut ProgramBuilder)) {
    b.for_loop(r(20), iters as i32, body);
}

/// Emits `n` dependent integer ops on `r9` — the address-independent
/// arithmetic that dilutes memory stalls in real SPEC code.
fn compute_chain(b: &mut ProgramBuilder, n: u32) {
    for _ in 0..n {
        b.alui(AluOp::Add, r(9), r(9), 1);
    }
}

/// `429.mcf` — single-source shortest path over pointer-linked arcs:
/// a serial pointer chase (latency-bound, hard to prefetch) interleaved
/// with an independent strided sweep over arc costs (what runahead *can*
/// prefetch).
pub fn mcf(iters: u32) -> Workload {
    let nodes = 256; // 16 KiB of arcs: L2-resident after the first lap
                     // Random cyclic permutation of line-aligned nodes.
    let mut rng = SplitMix64::new(0x6d63_6600); // "mcf"
    let mut order: Vec<usize> = (0..nodes).collect();
    rng.shuffle(&mut order);
    let node_addr = |i: usize| DATA_A + (i as u64) * 64;
    let mut image = vec![0u8; nodes * 64];
    for w in 0..nodes {
        let from = order[w];
        let to = order[(w + 1) % nodes];
        image[from * 64..from * 64 + 8].copy_from_slice(&node_addr(to).to_le_bytes());
    }
    let mut b = ProgramBuilder::new(TEXT_BASE);
    b.li64(r(1), node_addr(order[0]));
    b.li64(r(2), DATA_B);
    b.li(r(7), 0);
    counted_loop(&mut b, iters, |b| {
        b.ld(r(1), r(1), 0); // chase to the next node (serial DRAM latency)
        for _ in 0..4 {
            // Scan the node's arcs: sweep-dominated, like real mcf.
            b.ld(r(6), r(2), 0);
            b.ld(r(8), r(2), 64);
            b.add(r(7), r(7), r(6));
            b.add(r(7), r(7), r(8));
            compute_chain(b, 16); // arc cost bookkeeping
            b.alui(AluOp::Add, r(2), r(2), 2 * LINE);
        }
    });
    b.halt();
    Workload { name: "mcf", program: b.build().expect("mcf closed"), setup: vec![(DATA_A, image)] }
}

/// A pure serial pointer chase over an L3-exceeding cyclic permutation:
/// every hop is a dependent DRAM miss with nothing else to execute. This is
/// the degenerate latency-bound workload runahead was invented for — and,
/// host-side, the stress test for the simulator's idle-cycle fast-forward
/// (the core is quiescent for most of every miss).
pub fn pointer_chase(iters: u32) -> Workload {
    let nodes = 128 * 1024; // 8 MiB of 64-byte nodes: twice the 4 MiB L3
    let mut rng = SplitMix64::new(0x6368_6173_6500); // "chase"
    let mut order: Vec<usize> = (0..nodes).collect();
    rng.shuffle(&mut order);
    let node_addr = |i: usize| DATA_A + (i as u64) * 64;
    let mut image = vec![0u8; nodes * 64];
    for w in 0..nodes {
        let from = order[w];
        let to = order[(w + 1) % nodes];
        image[from * 64..from * 64 + 8].copy_from_slice(&node_addr(to).to_le_bytes());
    }
    let mut b = ProgramBuilder::new(TEXT_BASE);
    b.li64(r(1), node_addr(order[0]));
    b.li(r(7), 0);
    counted_loop(&mut b, iters, |b| {
        b.ld(r(1), r(1), 0); // the only real work: chase to the next node
        b.add(r(7), r(7), r(1));
    });
    b.halt();
    Workload {
        name: "pointer_chase",
        program: b.build().expect("pointer_chase closed"),
        setup: vec![(DATA_A, image)],
    }
}

/// `470.lbm` — lattice-Boltzmann streaming: a forward stencil that reads
/// the current and next cell lines and writes a result stream. Almost pure
/// memory bandwidth with trivial FP.
pub fn lbm(iters: u32) -> Workload {
    let mut b = ProgramBuilder::new(TEXT_BASE);
    b.li64(r(1), DATA_A);
    b.li64(r(2), DATA_B);
    counted_loop(&mut b, iters, |b| {
        b.fld(f(0), r(1), 0);
        b.fp(FpOp::Add, f(1), f(0), f(0));
        b.fst(f(1), r(2), 0);
        compute_chain(b, 160); // collision/relaxation arithmetic
        b.alui(AluOp::Add, r(1), r(1), LINE);
        b.alui(AluOp::Add, r(2), r(2), LINE);
    });
    b.halt();
    Workload { name: "lbm", program: b.build().expect("lbm closed"), setup: Vec::new() }
}

/// `410.bwaves` — blast-wave solver: two wide input streams combined into
/// an output stream with multiply-add density typical of structured-grid
/// CFD.
pub fn bwaves(iters: u32) -> Workload {
    let mut b = ProgramBuilder::new(TEXT_BASE);
    b.li64(r(1), DATA_A);
    b.li64(r(2), DATA_B);
    b.li64(r(3), DATA_C);
    counted_loop(&mut b, iters, |b| {
        b.fld(f(0), r(1), 0);
        b.fld(f(1), r(2), 0);
        b.fp(FpOp::Mul, f(2), f(0), f(1));
        b.fst(f(2), r(3), 0);
        compute_chain(b, 144); // Jacobian evaluation between sweeps
        b.alui(AluOp::Add, r(1), r(1), LINE);
        b.alui(AluOp::Add, r(2), r(2), LINE);
        b.alui(AluOp::Add, r(3), r(3), LINE);
    });
    b.halt();
    Workload { name: "bwaves", program: b.build().expect("bwaves closed"), setup: Vec::new() }
}

/// `459.GemsFDTD` — finite-difference time domain: field updates reading
/// two neighbouring lines of `H` and the local `E` line, writing `E` back —
/// a read-modify-write stencil over three arrays.
pub fn gems_fdtd(iters: u32) -> Workload {
    let mut b = ProgramBuilder::new(TEXT_BASE);
    b.li64(r(1), DATA_A); // E
    b.li64(r(2), DATA_B); // H
    counted_loop(&mut b, iters, |b| {
        b.fld(f(0), r(1), 0);
        b.fld(f(1), r(2), 0);
        b.fp(FpOp::Sub, f(2), f(1), f(0));
        b.fst(f(2), r(1), 0);
        compute_chain(b, 128); // field-update coefficients
        b.alui(AluOp::Add, r(1), r(1), LINE);
        b.alui(AluOp::Add, r(2), r(2), LINE);
    });
    b.halt();
    Workload { name: "GemsFDTD", program: b.build().expect("gems closed"), setup: Vec::new() }
}

/// `481.wrf` — weather modelling: moderate arithmetic intensity (division
/// chains in the physics) over strided field reads; noticeably more
/// compute-bound than the pure streams, so runahead gains less.
pub fn wrf(iters: u32) -> Workload {
    let mut b = ProgramBuilder::new(TEXT_BASE);
    b.li64(r(1), DATA_A);
    b.li64(r(2), DATA_B);
    counted_loop(&mut b, iters, |b| {
        b.fld(f(0), r(1), 0);
        b.fld(f(1), r(1), 8);
        b.fp(FpOp::Div, f(2), f(0), f(1)); // physics: slow division chain
        b.fp(FpOp::Div, f(3), f(2), f(0));
        b.fst(f(3), r(2), 0);
        compute_chain(b, 112); // microphysics scalar code
        b.alui(AluOp::Add, r(1), r(1), LINE);
        b.alui(AluOp::Add, r(2), r(2), LINE);
    });
    b.halt();
    Workload { name: "wrf", program: b.build().expect("wrf closed"), setup: Vec::new() }
}

/// `434.zeusmp` — astrophysical MHD: mixed integer/FP work over a
/// two-line-stride sweep (covering more address space per iteration than
/// the dense streams).
pub fn zeusmp(iters: u32) -> Workload {
    let mut b = ProgramBuilder::new(TEXT_BASE);
    b.li64(r(1), DATA_A);
    b.li64(r(2), DATA_B);
    b.li(r(7), 0);
    counted_loop(&mut b, iters, |b| {
        b.ld(r(6), r(1), 0);
        b.add(r(7), r(7), r(6));
        b.alui(AluOp::Mul, r(8), r(6), 3);
        b.sd(r(7), r(2), 0);
        compute_chain(b, 176); // MHD source terms
        b.alui(AluOp::Add, r(1), r(1), LINE);
        b.alui(AluOp::Add, r(2), r(2), LINE);
    });
    b.halt();
    Workload { name: "zeusmp", program: b.build().expect("zeusmp closed"), setup: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_build() {
        for w in [mcf(100), lbm(100), bwaves(100), gems_fdtd(100), wrf(100), zeusmp(100)] {
            assert!(!w.program.is_empty(), "{}", w.name);
        }
    }

    #[test]
    fn mcf_pointer_graph_is_a_single_cycle() {
        let w = mcf(100);
        let (base, image) = &w.setup[0];
        assert_eq!(*base, DATA_A);
        let nodes = image.len() / 64;
        // Follow the chain; it must visit every node exactly once.
        let read_ptr = |addr: u64| {
            let off = (addr - DATA_A) as usize;
            u64::from_le_bytes(image[off..off + 8].try_into().unwrap())
        };
        let start = DATA_A; // node 0 is somewhere in the cycle
        let mut seen = std::collections::HashSet::new();
        let mut cur = start;
        for _ in 0..nodes {
            assert!(seen.insert(cur), "revisited {cur:#x} early");
            cur = read_ptr(cur);
        }
        assert_eq!(cur, start, "chain must close into a cycle");
    }

    #[test]
    fn kernels_are_deterministic() {
        assert_eq!(mcf(64).setup, mcf(64).setup);
        assert_eq!(lbm(64).program.insts(), lbm(64).program.insts());
    }
}
