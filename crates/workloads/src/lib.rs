//! # specrun-workloads
//!
//! SPEC2006-like synthetic kernels for the SPECRUN reproduction's Fig. 7
//! experiment: `zeusmp`, `wrf`, `bwaves`, `lbm`, `mcf` and `GemsFDTD`
//! stand-ins whose memory behaviour (streams, stencils, pointer chases)
//! matches what the originals are known for, plus an IPC harness comparing
//! the no-runahead and runahead machines.
//!
//! ```
//! use specrun_workloads::{kernels, ipc};
//! let workload = kernels::lbm(100);
//! let result = ipc::run_workload(&workload, specrun_cpu::CpuConfig::default(), 2_000_000);
//! assert!(result.ipc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod fuzz;
pub mod harness;
pub mod ipc;
pub mod kernels;
pub mod metrics;
pub mod plan;
pub mod pool;
pub mod rng;
pub mod supervisor;

pub use clock::{ChaosClock, Clock, WallClock};
pub use fuzz::shrink_plan;
pub use harness::{
    parallel_map, try_parallel_map, try_parallel_map_with, ConfigMatrix, RunError, Summary,
    TrialError, TrialSpec, MAX_THREADS,
};
pub use ipc::{
    compare, compare_with, geomean_speedup, run_workload_observed, try_run_workload,
    try_run_workload_observed, IpcComparison, IpcResult, DEFAULT_ITERS,
};
pub use kernels::Workload;
pub use metrics::{MetricSet, MetricSource};
pub use plan::{GadgetKind, KnobSpec, Plan, PlanLayout, PlanPolicy, VictimSpec, WarmStep};
pub use pool::{
    CampaignSpec, PoolReport, SessionPool, ShardOutcome, ShardSpec, ShardStats, ShardStatus,
};
pub use rng::SplitMix64;
pub use supervisor::{
    backoff_ms, supervised_map_with, SupervisedReport, SupervisorConfig, UnitCtx, UnitOutcome,
};

/// The full Fig. 7 suite in the paper's order, at the default scale.
pub fn fig7_suite() -> Vec<Workload> {
    suite_with_iters(DEFAULT_ITERS)
}

/// The Fig. 7 suite at a custom iteration count (smaller = faster tests).
pub fn suite_with_iters(iters: u32) -> Vec<Workload> {
    vec![
        kernels::zeusmp(iters),
        kernels::wrf(iters),
        kernels::bwaves(iters),
        kernels::lbm(iters),
        kernels::mcf(iters / 4), // pointer chase: each iteration is ~200 cycles
        kernels::gems_fdtd(iters),
    ]
}

/// Commonly used items for examples and tests.
pub mod prelude {
    pub use crate::harness::{parallel_map, ConfigMatrix, Summary};
    pub use crate::ipc::{compare, geomean_speedup, IpcComparison};
    pub use crate::kernels::Workload;
    pub use crate::metrics::{MetricSet, MetricSource};
    pub use crate::{fig7_suite, suite_with_iters};
}
