//! Metric extraction: a uniform way to flatten experiment results into
//! named numeric metrics.
//!
//! Every SPECRUN artifact — a Fig. 7 IPC comparison, a PoC outcome, a
//! window report — ultimately reduces to `name → number` pairs that the
//! campaign runner (`specrun-lab`) records, regression-checks and merges
//! into `LAB_report.json`. [`MetricSource`] is the extraction trait each
//! result type implements; [`MetricSet`] is the ordered, deterministic
//! sink they emit into (insertion order is preserved so serialized
//! artifacts are byte-stable across runs).
//!
//! ```
//! use specrun_workloads::metrics::{MetricSet, MetricSource};
//! use specrun_workloads::Summary;
//!
//! let mut set = MetricSet::new();
//! Summary::of([2.0, 4.0]).emit_metrics("ipc", &mut set);
//! assert_eq!(set.get("ipc_mean"), Some(3.0));
//! ```

use crate::harness::Summary;
use crate::ipc::{IpcComparison, IpcResult};

/// An ordered collection of named numeric metrics.
///
/// Keys are plain `snake_case` strings; insertion order is preserved and
/// duplicate keys are rejected (a sweep emitting the same key twice is a
/// labelling bug that would silently shadow data downstream).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricSet {
    entries: Vec<(String, f64)>,
}

impl MetricSet {
    /// An empty set.
    pub fn new() -> MetricSet {
        MetricSet::default()
    }

    /// Records `key = value`, keeping insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `key` was already recorded or `value` is NaN — both are
    /// producer bugs that must fail loudly, not corrupt an artifact.
    pub fn push(&mut self, key: impl Into<String>, value: f64) {
        let key = key.into();
        assert!(!value.is_nan(), "metric {key} is NaN");
        assert!(self.get(&key).is_none(), "duplicate metric key {key}");
        self.entries.push((key, value));
    }

    /// Looks a metric up by exact key.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.entries.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// The recorded metrics, in insertion order.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// Number of recorded metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends every metric of `other`, each key prefixed with `prefix_`.
    pub fn extend_prefixed(&mut self, prefix: &str, other: &MetricSet) {
        for (k, v) in &other.entries {
            self.push(format!("{prefix}_{k}"), *v);
        }
    }
}

/// Flattens a result type into named metrics under a key prefix.
///
/// Implementations emit every number a regression gate could care about;
/// the caller chooses the prefix (typically the kernel, machine or trial
/// label) so one [`MetricSet`] can hold a whole sweep.
pub trait MetricSource {
    /// Emits this value's metrics into `out`, each key starting with
    /// `prefix_` (or bare when `prefix` is empty).
    fn emit_metrics(&self, prefix: &str, out: &mut MetricSet);
}

/// Joins a prefix and a key with `_`, tolerating an empty prefix.
pub fn metric_key(prefix: &str, key: &str) -> String {
    if prefix.is_empty() {
        key.to_string()
    } else {
        format!("{prefix}_{key}")
    }
}

impl MetricSource for IpcResult {
    fn emit_metrics(&self, prefix: &str, out: &mut MetricSet) {
        out.push(metric_key(prefix, "committed"), self.committed as f64);
        out.push(metric_key(prefix, "cycles"), self.cycles as f64);
        out.push(metric_key(prefix, "ipc"), self.ipc);
        out.push(metric_key(prefix, "runahead_entries"), self.runahead_entries as f64);
    }
}

impl MetricSource for IpcComparison {
    fn emit_metrics(&self, prefix: &str, out: &mut MetricSet) {
        self.baseline.emit_metrics(&metric_key(prefix, "baseline"), out);
        self.runahead.emit_metrics(&metric_key(prefix, "runahead"), out);
        out.push(metric_key(prefix, "speedup"), self.speedup());
    }
}

impl MetricSource for Summary {
    fn emit_metrics(&self, prefix: &str, out: &mut MetricSet) {
        out.push(metric_key(prefix, "n"), self.n as f64);
        out.push(metric_key(prefix, "mean"), self.mean);
        out.push(metric_key(prefix, "min"), self.min);
        out.push(metric_key(prefix, "max"), self.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_preserves_order_and_looks_up() {
        let mut set = MetricSet::new();
        set.push("b", 2.0);
        set.push("a", 1.0);
        assert_eq!(set.entries()[0].0, "b");
        assert_eq!(set.get("a"), Some(1.0));
        assert_eq!(set.get("missing"), None);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate metric key")]
    fn duplicate_keys_panic() {
        let mut set = MetricSet::new();
        set.push("x", 1.0);
        set.push("x", 2.0);
    }

    #[test]
    #[should_panic(expected = "is NaN")]
    fn nan_values_panic() {
        let mut set = MetricSet::new();
        set.push("x", f64::NAN);
    }

    #[test]
    fn summary_emits_under_prefix() {
        let mut set = MetricSet::new();
        Summary::of([1.0, 3.0]).emit_metrics("lat", &mut set);
        assert_eq!(set.get("lat_n"), Some(2.0));
        assert_eq!(set.get("lat_mean"), Some(2.0));
        assert_eq!(set.get("lat_min"), Some(1.0));
        assert_eq!(set.get("lat_max"), Some(3.0));
    }

    #[test]
    fn empty_prefix_emits_bare_keys() {
        let mut set = MetricSet::new();
        Summary::of([5.0]).emit_metrics("", &mut set);
        assert_eq!(set.get("mean"), Some(5.0));
    }

    #[test]
    fn extend_prefixed_namespaces_all_keys() {
        let mut inner = MetricSet::new();
        inner.push("cycles", 10.0);
        let mut outer = MetricSet::new();
        outer.extend_prefixed("mcf", &inner);
        assert_eq!(outer.get("mcf_cycles"), Some(10.0));
    }
}
