//! The Fig. 7 IPC harness: run each kernel on the no-runahead and runahead
//! machines and compare.

use specrun_cpu::probe::{NoopObserver, PipelineObserver};
use specrun_cpu::{Core, CpuConfig, RunExit};

use crate::harness::RunError;
use crate::kernels::Workload;

/// Default iteration count giving runs of roughly 10⁵ cycles per kernel.
pub const DEFAULT_ITERS: u32 = 1500;

/// IPC of one kernel on one machine configuration.
#[derive(Debug, Clone, Copy)]
pub struct IpcResult {
    /// Committed instructions.
    pub committed: u64,
    /// Cycles to completion.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Runahead episodes entered.
    pub runahead_entries: u64,
}

/// Runs a workload to completion on a fresh core with `config`.
///
/// # Panics
///
/// Panics if the kernel does not halt within the cycle budget. Campaign
/// paths that must survive a pathological kernel use [`try_run_workload`].
pub fn run_workload(workload: &Workload, config: CpuConfig, max_cycles: u64) -> IpcResult {
    run_workload_timed(workload, config, max_cycles).0
}

/// Fallible [`run_workload`]: a kernel that exhausts its cycle budget (or
/// wedges) comes back as a structured [`RunError`] instead of a panic.
pub fn try_run_workload(
    workload: &Workload,
    config: CpuConfig,
    max_cycles: u64,
) -> Result<IpcResult, RunError> {
    try_run_workload_observed(workload, config, max_cycles, NoopObserver).map(|(r, _, _)| r)
}

/// [`run_workload`], additionally returning the wall-clock seconds spent in
/// the simulation loop alone — setup (core construction, cache allocation,
/// program load) is excluded, so derived cycles-per-second rates are
/// iteration-count-independent. Used by the `bench_step` throughput anchor.
///
/// # Panics
///
/// Panics if the kernel does not halt within the cycle budget.
pub fn run_workload_timed(
    workload: &Workload,
    config: CpuConfig,
    max_cycles: u64,
) -> (IpcResult, f64) {
    let (result, secs, _) = run_workload_observed(workload, config, max_cycles, NoopObserver);
    (result, secs)
}

/// The observer-carrying kernel runner every other entry point reduces to:
/// runs `workload` to completion on a fresh [`Core`] with `observer`
/// attached, returning the IPC result, the wall-clock seconds spent in the
/// simulation loop alone, and the observer with whatever it saw. With
/// [`NoopObserver`] this is exactly [`run_workload_timed`] — the observer
/// is statically inert.
///
/// # Panics
///
/// Panics if the kernel does not halt within the cycle budget. Campaign
/// paths use [`try_run_workload_observed`] and degrade gracefully.
pub fn run_workload_observed<O: PipelineObserver>(
    workload: &Workload,
    config: CpuConfig,
    max_cycles: u64,
    observer: O,
) -> (IpcResult, f64, O) {
    try_run_workload_observed(workload, config, max_cycles, observer)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_workload_observed`]: the root runner every other entry
/// point reduces to. A kernel that exhausts its cycle budget or wedges is
/// returned as a [`RunError`] carrying the kernel name and the stats at
/// the point the core gave up — a campaign records it as a failed entry
/// and moves on.
pub fn try_run_workload_observed<O: PipelineObserver>(
    workload: &Workload,
    config: CpuConfig,
    max_cycles: u64,
    observer: O,
) -> Result<(IpcResult, f64, O), RunError> {
    let mut core = Core::with_observer(config, observer);
    for (addr, bytes) in &workload.setup {
        core.mem_mut().write_bytes(*addr, bytes);
    }
    core.load_program(&workload.program);
    let start = std::time::Instant::now();
    let exit = core.run(max_cycles);
    let secs = start.elapsed().as_secs_f64();
    match exit {
        RunExit::Halted => {}
        RunExit::CycleLimit => {
            return Err(RunError::CycleBudgetExceeded {
                what: workload.name.to_string(),
                budget: max_cycles,
                committed: core.stats().committed,
            });
        }
        RunExit::Wedged => {
            return Err(RunError::NoHalt {
                what: workload.name.to_string(),
                detail: format!("core wedged (stats: {})", core.stats()),
            });
        }
        RunExit::Cancelled => {
            return Err(RunError::Cancelled {
                what: workload.name.to_string(),
                committed: core.stats().committed,
            });
        }
    }
    let stats = core.stats();
    let result = IpcResult {
        committed: stats.committed,
        cycles: stats.cycles,
        ipc: stats.ipc(),
        runahead_entries: stats.runahead_entries,
    };
    Ok((result, secs, core.into_observer()))
}

/// One Fig. 7 bar pair: a kernel's IPC without and with runahead.
#[derive(Debug, Clone)]
pub struct IpcComparison {
    /// Kernel name.
    pub name: &'static str,
    /// No-runahead machine IPC.
    pub baseline: IpcResult,
    /// Runahead machine IPC.
    pub runahead: IpcResult,
}

impl IpcComparison {
    /// Runahead speedup over the baseline.
    pub fn speedup(&self) -> f64 {
        self.runahead.ipc / self.baseline.ipc
    }

    /// IPC normalized to the baseline (the paper's y-axis).
    pub fn normalized_ipc(&self) -> (f64, f64) {
        (1.0, self.speedup())
    }
}

/// Runs one kernel on both machines.
pub fn compare(workload: &Workload, max_cycles: u64) -> IpcComparison {
    IpcComparison {
        name: workload.name,
        baseline: run_workload(workload, CpuConfig::no_runahead(), max_cycles),
        runahead: run_workload(workload, CpuConfig::default(), max_cycles),
    }
}

/// Runs one kernel on both machines with a custom "runahead" configuration
/// (used by the defense-overhead and policy-ablation experiments).
pub fn compare_with(
    workload: &Workload,
    runahead_cfg: CpuConfig,
    max_cycles: u64,
) -> IpcComparison {
    IpcComparison {
        name: workload.name,
        baseline: run_workload(workload, CpuConfig::no_runahead(), max_cycles),
        runahead: run_workload(workload, runahead_cfg, max_cycles),
    }
}

/// Runs every workload on both machines with all runs fanned out over
/// `threads` workers (`0` = all host cores) — the parallel Fig. 7 harness.
/// Results are identical to calling [`compare`] per workload, in order.
pub fn compare_parallel(
    workloads: &[Workload],
    max_cycles: u64,
    threads: usize,
) -> Vec<IpcComparison> {
    compare_matrix_parallel(workloads, CpuConfig::default(), max_cycles, threads)
}

/// [`compare_parallel`] with a custom "runahead" machine configuration
/// (defense-overhead and policy-ablation sweeps).
pub fn compare_matrix_parallel(
    workloads: &[Workload],
    runahead_cfg: CpuConfig,
    max_cycles: u64,
    threads: usize,
) -> Vec<IpcComparison> {
    let threads = if threads == 0 { crate::harness::default_threads() } else { threads };
    // Flatten to one job per (workload, machine) so uneven kernels still
    // fill every worker.
    let jobs: Vec<(usize, CpuConfig)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(i, _)| [(i, CpuConfig::no_runahead()), (i, runahead_cfg.clone())])
        .collect();
    let mut results = crate::harness::parallel_map(&jobs, threads, |_, (wi, cfg)| {
        run_workload(&workloads[*wi], cfg.clone(), max_cycles)
    })
    .into_iter();
    workloads
        .iter()
        .map(|w| {
            let baseline = results.next().expect("two results per workload");
            let runahead = results.next().expect("two results per workload");
            IpcComparison { name: w.name, baseline, runahead }
        })
        .collect()
}

/// Geometric-mean speedup across comparisons (the paper's "average
/// performance improvement of 11%").
pub fn geomean_speedup(results: &[IpcComparison]) -> f64 {
    if results.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = results.iter().map(|c| c.speedup().ln()).sum();
    (log_sum / results.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn lbm_halts_and_reports_ipc() {
        let w = kernels::lbm(200);
        let r = run_workload(&w, CpuConfig::no_runahead(), 2_000_000);
        assert!(r.ipc > 0.0);
        assert!(r.committed > 1000);
    }

    #[test]
    fn runahead_helps_a_stream() {
        let w = kernels::lbm(400);
        let c = compare(&w, 4_000_000);
        assert!(c.runahead.runahead_entries > 0, "stream must trigger runahead");
        assert!(
            c.speedup() > 1.0,
            "runahead should speed up lbm: {:.3} vs {:.3}",
            c.baseline.ipc,
            c.runahead.ipc
        );
    }

    #[test]
    fn geomean_of_identities_is_one() {
        assert!((geomean_speedup(&[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exhausted_budget_is_a_structured_error_not_a_panic() {
        use crate::harness::RunError;
        let w = kernels::lbm(200);
        let err = try_run_workload(&w, CpuConfig::no_runahead(), 50)
            .expect_err("50 cycles cannot finish lbm");
        match err {
            RunError::CycleBudgetExceeded { what, budget, .. } => {
                assert_eq!(what, w.name);
                assert_eq!(budget, 50);
            }
            other => panic!("expected CycleBudgetExceeded, got {other:?}"),
        }
        // The panicking wrapper raises the same rendering, so catch_unwind
        // call sites see an identical message.
        let caught = std::panic::catch_unwind(|| run_workload(&w, CpuConfig::no_runahead(), 50))
            .expect_err("wrapper must panic");
        let message = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("cycle budget exceeded"), "{message}");
    }

    #[test]
    fn parallel_compare_matches_serial() {
        let ws = vec![kernels::lbm(80), kernels::wrf(80)];
        let par = compare_parallel(&ws, 5_000_000, 4);
        for (p, w) in par.iter().zip(&ws) {
            let s = compare(w, 5_000_000);
            assert_eq!(p.name, s.name);
            assert_eq!(p.baseline.cycles, s.baseline.cycles);
            assert_eq!(p.runahead.cycles, s.runahead.cycles);
        }
    }
}
