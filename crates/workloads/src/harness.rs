//! Parallel trial harness: config-matrix building and multi-threaded
//! fan-out over independent simulations.
//!
//! Every SPECRUN experiment is a sweep: Fig. 7 runs six kernels on two
//! machines, Fig. 9-style covert-channel evaluations average over many
//! attack trials (the Spectre-PoC methodology), Fig. 11 compares machines
//! point-wise, and the defense table crosses kernels with three defense
//! configurations. All of those trials are *independent* — each owns a
//! fresh [`Core`](specrun_cpu::Core) — so they parallelize embarrassingly.
//!
//! The harness has three parts:
//!
//! * [`ConfigMatrix`] — builds the cartesian product of machine-config axes
//!   into a flat list of [`TrialSpec`]s, each with a deterministic per-trial
//!   RNG seed;
//! * [`parallel_map`] / [`try_parallel_map`] — fan a closure out over a
//!   slice on a scoped thread pool (work-stealing via an atomic cursor),
//!   preserving input order; the `try` form captures per-trial panics as
//!   [`TrialError`]s so one degenerate config cannot kill a campaign;
//! * [`Summary`] — aggregates per-trial metrics (n/mean/min/max).
//!
//! ```
//! use specrun_workloads::harness::{parallel_map, Summary};
//! let squares = parallel_map(&[1u64, 2, 3, 4], 4, |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! let s = Summary::of(squares.iter().map(|&x| x as f64));
//! assert_eq!(s.max, 16.0);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use specrun_cpu::{CpuConfig, RunaheadPolicy, SecureConfig};

use crate::rng::SplitMix64;

/// Ceiling on worker-thread counts: above this, extra threads only add
/// scheduler churn and per-thread stacks — a campaign is bounded by cores,
/// not by how many workers it can name. [`default_threads`] clamps to it
/// and the CLI rejects explicit requests beyond it.
pub const MAX_THREADS: usize = 256;

/// Number of worker threads the host offers, clamped to [`MAX_THREADS`]
/// (exotic hosts can report absurd parallelism; a degenerate pool of
/// hundreds of idle workers helps nothing).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(MAX_THREADS))
}

/// A trial that panicked instead of returning a result.
///
/// Campaigns fan out over hundreds of independent configurations; one
/// degenerate config must surface as *data* — which trial, what it said —
/// rather than poisoning the whole sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialError {
    /// Index of the panicking item in the input slice.
    pub index: usize,
    /// The panic payload, rendered to a string when possible.
    pub message: String,
}

impl std::fmt::Display for TrialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trial {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TrialError {}

/// A structured execution failure: what [`run_workload`](crate::ipc::run_workload)
/// and `run_plan` used to express as a panic, as data.
///
/// Campaign layers thread this through `try_*` entry points so one
/// pathological workload or plan degrades to a reported `failed` entry in
/// the campaign artifact instead of unwinding through the whole run. The
/// panicking entry points still exist; they delegate to the `try_*` form
/// and panic with this error's `Display` rendering, so `catch_unwind`
/// call sites recover the same message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The cycle budget elapsed before the program committed a halt.
    CycleBudgetExceeded {
        /// What was running (kernel name, plan label, …).
        what: String,
        /// The cycle budget that elapsed.
        budget: u64,
        /// Instructions committed when the budget ran out.
        committed: u64,
    },
    /// Control flow wedged: the program can no longer make progress.
    NoHalt {
        /// What was running.
        what: String,
        /// What the core reported when it gave up.
        detail: String,
    },
    /// The run panicked; the payload was captured by a harness boundary.
    Panic(TrialError),
    /// A supervisor's cancel token stopped the run cooperatively; the
    /// supervisor reclassifies this into [`RunError::DeadlineExceeded`] or
    /// [`RunError::Stalled`] from the token's recorded reason.
    Cancelled {
        /// What was running.
        what: String,
        /// Instructions committed when the run stopped.
        committed: u64,
    },
    /// The unit's wall-clock deadline elapsed while it was still making
    /// progress — slow, not stuck. Distinct from
    /// [`RunError::CycleBudgetExceeded`], which is *simulated* time: a
    /// pathological config can burn host seconds per simulated cycle and
    /// never touch its cycle budget.
    DeadlineExceeded {
        /// What was running.
        what: String,
        /// The wall-clock deadline that elapsed, in milliseconds.
        deadline_ms: u64,
        /// Instructions committed when the run was cancelled.
        committed: u64,
    },
    /// No heartbeat advanced within the stall window — the unit's host
    /// thread is wedged outside the simulation loop, not merely slow.
    Stalled {
        /// What was running.
        what: String,
        /// The no-heartbeat window that elapsed, in milliseconds.
        stall_ms: u64,
        /// Instructions committed at the last heartbeat seen.
        last_committed: u64,
    },
    /// A transient IO failure (an artifact sink flake) — the one failure
    /// class a retry is *expected* to heal.
    Io {
        /// What was running.
        what: String,
        /// The IO error.
        detail: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::CycleBudgetExceeded { what, budget, committed } => write!(
                f,
                "cycle budget exceeded: {what} committed {committed} instruction(s) \
                 in {budget} cycles without halting"
            ),
            RunError::NoHalt { what, detail } => write!(f, "{what} cannot halt: {detail}"),
            RunError::Panic(e) => write!(f, "{e}"),
            RunError::Cancelled { what, committed } => {
                write!(f, "{what} cancelled by the supervisor after {committed} instruction(s)")
            }
            RunError::DeadlineExceeded { what, deadline_ms, committed } => write!(
                f,
                "deadline exceeded: {what} still running ({committed} instruction(s) committed) \
                 after {deadline_ms} ms"
            ),
            RunError::Stalled { what, stall_ms, last_committed } => write!(
                f,
                "stalled: {what} produced no heartbeat for {stall_ms} ms \
                 (last committed {last_committed} instruction(s))"
            ),
            RunError::Io { what, detail } => write!(f, "io error: {what}: {detail}"),
        }
    }
}

impl std::error::Error for RunError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Panic-safe [`parallel_map`]: runs `f` over `items` on up to `threads`
/// scoped worker threads and returns per-trial results in input order,
/// with each panicking trial captured as a [`TrialError`] instead of
/// unwinding through the pool. Every trial runs to completion regardless
/// of how many others panic.
pub fn try_parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, TrialError>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    try_parallel_map_with(items, threads, f, |_, _| {})
}

/// [`try_parallel_map`] with a completion hook: `on_done(i, &result)` runs
/// on the worker thread immediately after trial `i` finishes, in whatever
/// order trials complete. Campaign journals hang off this hook — each
/// completed trial is durably recorded the moment it exists, so a killed
/// campaign loses at most the in-flight trials. The hook must be cheap and
/// must not panic; results are still returned in input order.
pub fn try_parallel_map_with<T, R, F, D>(
    items: &[T],
    threads: usize,
    f: F,
    on_done: D,
) -> Vec<Result<R, TrialError>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    D: Fn(usize, &Result<R, TrialError>) + Sync,
{
    let run_one = |i: usize, item: &T| {
        let result = catch_unwind(AssertUnwindSafe(|| f(i, item)))
            .map_err(|payload| TrialError { index: i, message: panic_message(payload) });
        on_done(i, &result);
        result
    };
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, item)| run_one(i, item)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, Result<R, TrialError>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, run_one(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker loop itself cannot panic")).collect()
    });
    let mut out: Vec<Option<Result<R, TrialError>>> = (0..n).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter().map(|r| r.expect("every index produced")).collect()
}

/// Runs `f` over `items` on up to `threads` scoped worker threads and
/// returns the results in input order.
///
/// Work is distributed dynamically (an atomic cursor), so uneven trial
/// durations — a no-runahead machine simulates far more slowly than a
/// fast-forwarding one — still load all cores. With `threads <= 1` the map
/// runs inline, which keeps call sites free of special cases.
///
/// # Panics
///
/// Re-raises the first (lowest-index) trial panic after all trials have
/// completed. Sweeps that must survive degenerate configurations use
/// [`try_parallel_map`], which returns the panic as a [`TrialError`].
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    try_parallel_map(items, threads, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

/// One point of a configuration sweep.
#[derive(Debug, Clone)]
pub struct TrialSpec {
    /// Flat index in the sweep (also the result position).
    pub id: usize,
    /// Machine configuration for this trial.
    pub config: CpuConfig,
    /// Deterministic seed for this trial's randomness.
    pub seed: u64,
    /// Repetition number within its config point (0-based).
    pub repeat: u32,
    /// Human-readable config-point label, e.g. `"Original"`.
    pub label: String,
}

impl TrialSpec {
    /// A fresh RNG seeded for this trial.
    pub fn rng(&self) -> SplitMix64 {
        SplitMix64::new(self.seed)
    }
}

/// Cartesian-product builder for machine-configuration sweeps.
///
/// Axes left unset contribute the base configuration's value. Each config
/// point is repeated `trials` times with distinct per-trial seeds.
///
/// ```
/// use specrun_cpu::{CpuConfig, RunaheadPolicy};
/// use specrun_workloads::harness::ConfigMatrix;
/// let specs = ConfigMatrix::new(CpuConfig::default())
///     .policies(&[RunaheadPolicy::Original, RunaheadPolicy::Precise])
///     .trials(3)
///     .build();
/// assert_eq!(specs.len(), 6);
/// assert_ne!(specs[0].seed, specs[1].seed);
/// ```
#[derive(Debug, Clone)]
pub struct ConfigMatrix {
    base: CpuConfig,
    policies: Vec<RunaheadPolicy>,
    secures: Vec<SecureConfig>,
    trials: u32,
    base_seed: u64,
}

impl ConfigMatrix {
    /// Starts a matrix from a base configuration.
    pub fn new(base: CpuConfig) -> ConfigMatrix {
        ConfigMatrix {
            base,
            policies: Vec::new(),
            secures: Vec::new(),
            trials: 1,
            base_seed: 0x5045_4352_554e, // "SPECRUN"
        }
    }

    /// Sweeps the runahead policy axis.
    pub fn policies(mut self, policies: &[RunaheadPolicy]) -> ConfigMatrix {
        self.policies = policies.to_vec();
        self
    }

    /// Sweeps the defense axis.
    pub fn secures(mut self, secures: &[SecureConfig]) -> ConfigMatrix {
        self.secures = secures.to_vec();
        self
    }

    /// Repetitions per config point (independent seeds).
    pub fn trials(mut self, trials: u32) -> ConfigMatrix {
        self.trials = trials.max(1);
        self
    }

    /// Base seed from which all per-trial seeds derive.
    pub fn seed(mut self, seed: u64) -> ConfigMatrix {
        self.base_seed = seed;
        self
    }

    /// Expands the matrix into a flat trial list.
    pub fn build(&self) -> Vec<TrialSpec> {
        let policies: Vec<Option<RunaheadPolicy>> = if self.policies.is_empty() {
            vec![None]
        } else {
            self.policies.iter().copied().map(Some).collect()
        };
        let secures: Vec<Option<SecureConfig>> = if self.secures.is_empty() {
            vec![None]
        } else {
            self.secures.iter().copied().map(Some).collect()
        };
        let mut seeder = SplitMix64::new(self.base_seed);
        let mut specs = Vec::new();
        for policy in &policies {
            for secure in &secures {
                for repeat in 0..self.trials {
                    let mut config = self.base.clone();
                    let mut label = String::new();
                    if let Some(p) = policy {
                        config.runahead.policy = *p;
                        label = format!("{p:?}");
                    }
                    if let Some(s) = secure {
                        config.runahead.secure = *s;
                        if !label.is_empty() {
                            label.push('/');
                        }
                        label.push_str(if s.sl_cache {
                            "sl_cache"
                        } else if s.skip_inv_branches {
                            "skip_inv"
                        } else {
                            "undefended"
                        });
                    }
                    specs.push(TrialSpec {
                        id: specs.len(),
                        config,
                        seed: seeder.next_u64(),
                        repeat,
                        label: label.clone(),
                    });
                }
            }
        }
        specs
    }
}

/// Aggregate of a per-trial metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
}

impl Summary {
    /// Aggregates an iterator of samples.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Summary {
        let mut n = 0usize;
        let mut sum = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            n += 1;
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        if n == 0 {
            Summary { n: 0, mean: 0.0, min: 0.0, max: 0.0 }
        } else {
            Summary { n, mean: sum / n as f64, min, max }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ipc::run_workload, kernels};

    #[test]
    fn parallel_map_preserves_order_and_covers_all() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, 8, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_edge_sizes() {
        assert!(parallel_map::<u64, u64, _>(&[], 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u64], 16, |_, &x| x + 1), vec![8]);
        // More threads than items, single-threaded fallback.
        assert_eq!(parallel_map(&[1u64, 2], 1, |_, &x| x), vec![1, 2]);
    }

    #[test]
    fn try_parallel_map_isolates_panicking_trials() {
        let items: Vec<u64> = (0..40).collect();
        for threads in [1, 4] {
            let results = try_parallel_map(&items, threads, |_, &x| {
                assert!(x % 10 != 3, "trial {x} is degenerate");
                x * 2
            });
            assert_eq!(results.len(), items.len(), "every trial reports");
            for (i, r) in results.iter().enumerate() {
                if i % 10 == 3 {
                    let err = r.as_ref().unwrap_err();
                    assert_eq!(err.index, i);
                    assert!(err.message.contains("degenerate"), "payload kept: {}", err.message);
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i as u64 * 2), "good trials unaffected");
                }
            }
        }
    }

    #[test]
    fn try_parallel_map_collects_simultaneous_panics_stably() {
        // Many shard threads panicking at once: every TrialError is
        // collected, and the full (index, message) sequence is identical
        // no matter how the work was sharded.
        let items: Vec<u64> = (0..64).collect();
        let run = |threads: usize| {
            try_parallel_map(&items, threads, |_, &x| {
                assert!(x % 8 != 0, "trial {x} exploded");
                x + 1
            })
        };
        let reference = run(1);
        let errors: Vec<(usize, String)> = reference
            .iter()
            .filter_map(|r| r.as_ref().err())
            .map(|e| (e.index, e.message.clone()))
            .collect();
        assert_eq!(errors.len(), 8, "all eight simultaneous panics are data");
        assert!(errors.windows(2).all(|w| w[0].0 < w[1].0), "errors sit at ascending indices");
        assert_eq!(errors[0].0, 0, "the lowest panicking index is first");
        for threads in [2, 4, 8, 16] {
            let sharded = run(threads);
            assert_eq!(sharded, reference, "results invariant at {threads} threads");
        }
    }

    #[test]
    fn parallel_map_reraises_lowest_index_among_simultaneous_panics() {
        let items: Vec<u64> = (0..32).collect();
        for threads in [1, 4] {
            let caught = std::panic::catch_unwind(|| {
                parallel_map(&items, threads, |_, &x| {
                    assert!(!(10..20).contains(&x), "trial {x} exploded");
                    x
                })
            });
            let payload = caught.expect_err("panicking trials must propagate");
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .expect("parallel_map re-panics with a formatted message");
            assert!(
                message.starts_with("trial 10 panicked"),
                "lowest index wins at {threads} threads: {message}"
            );
        }
    }

    #[test]
    fn try_parallel_map_with_reports_every_completion() {
        use std::sync::Mutex;
        let items: Vec<u64> = (0..20).collect();
        for threads in [1, 4] {
            let seen = Mutex::new(Vec::new());
            let results = try_parallel_map_with(
                &items,
                threads,
                |_, &x| {
                    assert!(x != 7, "trial {x} exploded");
                    x * 3
                },
                |i, r| seen.lock().unwrap().push((i, r.is_ok())),
            );
            let mut seen = seen.into_inner().unwrap();
            seen.sort_unstable();
            let expected: Vec<(usize, bool)> = (0..20).map(|i| (i, i != 7)).collect();
            assert_eq!(seen, expected, "the hook fires exactly once per trial");
            assert_eq!(results[3], Ok(9));
            assert!(results[7].is_err());
        }
    }

    #[test]
    fn run_error_displays_each_variant() {
        let budget =
            RunError::CycleBudgetExceeded { what: "lbm".to_string(), budget: 1000, committed: 42 };
        assert_eq!(
            budget.to_string(),
            "cycle budget exceeded: lbm committed 42 instruction(s) in 1000 cycles without halting"
        );
        let wedged =
            RunError::NoHalt { what: "plan 3".to_string(), detail: "pipeline wedged".to_string() };
        assert_eq!(wedged.to_string(), "plan 3 cannot halt: pipeline wedged");
        let panic = RunError::Panic(TrialError { index: 2, message: "boom".to_string() });
        assert_eq!(panic.to_string(), "trial 2 panicked: boom");
        let cancelled = RunError::Cancelled { what: "plan 7".to_string(), committed: 9 };
        assert_eq!(
            cancelled.to_string(),
            "plan 7 cancelled by the supervisor after 9 instruction(s)"
        );
        let deadline = RunError::DeadlineExceeded {
            what: "plan 7".to_string(),
            deadline_ms: 250,
            committed: 9,
        };
        assert_eq!(
            deadline.to_string(),
            "deadline exceeded: plan 7 still running (9 instruction(s) committed) after 250 ms"
        );
        let stalled =
            RunError::Stalled { what: "plan 7".to_string(), stall_ms: 100, last_committed: 3 };
        assert_eq!(
            stalled.to_string(),
            "stalled: plan 7 produced no heartbeat for 100 ms (last committed 3 instruction(s))"
        );
        let io = RunError::Io { what: "plan 7".to_string(), detail: "flaky sink".to_string() };
        assert_eq!(io.to_string(), "io error: plan 7: flaky sink");
    }

    #[test]
    fn default_threads_is_sane_and_clamped() {
        let n = default_threads();
        assert!((1..=MAX_THREADS).contains(&n), "default thread count {n} out of range");
    }

    #[test]
    fn trial_error_displays_index_and_payload() {
        let e = TrialError { index: 7, message: "boom".into() };
        assert_eq!(e.to_string(), "trial 7 panicked: boom");
    }

    #[test]
    #[should_panic(expected = "trial 1 panicked")]
    fn parallel_map_still_propagates_panics() {
        parallel_map(&[0u64, 1, 2], 1, |_, &x| {
            assert_ne!(x, 1, "bad");
            x
        });
    }

    #[test]
    fn matrix_covers_product_with_distinct_seeds() {
        let specs = ConfigMatrix::new(CpuConfig::default())
            .policies(&[RunaheadPolicy::Original, RunaheadPolicy::Precise, RunaheadPolicy::Vector])
            .trials(4)
            .build();
        assert_eq!(specs.len(), 12);
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12, "per-trial seeds must be distinct");
        assert_eq!(specs[0].label, "Original");
        // Deterministic: rebuilding yields the same seeds.
        let again = ConfigMatrix::new(CpuConfig::default())
            .policies(&[RunaheadPolicy::Original, RunaheadPolicy::Precise, RunaheadPolicy::Vector])
            .trials(4)
            .build();
        assert_eq!(again[5].seed, specs[5].seed);
    }

    #[test]
    fn summary_aggregates() {
        let s = Summary::of([2.0, 4.0, 6.0]);
        assert_eq!((s.n, s.mean, s.min, s.max), (3, 4.0, 2.0, 6.0));
        assert_eq!(Summary::of([]).n, 0);
    }

    #[test]
    fn summary_empty_is_all_zero_and_nan_free() {
        let s = Summary::of([]);
        assert_eq!(s, Summary { n: 0, mean: 0.0, min: 0.0, max: 0.0 });
        // The empty aggregate must not surface the infinity/NaN
        // accumulator seeds — downstream JSON artifacts reject NaN.
        assert!(s.mean.is_finite() && s.min.is_finite() && s.max.is_finite());
    }

    #[test]
    fn summary_single_element_collapses() {
        let s = Summary::of([7.5]);
        assert_eq!((s.n, s.mean, s.min, s.max), (1, 7.5, 7.5, 7.5));
    }

    #[test]
    fn summary_of_finite_samples_is_nan_free() {
        let samples = [-3.0, 0.0, 1e-12, 4.5e9];
        let s = Summary::of(samples);
        assert!(s.mean.is_finite(), "mean {}", s.mean);
        assert!(s.min.is_finite() && s.max.is_finite());
        assert_eq!(s.min, -3.0);
        assert_eq!(s.max, 4.5e9);
    }

    #[test]
    fn matrix_trial_count_is_policies_times_secures_times_trials() {
        let specs = ConfigMatrix::new(CpuConfig::default())
            .policies(&[RunaheadPolicy::Original, RunaheadPolicy::Precise])
            .secures(&[
                SecureConfig::default(),
                SecureConfig::sl_cache_default(),
                SecureConfig::skip_inv_default(),
            ])
            .trials(5)
            .build();
        assert_eq!(specs.len(), 2 * 3 * 5, "policies x secures x trials");
        // Flat ids follow build order and labels carry both axes.
        assert!(specs.iter().enumerate().all(|(i, s)| s.id == i));
        assert_eq!(specs[0].label, "Original/undefended");
        assert_eq!(specs[5].label, "Original/sl_cache");
        let last = specs.last().unwrap();
        assert_eq!(last.label, "Precise/skip_inv");
        assert_eq!(last.repeat, 4);
    }

    #[test]
    fn matrix_seeds_are_deterministic_and_base_seed_sensitive() {
        let build = |seed: u64| {
            ConfigMatrix::new(CpuConfig::default())
                .policies(&[RunaheadPolicy::Original, RunaheadPolicy::Vector])
                .trials(3)
                .seed(seed)
                .build()
        };
        let a: Vec<u64> = build(42).iter().map(|s| s.seed).collect();
        let b: Vec<u64> = build(42).iter().map(|s| s.seed).collect();
        assert_eq!(a, b, "same base seed must reproduce every trial seed");
        let c: Vec<u64> = build(43).iter().map(|s| s.seed).collect();
        assert_ne!(a, c, "different base seed must change the trial seeds");
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "per-trial seeds must be distinct");
    }

    #[test]
    fn parallel_simulation_matches_serial() {
        let w = kernels::lbm(60);
        let specs = ConfigMatrix::new(CpuConfig::default()).trials(4).build();
        let serial =
            parallel_map(&specs, 1, |_, s| run_workload(&w, s.config.clone(), 5_000_000).cycles);
        let parallel =
            parallel_map(&specs, 4, |_, s| run_workload(&w, s.config.clone(), 5_000_000).cycles);
        assert_eq!(serial, parallel, "simulation must be thread-invariant");
    }
}
