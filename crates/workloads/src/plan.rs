//! Attack *plans*: the generative grammar behind `specrun-fuzz`.
//!
//! A [`Plan`] is a complete, self-describing description of one SPECRUN
//! attack trial — victim shape (gadget kind, nop-slide length, training
//! pattern), memory layout, secret placement, cache warm-up sequence and
//! the machine knobs/policy to run it under. Plans are generated from a
//! seeded [`SplitMix64`] so a campaign is a pure function of
//! `(campaign_seed, index, mode)`: the same triple yields a byte-identical
//! plan on every platform, which is what lets CI soak deterministically and
//! lets a failing plan be replayed from nothing but its seed.
//!
//! The module deliberately holds *data only*. Turning a plan into a
//! [`Session`](../../specrun/session/struct.Session.html) lives in
//! `specrun::plan` (the crate that owns sessions); checking invariants over
//! the outcome lives in `specrun-lab`. What does live here besides the
//! grammar is the [shrinking order](Plan::shrink_candidates): every
//! candidate strictly reduces [`Plan::weight`], which is what guarantees
//! the delta-debugging loop in [`crate::fuzz::shrink_plan`] terminates.
//!
//! ```
//! use specrun_workloads::plan::Plan;
//!
//! let plan = Plan::generate(0xC0FFEE, 7, true);
//! assert_eq!(plan, Plan::generate(0xC0FFEE, 7, true), "pure function of the triple");
//! assert!(plan.layout.is_valid() && plan.secret != 0);
//! ```

use specrun_cpu::CpuConfig;

use crate::rng::SplitMix64;

/// Cache line size the layout generator aligns to (Table 1's hierarchy).
const LINE: u64 = 64;
/// Base of the scratch region warm-up steps touch. Disjoint from every
/// attack structure so a warm step can never silently re-warm a probe line
/// the PoC just flushed.
pub const WARM_SCRATCH_BASE: u64 = 0x0300_0000;

/// Which Spectre-in-runahead gadget the plan's victim carries (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GadgetKind {
    /// The conditional-branch (SpectrePHT) gadget of Fig. 8.
    Pht,
    /// The poisoned indirect jump (SpectreBTB) of Fig. 4a.
    Btb,
    /// The overwritten return address (SpectreRSB) of Fig. 4b.
    Rsb,
}

impl GadgetKind {
    /// Stable label used in JSON artifacts.
    pub fn label(self) -> &'static str {
        match self {
            GadgetKind::Pht => "Pht",
            GadgetKind::Btb => "Btb",
            GadgetKind::Rsb => "Rsb",
        }
    }

    /// Inverse of [`GadgetKind::label`] (spec-file decoding).
    pub fn from_label(label: &str) -> Option<GadgetKind> {
        [GadgetKind::Pht, GadgetKind::Btb, GadgetKind::Rsb].into_iter().find(|g| g.label() == label)
    }
}

/// Machine policy of a plan — the fuzzing-side mirror of the session
/// `Policy` choice (pure data here; `specrun::plan` maps it across).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanPolicy {
    /// Table 1 with original runahead (the vulnerable machine).
    Runahead,
    /// Table 1 with runahead disabled (the baseline).
    NoRunahead,
    /// Runahead with the relaxed "data cache miss" entry trigger (§5.3 ➂).
    HeadMissTrigger,
    /// Precise runahead (§4.3).
    Precise,
    /// Vector runahead (§4.3).
    Vector,
    /// The §6 SL-cache + taint-tracking defense.
    Secure,
    /// The §6 alternative mitigation (skip INV-source branches).
    SkipInv,
}

impl PlanPolicy {
    /// Stable label used in JSON artifacts.
    pub fn label(self) -> &'static str {
        match self {
            PlanPolicy::Runahead => "Runahead",
            PlanPolicy::NoRunahead => "NoRunahead",
            PlanPolicy::HeadMissTrigger => "HeadMissTrigger",
            PlanPolicy::Precise => "Precise",
            PlanPolicy::Vector => "Vector",
            PlanPolicy::Secure => "Secure",
            PlanPolicy::SkipInv => "SkipInv",
        }
    }

    /// Whether the policy carries one of the §6 defenses.
    pub fn is_defended(self) -> bool {
        matches!(self, PlanPolicy::Secure | PlanPolicy::SkipInv)
    }

    /// Inverse of [`PlanPolicy::label`] (spec-file decoding).
    pub fn from_label(label: &str) -> Option<PlanPolicy> {
        [
            PlanPolicy::Runahead,
            PlanPolicy::NoRunahead,
            PlanPolicy::HeadMissTrigger,
            PlanPolicy::Precise,
            PlanPolicy::Vector,
            PlanPolicy::Secure,
            PlanPolicy::SkipInv,
        ]
        .into_iter()
        .find(|p| p.label() == label)
    }
}

/// Fuzzed memory geometry — the same shape as the attack layout, kept as
/// plain numbers so the plan crate needs no dependency on `specrun`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanLayout {
    /// Address of `array1_size` (the paper's `D`).
    pub bound_addr: u64,
    /// In-bounds length of `array1`.
    pub bound_value: u64,
    /// Base of the victim array `array1`.
    pub array1_base: u64,
    /// Address of the secret byte.
    pub secret_addr: u64,
    /// Base of the probe array `array2`.
    pub probe_base: u64,
    /// Bytes between probe entries (at least a cache line).
    pub probe_stride: u64,
    /// Number of probe entries (one per byte value).
    pub probe_entries: u64,
    /// Where the probe loop stores its latencies.
    pub results_base: u64,
}

impl PlanLayout {
    /// The paper's Fig. 8 layout (mirrors `AttackLayout::default`).
    pub fn paper_default() -> PlanLayout {
        PlanLayout {
            bound_addr: 0x0009_0000,
            bound_value: 16,
            array1_base: 0x000a_0000,
            secret_addr: 0x000b_0000,
            probe_base: 0x0100_0000,
            probe_stride: 512,
            probe_entries: 256,
            results_base: 0x0200_0000,
        }
    }

    /// The malicious index `secret_addr - array1_base`.
    pub fn malicious_x(&self) -> u64 {
        self.secret_addr - self.array1_base
    }

    /// Address of probe entry `value`.
    pub fn probe_addr(&self, value: u64) -> u64 {
        self.probe_base + value * self.probe_stride
    }

    /// Structural soundness: regions line-aligned, ordered and disjoint,
    /// the malicious index encodable as an `li` immediate, and everything
    /// clear of the warm-up scratch region.
    pub fn is_valid(&self) -> bool {
        self.bound_addr % LINE == 0
            && self.array1_base % LINE == 0
            && self.probe_base % LINE == 0
            && self.bound_value >= 1
            && self.bound_addr + 128 <= self.array1_base
            && self.array1_base + self.bound_value < self.secret_addr
            && self.secret_addr + LINE <= self.probe_base
            && self.probe_stride >= LINE
            && self.probe_entries == 256
            && self.probe_addr(self.probe_entries - 1) + LINE <= self.results_base
            && self.results_base + self.probe_entries * 8 <= WARM_SCRATCH_BASE
            && self.malicious_x() <= i32::MAX as u64
    }

    fn diff_count(&self) -> u64 {
        let d = PlanLayout::paper_default();
        u64::from(self.bound_addr != d.bound_addr)
            + u64::from(self.bound_value != d.bound_value)
            + u64::from(self.array1_base != d.array1_base)
            + u64::from(self.secret_addr != d.secret_addr)
            + u64::from(self.probe_base != d.probe_base)
            + u64::from(self.probe_stride != d.probe_stride)
            + u64::from(self.probe_entries != d.probe_entries)
            + u64::from(self.results_base != d.results_base)
    }
}

/// Victim-program shape: which gadget, how long the slide is, how hard the
/// predictor is trained, and how much filler separates attack and probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimSpec {
    /// Gadget kind.
    pub gadget: GadgetKind,
    /// Nops between the bounds check and the secret access (0 reproduces
    /// Fig. 9; beyond the ROB reproduces Fig. 11).
    pub nop_slide: u32,
    /// PHT training iterations (paper step ①).
    pub training_rounds: u32,
    /// Filler between the victim call and the probe (Fig. 8 line 16). The
    /// generator keeps this at least ~900: a single runahead episode
    /// dispatches at most `dram_latency × width` ≈ 800 µops, so the filler
    /// guarantees an episode entered at the attack call drains before the
    /// probe loop — shorter fillers let runahead prefetch probe entries and
    /// the plan degenerates into probing its own attack.
    pub attack_filler: u32,
    /// Cycle budget per program run.
    pub max_cycles: u64,
}

/// One cache warm-up step, confined to the scratch region at
/// [`WARM_SCRATCH_BASE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmStep {
    /// First byte warmed.
    pub addr: u64,
    /// Length of the warmed range.
    pub len: u64,
}

/// Fuzzed machine knobs, applied on top of the policy's configuration.
///
/// `Default` reproduces the paper machine (Table 1 plus the §6 defense
/// defaults), so [`KnobSpec::diff_count`] — the number of fields a plan
/// actually moved — doubles as the shrinking distance back to the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnobSpec {
    /// Reorder-buffer capacity.
    pub rob_entries: u32,
    /// Load-queue capacity.
    pub lq_entries: u32,
    /// Store-queue capacity.
    pub sq_entries: u32,
    /// Runahead checkpoint cost.
    pub enter_penalty: u64,
    /// Runahead restore cost.
    pub exit_penalty: u64,
    /// Whether runahead branches train the predictor.
    pub train_predictor: bool,
    /// Whether predictor history is checkpointed across episodes.
    pub checkpoint_predictor: bool,
    /// Vector-runahead prefetch lanes.
    pub vector_lanes: u64,
    /// Useless-episode throttling threshold.
    pub min_episode_yield: u64,
    /// Re-entry backoff after a useless episode.
    pub useless_backoff: u64,
    /// Runahead store-buffer capacity in bytes.
    pub runahead_cache_bytes: u32,
    /// SL-cache capacity (only applied under the Secure policy).
    pub sl_entries: u32,
    /// SL-cache lookup latency (only applied under the Secure policy).
    pub sl_latency: u64,
    /// Idle-cycle fast-forward (must be invisible to every oracle).
    pub fast_forward: bool,
}

impl Default for KnobSpec {
    fn default() -> KnobSpec {
        KnobSpec {
            rob_entries: 256,
            lq_entries: 40,
            sq_entries: 40,
            enter_penalty: 4,
            exit_penalty: 8,
            train_predictor: true,
            checkpoint_predictor: true,
            vector_lanes: 8,
            min_episode_yield: 2,
            useless_backoff: 2500,
            runahead_cache_bytes: 4096,
            sl_entries: 64,
            sl_latency: 1,
            fast_forward: true,
        }
    }
}

impl KnobSpec {
    /// Applies the knobs to `cfg`. The SL-cache fields only land when the
    /// policy already enabled the SL cache, so a defense knob can never
    /// accidentally arm a defense the plan's policy did not choose.
    pub fn apply(&self, cfg: &mut CpuConfig) {
        cfg.rob_entries = self.rob_entries as usize;
        cfg.lq_entries = self.lq_entries as usize;
        cfg.sq_entries = self.sq_entries as usize;
        cfg.runahead.enter_penalty = self.enter_penalty;
        cfg.runahead.exit_penalty = self.exit_penalty;
        cfg.runahead.train_predictor = self.train_predictor;
        cfg.runahead.checkpoint_predictor = self.checkpoint_predictor;
        cfg.runahead.vector_lanes = self.vector_lanes;
        cfg.runahead.min_episode_yield = self.min_episode_yield;
        cfg.runahead.useless_backoff = self.useless_backoff;
        cfg.runahead.runahead_cache_bytes = self.runahead_cache_bytes as usize;
        cfg.fast_forward = self.fast_forward;
        if cfg.runahead.secure.sl_cache {
            cfg.runahead.secure.sl_entries = self.sl_entries as usize;
            cfg.runahead.secure.sl_latency = self.sl_latency;
        }
    }

    /// Number of knobs that differ from the paper machine.
    pub fn diff_count(&self) -> u64 {
        let d = KnobSpec::default();
        u64::from(self.rob_entries != d.rob_entries)
            + u64::from(self.lq_entries != d.lq_entries)
            + u64::from(self.sq_entries != d.sq_entries)
            + u64::from(self.enter_penalty != d.enter_penalty)
            + u64::from(self.exit_penalty != d.exit_penalty)
            + u64::from(self.train_predictor != d.train_predictor)
            + u64::from(self.checkpoint_predictor != d.checkpoint_predictor)
            + u64::from(self.vector_lanes != d.vector_lanes)
            + u64::from(self.min_episode_yield != d.min_episode_yield)
            + u64::from(self.useless_backoff != d.useless_backoff)
            + u64::from(self.runahead_cache_bytes != d.runahead_cache_bytes)
            + u64::from(self.sl_entries != d.sl_entries)
            + u64::from(self.sl_latency != d.sl_latency)
            + u64::from(self.fast_forward != d.fast_forward)
    }

    fn reset_candidates(&self) -> Vec<KnobSpec> {
        let d = KnobSpec::default();
        let mut out = Vec::new();
        macro_rules! reset_field {
            ($field:ident) => {
                if self.$field != d.$field {
                    out.push(KnobSpec { $field: d.$field, ..*self });
                }
            };
        }
        reset_field!(rob_entries);
        reset_field!(lq_entries);
        reset_field!(sq_entries);
        reset_field!(enter_penalty);
        reset_field!(exit_penalty);
        reset_field!(train_predictor);
        reset_field!(checkpoint_predictor);
        reset_field!(vector_lanes);
        reset_field!(min_episode_yield);
        reset_field!(useless_backoff);
        reset_field!(runahead_cache_bytes);
        reset_field!(sl_entries);
        reset_field!(sl_latency);
        reset_field!(fast_forward);
        out
    }
}

/// One complete fuzzed attack trial. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Seed of the campaign this plan belongs to.
    pub campaign_seed: u64,
    /// Position within the campaign (the plan's own seed derives from
    /// `campaign_seed` and this index, independent of campaign size).
    pub index: u64,
    /// Whether the plan was generated at quick (CI-soak) scale.
    pub quick: bool,
    /// Machine policy.
    pub policy: PlanPolicy,
    /// Victim shape.
    pub victim: VictimSpec,
    /// Memory geometry.
    pub layout: PlanLayout,
    /// The planted secret byte. Never 0: training architecturally warms
    /// probe entry 0, so the channel excludes it and a secret of 0 is
    /// unrecoverable by construction.
    pub secret: u8,
    /// Cache warm-up steps executed before the attack.
    pub warm: Vec<WarmStep>,
    /// Machine knobs.
    pub knobs: KnobSpec,
}

fn pick(rng: &mut SplitMix64, options: &[u64]) -> u64 {
    options[rng.next_below(options.len() as u64) as usize]
}

/// Keep the default three times out of four, otherwise draw an alternative
/// — plans stay near the paper machine with occasional single-knob kicks.
fn mostly(rng: &mut SplitMix64, default: u64, alts: &[u64]) -> u64 {
    if rng.next_below(4) == 0 {
        pick(rng, alts)
    } else {
        default
    }
}

fn mostly_true(rng: &mut SplitMix64) -> bool {
    rng.next_below(4) != 0
}

impl Plan {
    /// Deterministically generates plan `index` of the campaign seeded with
    /// `campaign_seed`. `quick` selects the CI-soak scale (fewer training
    /// rounds, tighter cycle budgets); it changes the generated values, not
    /// the grammar.
    pub fn generate(campaign_seed: u64, index: u64, quick: bool) -> Plan {
        let mixed = SplitMix64::new(campaign_seed).next_u64();
        let mut rng =
            SplitMix64::new(mixed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(quick));

        let policy = match rng.next_below(20) {
            0..=4 => PlanPolicy::Runahead,
            5..=9 => PlanPolicy::Secure,
            10..=11 => PlanPolicy::NoRunahead,
            12..=13 => PlanPolicy::HeadMissTrigger,
            14..=15 => PlanPolicy::Precise,
            16..=17 => PlanPolicy::Vector,
            _ => PlanPolicy::SkipInv,
        };
        let gadget = match rng.next_below(10) {
            0..=5 => GadgetKind::Pht,
            6..=7 => GadgetKind::Btb,
            _ => GadgetKind::Rsb,
        };

        let (rounds_lo, rounds_span, filler_lo, filler_span, max_cycles) =
            if quick { (6, 10, 900, 400, 1_500_000) } else { (8, 24, 1000, 800, 3_000_000) };
        let victim = VictimSpec {
            gadget,
            nop_slide: rng.next_below(401) as u32,
            training_rounds: (rounds_lo + rng.next_below(rounds_span)) as u32,
            attack_filler: (filler_lo + rng.next_below(filler_span)) as u32,
            max_cycles,
        };

        let data_shift = rng.next_below(64) * LINE;
        let layout = PlanLayout {
            bound_addr: 0x0009_0000 + data_shift,
            bound_value: pick(&mut rng, &[8, 16, 32, 64]),
            array1_base: 0x000a_0000 + data_shift,
            secret_addr: 0x000a_0000 + data_shift + 0x1_0000 + rng.next_below(256) * LINE,
            probe_base: 0x0100_0000 + rng.next_below(64) * LINE,
            probe_stride: pick(&mut rng, &[128, 256, 512, 1024]),
            probe_entries: 256,
            results_base: 0x0200_0000,
        };

        let secret = (1 + rng.next_below(255)) as u8;

        let warm_len = rng.next_below(4);
        let warm = (0..warm_len)
            .map(|_| WarmStep {
                addr: WARM_SCRATCH_BASE + rng.next_below(1024) * LINE,
                len: pick(&mut rng, &[8, 64, 256]),
            })
            .collect();

        let knobs = KnobSpec {
            rob_entries: mostly(&mut rng, 256, &[192, 320]) as u32,
            lq_entries: mostly(&mut rng, 40, &[24, 56]) as u32,
            sq_entries: mostly(&mut rng, 40, &[24, 56]) as u32,
            enter_penalty: mostly(&mut rng, 4, &[1, 2, 8]),
            exit_penalty: mostly(&mut rng, 8, &[2, 4, 16]),
            train_predictor: mostly_true(&mut rng),
            checkpoint_predictor: mostly_true(&mut rng),
            vector_lanes: mostly(&mut rng, 8, &[2, 4, 16]),
            min_episode_yield: mostly(&mut rng, 2, &[0, 4]),
            useless_backoff: mostly(&mut rng, 2500, &[500, 5000]),
            runahead_cache_bytes: mostly(&mut rng, 4096, &[2048, 8192]) as u32,
            sl_entries: mostly(&mut rng, 64, &[16, 32, 128]) as u32,
            sl_latency: mostly(&mut rng, 1, &[2]),
            fast_forward: mostly_true(&mut rng),
        };

        let plan =
            Plan { campaign_seed, index, quick, policy, victim, layout, secret, warm, knobs };
        debug_assert!(plan.layout.is_valid(), "generator produced an invalid layout: {plan:?}");
        plan
    }

    /// Shrinking metric: strictly decreases along every candidate in
    /// [`Plan::shrink_candidates`], so delta debugging terminates. Structural
    /// deviations from the paper configuration dominate the scalar dials.
    pub fn weight(&self) -> u64 {
        u64::from(self.victim.nop_slide)
            + u64::from(self.victim.training_rounds)
            + u64::from(self.victim.attack_filler)
            + u64::from(self.secret)
            + 1000 * (self.warm.len() as u64 + self.knobs.diff_count() + self.layout.diff_count())
    }

    /// Candidate reductions, most-aggressive first: restore the paper
    /// layout, drop warm-up steps, reset knobs (wholesale, then one at a
    /// time), then walk the scalar dials (secret, slide, training, filler)
    /// toward their floors. Every candidate has a strictly smaller
    /// [`Plan::weight`].
    pub fn shrink_candidates(&self) -> Vec<Plan> {
        let mut out = Vec::new();
        if self.layout != PlanLayout::paper_default() {
            out.push(Plan { layout: PlanLayout::paper_default(), ..self.clone() });
        }
        for i in 0..self.warm.len() {
            let mut warm = self.warm.clone();
            warm.remove(i);
            out.push(Plan { warm, ..self.clone() });
        }
        if self.knobs != KnobSpec::default() {
            out.push(Plan { knobs: KnobSpec::default(), ..self.clone() });
            for knobs in self.knobs.reset_candidates() {
                out.push(Plan { knobs, ..self.clone() });
            }
        }
        if self.secret > 1 {
            out.push(Plan { secret: 1, ..self.clone() });
        }
        let v = self.victim;
        if v.nop_slide > 0 {
            out.push(Plan { victim: VictimSpec { nop_slide: 0, ..v }, ..self.clone() });
            if v.nop_slide > 1 {
                let half = VictimSpec { nop_slide: v.nop_slide / 2, ..v };
                out.push(Plan { victim: half, ..self.clone() });
            }
        }
        if v.training_rounds > 1 {
            out.push(Plan { victim: VictimSpec { training_rounds: 1, ..v }, ..self.clone() });
            if v.training_rounds > 3 {
                let half = VictimSpec { training_rounds: v.training_rounds / 2, ..v };
                out.push(Plan { victim: half, ..self.clone() });
            }
        }
        if v.attack_filler > 0 {
            out.push(Plan { victim: VictimSpec { attack_filler: 0, ..v }, ..self.clone() });
            if v.attack_filler > 1 {
                let half = VictimSpec { attack_filler: v.attack_filler / 2, ..v };
                out.push(Plan { victim: half, ..self.clone() });
            }
        }
        debug_assert!(out.iter().all(|c| c.weight() < self.weight()));
        out
    }

    /// Renders the plan as deterministic, insertion-ordered JSON. `indent`
    /// is the nesting depth of the opening brace's line, letting callers
    /// splice the block into a larger document; the first line carries no
    /// leading whitespace.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = "  ".repeat(indent + 1);
        let pad2 = "  ".repeat(indent + 2);
        let close = "  ".repeat(indent);
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("{pad}\"campaign_seed\": \"{}\",\n", self.campaign_seed));
        s.push_str(&format!("{pad}\"plan_index\": {},\n", self.index));
        s.push_str(&format!("{pad}\"mode\": \"{}\",\n", if self.quick { "quick" } else { "full" }));
        s.push_str(&format!("{pad}\"policy\": \"{}\",\n", self.policy.label()));
        s.push_str(&format!("{pad}\"gadget\": \"{}\",\n", self.victim.gadget.label()));
        s.push_str(&format!("{pad}\"nop_slide\": {},\n", self.victim.nop_slide));
        s.push_str(&format!("{pad}\"training_rounds\": {},\n", self.victim.training_rounds));
        s.push_str(&format!("{pad}\"attack_filler\": {},\n", self.victim.attack_filler));
        s.push_str(&format!("{pad}\"max_cycles\": {},\n", self.victim.max_cycles));
        s.push_str(&format!("{pad}\"secret\": {},\n", self.secret));
        let l = &self.layout;
        s.push_str(&format!("{pad}\"layout\": {{\n"));
        s.push_str(&format!("{pad2}\"bound_addr\": \"{:#x}\",\n", l.bound_addr));
        s.push_str(&format!("{pad2}\"bound_value\": {},\n", l.bound_value));
        s.push_str(&format!("{pad2}\"array1_base\": \"{:#x}\",\n", l.array1_base));
        s.push_str(&format!("{pad2}\"secret_addr\": \"{:#x}\",\n", l.secret_addr));
        s.push_str(&format!("{pad2}\"probe_base\": \"{:#x}\",\n", l.probe_base));
        s.push_str(&format!("{pad2}\"probe_stride\": {},\n", l.probe_stride));
        s.push_str(&format!("{pad2}\"probe_entries\": {},\n", l.probe_entries));
        s.push_str(&format!("{pad2}\"results_base\": \"{:#x}\"\n", l.results_base));
        s.push_str(&format!("{pad}}},\n"));
        s.push_str(&format!("{pad}\"warm\": ["));
        for (i, w) in self.warm.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n{pad2}{{\"addr\": \"{:#x}\", \"len\": {}}}", w.addr, w.len));
        }
        if self.warm.is_empty() {
            s.push_str("],\n");
        } else {
            s.push_str(&format!("\n{pad}],\n"));
        }
        let k = &self.knobs;
        s.push_str(&format!("{pad}\"knobs\": {{\n"));
        s.push_str(&format!("{pad2}\"rob_entries\": {},\n", k.rob_entries));
        s.push_str(&format!("{pad2}\"lq_entries\": {},\n", k.lq_entries));
        s.push_str(&format!("{pad2}\"sq_entries\": {},\n", k.sq_entries));
        s.push_str(&format!("{pad2}\"enter_penalty\": {},\n", k.enter_penalty));
        s.push_str(&format!("{pad2}\"exit_penalty\": {},\n", k.exit_penalty));
        s.push_str(&format!("{pad2}\"train_predictor\": {},\n", k.train_predictor));
        s.push_str(&format!("{pad2}\"checkpoint_predictor\": {},\n", k.checkpoint_predictor));
        s.push_str(&format!("{pad2}\"vector_lanes\": {},\n", k.vector_lanes));
        s.push_str(&format!("{pad2}\"min_episode_yield\": {},\n", k.min_episode_yield));
        s.push_str(&format!("{pad2}\"useless_backoff\": {},\n", k.useless_backoff));
        s.push_str(&format!("{pad2}\"runahead_cache_bytes\": {},\n", k.runahead_cache_bytes));
        s.push_str(&format!("{pad2}\"sl_entries\": {},\n", k.sl_entries));
        s.push_str(&format!("{pad2}\"sl_latency\": {},\n", k.sl_latency));
        s.push_str(&format!("{pad2}\"fast_forward\": {}\n", k.fast_forward));
        s.push_str(&format!("{pad}}}\n"));
        s.push_str(&format!("{close}}}"));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_index_independent() {
        for index in [0u64, 7, 99] {
            let a = Plan::generate(0xC0FFEE, index, true);
            let b = Plan::generate(0xC0FFEE, index, true);
            assert_eq!(a, b);
            assert_eq!(a.to_json(0), b.to_json(0));
        }
    }

    #[test]
    fn seeds_and_modes_change_plans() {
        let a = Plan::generate(1, 0, false);
        let b = Plan::generate(2, 0, false);
        assert_ne!(a, b, "campaign seed must flow into the plan");
        let q = Plan::generate(1, 0, true);
        assert_ne!(a, q, "scale must flow into the plan");
    }

    #[test]
    fn generated_layouts_are_valid_and_secrets_nonzero() {
        for i in 0..500 {
            let p = Plan::generate(42, i, i % 2 == 0);
            assert!(p.layout.is_valid(), "plan {i}: {:?}", p.layout);
            assert_ne!(p.secret, 0);
            assert!(p.victim.attack_filler >= 900, "plan {i} filler too short");
            for w in &p.warm {
                assert!(w.addr >= WARM_SCRATCH_BASE, "warm step outside scratch");
            }
        }
    }

    #[test]
    fn knobs_apply_respects_policy_gate() {
        let knobs = KnobSpec { sl_entries: 16, sl_latency: 2, ..KnobSpec::default() };
        let mut plain = CpuConfig::default();
        knobs.apply(&mut plain);
        assert_eq!(plain.runahead.secure.sl_entries, 0, "no defense armed by knobs alone");
        let mut secure = CpuConfig::secure_runahead();
        knobs.apply(&mut secure);
        assert_eq!(secure.runahead.secure.sl_entries, 16);
        assert_eq!(secure.runahead.secure.sl_latency, 2);
    }

    #[test]
    fn shrink_candidates_strictly_reduce_weight() {
        for i in 0..100 {
            let p = Plan::generate(7, i, false);
            let w = p.weight();
            for c in p.shrink_candidates() {
                assert!(c.weight() < w, "candidate must strictly reduce weight");
            }
        }
    }

    #[test]
    fn default_knobs_reproduce_paper_config() {
        let mut cfg = CpuConfig::default();
        KnobSpec::default().apply(&mut cfg);
        assert_eq!(cfg, CpuConfig::default(), "default knobs must be a no-op");
    }
}
