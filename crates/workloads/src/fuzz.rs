//! Delta-debugging support for `specrun-fuzz`: shrink a failing
//! [`Plan`] while preserving its failure.
//!
//! The shrinker is deliberately oracle-agnostic — `still_fails` is whatever
//! the caller considers "the same failure" (in the lab it is "at least one
//! of the originally violated invariants still fires, or the plan still
//! panics"). Termination is structural: every candidate from
//! [`Plan::shrink_candidates`] has a strictly smaller [`Plan::weight`], so
//! the adopt-and-restart loop walks a well-founded order.
//!
//! ```
//! use specrun_workloads::fuzz::shrink_plan;
//! use specrun_workloads::plan::Plan;
//!
//! let mut plan = Plan::generate(0xBAD, 0, true);
//! plan.victim.nop_slide = 200;
//! // "Fails" whenever the slide is long; everything else should collapse.
//! let shrunk = shrink_plan(&plan, |p| p.victim.nop_slide >= 50);
//! assert!(shrunk.victim.nop_slide >= 50, "shrinking preserves the failure");
//! assert!(shrunk.weight() < plan.weight(), "and strictly reduces the plan");
//! ```

use crate::plan::Plan;

/// Greedily minimizes `plan` under the failure predicate.
///
/// Repeatedly tries the candidates of the current plan in order and adopts
/// the first one that still fails, restarting from it; returns once no
/// candidate fails, i.e. a local minimum: every single reduction step the
/// grammar offers repairs the plan.
///
/// `still_fails(plan)` is assumed true on entry (the caller observed the
/// failure); the function never re-checks the input itself.
pub fn shrink_plan<F>(plan: &Plan, mut still_fails: F) -> Plan
where
    F: FnMut(&Plan) -> bool,
{
    let mut current = plan.clone();
    loop {
        let mut improved = false;
        for candidate in current.shrink_candidates() {
            if still_fails(&candidate) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{KnobSpec, PlanLayout};

    #[test]
    fn shrink_reaches_local_minimum_and_preserves_failure() {
        // A deliberately-injected failure: any plan with a slide of at
        // least 37 "fails". The shrinker must keep the property while
        // discarding everything else it can.
        let mut plan = Plan::generate(0xBAD, 3, false);
        plan.victim.nop_slide = 300;
        let fails = |p: &Plan| p.victim.nop_slide >= 37;
        let shrunk = shrink_plan(&plan, fails);
        assert!(fails(&shrunk), "shrinking must preserve the failure");
        assert!(shrunk.weight() < plan.weight(), "shrinking must strictly reduce the plan");
        // Everything unrelated to the predicate collapsed to the floor.
        assert_eq!(shrunk.layout, PlanLayout::paper_default());
        assert_eq!(shrunk.knobs, KnobSpec::default());
        assert!(shrunk.warm.is_empty());
        assert_eq!(shrunk.secret, 1);
        assert_eq!(shrunk.victim.attack_filler, 0);
        assert_eq!(shrunk.victim.training_rounds, 1);
        // The slide sits just above the threshold: halving once more would
        // cross it, so the result is locally minimal.
        assert!((37..74).contains(&shrunk.victim.nop_slide), "slide {}", shrunk.victim.nop_slide);
        assert!(shrunk.shrink_candidates().iter().all(|c| !fails(c)), "local minimum");
    }

    #[test]
    fn shrink_of_minimal_plan_is_identity() {
        let plan = Plan::generate(5, 0, true);
        // Predicate fails on everything — adopt until the floor.
        let floor = shrink_plan(&plan, |_| true);
        assert!(floor.shrink_candidates().is_empty(), "floor has no candidates left");
        let again = shrink_plan(&floor, |_| true);
        assert_eq!(floor, again);
    }
}
