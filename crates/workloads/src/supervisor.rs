//! The campaign supervisor: wall-clock deadlines, stall detection,
//! retry-with-quarantine and a failure-rate circuit breaker over the
//! parallel trial harness.
//!
//! [`try_parallel_map_with`](crate::harness::try_parallel_map_with)
//! isolates panics and preserves order, but it supervises nothing about
//! *time*: cycle budgets catch simulated-cycle runaway, while a
//! wall-clock-slow configuration or a wedged worker thread stalls the
//! whole campaign. [`supervised_map_with`] layers a monitor thread on the
//! same work-stealing pool:
//!
//! * every unit runs with a fresh [`CancelToken`] registered in a
//!   per-worker slot; the token's checkpoints (polled inside
//!   `Core::run_governed`) double as heartbeats;
//! * the monitor compares each active unit's age and heartbeat freshness
//!   against the configured deadline and stall windows, and trips the
//!   token with the matching [`CancelReason`] — the worker reclassifies
//!   the resulting [`RunError::Cancelled`] into
//!   [`RunError::DeadlineExceeded`] (slow but progressing) or
//!   [`RunError::Stalled`] (no heartbeat);
//! * a failed unit retries after a deterministic seeded backoff
//!   ([`backoff_ms`], a pure function of campaign seed, unit index and
//!   attempt — never of the clock), unless it fails **identically twice
//!   in a row**, which quarantines it with its full attempt history:
//!   deterministic failures cannot be slept away;
//! * a campaign-level circuit breaker watches the failure rate and, once
//!   tripped, drains gracefully — in-flight units finish, unstarted units
//!   are recorded as [`UnitOutcome::Skipped`] so the caller can emit a
//!   partial-results report (and a later `--resume` can finish the job).
//!
//! All time flows through a [`Clock`], so chaos drills drive every path
//! deterministically with [`ChaosClock`](crate::clock::ChaosClock) virtual
//! time. Nothing wall-clock-valued leaves this module: outcomes carry
//! counts and classifications only, keeping gated artifacts byte-stable.
//!
//! ```
//! use specrun_workloads::clock::WallClock;
//! use specrun_workloads::harness::RunError;
//! use specrun_workloads::supervisor::{supervised_map_with, SupervisorConfig, UnitOutcome};
//!
//! let items = [10u64, 20, 30];
//! let report = supervised_map_with(
//!     &items,
//!     2,
//!     &SupervisorConfig::default(),
//!     &WallClock::new(),
//!     |_, &x, _| Ok::<u64, RunError>(x + 1),
//!     |_, _| {},
//! );
//! assert!(!report.breaker_tripped);
//! assert!(matches!(report.outcomes[2], UnitOutcome::Done { result: 31, .. }));
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

pub use specrun_cpu::cancel::{CancelReason, CancelToken};

use crate::clock::Clock;
use crate::harness::{RunError, TrialError};
use crate::rng::SplitMix64;

/// Supervision policy for one campaign. The default is fully passive
/// (no deadlines, no retries, breaker disabled).
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Per-unit wall-clock deadline in ms (`0` = no deadline).
    pub deadline_ms: u64,
    /// No-heartbeat window in ms before a unit counts as stalled
    /// (`0` = no stall detection).
    pub stall_ms: u64,
    /// Monitor poll interval in ms.
    pub poll_ms: u64,
    /// Retry attempts after the first failure (`0` = fail fast).
    pub retries: u32,
    /// Seed of the deterministic backoff schedule (normally the campaign
    /// seed, so the schedule is reproducible per campaign).
    pub seed: u64,
    /// Failure-rate threshold tripping the circuit breaker; a rate
    /// *strictly above* this trips, so `1.0` disables the breaker.
    pub max_failure_rate: f64,
    /// Completed units required before the breaker may trip (a 1-for-1
    /// start must not kill a million-unit campaign).
    pub breaker_min_units: u64,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            deadline_ms: 0,
            stall_ms: 0,
            poll_ms: 20,
            retries: 0,
            seed: 0,
            max_failure_rate: 1.0,
            breaker_min_units: 4,
        }
    }
}

impl SupervisorConfig {
    /// Whether any supervision feature is switched on. A passive config
    /// lets callers keep the plain (monitor-free) harness path.
    pub fn is_active(&self) -> bool {
        self.deadline_ms > 0 || self.stall_ms > 0 || self.retries > 0 || self.max_failure_rate < 1.0
    }
}

/// Deterministic retry backoff in milliseconds: a pure function of
/// `(seed, unit_index, attempt)` — same inputs, same schedule, on any host,
/// any thread count, any wall-clock state. Attempt 0 (the first try) never
/// waits; later attempts wait a jittered exponential bounded to keep even
/// deep retries sub-second.
pub fn backoff_ms(seed: u64, unit_index: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        return 0;
    }
    // Base 8 ms doubling per attempt, capped at 256 ms.
    let base = 8u64.saturating_mul(1 << (attempt - 1).min(5)).min(256);
    // Seeded jitter in [0, base): decorrelates sibling units retrying at
    // once without introducing wall-clock or host entropy.
    let mut rng = SplitMix64::new(seed ^ unit_index.rotate_left(17) ^ u64::from(attempt));
    base + rng.next_below(base)
}

/// How one supervised unit ended.
#[derive(Debug, Clone)]
pub enum UnitOutcome<R> {
    /// The unit produced a result (possibly after retries).
    Done {
        /// The unit's result.
        result: R,
        /// Attempts consumed, counting the successful one.
        attempts: u32,
    },
    /// Every allowed attempt failed (with differing signatures).
    Failed {
        /// The final attempt's error.
        error: RunError,
        /// Every attempt's rendered error, in order.
        history: Vec<String>,
    },
    /// The unit failed identically twice in a row: its failure is
    /// deterministic, so further retries are pointless and the unit is
    /// quarantined with its attempt history.
    Quarantined {
        /// The repeating error.
        error: RunError,
        /// Every attempt's rendered error, in order.
        history: Vec<String>,
    },
    /// The circuit breaker tripped before this unit started; it never ran.
    Skipped,
}

impl<R> UnitOutcome<R> {
    /// Whether this outcome counts as a failure for the breaker.
    fn is_failure(&self) -> bool {
        matches!(self, UnitOutcome::Failed { .. } | UnitOutcome::Quarantined { .. })
    }
}

/// Everything a supervised campaign produced, in input order.
#[derive(Debug, Clone)]
pub struct SupervisedReport<R> {
    /// Per-unit outcomes, index-aligned with the input slice.
    pub outcomes: Vec<UnitOutcome<R>>,
    /// Whether the circuit breaker tripped (some outcomes are `Skipped`).
    pub breaker_tripped: bool,
}

impl<R> SupervisedReport<R> {
    /// Units that never ran because the breaker tripped.
    pub fn skipped(&self) -> u64 {
        self.outcomes.iter().filter(|o| matches!(o, UnitOutcome::Skipped)).count() as u64
    }

    /// Units quarantined for failing identically twice.
    pub fn quarantined(&self) -> u64 {
        self.outcomes.iter().filter(|o| matches!(o, UnitOutcome::Quarantined { .. })).count() as u64
    }
}

/// What a supervised unit function receives alongside its work item.
pub struct UnitCtx<'a> {
    /// This attempt's cancel token: attach it to the machine under test
    /// (heartbeats and cooperative cancellation flow through it).
    pub token: CancelToken,
    /// The campaign clock (virtual in chaos drills).
    pub clock: &'a dyn Clock,
    /// 0-based attempt number (0 = first try).
    pub attempt: u32,
}

/// One active unit as the monitor sees it.
struct ActiveUnit {
    token: CancelToken,
    started_at: u64,
    last_progress_at: u64,
    last_beat: (u64, u64),
}

/// Shared supervisor state between workers and the monitor.
struct Shared<'a> {
    cfg: &'a SupervisorConfig,
    clock: &'a dyn Clock,
    slots: Vec<Mutex<Option<ActiveUnit>>>,
    finished: AtomicU64,
    failed: AtomicU64,
    breaker: AtomicBool,
    done: AtomicBool,
}

impl Shared<'_> {
    /// One monitor sweep: classify every active unit's age and heartbeat
    /// freshness, tripping tokens as windows elapse.
    fn sweep(&self) {
        for slot in &self.slots {
            let mut guard = slot.lock().unwrap();
            let Some(active) = guard.as_mut() else { continue };
            let now = self.clock.now_ms();
            let beat = (active.token.beat_cycle(), active.token.beat_committed());
            if beat != active.last_beat {
                active.last_beat = beat;
                active.last_progress_at = now;
            }
            if self.cfg.deadline_ms > 0
                && now.saturating_sub(active.started_at) >= self.cfg.deadline_ms
            {
                active.token.cancel(CancelReason::Deadline);
            } else if self.cfg.stall_ms > 0
                && now.saturating_sub(active.last_progress_at) >= self.cfg.stall_ms
            {
                active.token.cancel(CancelReason::Stalled);
            }
        }
    }

    /// Records a finished unit and trips the breaker when the failure rate
    /// crosses the threshold (after the warm-up minimum).
    fn record(&self, failure: bool) {
        let finished = self.finished.fetch_add(1, Ordering::Relaxed) + 1;
        let failed = if failure {
            self.failed.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            self.failed.load(Ordering::Relaxed)
        };
        if self.cfg.max_failure_rate < 1.0
            && finished >= self.cfg.breaker_min_units
            && failed as f64 / finished as f64 > self.cfg.max_failure_rate
        {
            self.breaker.store(true, Ordering::Relaxed);
        }
    }
}

/// Maps `RunError::Cancelled` onto the monitor's recorded reason; every
/// other error passes through untouched.
fn reclassify(error: RunError, token: &CancelToken, cfg: &SupervisorConfig) -> RunError {
    match (error, token.reason()) {
        (RunError::Cancelled { what, committed }, Some(CancelReason::Deadline)) => {
            RunError::DeadlineExceeded { what, deadline_ms: cfg.deadline_ms, committed }
        }
        (RunError::Cancelled { what, .. }, Some(CancelReason::Stalled)) => RunError::Stalled {
            what,
            stall_ms: cfg.stall_ms,
            last_committed: token.beat_committed(),
        },
        (error, _) => error,
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Runs one unit through the attempt loop (register slot → run → classify
/// → backoff → retry / quarantine / fail).
fn run_unit<T, R, F>(
    shared: &Shared<'_>,
    slot_index: usize,
    index: usize,
    item: &T,
    f: &F,
) -> UnitOutcome<R>
where
    F: Fn(usize, &T, &UnitCtx) -> Result<R, RunError> + Sync,
{
    let mut history: Vec<String> = Vec::new();
    let mut attempt = 0u32;
    loop {
        if attempt > 0 {
            shared.clock.sleep_ms(backoff_ms(shared.cfg.seed, index as u64, attempt));
        }
        let token = CancelToken::new();
        let now = shared.clock.now_ms();
        *shared.slots[slot_index].lock().unwrap() = Some(ActiveUnit {
            token: token.clone(),
            started_at: now,
            last_progress_at: now,
            last_beat: (0, 0),
        });
        let ctx = UnitCtx { token: token.clone(), clock: shared.clock, attempt };
        let result = catch_unwind(AssertUnwindSafe(|| f(index, item, &ctx)));
        *shared.slots[slot_index].lock().unwrap() = None;
        let error = match result {
            Ok(Ok(result)) => return UnitOutcome::Done { result, attempts: attempt + 1 },
            Ok(Err(e)) => reclassify(e, &token, shared.cfg),
            Err(payload) => RunError::Panic(TrialError { index, message: panic_message(payload) }),
        };
        let rendered = error.to_string();
        let identical = history.last() == Some(&rendered);
        history.push(rendered);
        if identical {
            return UnitOutcome::Quarantined { error, history };
        }
        if attempt >= shared.cfg.retries {
            return UnitOutcome::Failed { error, history };
        }
        attempt += 1;
    }
}

/// The supervised parallel map. Like
/// [`try_parallel_map_with`](crate::harness::try_parallel_map_with) —
/// work-stealing pool, input-order results, per-unit completion hook fired
/// from the worker thread — but each unit runs under the supervision
/// policy in `cfg` (see the module docs). `on_done` fires exactly once per
/// unit with its **final** outcome, after all retries resolve: journals
/// hanging off the hook record final attempts only.
pub fn supervised_map_with<T, R, F, D>(
    items: &[T],
    threads: usize,
    cfg: &SupervisorConfig,
    clock: &dyn Clock,
    f: F,
    on_done: D,
) -> SupervisedReport<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &UnitCtx) -> Result<R, RunError> + Sync,
    D: Fn(usize, &UnitOutcome<R>) + Sync,
{
    let n = items.len();
    if n == 0 {
        return SupervisedReport { outcomes: Vec::new(), breaker_tripped: false };
    }
    let threads = threads.clamp(1, n);
    let shared = Shared {
        cfg,
        clock,
        slots: (0..threads).map(|_| Mutex::new(None)).collect(),
        finished: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        breaker: AtomicBool::new(false),
        done: AtomicBool::new(false),
    };
    let needs_monitor = cfg.deadline_ms > 0 || cfg.stall_ms > 0;
    let cursor = AtomicUsize::new(0);
    let worker = |slot_index: usize| {
        let mut local: Vec<(usize, UnitOutcome<R>)> = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let outcome = if shared.breaker.load(Ordering::Relaxed) {
                UnitOutcome::Skipped
            } else {
                let outcome = run_unit(&shared, slot_index, i, &items[i], &f);
                shared.record(outcome.is_failure());
                outcome
            };
            on_done(i, &outcome);
            local.push((i, outcome));
        }
        local
    };

    let per_worker: Vec<Vec<(usize, UnitOutcome<R>)>> = std::thread::scope(|scope| {
        let monitor = needs_monitor.then(|| {
            scope.spawn(|| {
                while !shared.done.load(Ordering::Relaxed) {
                    shared.sweep();
                    shared.clock.sleep_ms(shared.cfg.poll_ms.max(1));
                }
            })
        });
        let handles: Vec<_> = (0..threads).map(|w| scope.spawn(move || worker(w))).collect();
        let collected =
            handles.into_iter().map(|h| h.join().expect("worker loop itself cannot panic"));
        let collected: Vec<_> = collected.collect();
        shared.done.store(true, Ordering::Relaxed);
        if let Some(m) = monitor {
            m.join().expect("monitor loop cannot panic");
        }
        collected
    });

    let mut out: Vec<Option<UnitOutcome<R>>> = (0..n).map(|_| None).collect();
    for (i, o) in per_worker.into_iter().flatten() {
        out[i] = Some(o);
    }
    let outcomes: Vec<UnitOutcome<R>> =
        out.into_iter().map(|o| o.expect("every index produced")).collect();
    let breaker_tripped = shared.breaker.load(Ordering::Relaxed);
    SupervisedReport { outcomes, breaker_tripped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{ChaosClock, WallClock};

    fn passive() -> SupervisorConfig {
        SupervisorConfig::default()
    }

    #[test]
    fn passive_config_is_inactive_and_features_activate_it() {
        assert!(!passive().is_active());
        assert!(SupervisorConfig { deadline_ms: 1, ..passive() }.is_active());
        assert!(SupervisorConfig { stall_ms: 1, ..passive() }.is_active());
        assert!(SupervisorConfig { retries: 1, ..passive() }.is_active());
        assert!(SupervisorConfig { max_failure_rate: 0.5, ..passive() }.is_active());
    }

    #[test]
    fn backoff_is_pure_zero_first_and_input_sensitive() {
        assert_eq!(backoff_ms(1, 2, 0), 0, "the first attempt never waits");
        for (seed, unit, attempt) in [(0u64, 0u64, 1u32), (7, 3, 2), (0xC0FFEE, 199, 5)] {
            let a = backoff_ms(seed, unit, attempt);
            let b = backoff_ms(seed, unit, attempt);
            assert_eq!(a, b, "pure function of its inputs");
            assert!(a > 0 && a < 1000, "bounded: {a}");
        }
        assert_ne!(backoff_ms(1, 2, 1), backoff_ms(2, 2, 1), "seed-sensitive");
    }

    #[test]
    fn healthy_units_pass_through_in_order() {
        let items: Vec<u64> = (0..20).collect();
        let clock = WallClock::new();
        let report = supervised_map_with(
            &items,
            4,
            &passive(),
            &clock,
            |_, &x, _| Ok::<u64, RunError>(x * 2),
            |_, _| {},
        );
        assert!(!report.breaker_tripped);
        for (i, o) in report.outcomes.iter().enumerate() {
            match o {
                UnitOutcome::Done { result, attempts: 1 } => assert_eq!(*result, i as u64 * 2),
                other => panic!("unit {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn transient_failure_heals_on_retry() {
        let items = [0u64];
        let clock = ChaosClock::new();
        let cfg = SupervisorConfig { retries: 2, ..passive() };
        let report = supervised_map_with(
            &items,
            1,
            &cfg,
            &clock,
            |i, _, ctx| {
                if ctx.attempt == 0 {
                    Err(RunError::Io { what: format!("unit {i}"), detail: "flake".into() })
                } else {
                    Ok(42u64)
                }
            },
            |_, _| {},
        );
        match &report.outcomes[0] {
            UnitOutcome::Done { result: 42, attempts: 2 } => {}
            other => panic!("expected healed retry, got {other:?}"),
        }
        assert!(clock.now_ms() >= backoff_ms(0, 0, 1), "the retry consumed its backoff");
    }

    #[test]
    fn identical_failures_quarantine_without_burning_retries() {
        let items = [0u64];
        let clock = ChaosClock::new();
        let cfg = SupervisorConfig { retries: 10, ..passive() };
        let report = supervised_map_with(
            &items,
            1,
            &cfg,
            &clock,
            |i, _, _| {
                Err::<u64, _>(RunError::Io { what: format!("unit {i}"), detail: "same".into() })
            },
            |_, _| {},
        );
        match &report.outcomes[0] {
            UnitOutcome::Quarantined { history, .. } => {
                assert_eq!(history.len(), 2, "quarantine after the second identical failure");
                assert_eq!(history[0], history[1]);
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert_eq!(report.quarantined(), 1);
    }

    #[test]
    fn panics_count_as_failures_and_differing_errors_exhaust_retries() {
        let items = [0u64];
        let clock = ChaosClock::new();
        let cfg = SupervisorConfig { retries: 2, ..passive() };
        let report = supervised_map_with(
            &items,
            1,
            &cfg,
            &clock,
            |_, _, ctx| -> Result<u64, RunError> { panic!("attempt {} exploded", ctx.attempt) },
            |_, _| {},
        );
        match &report.outcomes[0] {
            // Panic messages differ per attempt, so this exhausts retries
            // rather than quarantining.
            UnitOutcome::Failed { error: RunError::Panic(_), history } => {
                assert_eq!(history.len(), 3, "initial try plus two retries");
            }
            other => panic!("expected exhausted retries, got {other:?}"),
        }
    }

    #[test]
    fn breaker_trips_and_drains_to_skipped() {
        let items: Vec<u64> = (0..10).collect();
        let clock = ChaosClock::new();
        let cfg = SupervisorConfig { max_failure_rate: 0.4, breaker_min_units: 2, ..passive() };
        let on_done_count = AtomicU64::new(0);
        let report = supervised_map_with(
            &items,
            1,
            &cfg,
            &clock,
            |i, _, _| {
                Err::<u64, _>(RunError::Io { what: format!("unit {i}"), detail: "down".into() })
            },
            |_, _| {
                on_done_count.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(report.breaker_tripped);
        // Single-threaded: units 0 and 1 fail (rate 1.0 > 0.4 at the
        // minimum), everything after is skipped.
        assert!(matches!(report.outcomes[0], UnitOutcome::Failed { .. }));
        assert!(matches!(report.outcomes[1], UnitOutcome::Failed { .. }));
        assert_eq!(report.skipped(), 8);
        assert_eq!(
            on_done_count.load(Ordering::Relaxed),
            10,
            "on_done fires once per unit, skipped included"
        );
    }

    #[test]
    fn stalled_unit_is_cancelled_and_classified() {
        let items = [0u64];
        let clock = ChaosClock::new();
        let cfg = SupervisorConfig { stall_ms: 50, poll_ms: 5, ..passive() };
        let report = supervised_map_with(
            &items,
            1,
            &cfg,
            &clock,
            |i, _, ctx| -> Result<u64, RunError> {
                // A hung unit: no heartbeats, only cooperative cancel polls.
                while !ctx.token.is_cancelled() {
                    ctx.clock.sleep_ms(1);
                }
                Err(RunError::Cancelled { what: format!("unit {i}"), committed: 0 })
            },
            |_, _| {},
        );
        match &report.outcomes[0] {
            UnitOutcome::Failed { error: RunError::Stalled { stall_ms: 50, .. }, .. } => {}
            other => panic!("expected a stall classification, got {other:?}"),
        }
    }

    #[test]
    fn progressing_unit_past_deadline_is_deadline_not_stall() {
        let items = [0u64];
        let clock = ChaosClock::new();
        // Stall window far beyond the deadline: heartbeats advance every
        // virtual millisecond, so only the deadline can fire.
        let cfg = SupervisorConfig { deadline_ms: 50, stall_ms: 5000, poll_ms: 5, ..passive() };
        let report = supervised_map_with(
            &items,
            1,
            &cfg,
            &clock,
            |i, _, ctx| -> Result<u64, RunError> {
                let mut committed = 0;
                while !ctx.token.is_cancelled() {
                    committed += 1;
                    ctx.token.beat(committed, committed);
                    ctx.clock.sleep_ms(1);
                }
                Err(RunError::Cancelled { what: format!("unit {i}"), committed })
            },
            |_, _| {},
        );
        match &report.outcomes[0] {
            UnitOutcome::Failed {
                error: RunError::DeadlineExceeded { deadline_ms: 50, committed, .. },
                ..
            } => {
                assert!(*committed > 0, "the unit was progressing when cancelled");
            }
            other => panic!("expected a deadline classification, got {other:?}"),
        }
    }
}
