//! Time as a capability: the [`Clock`] the supervision layer reads and
//! sleeps against.
//!
//! Everything wall-clock-dependent in the campaign supervisor — unit
//! deadlines, stall windows, retry backoff sleeps, monitor polling — goes
//! through this trait, never through `Instant::now()` directly. That buys
//! two properties:
//!
//! * **determinism for drills** — [`ChaosClock`] is virtual time (the
//!   supervision sibling of the lab's fault-injecting `ChaosSink`): a
//!   sleep *advances* the clock instead of waiting, so a chaos drill can
//!   march a hung unit past its deadline in microseconds of real time and
//!   get the same classification on every run;
//! * **artifact hygiene** — wall-clock readings exist only inside the
//!   supervisor. Reports record *outcomes* (retries, quarantines, breaker
//!   state), never durations, so gated artifacts stay byte-stable.
//!
//! ```
//! use specrun_workloads::clock::{ChaosClock, Clock};
//!
//! let clock = ChaosClock::new();
//! clock.sleep_ms(30_000); // a virtual sleep: instant, but time moved
//! clock.advance_ms(5);
//! assert_eq!(clock.now_ms(), 30_005);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic millisecond clock the supervisor can also sleep on.
pub trait Clock: Sync {
    /// Milliseconds since the clock's origin.
    fn now_ms(&self) -> u64;

    /// Blocks (or, for virtual clocks, advances time) for `ms`.
    fn sleep_ms(&self, ms: u64);
}

/// The real host clock: `now_ms` is elapsed time since construction,
/// `sleep_ms` is a genuine thread sleep.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose origin is now.
    pub fn new() -> WallClock {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    fn sleep_ms(&self, ms: u64) {
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

/// Deterministic virtual time for chaos drills: `sleep_ms` advances the
/// clock instead of waiting (plus a scheduler yield so a spinning monitor
/// thread cannot starve the workers). Shared by reference between the
/// drill's unit threads and the monitor, so every sleep anywhere moves the
/// one timeline forward.
#[derive(Debug, Default)]
pub struct ChaosClock {
    now: AtomicU64,
}

impl ChaosClock {
    /// A virtual clock starting at 0 ms.
    pub fn new() -> ChaosClock {
        ChaosClock::default()
    }

    /// Advances virtual time without sleeping (drill-side nudge).
    pub fn advance_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::Relaxed);
    }
}

impl Clock for ChaosClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    fn sleep_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::Relaxed);
        // Virtual sleeps are instant; without a yield a polling monitor
        // would monopolize a core and (on a single-CPU host) starve the
        // very unit it is watching.
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_advances_and_sleeps() {
        let c = WallClock::new();
        let before = c.now_ms();
        c.sleep_ms(2);
        assert!(c.now_ms() >= before + 2, "sleep must consume real time");
    }

    #[test]
    fn chaos_clock_is_virtual_and_shared() {
        let c = ChaosClock::new();
        assert_eq!(c.now_ms(), 0);
        let start = Instant::now();
        c.sleep_ms(10_000);
        assert!(start.elapsed() < Duration::from_secs(5), "virtual sleep must not block");
        assert_eq!(c.now_ms(), 10_000);
        c.advance_ms(5);
        assert_eq!(c.now_ms(), 10_005);
        std::thread::scope(|s| {
            let h = s.spawn(|| c.sleep_ms(95));
            h.join().unwrap();
        });
        assert_eq!(c.now_ms(), 10_100, "all threads share one timeline");
    }
}
