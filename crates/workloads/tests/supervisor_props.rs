//! Property-based tests for the campaign supervisor's retry schedule:
//! [`backoff_ms`] must be a *pure* function of `(campaign seed, unit
//! index, attempt)` — no wall clock, no host entropy, no thread-count
//! dependence — because the chaos drills and the SIGKILL-resume test rely
//! on a retried campaign replaying the exact same schedule.

use proptest::prelude::*;
use specrun_workloads::supervisor::backoff_ms;

proptest! {
    /// Same inputs, same schedule — on any call, in any order.
    #[test]
    fn backoff_is_pure(seed in any::<u64>(), unit in any::<u64>(), attempt in 0u32..32) {
        let a = backoff_ms(seed, unit, attempt);
        let b = backoff_ms(seed, unit, attempt);
        prop_assert_eq!(a, b);
    }

    /// The first attempt never waits; every retry waits a bounded,
    /// non-zero amount (the cap keeps even deep retry chains sub-second,
    /// the floor keeps a retry from hammering a still-failing resource).
    #[test]
    fn backoff_is_bounded(seed in any::<u64>(), unit in any::<u64>(), attempt in 1u32..64) {
        prop_assert_eq!(backoff_ms(seed, unit, 0), 0);
        let wait = backoff_ms(seed, unit, attempt);
        prop_assert!(wait > 0, "retries always wait: {wait}");
        prop_assert!(wait < 1000, "waits stay sub-second: {wait}");
    }

    /// The jitter decorrelates sibling units: two units of the same
    /// campaign (or the same unit under two seeds) rarely share a
    /// schedule. Checked over the first few attempts jointly, so a single
    /// coincidental collision does not fail the property.
    #[test]
    fn backoff_is_input_sensitive(seed in any::<u64>(), unit in 0u64..10_000) {
        let schedule = |s: u64, u: u64| -> Vec<u64> {
            (1u32..6).map(|a| backoff_ms(s, u, a)).collect()
        };
        prop_assert_ne!(schedule(seed, unit), schedule(seed, unit.wrapping_add(1)));
        prop_assert_ne!(schedule(seed, unit), schedule(seed.wrapping_add(1), unit));
    }
}
