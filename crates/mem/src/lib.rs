//! # specrun-mem
//!
//! The memory subsystem of the SPECRUN runahead-processor simulator:
//!
//! * [`BackingStore`] — sparse functional data memory,
//! * [`Cache`] — set-associative LRU caches,
//! * [`Dram`] — the request-based contention model of Table 1,
//! * [`MemHierarchy`] — split L1 I/D + L2 + L3 + MSHRs, with non-blocking
//!   misses, `clflush`, and the host-side cache-warming helper the paper
//!   added to Multi2Sim,
//! * [`RunaheadCache`] — byte-granular store buffer for runahead mode with
//!   INV poisoning (Mutlu et al., HPCA'03),
//! * [`SlCache`] — the Speculative-Load "L0" cache of the paper's secure
//!   runahead defense (§6), with `Btag`/`IS` taint tags.
//!
//! Caches model presence and timing; functional bytes always live in the
//! backing store. The covert channel the attack measures is exactly the
//! presence information.
//!
//! ```
//! use specrun_mem::{AccessKind, FillPolicy, HitLevel, MemHierarchy};
//! let mut mem = MemHierarchy::default();
//! let miss = mem.access(0x1000, 0, AccessKind::Load, FillPolicy::Normal);
//! assert_eq!(miss.level, HitLevel::Mem);
//! let hit = mem.access(0x1000, miss.ready_at, AccessKind::Load, FillPolicy::Normal);
//! assert_eq!(hit.level, HitLevel::L1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backing;
mod cache;
mod dram;
mod hierarchy;
mod runahead_cache;
mod sl_cache;
mod stats;
mod table;

pub use backing::BackingStore;
pub use cache::{Cache, CacheConfig, Evicted};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{Access, AccessKind, FillPolicy, HitLevel, MemConfig, MemHierarchy};
pub use runahead_cache::{RunaheadByte, RunaheadCache, RunaheadRead};
pub use sl_cache::{BranchId, Btag, SlCache, SlTags};
pub use stats::MemStats;
