//! The runahead cache (Mutlu et al., HPCA'03).
//!
//! During runahead mode, stores must not modify architectural memory — their
//! results are buffered here so that dependent runahead *loads* still observe
//! them (store-to-load communication keeps the prefetch slice accurate).
//! Every byte carries an INV bit so that stores with invalid data poison
//! their readers instead of silently supplying garbage.
//!
//! Storage is **line-granular**, exactly like the hardware structure the
//! paper describes: a small open-addressed table of 64-byte lines
//! ([`OpenTable`]), each with per-byte written/INV bitmasks. The structure
//! is bounded; when a write needs a new line and the cache is full, the
//! oldest *line* is evicted (its readers then fall back to stale memory
//! data, exactly as a real runahead cache's limited capacity allows).

use std::collections::VecDeque;

use crate::table::OpenTable;

/// Bytes per runahead-cache line.
const LINE_BYTES: u64 = 64;
const LINE_SHIFT: u32 = 6;

/// One buffered byte written during runahead mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunaheadByte {
    /// Data value (meaningless when `inv` is set).
    pub value: u8,
    /// Whether the producing store had an INV source.
    pub inv: bool,
}

/// Result of reading bytes from the runahead cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunaheadRead {
    /// No byte of the requested range is buffered.
    Miss,
    /// All requested bytes are buffered and valid.
    Hit(u64),
    /// At least one requested byte is buffered but INV, or the range is only
    /// partially buffered with the rest unknowable — the consumer must be
    /// poisoned.
    Invalid,
}

/// One 64-byte line of buffered runahead stores.
#[derive(Debug, Clone)]
struct RaLine {
    data: [u8; LINE_BYTES as usize],
    /// Bit `i` set: byte `i` of the line has been written.
    written: u64,
    /// Bit `i` set: byte `i` of the line is INV-poisoned.
    inv: u64,
}

impl Default for RaLine {
    fn default() -> RaLine {
        RaLine { data: [0; 64], written: 0, inv: 0 }
    }
}

/// Byte-masked line buffer for runahead stores, with FIFO line eviction.
///
/// ```
/// use specrun_mem::{RunaheadCache, RunaheadRead};
/// let mut rc = RunaheadCache::new(1024);
/// rc.write(0x100, 4, 0xaabbccdd, false);
/// assert_eq!(rc.read(0x100, 4), RunaheadRead::Hit(0xaabbccdd));
/// rc.clear();
/// assert_eq!(rc.read(0x100, 4), RunaheadRead::Miss);
/// ```
#[derive(Debug, Clone)]
pub struct RunaheadCache {
    table: OpenTable<RaLine>,
    /// Lines resident, oldest first (FIFO eviction order).
    order: VecDeque<u64>,
    capacity_lines: usize,
    bytes: usize,
}

impl RunaheadCache {
    /// Creates a cache buffering at most `capacity_bytes` bytes, rounded up
    /// to whole 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn new(capacity_bytes: usize) -> RunaheadCache {
        assert!(capacity_bytes > 0, "runahead cache needs nonzero capacity");
        let capacity_lines = capacity_bytes.div_ceil(LINE_BYTES as usize).max(1);
        RunaheadCache {
            table: OpenTable::with_capacity(capacity_lines),
            order: VecDeque::with_capacity(capacity_lines),
            capacity_lines,
            bytes: 0,
        }
    }

    /// Slot for `line`, inserting (and evicting the oldest line if full).
    fn find_or_insert(&mut self, line: u64) -> usize {
        if let Some(idx) = self.table.find(line) {
            return idx;
        }
        if self.order.len() >= self.capacity_lines {
            let oldest = self.order.pop_front().expect("capacity is nonzero");
            if let Some(idx) = self.table.find(oldest) {
                self.bytes -= self.table.remove_at(idx).written.count_ones() as usize;
            }
        }
        self.order.push_back(line);
        self.table.insert(line)
    }

    /// Buffers a store of `width` bytes; `inv` poisons all written bytes.
    pub fn write(&mut self, addr: u64, width: u64, value: u64, inv: bool) {
        let mut i = 0;
        while i < width {
            let line = (addr + i) >> LINE_SHIFT;
            let idx = self.find_or_insert(line);
            let mut added = 0;
            let s = self.table.value_mut(idx);
            while i < width && (addr + i) >> LINE_SHIFT == line {
                let off = ((addr + i) & (LINE_BYTES - 1)) as usize;
                let bit = 1u64 << off;
                if s.written & bit == 0 {
                    s.written |= bit;
                    added += 1;
                }
                s.data[off] = (value >> (8 * i)) as u8;
                if inv {
                    s.inv |= bit;
                } else {
                    s.inv &= !bit;
                }
                i += 1;
            }
            self.bytes += added;
        }
    }

    /// Reads `width` bytes.
    ///
    /// Returns [`RunaheadRead::Hit`] only when *every* requested byte is
    /// buffered and valid; a partially-buffered or poisoned range returns
    /// [`RunaheadRead::Invalid`]; an untouched range returns
    /// [`RunaheadRead::Miss`].
    pub fn read(&self, addr: u64, width: u64) -> RunaheadRead {
        let mut value = 0u64;
        let mut present = 0u64;
        let mut poisoned = false;
        let mut i = 0;
        while i < width {
            let line = (addr + i) >> LINE_SHIFT;
            let slot = self.table.find(line);
            while i < width && (addr + i) >> LINE_SHIFT == line {
                if let Some(idx) = slot {
                    let s = self.table.value(idx);
                    let off = ((addr + i) & (LINE_BYTES - 1)) as usize;
                    let bit = 1u64 << off;
                    if s.written & bit != 0 {
                        present += 1;
                        poisoned |= s.inv & bit != 0;
                        value |= u64::from(s.data[off]) << (8 * i);
                    }
                }
                i += 1;
            }
        }
        if present == 0 {
            RunaheadRead::Miss
        } else if poisoned || present < width {
            RunaheadRead::Invalid
        } else {
            RunaheadRead::Hit(value)
        }
    }

    /// Number of buffered bytes.
    pub fn len(&self) -> usize {
        self.bytes
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// Discards everything (runahead exit).
    pub fn clear(&mut self) {
        self.table.clear();
        self.order.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_exact_and_partial() {
        let mut rc = RunaheadCache::new(64);
        rc.write(8, 8, 0x1122334455667788, false);
        assert_eq!(rc.read(8, 8), RunaheadRead::Hit(0x1122334455667788));
        assert_eq!(rc.read(8, 1), RunaheadRead::Hit(0x88));
        assert_eq!(rc.read(12, 4), RunaheadRead::Hit(0x11223344));
        // Range extending past the buffered bytes is Invalid, not Miss.
        assert_eq!(rc.read(12, 8), RunaheadRead::Invalid);
        assert_eq!(rc.read(1000, 8), RunaheadRead::Miss);
    }

    #[test]
    fn inv_poisons_readers() {
        let mut rc = RunaheadCache::new(64);
        rc.write(0, 4, 0xdeadbeef, true);
        assert_eq!(rc.read(0, 4), RunaheadRead::Invalid);
        assert_eq!(rc.read(2, 1), RunaheadRead::Invalid);
    }

    #[test]
    fn later_store_overwrites() {
        let mut rc = RunaheadCache::new(64);
        rc.write(0, 8, 0, true);
        rc.write(0, 8, 42, false);
        assert_eq!(rc.read(0, 8), RunaheadRead::Hit(42));
    }

    #[test]
    fn capacity_evicts_oldest_line() {
        let mut rc = RunaheadCache::new(4); // rounds up to one 64-byte line
        rc.write(0, 4, 0xaabbccdd, false);
        rc.write(100, 1, 7, false); // new line: evicts the line holding 0..4
        assert_eq!(rc.len(), 1);
        assert_eq!(rc.read(0, 4), RunaheadRead::Miss);
        assert_eq!(rc.read(100, 1), RunaheadRead::Hit(7));
    }

    #[test]
    fn eviction_churn_stays_bounded() {
        let mut rc = RunaheadCache::new(256); // 4 lines
        for i in 0..1000u64 {
            rc.write(i * 64, 8, i, false);
        }
        assert_eq!(rc.len(), 4 * 8);
        // The four newest lines survive, all older ones are gone.
        assert_eq!(rc.read(999 * 64, 8), RunaheadRead::Hit(999));
        assert_eq!(rc.read(996 * 64, 8), RunaheadRead::Hit(996));
        assert_eq!(rc.read(995 * 64, 8), RunaheadRead::Miss);
    }

    #[test]
    fn cross_line_write_and_read() {
        let mut rc = RunaheadCache::new(1024);
        rc.write(60, 8, 0x1122_3344_5566_7788, false);
        assert_eq!(rc.read(60, 8), RunaheadRead::Hit(0x1122_3344_5566_7788));
        assert_eq!(rc.read(63, 2), RunaheadRead::Hit(0x4455));
        assert_eq!(rc.len(), 8);
    }

    #[test]
    fn clear_on_exit() {
        let mut rc = RunaheadCache::new(16);
        rc.write(0, 8, 1, false);
        rc.clear();
        assert!(rc.is_empty());
        assert_eq!(rc.read(0, 8), RunaheadRead::Miss);
    }
}
