//! The runahead cache (Mutlu et al., HPCA'03).
//!
//! During runahead mode, stores must not modify architectural memory — their
//! results are buffered here so that dependent runahead *loads* still observe
//! them (store-to-load communication keeps the prefetch slice accurate).
//! Every byte carries an INV bit so that stores with invalid data poison
//! their readers instead of silently supplying garbage.
//!
//! The structure is bounded; when full, the oldest bytes are evicted (their
//! readers then fall back to stale memory data, exactly as a real runahead
//! cache's limited capacity allows).

use std::collections::{HashMap, VecDeque};

/// One buffered byte written during runahead mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunaheadByte {
    /// Data value (meaningless when `inv` is set).
    pub value: u8,
    /// Whether the producing store had an INV source.
    pub inv: bool,
}

/// Result of reading bytes from the runahead cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunaheadRead {
    /// No byte of the requested range is buffered.
    Miss,
    /// All requested bytes are buffered and valid.
    Hit(u64),
    /// At least one requested byte is buffered but INV, or the range is only
    /// partially buffered with the rest unknowable — the consumer must be
    /// poisoned.
    Invalid,
}

/// Byte-granular buffer for runahead stores, with FIFO eviction.
///
/// ```
/// use specrun_mem::{RunaheadCache, RunaheadRead};
/// let mut rc = RunaheadCache::new(1024);
/// rc.write(0x100, 4, 0xaabbccdd, false);
/// assert_eq!(rc.read(0x100, 4), RunaheadRead::Hit(0xaabbccdd));
/// rc.clear();
/// assert_eq!(rc.read(0x100, 4), RunaheadRead::Miss);
/// ```
#[derive(Debug, Clone)]
pub struct RunaheadCache {
    bytes: HashMap<u64, RunaheadByte>,
    order: VecDeque<u64>,
    capacity: usize,
}

impl RunaheadCache {
    /// Creates a cache buffering at most `capacity_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn new(capacity_bytes: usize) -> RunaheadCache {
        assert!(capacity_bytes > 0, "runahead cache needs nonzero capacity");
        RunaheadCache { bytes: HashMap::new(), order: VecDeque::new(), capacity: capacity_bytes }
    }

    /// Buffers a store of `width` bytes; `inv` poisons all written bytes.
    pub fn write(&mut self, addr: u64, width: u64, value: u64, inv: bool) {
        for i in 0..width {
            let a = addr + i;
            let byte = RunaheadByte { value: (value >> (8 * i)) as u8, inv };
            if self.bytes.insert(a, byte).is_none() {
                self.order.push_back(a);
                if self.bytes.len() > self.capacity {
                    if let Some(old) = self.order.pop_front() {
                        self.bytes.remove(&old);
                    }
                }
            }
        }
    }

    /// Reads `width` bytes.
    ///
    /// Returns [`RunaheadRead::Hit`] only when *every* requested byte is
    /// buffered and valid; a partially-buffered or poisoned range returns
    /// [`RunaheadRead::Invalid`]; an untouched range returns
    /// [`RunaheadRead::Miss`].
    pub fn read(&self, addr: u64, width: u64) -> RunaheadRead {
        let mut value = 0u64;
        let mut present = 0u64;
        let mut poisoned = false;
        for i in 0..width {
            match self.bytes.get(&(addr + i)) {
                Some(b) => {
                    present += 1;
                    poisoned |= b.inv;
                    value |= u64::from(b.value) << (8 * i);
                }
                None => {}
            }
        }
        if present == 0 {
            RunaheadRead::Miss
        } else if poisoned || present < width {
            RunaheadRead::Invalid
        } else {
            RunaheadRead::Hit(value)
        }
    }

    /// Number of buffered bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Discards everything (runahead exit).
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_exact_and_partial() {
        let mut rc = RunaheadCache::new(64);
        rc.write(8, 8, 0x1122334455667788, false);
        assert_eq!(rc.read(8, 8), RunaheadRead::Hit(0x1122334455667788));
        assert_eq!(rc.read(8, 1), RunaheadRead::Hit(0x88));
        assert_eq!(rc.read(12, 4), RunaheadRead::Hit(0x11223344));
        // Range extending past the buffered bytes is Invalid, not Miss.
        assert_eq!(rc.read(12, 8), RunaheadRead::Invalid);
        assert_eq!(rc.read(100, 8), RunaheadRead::Miss);
    }

    #[test]
    fn inv_poisons_readers() {
        let mut rc = RunaheadCache::new(64);
        rc.write(0, 4, 0xdeadbeef, true);
        assert_eq!(rc.read(0, 4), RunaheadRead::Invalid);
        assert_eq!(rc.read(2, 1), RunaheadRead::Invalid);
    }

    #[test]
    fn later_store_overwrites() {
        let mut rc = RunaheadCache::new(64);
        rc.write(0, 8, 0, true);
        rc.write(0, 8, 42, false);
        assert_eq!(rc.read(0, 8), RunaheadRead::Hit(42));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut rc = RunaheadCache::new(4);
        rc.write(0, 4, 0xaabbccdd, false);
        rc.write(100, 1, 7, false);
        assert_eq!(rc.len(), 4);
        // Byte at addr 0 (oldest) was evicted.
        assert_eq!(rc.read(0, 4), RunaheadRead::Invalid);
        assert_eq!(rc.read(100, 1), RunaheadRead::Hit(7));
    }

    #[test]
    fn clear_on_exit() {
        let mut rc = RunaheadCache::new(16);
        rc.write(0, 8, 1, false);
        rc.clear();
        assert!(rc.is_empty());
        assert_eq!(rc.read(0, 8), RunaheadRead::Miss);
    }
}
