//! Counters collected by the memory subsystem.

use core::fmt;

use crate::hierarchy::HitLevel;

/// Hit/miss and traffic counters for the whole hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemStats {
    /// Data-side L1 hits.
    pub l1d_hits: u64,
    /// Instruction-side L1 hits.
    pub l1i_hits: u64,
    /// L2 hits (both ports).
    pub l2_hits: u64,
    /// L3 hits (both ports).
    pub l3_hits: u64,
    /// Accesses that went to DRAM (MSHR allocations).
    pub dram_accesses: u64,
    /// Accesses that merged onto an existing MSHR entry.
    pub mshr_merges: u64,
    /// Completed fills installed into the caches.
    pub fills: u64,
    /// Dirty lines displaced.
    pub writebacks: u64,
    /// `clflush` operations performed.
    pub flushes: u64,
}

impl MemStats {
    pub(crate) fn record_hit(&mut self, level: HitLevel, ifetch: bool) {
        match level {
            HitLevel::L1 if ifetch => self.l1i_hits += 1,
            HitLevel::L1 => self.l1d_hits += 1,
            HitLevel::L2 => self.l2_hits += 1,
            HitLevel::L3 => self.l3_hits += 1,
            HitLevel::Mem => self.dram_accesses += 1,
        }
    }

    /// Total accesses observed (hits at any level plus DRAM allocations and
    /// MSHR merges).
    pub fn total_accesses(&self) -> u64 {
        self.l1d_hits
            + self.l1i_hits
            + self.l2_hits
            + self.l3_hits
            + self.dram_accesses
            + self.mshr_merges
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "L1D hits      {:>12}", self.l1d_hits)?;
        writeln!(f, "L1I hits      {:>12}", self.l1i_hits)?;
        writeln!(f, "L2 hits       {:>12}", self.l2_hits)?;
        writeln!(f, "L3 hits       {:>12}", self.l3_hits)?;
        writeln!(f, "DRAM accesses {:>12}", self.dram_accesses)?;
        writeln!(f, "MSHR merges   {:>12}", self.mshr_merges)?;
        writeln!(f, "fills         {:>12}", self.fills)?;
        writeln!(f, "writebacks    {:>12}", self.writebacks)?;
        write!(f, "flushes       {:>12}", self.flushes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_all_sources() {
        let s = MemStats {
            l1d_hits: 1,
            l1i_hits: 2,
            l2_hits: 3,
            l3_hits: 4,
            dram_accesses: 5,
            mshr_merges: 6,
            ..MemStats::default()
        };
        assert_eq!(s.total_accesses(), 21);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!MemStats::default().to_string().is_empty());
    }
}
