//! The full memory hierarchy: split L1 I/D, unified L2 and L3, DRAM.
//!
//! The hierarchy is *non-blocking*: a miss returns the cycle at which the
//! fill completes and tracks the line as in flight (an MSHR entry); repeated
//! accesses to an in-flight line merge onto the same entry. Completed fills
//! are installed lazily on the next call that observes time passing — the
//! hierarchy never needs a clock tick of its own.
//!
//! The `clflush` path and the host-side [`MemHierarchy::warm`] helper are
//! the two functions the paper had to add to Multi2Sim ("loading data into
//! the cache and adding a cache flush instruction", §5.1).

use crate::backing::BackingStore;
use crate::cache::{Cache, CacheConfig, Evicted};
use crate::dram::{Dram, DramConfig};
use crate::stats::MemStats;

/// Which structure serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum HitLevel {
    /// L1 instruction or data cache.
    L1,
    /// Unified L2.
    L2,
    /// Unified L3 (last level cache).
    L3,
    /// Main memory (the access allocated or merged into an MSHR).
    Mem,
}

impl HitLevel {
    /// Whether the access had to leave the cache hierarchy.
    pub fn is_memory(self) -> bool {
        self == HitLevel::Mem
    }
}

/// Kind of access, selecting the L1 port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data load.
    Load,
    /// Data store (write-allocate, marks the L1 line dirty).
    Store,
    /// Instruction fetch (L1 I-cache port).
    IFetch,
}

/// How a miss may change cache state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillPolicy {
    /// Normal operation: misses fill all levels; hits promote to L1.
    Normal,
    /// Secure-runahead operation: DRAM fills are *not* installed (the CPU
    /// routes them to the SL cache instead) and hits do not promote.
    NoFill,
}

/// Timing outcome of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Cycle at which the data is available.
    pub ready_at: u64,
    /// Structure that serviced the request.
    pub level: HitLevel,
    /// Whether this access created new cache state: a hit below L1 promoted
    /// the line upward, or a DRAM miss allocated an installing fill. `false`
    /// for L1 hits, [`FillPolicy::NoFill`] accesses, and MSHR merges into an
    /// already-inflight line — the ground truth a cache-fill observer needs
    /// to attribute each fill to exactly one access. (A later `clflush` can
    /// still cancel an allocated DRAM fill before it lands.)
    pub filled: bool,
}

/// Cache geometry and latency for the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemConfig {
    /// L1 instruction cache (Table 1: 16 KiB, 4-way, 2 cycles).
    pub l1i: CacheConfig,
    /// L1 data cache (Table 1: 16 KiB, 4-way, 2 cycles).
    pub l1d: CacheConfig,
    /// Unified L2 (Table 1: 128 KiB, 8-way, 8 cycles).
    pub l2: CacheConfig,
    /// Unified L3 (Table 1: 4 MiB, 8-way, 32 cycles).
    pub l3: CacheConfig,
    /// Main memory model (Table 1: request-based contention, 200 cycles).
    pub dram: DramConfig,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig {
            l1i: CacheConfig::new(16 * 1024, 4, 64, 2),
            l1d: CacheConfig::new(16 * 1024, 4, 64, 2),
            l2: CacheConfig::new(128 * 1024, 8, 64, 8),
            l3: CacheConfig::new(4 * 1024 * 1024, 8, 64, 32),
            dram: DramConfig::default(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Inflight {
    line: u64,
    complete_at: u64,
    /// Cleared when the line is flushed while in flight, or when the fill
    /// was requested under [`FillPolicy::NoFill`].
    install: bool,
    ifetch: bool,
}

/// One-entry L1-hit memo for one L1 port: the last line that hit and its
/// slot in the cache's line array. Valid only while the port's contents are
/// untouched (any fill/invalidate/clear resets the memo), so a memo hit can
/// replay the L1-hit path — LRU touch, hit statistic, latency — exactly,
/// without the tag search or the miss/MSHR machinery. This is the common
/// case on both ports: demand fetch re-probes the same 64-byte text line
/// once per instruction per cycle, and data loads stream within lines.
#[derive(Debug, Clone, Copy)]
struct PortMemo {
    line: u64,
    slot: usize,
}

impl PortMemo {
    const INVALID: PortMemo = PortMemo { line: u64::MAX, slot: 0 };
}

/// The complete memory subsystem: backing data, caches, MSHRs and DRAM.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    config: MemConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    dram: Dram,
    inflight: Vec<Inflight>,
    /// Mirror of `inflight`'s line addresses, kept in lockstep: the MSHR
    /// merge check scans this compact array on every miss instead of
    /// striding over the entry structs.
    inflight_lines: Vec<u64>,
    /// Earliest `complete_at` among in-flight fills (`u64::MAX` when none):
    /// lets the per-access drain bail in O(1) instead of sweeping the MSHRs
    /// while nothing is due.
    next_complete: u64,
    /// `line_bytes` is a power of two; addresses convert to lines with a
    /// shift instead of a 64-bit division on the hottest path.
    line_shift: u32,
    /// L1-hit fast-path memos, one per L1 port.
    l1i_memo: PortMemo,
    l1d_memo: PortMemo,
    /// Bumped on every change to L1I *contents* (fill, invalidate, clear).
    /// While unchanged, a line once observed L1I-resident still is — the
    /// core's stream prefetcher uses this to skip redundant probes.
    l1i_gen: u64,
    data: BackingStore,
    stats: MemStats,
}

impl MemHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: MemConfig) -> MemHierarchy {
        MemHierarchy {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            l3: Cache::new(config.l3),
            dram: Dram::new(config.dram),
            inflight: Vec::new(),
            inflight_lines: Vec::new(),
            next_complete: u64::MAX,
            line_shift: config.l1d.line_bytes.trailing_zeros(),
            l1i_memo: PortMemo::INVALID,
            l1d_memo: PortMemo::INVALID,
            l1i_gen: 0,
            data: BackingStore::new(),
            stats: MemStats::default(),
        }
    }

    /// The hierarchy's configuration.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Line size in bytes (shared by all levels).
    pub fn line_bytes(&self) -> u64 {
        self.config.l1d.line_bytes
    }

    /// Aligns a byte address down to its line address.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// The L1I content generation: bumped on every L1I fill, invalidation
    /// or clear, so "line X was L1I-resident at generation G" stays provably
    /// true while the counter reads G.
    pub fn l1i_generation(&self) -> u64 {
        self.l1i_gen
    }

    /// Invalidates the fast-path memo(s) of the L1 port(s) whose contents
    /// changed; I-side changes also bump the generation counter.
    fn touched_l1(&mut self, ifetch: bool) {
        if ifetch {
            self.l1i_memo = PortMemo::INVALID;
            self.l1i_gen += 1;
        } else {
            self.l1d_memo = PortMemo::INVALID;
        }
    }

    fn install_line(
        l1: &mut Cache,
        l2: &mut Cache,
        l3: &mut Cache,
        stats: &mut MemStats,
        line: u64,
    ) {
        for cache in [&mut *l3, &mut *l2, &mut *l1] {
            if let Evicted::Dirty(_) = cache.fill(line, 0, false) {
                stats.writebacks += 1;
            }
        }
    }

    /// Installs fills whose DRAM access has completed by `now`. O(1) while
    /// nothing is due (the common case on a hot access path).
    fn drain(&mut self, now: u64) {
        if now < self.next_complete {
            return;
        }
        let mut next = u64::MAX;
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].complete_at <= now {
                self.inflight_lines.swap_remove(i);
                let fill = self.inflight.swap_remove(i);
                if fill.install {
                    self.touched_l1(fill.ifetch);
                    let l1 = if fill.ifetch { &mut self.l1i } else { &mut self.l1d };
                    Self::install_line(l1, &mut self.l2, &mut self.l3, &mut self.stats, fill.line);
                    self.stats.fills += 1;
                }
            } else {
                next = next.min(self.inflight[i].complete_at);
                i += 1;
            }
        }
        self.next_complete = next;
    }

    /// Installs any fills whose DRAM access has completed by `now` (the
    /// hierarchy otherwise drains lazily on the next access; call this when
    /// simulation pauses so [`MemHierarchy::residency`] reflects landed
    /// fills).
    pub fn drain_completed(&mut self, now: u64) {
        self.drain(now);
    }

    /// Performs a timed access at cycle `now`.
    ///
    /// Returns when the data will be ready and which level serviced it.
    /// Under [`FillPolicy::NoFill`] no cache state is created: hits do not
    /// promote into L1 and DRAM fills are not installed (the caller is
    /// expected to capture them, e.g. into the SL cache).
    pub fn access(&mut self, addr: u64, now: u64, kind: AccessKind, policy: FillPolicy) -> Access {
        let line = addr >> self.line_shift;
        let is_ifetch = matches!(kind, AccessKind::IFetch);

        // L1-hit fast path: the port's one-entry memo proves residency
        // while `next_complete` shows no fill is due (so the lazy drain is
        // a no-op) and no fill/invalidate has reset the memo. The replay is
        // exact — same LRU touch, same hit statistic, same latency — it
        // merely skips the tag search and the L2/L3/MSHR machinery below.
        if now < self.next_complete {
            let memo = if is_ifetch { self.l1i_memo } else { self.l1d_memo };
            if memo.line == line {
                let l1 = if is_ifetch { &mut self.l1i } else { &mut self.l1d };
                l1.touch_slot(memo.slot);
                if matches!(kind, AccessKind::Store) {
                    l1.mark_dirty_slot(memo.slot);
                }
                self.stats.record_hit(HitLevel::L1, is_ifetch);
                let latency = if is_ifetch {
                    self.config.l1i.hit_latency
                } else {
                    self.config.l1d.hit_latency
                };
                return Access { ready_at: now + latency, level: HitLevel::L1, filled: false };
            }
        }

        self.drain(now);
        let promote = policy == FillPolicy::Normal;

        // L1 port.
        let (l1, l1_cfg) = if is_ifetch {
            (&mut self.l1i, &self.config.l1i)
        } else {
            (&mut self.l1d, &self.config.l1d)
        };
        if let Some(slot) = l1.access_slot(line) {
            if matches!(kind, AccessKind::Store) {
                l1.mark_dirty_slot(slot);
            }
            let memo = PortMemo { line, slot };
            if is_ifetch {
                self.l1i_memo = memo;
            } else {
                self.l1d_memo = memo;
            }
            self.stats.record_hit(HitLevel::L1, is_ifetch);
            return Access {
                ready_at: now + l1_cfg.hit_latency,
                level: HitLevel::L1,
                filled: false,
            };
        }

        // L2.
        if self.l2.access(line, now) {
            if promote {
                let evicted = l1.fill(line, now, matches!(kind, AccessKind::Store));
                if let Evicted::Dirty(_) = evicted {
                    self.stats.writebacks += 1;
                }
                self.touched_l1(is_ifetch);
            }
            self.stats.record_hit(HitLevel::L2, is_ifetch);
            return Access {
                ready_at: now + self.config.l2.hit_latency,
                level: HitLevel::L2,
                filled: promote,
            };
        }

        // L3.
        if self.l3.access(line, now) {
            if promote {
                if let Evicted::Dirty(_) = self.l2.fill(line, now, false) {
                    self.stats.writebacks += 1;
                }
                if let Evicted::Dirty(_) = l1.fill(line, now, matches!(kind, AccessKind::Store)) {
                    self.stats.writebacks += 1;
                }
                self.touched_l1(is_ifetch);
            }
            self.stats.record_hit(HitLevel::L3, is_ifetch);
            return Access {
                ready_at: now + self.config.l3.hit_latency,
                level: HitLevel::L3,
                filled: promote,
            };
        }

        // MSHR merge. A later Normal-policy access does *not* flip a NoFill
        // entry to installing: under the secure-runahead defense the fill's
        // destination (the SL cache) was decided when the runahead load
        // issued, and letting a speculative post-exit re-execution upgrade
        // it would reopen the leak the defense closes. The merged access
        // still observes the data's arrival time.
        if let Some(i) = self.inflight_lines.iter().position(|&l| l == line) {
            let entry = &mut self.inflight[i];
            entry.ifetch &= is_ifetch;
            self.stats.mshr_merges += 1;
            return Access { ready_at: entry.complete_at, level: HitLevel::Mem, filled: false };
        }

        // DRAM.
        let complete_at = self.dram.request(now);
        self.inflight.push(Inflight { line, complete_at, install: promote, ifetch: is_ifetch });
        self.inflight_lines.push(line);
        self.next_complete = self.next_complete.min(complete_at);
        self.stats.record_hit(HitLevel::Mem, is_ifetch);
        Access { ready_at: complete_at, level: HitLevel::Mem, filled: promote }
    }

    /// `clflush`: evicts the line containing `addr` from every level and
    /// cancels installation of a pending fill of that line.
    pub fn flush_line(&mut self, addr: u64, now: u64) {
        self.drain(now);
        let line = self.line_of(addr);
        self.touched_l1(true);
        self.touched_l1(false);
        self.l1i.invalidate(line);
        self.l1d.invalidate(line);
        self.l2.invalidate(line);
        self.l3.invalidate(line);
        if let Some(i) = self.inflight_lines.iter().position(|&l| l == line) {
            self.inflight[i].install = false;
        }
        self.stats.flushes += 1;
    }

    /// Host helper: installs the line containing `addr` into L1D/L2/L3
    /// without advancing time (the "load data into the cache" function the
    /// paper added to Multi2Sim).
    pub fn warm(&mut self, addr: u64) {
        let line = self.line_of(addr);
        self.touched_l1(false);
        Self::install_line(&mut self.l1d, &mut self.l2, &mut self.l3, &mut self.stats, line);
    }

    /// Warms every line overlapping `addr .. addr + len`.
    pub fn warm_range(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = self.line_of(addr);
        let last = self.line_of(addr + len - 1);
        self.touched_l1(false);
        for line in first..=last {
            Self::install_line(&mut self.l1d, &mut self.l2, &mut self.l3, &mut self.stats, line);
        }
    }

    /// Warms every line overlapping `addr .. addr + len` on the
    /// *instruction* side (L1I + L2 + L3) — models code that has executed
    /// recently, e.g. a victim function the attacker already trained on.
    pub fn warm_ifetch_range(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = self.line_of(addr);
        let last = self.line_of(addr + len - 1);
        self.touched_l1(true);
        for line in first..=last {
            Self::install_line(&mut self.l1i, &mut self.l2, &mut self.l3, &mut self.stats, line);
        }
    }

    /// Installs a line into the data-side hierarchy (used when the secure
    /// runahead defense promotes an SL-cache entry to L1, Algorithm 1).
    pub fn install(&mut self, addr: u64) {
        let line = self.line_of(addr);
        self.touched_l1(false);
        Self::install_line(&mut self.l1d, &mut self.l2, &mut self.l3, &mut self.stats, line);
    }

    /// Where `addr` currently resides, without disturbing any state.
    ///
    /// Prefers the data-side L1. In-flight lines report [`HitLevel::Mem`].
    pub fn residency(&self, addr: u64) -> HitLevel {
        let line = self.line_of(addr);
        if self.l1d.probe(line) || self.l1i.probe(line) {
            HitLevel::L1
        } else if self.l2.probe(line) {
            HitLevel::L2
        } else if self.l3.probe(line) {
            HitLevel::L3
        } else {
            HitLevel::Mem
        }
    }

    /// Reads `width` bytes of functional data (timing-free).
    pub fn read_data(&self, addr: u64, width: u64) -> u64 {
        self.data.read(addr, width)
    }

    /// Writes `width` bytes of functional data (timing-free).
    pub fn write_data(&mut self, addr: u64, width: u64, value: u64) {
        self.data.write(addr, width, value);
    }

    /// Copies bytes into data memory (host-side setup).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        self.data.write_bytes(addr, bytes);
    }

    /// Reads bytes from data memory (host-side inspection).
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        self.data.read_bytes(addr, len)
    }

    /// Fills `out` with bytes from data memory — the allocation-free
    /// variant of [`MemHierarchy::read_bytes`] for callers that read
    /// repeatedly into the same buffer.
    pub fn read_bytes_into(&self, addr: u64, out: &mut [u8]) {
        self.data.read_bytes_into(addr, out);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Clears statistics counters (cache contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// Earliest completion cycle among in-flight fills, if any — the cached
    /// horizon behind the O(1) drain early-out, exposed for host-side
    /// inspection. (The simulator's fast-forward does not consult it: fills
    /// reach the core as load completion events, and pending fills install
    /// lazily on the next access without needing a clock tick.)
    pub fn next_inflight_completion(&self) -> Option<u64> {
        (self.next_complete != u64::MAX).then_some(self.next_complete)
    }

    /// Latest completion cycle among in-flight fills, if any — the exact
    /// settle horizon for end-of-run draining (no fill lands later).
    pub fn latest_inflight_completion(&self) -> Option<u64> {
        self.inflight.iter().map(|f| f.complete_at).max()
    }

    /// Drops all cached lines and in-flight fills; keeps data memory.
    pub fn clear_caches(&mut self) {
        self.touched_l1(true);
        self.touched_l1(false);
        self.l1i.clear();
        self.l1d.clear();
        self.l2.clear();
        self.l3.clear();
        self.inflight.clear();
        self.inflight_lines.clear();
        self.next_complete = u64::MAX;
        self.dram.reset_timing();
    }
}

impl Default for MemHierarchy {
    fn default() -> MemHierarchy {
        MemHierarchy::new(MemConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemHierarchy {
        MemHierarchy::default()
    }

    #[test]
    fn cold_miss_pays_dram_latency() {
        let mut m = mem();
        let a = m.access(0x1000, 0, AccessKind::Load, FillPolicy::Normal);
        assert_eq!(a.level, HitLevel::Mem);
        assert_eq!(a.ready_at, 200);
    }

    #[test]
    fn fill_installs_after_completion() {
        let mut m = mem();
        m.access(0x1000, 0, AccessKind::Load, FillPolicy::Normal);
        // Before completion: still a merge onto the MSHR.
        let merge = m.access(0x1000, 50, AccessKind::Load, FillPolicy::Normal);
        assert_eq!(merge.level, HitLevel::Mem);
        assert_eq!(merge.ready_at, 200);
        // After completion: L1 hit.
        let hit = m.access(0x1000, 250, AccessKind::Load, FillPolicy::Normal);
        assert_eq!(hit.level, HitLevel::L1);
        assert_eq!(hit.ready_at, 252);
    }

    #[test]
    fn same_line_different_addr_merges() {
        let mut m = mem();
        m.access(0x1000, 0, AccessKind::Load, FillPolicy::Normal);
        let a = m.access(0x1020, 10, AccessKind::Load, FillPolicy::Normal);
        assert_eq!(a.ready_at, 200);
        assert_eq!(m.stats().mshr_merges, 1);
    }

    #[test]
    fn flush_evicts_and_causes_remiss() {
        let mut m = mem();
        m.warm(0x2000);
        let hit = m.access(0x2000, 0, AccessKind::Load, FillPolicy::Normal);
        assert_eq!(hit.level, HitLevel::L1);
        m.flush_line(0x2000, 10);
        let miss = m.access(0x2000, 20, AccessKind::Load, FillPolicy::Normal);
        assert_eq!(miss.level, HitLevel::Mem);
    }

    #[test]
    fn flush_cancels_inflight_install() {
        let mut m = mem();
        m.access(0x3000, 0, AccessKind::Load, FillPolicy::Normal);
        m.flush_line(0x3000, 5);
        // Fill completes but must not install.
        let again = m.access(0x3000, 400, AccessKind::Load, FillPolicy::Normal);
        assert_eq!(again.level, HitLevel::Mem);
    }

    #[test]
    fn nofill_leaves_no_trace_on_miss() {
        let mut m = mem();
        m.access(0x4000, 0, AccessKind::Load, FillPolicy::NoFill);
        let later = m.access(0x4000, 500, AccessKind::Load, FillPolicy::Normal);
        assert_eq!(later.level, HitLevel::Mem, "NoFill fill must not install");
    }

    #[test]
    fn nofill_does_not_promote_on_l3_hit() {
        let mut m = mem();
        m.warm(0x5000);
        // Evict from L1/L2 only by flushing then re-installing via L3 path:
        // warm() installs everywhere, so flush and re-warm L3 by hand is not
        // possible through the public API; instead verify promotion by
        // comparing hit levels after a NoFill L2/L3 hit.
        m.flush_line(0x5000, 0);
        m.warm(0x5000);
        let h1 = m.access(0x5000, 0, AccessKind::Load, FillPolicy::NoFill);
        assert_eq!(h1.level, HitLevel::L1);
    }

    #[test]
    fn residency_is_side_effect_free() {
        let mut m = mem();
        m.warm(0x6000);
        assert_eq!(m.residency(0x6000), HitLevel::L1);
        assert_eq!(m.residency(0x7000), HitLevel::Mem);
        // probing must not install
        assert_eq!(m.residency(0x7000), HitLevel::Mem);
    }

    #[test]
    fn ifetch_uses_separate_l1() {
        let mut m = mem();
        let a = m.access(0x8000, 0, AccessKind::IFetch, FillPolicy::Normal);
        assert_eq!(a.level, HitLevel::Mem);
        let b = m.access(0x8000, 300, AccessKind::IFetch, FillPolicy::Normal);
        assert_eq!(b.level, HitLevel::L1);
        // Data port never saw the line in its L1, but shares L2/L3.
        let c = m.access(0x8000, 600, AccessKind::Load, FillPolicy::Normal);
        assert_eq!(c.level, HitLevel::L2);
    }

    #[test]
    fn store_hits_mark_dirty_and_writebacks_counted() {
        let mut m = mem();
        m.warm(0x9000);
        m.access(0x9000, 0, AccessKind::Store, FillPolicy::Normal);
        // Fill enough conflicting lines to evict the dirty one from L1
        // (16 KiB, 4-way, 64 B lines → 64 sets; stride of 4 KiB conflicts).
        for i in 1..=8u64 {
            m.warm(0x9000 + i * 4096);
        }
        assert!(m.stats().writebacks > 0);
    }

    #[test]
    fn functional_data_independent_of_timing() {
        let mut m = mem();
        m.write_data(0xa000, 8, 42);
        assert_eq!(m.read_data(0xa000, 8), 42);
        assert_eq!(m.residency(0xa000), HitLevel::Mem);
    }

    #[test]
    fn dram_contention_visible_through_hierarchy() {
        let mut m = mem();
        let a = m.access(0x10000, 0, AccessKind::Load, FillPolicy::Normal);
        let b = m.access(0x20000, 0, AccessKind::Load, FillPolicy::Normal);
        assert!(b.ready_at > a.ready_at);
    }

    #[test]
    fn inflight_completion_horizons_track_mshrs() {
        let mut m = mem();
        assert_eq!(m.next_inflight_completion(), None);
        assert_eq!(m.latest_inflight_completion(), None);
        let a = m.access(0x1000, 0, AccessKind::Load, FillPolicy::Normal);
        let b = m.access(0x2000, 0, AccessKind::Load, FillPolicy::Normal);
        assert_eq!(m.next_inflight_completion(), Some(a.ready_at));
        assert_eq!(m.latest_inflight_completion(), Some(b.ready_at));
        // Draining past the first fill advances the horizon to the second.
        m.drain_completed(a.ready_at);
        assert_eq!(m.next_inflight_completion(), Some(b.ready_at));
        m.drain_completed(b.ready_at);
        assert_eq!(m.next_inflight_completion(), None);
        assert_eq!(m.residency(0x1000), HitLevel::L1);
        assert_eq!(m.residency(0x2000), HitLevel::L1);
    }

    #[test]
    fn warm_range_covers_partial_lines() {
        let mut m = mem();
        m.warm_range(0x1fc0 - 4, 8); // straddles two lines
        assert_eq!(m.residency(0x1fb0), HitLevel::L1);
        assert_eq!(m.residency(0x1fc0), HitLevel::L1);
    }
}
