//! Sparse byte-addressable backing store.
//!
//! Holds the simulated machine's data memory. The cache hierarchy models
//! *timing* only; actual bytes always live here, so functional values are
//! exact regardless of cache state.

use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_BYTES: usize = 1 << PAGE_BITS;

/// Sparse 64-bit byte-addressable memory, allocated in 4 KiB pages on first
/// touch. Untouched memory reads as zero.
///
/// ```
/// use specrun_mem::BackingStore;
/// let mut m = BackingStore::new();
/// m.write(0x1000, 8, 0xdead_beef);
/// assert_eq!(m.read(0x1000, 8), 0xdead_beef);
/// assert_eq!(m.read(0x1000, 4), 0xdead_beef);
/// assert_eq!(m.read(0x1004, 4), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BackingStore {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl BackingStore {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> BackingStore {
        BackingStore::default()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_BYTES]> {
        self.pages.get(&(addr >> PAGE_BITS)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_BYTES] {
        self.pages.entry(addr >> PAGE_BITS).or_insert_with(|| Box::new([0; PAGE_BYTES]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.page(addr).map_or(0, |p| p[(addr as usize) & (PAGE_BYTES - 1)])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_BYTES - 1)] = value;
    }

    /// Reads `width` bytes (1, 2, 4 or 8) little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn read(&self, addr: u64, width: u64) -> u64 {
        assert!(matches!(width, 1 | 2 | 4 | 8), "invalid access width {width}");
        let mut v = 0u64;
        for i in 0..width {
            v |= u64::from(self.read_u8(addr + i)) << (8 * i);
        }
        v
    }

    /// Writes the low `width` bytes (1, 2, 4 or 8) of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write(&mut self, addr: u64, width: u64, value: u64) {
        assert!(matches!(width, 1 | 2 | 4 | 8), "invalid access width {width}");
        for i in 0..width {
            self.write_u8(addr + i, (value >> (8 * i)) as u8);
        }
    }

    /// Copies `bytes` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| self.read_u8(addr + i)).collect()
    }

    /// Number of 4 KiB pages touched so far.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = BackingStore::new();
        assert_eq!(m.read(0xdead_beef, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = BackingStore::new();
        m.write(0, 8, 0x0807_0605_0403_0201);
        assert_eq!(m.read_u8(0), 0x01);
        assert_eq!(m.read_u8(7), 0x08);
        assert_eq!(m.read(2, 2), 0x0403);
    }

    #[test]
    fn cross_page_access() {
        let mut m = BackingStore::new();
        let addr = (1 << PAGE_BITS) - 4; // straddles a page boundary
        m.write(addr, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(addr, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn narrow_write_preserves_neighbors() {
        let mut m = BackingStore::new();
        m.write(16, 8, u64::MAX);
        m.write(18, 2, 0);
        assert_eq!(m.read(16, 8), 0xffff_ffff_0000_ffff);
    }

    #[test]
    fn bytes_round_trip() {
        let mut m = BackingStore::new();
        m.write_bytes(100, b"specrun");
        assert_eq!(m.read_bytes(100, 7), b"specrun");
    }

    #[test]
    #[should_panic(expected = "invalid access width")]
    fn invalid_width_panics() {
        BackingStore::new().read(0, 3);
    }
}
