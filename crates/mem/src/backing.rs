//! Sparse byte-addressable backing store.
//!
//! Holds the simulated machine's data memory. The cache hierarchy models
//! *timing* only; actual bytes always live here, so functional values are
//! exact regardless of cache state.
//!
//! Pages live in a flat `Vec` and are located through an FxHash-style map
//! plus a one-entry last-page cache: simulated programs overwhelmingly
//! stream within a page, so the common lookup is one compare, not a SipHash
//! invocation.
//!
//! Pages are reference-counted ([`std::sync::Arc`]), so cloning a store is
//! copy-on-write: the clone is O(resident pages) pointer copies, every page
//! stays shared until one side writes to it, and the first write to a
//! shared page clones just that 4 KiB page (`Arc::make_mut`). This is what
//! makes forking thousands of sessions from one warmed snapshot cheap —
//! see `specrun_workloads::pool`.

use core::cell::Cell;
use core::hash::{BuildHasherDefault, Hasher};
use std::collections::HashMap;
use std::sync::Arc;

const PAGE_BITS: u32 = 12;
const PAGE_BYTES: usize = 1 << PAGE_BITS;

/// Sentinel page number for the empty last-page cache (page numbers are
/// addresses shifted right by 12, so this value is unreachable).
const NO_PAGE: u64 = u64::MAX;

/// Multiplicative hasher for page numbers (FxHash-style). Page numbers are
/// already well-distributed small integers; SipHash is pure overhead here.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FxHasher {
    state: u64,
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Sparse 64-bit byte-addressable memory, allocated in 4 KiB pages on first
/// touch. Untouched memory reads as zero. Clones share pages
/// copy-on-write; see the module docs.
///
/// ```
/// use specrun_mem::BackingStore;
/// let mut m = BackingStore::new();
/// m.write(0x1000, 8, 0xdead_beef);
/// assert_eq!(m.read(0x1000, 8), 0xdead_beef);
/// assert_eq!(m.read(0x1000, 4), 0xdead_beef);
/// assert_eq!(m.read(0x1004, 4), 0);
/// ```
#[derive(Debug, Clone)]
pub struct BackingStore {
    pages: Vec<Arc<[u8; PAGE_BYTES]>>,
    index: HashMap<u64, u32, FxBuildHasher>,
    /// Last page touched: `(page number, index into pages)`.
    last: Cell<(u64, u32)>,
}

impl Default for BackingStore {
    fn default() -> BackingStore {
        BackingStore { pages: Vec::new(), index: HashMap::default(), last: Cell::new((NO_PAGE, 0)) }
    }
}

impl BackingStore {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> BackingStore {
        BackingStore::default()
    }

    #[inline]
    fn page(&self, addr: u64) -> Option<&[u8; PAGE_BYTES]> {
        let number = addr >> PAGE_BITS;
        let (last_number, last_idx) = self.last.get();
        if number == last_number {
            return Some(&self.pages[last_idx as usize]);
        }
        let idx = *self.index.get(&number)?;
        self.last.set((number, idx));
        Some(&self.pages[idx as usize])
    }

    #[inline]
    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_BYTES] {
        let number = addr >> PAGE_BITS;
        let (last_number, last_idx) = self.last.get();
        let idx = if number == last_number {
            last_idx
        } else {
            let idx = match self.index.get(&number) {
                Some(&idx) => idx,
                None => {
                    let idx = u32::try_from(self.pages.len()).expect("page count fits in u32");
                    self.pages.push(Arc::new([0; PAGE_BYTES]));
                    self.index.insert(number, idx);
                    idx
                }
            };
            self.last.set((number, idx));
            idx
        };
        // Copy-on-write: unshares this one page if a clone still holds it.
        // The last-page cache maps page numbers to *indices*, which the
        // unshare does not move, so it stays valid across the clone.
        Arc::make_mut(&mut self.pages[idx as usize])
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.page(addr).map_or(0, |p| p[(addr as usize) & (PAGE_BYTES - 1)])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_BYTES - 1)] = value;
    }

    /// Reads `width` bytes (1, 2, 4 or 8) little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn read(&self, addr: u64, width: u64) -> u64 {
        assert!(matches!(width, 1 | 2 | 4 | 8), "invalid access width {width}");
        // Fast path: the whole access inside one page (the common case —
        // only accesses straddling a 4 KiB boundary go byte-by-byte).
        let offset = (addr as usize) & (PAGE_BYTES - 1);
        if offset + width as usize <= PAGE_BYTES {
            let Some(p) = self.page(addr) else { return 0 };
            let mut v = 0u64;
            for i in (0..width as usize).rev() {
                v = (v << 8) | u64::from(p[offset + i]);
            }
            return v;
        }
        let mut v = 0u64;
        for i in 0..width {
            v |= u64::from(self.read_u8(addr + i)) << (8 * i);
        }
        v
    }

    /// Writes the low `width` bytes (1, 2, 4 or 8) of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write(&mut self, addr: u64, width: u64, value: u64) {
        assert!(matches!(width, 1 | 2 | 4 | 8), "invalid access width {width}");
        let offset = (addr as usize) & (PAGE_BYTES - 1);
        if offset + width as usize <= PAGE_BYTES {
            let p = self.page_mut(addr);
            for i in 0..width as usize {
                p[offset + i] = (value >> (8 * i)) as u8;
            }
            return;
        }
        for i in 0..width {
            self.write_u8(addr + i, (value >> (8 * i)) as u8);
        }
    }

    /// Copies `bytes` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Reads `len` bytes starting at `addr` into a fresh `Vec`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.read_bytes_into(addr, &mut out);
        out
    }

    /// Fills `out` with the bytes starting at `addr` — the allocation-free
    /// variant of [`BackingStore::read_bytes`], copying page-sized slices
    /// instead of reading byte by byte.
    pub fn read_bytes_into(&self, addr: u64, out: &mut [u8]) {
        let mut done = 0;
        while done < out.len() {
            let at = addr + done as u64;
            let offset = (at as usize) & (PAGE_BYTES - 1);
            let run = (PAGE_BYTES - offset).min(out.len() - done);
            match self.page(at) {
                Some(p) => out[done..done + run].copy_from_slice(&p[offset..offset + run]),
                None => out[done..done + run].fill(0),
            }
            done += run;
        }
    }

    /// Number of 4 KiB pages touched so far.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of resident pages still shared with at least one clone —
    /// a copy-on-write diagnostic: right after a clone this equals
    /// [`BackingStore::resident_pages`] on both sides, and each first
    /// write to a shared page decrements it by one.
    pub fn shared_pages(&self) -> usize {
        self.pages.iter().filter(|p| Arc::strong_count(p) > 1).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = BackingStore::new();
        assert_eq!(m.read(0xdead_beef, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = BackingStore::new();
        m.write(0, 8, 0x0807_0605_0403_0201);
        assert_eq!(m.read_u8(0), 0x01);
        assert_eq!(m.read_u8(7), 0x08);
        assert_eq!(m.read(2, 2), 0x0403);
    }

    #[test]
    fn cross_page_access() {
        let mut m = BackingStore::new();
        let addr = (1 << PAGE_BITS) - 4; // straddles a page boundary
        m.write(addr, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(addr, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn narrow_write_preserves_neighbors() {
        let mut m = BackingStore::new();
        m.write(16, 8, u64::MAX);
        m.write(18, 2, 0);
        assert_eq!(m.read(16, 8), 0xffff_ffff_0000_ffff);
    }

    #[test]
    fn bytes_round_trip() {
        let mut m = BackingStore::new();
        m.write_bytes(100, b"specrun");
        assert_eq!(m.read_bytes(100, 7), b"specrun");
    }

    #[test]
    fn alternating_pages_hit_through_the_cache() {
        let mut m = BackingStore::new();
        m.write(0x0000, 8, 1);
        m.write(0x9000, 8, 2);
        for _ in 0..32 {
            assert_eq!(m.read(0x0000, 8), 1);
            assert_eq!(m.read(0x9000, 8), 2);
        }
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn clone_keeps_contents() {
        let mut m = BackingStore::new();
        m.write(0x2000, 8, 77);
        let c = m.clone();
        m.write(0x2000, 8, 88);
        assert_eq!(c.read(0x2000, 8), 77);
        assert_eq!(m.read(0x2000, 8), 88);
    }

    #[test]
    #[should_panic(expected = "invalid access width")]
    fn invalid_width_panics() {
        BackingStore::new().read(0, 3);
    }

    #[test]
    fn clone_shares_all_pages_until_written() {
        let mut m = BackingStore::new();
        m.write(0x0000, 8, 1);
        m.write(0x5000, 8, 2);
        m.write(0xa000, 8, 3);
        assert_eq!(m.shared_pages(), 0, "an unforked store shares nothing");
        let c = m.clone();
        assert_eq!(m.shared_pages(), 3);
        assert_eq!(c.shared_pages(), 3);
        // Reads keep pages shared.
        assert_eq!(c.read(0x5000, 8), 2);
        assert_eq!(m.shared_pages(), 3);
    }

    #[test]
    fn first_write_unshares_exactly_one_page() {
        let mut m = BackingStore::new();
        m.write(0x0000, 8, 1);
        m.write(0x5000, 8, 2);
        let mut c = m.clone();
        c.write(0x5000, 8, 99);
        assert_eq!(c.shared_pages(), 1, "only the written page unshares");
        assert_eq!(m.shared_pages(), 1);
        // The parent never sees the fork's write; the untouched page is
        // still physically shared yet reads identically from both sides.
        assert_eq!(m.read(0x5000, 8), 2);
        assert_eq!(c.read(0x5000, 8), 99);
        assert_eq!(m.read(0x0000, 8), 1);
        assert_eq!(c.read(0x0000, 8), 1);
    }

    #[test]
    fn sibling_forks_do_not_bleed() {
        let mut m = BackingStore::new();
        m.write(0x2000, 8, 7);
        let mut a = m.clone();
        let mut b = m.clone();
        a.write(0x2000, 8, 100);
        b.write(0x2000, 8, 200);
        assert_eq!(m.read(0x2000, 8), 7);
        assert_eq!(a.read(0x2000, 8), 100);
        assert_eq!(b.read(0x2000, 8), 200);
    }

    #[test]
    fn fork_write_to_fresh_page_leaves_parent_sparse() {
        let mut m = BackingStore::new();
        m.write(0x1000, 8, 5);
        let mut c = m.clone();
        c.write(0x8000, 8, 6);
        assert_eq!(m.resident_pages(), 1, "new pages in the fork stay in the fork");
        assert_eq!(c.resident_pages(), 2);
        assert_eq!(m.read(0x8000, 8), 0);
    }

    #[test]
    fn last_page_cache_survives_cow_unshare() {
        let mut m = BackingStore::new();
        m.write(0x3000, 8, 1);
        m.write(0x4000, 8, 2);
        let mut c = m.clone();
        // Warm the fork's last-page cache on page 3 via a read, then write
        // through it: the COW unshare must not invalidate the cached index.
        assert_eq!(c.read(0x3000, 8), 1);
        c.write(0x3008, 8, 42);
        assert_eq!(c.read(0x3008, 8), 42);
        assert_eq!(m.read(0x3008, 8), 0);
        assert_eq!(c.read(0x4000, 8), 2);
    }
}
