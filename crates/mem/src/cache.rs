//! Set-associative cache with true-LRU replacement.
//!
//! Caches model presence and timing only; data bytes live in the
//! [`BackingStore`](crate::BackingStore). This matches how the attack works:
//! what leaks is *which lines are resident*, not their contents.

use core::fmt;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u64,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u64,
    /// Access latency in cycles for a hit at this level.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Creates a configuration and validates its geometry.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not powers of two or the geometry is inconsistent
    /// (capacity not divisible into `ways × line_bytes` sets).
    pub fn new(size_bytes: u64, ways: u64, line_bytes: u64, hit_latency: u64) -> CacheConfig {
        let cfg = CacheConfig { size_bytes, ways, line_bytes, hit_latency };
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.num_sets() >= 1, "cache must have at least one set");
        assert!(
            cfg.num_sets().is_power_of_two(),
            "set count must be a power of two (size={size_bytes}, ways={ways})"
        );
        cfg
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    last_used: u64,
}

/// Result of inserting a line: what was evicted, if anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evicted {
    /// The set had a free way; nothing was displaced.
    None,
    /// A clean line was displaced.
    Clean(u64),
    /// A dirty line was displaced (counts as a writeback).
    Dirty(u64),
}

/// One level of set-associative cache with true-LRU replacement.
///
/// All methods take *line addresses* (byte address divided by the line
/// size); use [`Cache::line_of`] to convert.
///
/// ```
/// use specrun_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64, 2));
/// let line = c.line_of(0x1040);
/// assert!(!c.access(line, 0));
/// c.fill(line, 1, false);
/// assert!(c.access(line, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Option<Line>>>,
    stamp: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = (0..config.num_sets()).map(|_| vec![None; config.ways as usize]).collect();
        Cache { config, sets, stamp: 0 }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Converts a byte address to a line address for this cache's geometry.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes
    }

    fn set_and_tag(&self, line: u64) -> (usize, u64) {
        let sets = self.config.num_sets();
        ((line % sets) as usize, line / sets)
    }

    fn bump(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Whether the line is resident, without touching LRU state.
    pub fn probe(&self, line: u64) -> bool {
        let (set, tag) = self.set_and_tag(line);
        self.sets[set].iter().flatten().any(|l| l.tag == tag)
    }

    /// Looks up the line, updating LRU state on hit. Returns whether it hit.
    pub fn access(&mut self, line: u64, _now: u64) -> bool {
        let stamp = self.bump();
        let (set, tag) = self.set_and_tag(line);
        for way in self.sets[set].iter_mut().flatten() {
            if way.tag == tag {
                way.last_used = stamp;
                return true;
            }
        }
        false
    }

    /// Marks the line dirty if resident (store hit). Returns whether it hit.
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        let (set, tag) = self.set_and_tag(line);
        for way in self.sets[set].iter_mut().flatten() {
            if way.tag == tag {
                way.dirty = true;
                return true;
            }
        }
        false
    }

    /// Installs the line (no-op if already resident), evicting the LRU way
    /// of a full set.
    pub fn fill(&mut self, line: u64, _now: u64, dirty: bool) -> Evicted {
        let stamp = self.bump();
        let (set, tag) = self.set_and_tag(line);
        let ways = &mut self.sets[set];
        // Already resident: refresh.
        for way in ways.iter_mut().flatten() {
            if way.tag == tag {
                way.last_used = stamp;
                way.dirty |= dirty;
                return Evicted::None;
            }
        }
        // Free way available.
        if let Some(slot) = ways.iter_mut().find(|w| w.is_none()) {
            *slot = Some(Line { tag, dirty, last_used: stamp });
            return Evicted::None;
        }
        // Evict true-LRU.
        let victim_idx = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.map_or(0, |l| l.last_used))
            .map(|(i, _)| i)
            .expect("non-zero associativity");
        let victim = ways[victim_idx].replace(Line { tag, dirty, last_used: stamp }).expect("set full");
        let sets = self.config.num_sets();
        let victim_line = victim.tag * sets + set as u64;
        if victim.dirty {
            Evicted::Dirty(victim_line)
        } else {
            Evicted::Clean(victim_line)
        }
    }

    /// Removes the line if resident; returns whether it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let (set, tag) = self.set_and_tag(line);
        for way in self.sets[set].iter_mut() {
            if way.map_or(false, |l| l.tag == tag) {
                *way = None;
                return true;
            }
        }
        false
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.fill(None);
        }
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.iter().flatten().count()).sum()
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KiB {}-way {}B-line cache ({} cycles, {} resident)",
            self.config.size_bytes / 1024,
            self.config.ways,
            self.config.line_bytes,
            self.config.hit_latency,
            self.resident_lines()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 64 B
        Cache::new(CacheConfig::new(512, 2, 64, 2))
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().num_sets(), 4);
        assert_eq!(c.line_of(0x100), 4);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert!(!c.access(10, 0));
        assert_eq!(c.fill(10, 1, false), Evicted::None);
        assert!(c.access(10, 2));
        assert!(c.probe(10));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, 0, false);
        c.fill(4, 1, false);
        c.access(0, 2); // 0 is now MRU; 4 is LRU
        assert_eq!(c.fill(8, 3, false), Evicted::Clean(4));
        assert!(c.probe(0));
        assert!(!c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small();
        c.fill(0, 0, false);
        c.mark_dirty(0);
        c.fill(4, 1, false);
        c.access(4, 2);
        assert_eq!(c.fill(8, 3, false), Evicted::Dirty(0));
    }

    #[test]
    fn refill_refreshes_lru_not_duplicate() {
        let mut c = small();
        c.fill(0, 0, false);
        c.fill(4, 1, false);
        c.fill(0, 2, false); // refresh, not duplicate
        assert_eq!(c.resident_lines(), 2);
        assert_eq!(c.fill(8, 3, false), Evicted::Clean(4));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.fill(7, 0, false);
        assert!(c.invalidate(7));
        assert!(!c.probe(7));
        assert!(!c.invalidate(7));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = small();
        c.fill(0, 0, false);
        c.fill(4, 1, false);
        assert!(c.probe(0)); // must not promote line 0
        assert_eq!(c.fill(8, 2, false), Evicted::Clean(0));
    }

    #[test]
    fn clear_empties() {
        let mut c = small();
        c.fill(1, 0, false);
        c.fill(2, 0, false);
        c.clear();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        CacheConfig::new(500, 2, 64, 2);
    }
}
