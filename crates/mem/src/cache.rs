//! Set-associative cache with true-LRU replacement.
//!
//! Caches model presence and timing only; data bytes live in the
//! [`BackingStore`](crate::BackingStore). This matches how the attack works:
//! what leaks is *which lines are resident*, not their contents.
//!
//! Storage is a single contiguous line array (`sets × ways`, way-major
//! within a set) with one validity bitmask per set, so the per-access path
//! is a masked index plus a short scan of a cache-resident slice — no
//! nested `Vec<Vec<Option<_>>>` pointer chasing on the simulator's hottest
//! loop.

use core::fmt;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u64,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u64,
    /// Access latency in cycles for a hit at this level.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Creates a configuration and validates its geometry.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not powers of two or the geometry is inconsistent
    /// (capacity not divisible into `ways × line_bytes` sets).
    pub fn new(size_bytes: u64, ways: u64, line_bytes: u64, hit_latency: u64) -> CacheConfig {
        let cfg = CacheConfig { size_bytes, ways, line_bytes, hit_latency };
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.num_sets() >= 1, "cache must have at least one set");
        assert!(
            cfg.num_sets().is_power_of_two(),
            "set count must be a power of two (size={size_bytes}, ways={ways})"
        );
        assert!((1..=64).contains(&ways), "associativity must be in 1..=64");
        cfg
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// One way of one set. Meaningful only when the set's validity bit is set.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    dirty: bool,
    last_used: u64,
}

/// Result of inserting a line: what was evicted, if anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evicted {
    /// The set had a free way; nothing was displaced.
    None,
    /// A clean line was displaced.
    Clean(u64),
    /// A dirty line was displaced (counts as a writeback).
    Dirty(u64),
}

/// One level of set-associative cache with true-LRU replacement.
///
/// All methods take *line addresses* (byte address divided by the line
/// size); use [`Cache::line_of`] to convert.
///
/// ```
/// use specrun_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64, 2));
/// let line = c.line_of(0x1040);
/// assert!(!c.access(line, 0));
/// c.fill(line, 1, false);
/// assert!(c.access(line, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `num_sets × ways` lines, way-major within a set.
    lines: Box<[Line]>,
    /// One validity bitmask per set (bit `w` = way `w` holds a line).
    valid: Box<[u64]>,
    ways: usize,
    set_mask: u64,
    set_shift: u32,
    stamp: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.num_sets();
        let ways = config.ways as usize;
        Cache {
            lines: vec![Line::default(); (sets as usize) * ways].into_boxed_slice(),
            valid: vec![0u64; sets as usize].into_boxed_slice(),
            ways,
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
            stamp: 0,
            config,
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Converts a byte address to a line address for this cache's geometry.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes
    }

    #[inline]
    fn set_and_tag(&self, line: u64) -> (usize, u64) {
        ((line & self.set_mask) as usize, line >> self.set_shift)
    }

    #[inline]
    fn bump(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Index of the way holding `tag` in `set`, if resident.
    #[inline]
    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        let mut mask = self.valid[set];
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            if self.lines[base + way].tag == tag {
                return Some(way);
            }
            mask &= mask - 1;
        }
        None
    }

    /// Whether the line is resident, without touching LRU state.
    pub fn probe(&self, line: u64) -> bool {
        let (set, tag) = self.set_and_tag(line);
        self.find(set, tag).is_some()
    }

    /// Looks up the line, updating LRU state on hit. Returns whether it hit.
    pub fn access(&mut self, line: u64, _now: u64) -> bool {
        self.access_slot(line).is_some()
    }

    /// [`Cache::access`], additionally returning the hit line's *slot* — a
    /// flat index into the line array that stays valid while the line stays
    /// resident (i.e. until any fill, invalidate or clear on this cache).
    /// Callers memoize it to re-touch a just-hit line without repeating the
    /// tag search; see [`Cache::touch_slot`].
    pub fn access_slot(&mut self, line: u64) -> Option<usize> {
        let stamp = self.bump();
        let (set, tag) = self.set_and_tag(line);
        let way = self.find(set, tag)?;
        let slot = set * self.ways + way;
        self.lines[slot].last_used = stamp;
        Some(slot)
    }

    /// Re-touches a slot previously returned by [`Cache::access_slot`] for
    /// a line known to still be resident there. Exactly equivalent to
    /// another `access` hit of that line: one LRU stamp is consumed and the
    /// line becomes most-recently used.
    pub fn touch_slot(&mut self, slot: usize) {
        let stamp = self.bump();
        self.lines[slot].last_used = stamp;
    }

    /// Marks a resident slot dirty (store hit on a memoized line);
    /// equivalent to [`Cache::mark_dirty`] on its line.
    pub fn mark_dirty_slot(&mut self, slot: usize) {
        self.lines[slot].dirty = true;
    }

    /// Marks the line dirty if resident (store hit). Returns whether it hit.
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        let (set, tag) = self.set_and_tag(line);
        if let Some(way) = self.find(set, tag) {
            self.lines[set * self.ways + way].dirty = true;
            true
        } else {
            false
        }
    }

    /// Installs the line (no-op if already resident), evicting the LRU way
    /// of a full set.
    pub fn fill(&mut self, line: u64, _now: u64, dirty: bool) -> Evicted {
        let stamp = self.bump();
        let (set, tag) = self.set_and_tag(line);
        let base = set * self.ways;
        // Already resident: refresh.
        if let Some(way) = self.find(set, tag) {
            let l = &mut self.lines[base + way];
            l.last_used = stamp;
            l.dirty |= dirty;
            return Evicted::None;
        }
        // Free way available (lowest-index first, as before).
        let occupancy = self.valid[set];
        let free = (!occupancy).trailing_zeros() as usize;
        if free < self.ways {
            self.lines[base + free] = Line { tag, dirty, last_used: stamp };
            self.valid[set] |= 1u64 << free;
            return Evicted::None;
        }
        // Evict true-LRU.
        let mut victim_way = 0;
        let mut victim_stamp = u64::MAX;
        for way in 0..self.ways {
            let used = self.lines[base + way].last_used;
            if used < victim_stamp {
                victim_stamp = used;
                victim_way = way;
            }
        }
        let victim = core::mem::replace(
            &mut self.lines[base + victim_way],
            Line { tag, dirty, last_used: stamp },
        );
        let victim_line = (victim.tag << self.set_shift) | set as u64;
        if victim.dirty {
            Evicted::Dirty(victim_line)
        } else {
            Evicted::Clean(victim_line)
        }
    }

    /// Removes the line if resident; returns whether it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let (set, tag) = self.set_and_tag(line);
        if let Some(way) = self.find(set, tag) {
            self.valid[set] &= !(1u64 << way);
            true
        } else {
            false
        }
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.valid.fill(0);
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.valid.iter().map(|m| m.count_ones() as usize).sum()
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KiB {}-way {}B-line cache ({} cycles, {} resident)",
            self.config.size_bytes / 1024,
            self.config.ways,
            self.config.line_bytes,
            self.config.hit_latency,
            self.resident_lines()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 64 B
        Cache::new(CacheConfig::new(512, 2, 64, 2))
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().num_sets(), 4);
        assert_eq!(c.line_of(0x100), 4);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert!(!c.access(10, 0));
        assert_eq!(c.fill(10, 1, false), Evicted::None);
        assert!(c.access(10, 2));
        assert!(c.probe(10));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, 0, false);
        c.fill(4, 1, false);
        c.access(0, 2); // 0 is now MRU; 4 is LRU
        assert_eq!(c.fill(8, 3, false), Evicted::Clean(4));
        assert!(c.probe(0));
        assert!(!c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small();
        c.fill(0, 0, false);
        c.mark_dirty(0);
        c.fill(4, 1, false);
        c.access(4, 2);
        assert_eq!(c.fill(8, 3, false), Evicted::Dirty(0));
    }

    #[test]
    fn refill_refreshes_lru_not_duplicate() {
        let mut c = small();
        c.fill(0, 0, false);
        c.fill(4, 1, false);
        c.fill(0, 2, false); // refresh, not duplicate
        assert_eq!(c.resident_lines(), 2);
        assert_eq!(c.fill(8, 3, false), Evicted::Clean(4));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.fill(7, 0, false);
        assert!(c.invalidate(7));
        assert!(!c.probe(7));
        assert!(!c.invalidate(7));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = small();
        c.fill(0, 0, false);
        c.fill(4, 1, false);
        assert!(c.probe(0)); // must not promote line 0
        assert_eq!(c.fill(8, 2, false), Evicted::Clean(0));
    }

    #[test]
    fn clear_empties() {
        let mut c = small();
        c.fill(1, 0, false);
        c.fill(2, 0, false);
        c.clear();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn invalidated_way_is_reused() {
        let mut c = small();
        c.fill(0, 0, false);
        c.fill(4, 1, false);
        c.invalidate(0);
        assert_eq!(c.fill(8, 2, false), Evicted::None, "freed way must be reused");
        assert!(c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn high_tags_round_trip() {
        let mut c = small();
        let line = (1u64 << 40) | 3; // large tag, set 3
        c.fill(line, 0, false);
        assert!(c.probe(line));
        c.mark_dirty(line);
        // Conflict-evict it and check the victim line address is exact.
        let other1 = (1u64 << 41) | 3;
        let other2 = (1u64 << 42) | 3;
        c.fill(other1, 1, false);
        assert_eq!(c.fill(other2, 2, false), Evicted::Dirty(line));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        CacheConfig::new(500, 2, 64, 2);
    }
}
