//! A small fixed-size open-addressed hash table with tombstone deletion,
//! shared by the runahead cache and the SL cache.
//!
//! Both structures model bounded hardware CAMs: a few dozen to a few
//! hundred line-keyed entries, consulted on the simulator's hot path.
//! Linear probing over a flat slot array beats `HashMap` here — no SipHash,
//! no bucket pointers — and the capacity policy (evict vs drop) stays with
//! the caller.
//!
//! Invariants: the slot array holds `>= 2 × capacity` slots, callers keep
//! `len <= capacity`, and `insert` rebuilds (dropping tombstones) once
//! tombstones exceed `capacity` — together guaranteeing every probe
//! terminates on an empty or reusable slot.

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Empty,
    Full,
    Tombstone,
}

#[derive(Debug, Clone)]
struct Slot<V> {
    state: SlotState,
    key: u64,
    value: V,
}

/// Fixed-size open-addressed table mapping `u64` keys to `V`.
#[derive(Debug, Clone)]
pub(crate) struct OpenTable<V> {
    slots: Box<[Slot<V>]>,
    mask: usize,
    len: usize,
    tombstones: usize,
    /// Rebuild (drop tombstones) when they exceed this.
    rebuild_at: usize,
}

#[inline]
fn hash(key: u64) -> u64 {
    // FxHash-style multiplicative mix: plenty for line indices.
    key.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl<V: Clone + Default> OpenTable<V> {
    /// A table for at most `capacity` live entries (callers enforce that).
    pub fn with_capacity(capacity: usize) -> OpenTable<V> {
        let capacity = capacity.max(1);
        let table = (capacity * 2).next_power_of_two();
        OpenTable {
            slots: vec![Slot { state: SlotState::Empty, key: 0, value: V::default() }; table]
                .into_boxed_slice(),
            mask: table - 1,
            len: 0,
            tombstones: 0,
            rebuild_at: capacity,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Slot index of `key`, if present.
    pub fn find(&self, key: u64) -> Option<usize> {
        let mut idx = hash(key) as usize & self.mask;
        for _ in 0..self.slots.len() {
            match self.slots[idx].state {
                SlotState::Empty => return None,
                SlotState::Full if self.slots[idx].key == key => return Some(idx),
                _ => idx = (idx + 1) & self.mask,
            }
        }
        None
    }

    /// Inserts `key` with a default value and returns its slot index.
    /// The key must be absent and the caller must have kept `len` below
    /// the table's capacity (evicting or dropping first).
    pub fn insert(&mut self, key: u64) -> usize {
        debug_assert!(self.find(key).is_none(), "insert of a present key");
        if self.tombstones > self.rebuild_at {
            self.rebuild();
        }
        let mut idx = hash(key) as usize & self.mask;
        loop {
            match self.slots[idx].state {
                SlotState::Empty | SlotState::Tombstone => {
                    if self.slots[idx].state == SlotState::Tombstone {
                        self.tombstones -= 1;
                    }
                    self.slots[idx] = Slot { state: SlotState::Full, key, value: V::default() };
                    self.len += 1;
                    return idx;
                }
                SlotState::Full => idx = (idx + 1) & self.mask,
            }
        }
    }

    /// Value of a live slot.
    pub fn value(&self, idx: usize) -> &V {
        debug_assert_eq!(self.slots[idx].state, SlotState::Full);
        &self.slots[idx].value
    }

    /// Mutable value of a live slot.
    pub fn value_mut(&mut self, idx: usize) -> &mut V {
        debug_assert_eq!(self.slots[idx].state, SlotState::Full);
        &mut self.slots[idx].value
    }

    /// Deletes the entry at `idx`, returning a borrow of its value.
    pub fn remove_at(&mut self, idx: usize) -> &V {
        debug_assert_eq!(self.slots[idx].state, SlotState::Full);
        self.slots[idx].state = SlotState::Tombstone;
        self.tombstones += 1;
        self.len -= 1;
        &self.slots[idx].value
    }

    /// Deletes entries failing the predicate; returns how many died.
    pub fn retain(&mut self, mut keep: impl FnMut(u64, &V) -> bool) -> usize {
        let mut dropped = 0;
        for slot in self.slots.iter_mut() {
            if slot.state == SlotState::Full && !keep(slot.key, &slot.value) {
                slot.state = SlotState::Tombstone;
                dropped += 1;
            }
        }
        self.tombstones += dropped;
        self.len -= dropped;
        dropped
    }

    /// Iterates over live `(key, value)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots.iter().filter(|s| s.state == SlotState::Full).map(|s| (s.key, &s.value))
    }

    /// Empties the table.
    pub fn clear(&mut self) {
        for slot in self.slots.iter_mut() {
            slot.state = SlotState::Empty;
        }
        self.len = 0;
        self.tombstones = 0;
    }

    /// Rehashes live entries, dropping all tombstones.
    fn rebuild(&mut self) {
        let old = std::mem::replace(
            &mut self.slots,
            vec![Slot { state: SlotState::Empty, key: 0, value: V::default() }; self.mask + 1]
                .into_boxed_slice(),
        );
        self.tombstones = 0;
        for slot in old.iter().filter(|s| s.state == SlotState::Full) {
            let mut idx = hash(slot.key) as usize & self.mask;
            while self.slots[idx].state == SlotState::Full {
                idx = (idx + 1) & self.mask;
            }
            self.slots[idx] = slot.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_find_remove_round_trip() {
        let mut t: OpenTable<u32> = OpenTable::with_capacity(4);
        let idx = t.insert(10);
        *t.value_mut(idx) = 7;
        assert_eq!(t.find(10), Some(idx));
        assert_eq!(*t.value(idx), 7);
        assert_eq!(*t.remove_at(idx), 7);
        assert_eq!(t.find(10), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn heavy_churn_terminates_and_stays_consistent() {
        let mut t: OpenTable<u64> = OpenTable::with_capacity(4);
        for round in 0..1000u64 {
            while t.len() >= 4 {
                let oldest = t.iter().map(|(k, _)| k).min().unwrap();
                let idx = t.find(oldest).unwrap();
                t.remove_at(idx);
            }
            let idx = t.insert(round);
            *t.value_mut(idx) = round;
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.iter().count(), 4);
        assert_eq!(*t.value(t.find(999).unwrap()), 999);
    }

    #[test]
    fn retain_drops_matching() {
        let mut t: OpenTable<u64> = OpenTable::with_capacity(8);
        for k in 0..8 {
            let idx = t.insert(k);
            *t.value_mut(idx) = k;
        }
        assert_eq!(t.retain(|_, &v| v % 2 == 0), 4);
        assert_eq!(t.len(), 4);
        assert!(t.iter().all(|(_, &v)| v % 2 == 0));
    }
}
