//! Request-based contention model for main memory (Table 1: "request-based
//! contention model, 200 cycle").
//!
//! Every request pays the fixed access latency; the single memory channel
//! additionally serializes request *issue* with a configurable gap, so bursts
//! of misses queue behind each other. This is the property runahead
//! execution exploits: overlapping independent misses hides the 200-cycle
//! latency but still pays the per-request channel occupancy.

/// Timing parameters of the DRAM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DramConfig {
    /// Fixed access latency in cycles (paper: 200).
    pub latency: u64,
    /// Minimum cycles between consecutive request issues on the channel.
    pub issue_gap: u64,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig { latency: 200, issue_gap: 4 }
    }
}

/// The main-memory timing model.
///
/// ```
/// use specrun_mem::{Dram, DramConfig};
/// let mut dram = Dram::new(DramConfig { latency: 200, issue_gap: 10 });
/// assert_eq!(dram.request(0), 200);   // issues at 0
/// assert_eq!(dram.request(0), 210);   // channel busy until 10
/// assert_eq!(dram.request(1000), 1200);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    next_free: u64,
    requests: u64,
}

impl Dram {
    /// Creates the model with the given timing parameters.
    pub fn new(config: DramConfig) -> Dram {
        Dram { config, next_free: 0, requests: 0 }
    }

    /// This model's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Issues a request at cycle `now`; returns its completion cycle.
    pub fn request(&mut self, now: u64) -> u64 {
        let issue = now.max(self.next_free);
        self.next_free = issue + self.config.issue_gap;
        self.requests += 1;
        issue + self.config.latency
    }

    /// Total requests issued so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Resets channel occupancy and counters (used between program runs on a
    /// machine that keeps its caches warm).
    pub fn reset_timing(&mut self) {
        self.next_free = 0;
        self.requests = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_when_idle() {
        let mut d = Dram::new(DramConfig::default());
        assert_eq!(d.request(100), 300);
    }

    #[test]
    fn contention_serializes_bursts() {
        let mut d = Dram::new(DramConfig { latency: 200, issue_gap: 6 });
        let a = d.request(0);
        let b = d.request(0);
        let c = d.request(0);
        assert_eq!(a, 200);
        assert_eq!(b, 206);
        assert_eq!(c, 212);
        assert_eq!(d.requests(), 3);
    }

    #[test]
    fn channel_frees_up_over_time() {
        let mut d = Dram::new(DramConfig { latency: 200, issue_gap: 6 });
        d.request(0);
        assert_eq!(d.request(50), 250); // gap already elapsed
    }

    #[test]
    fn overlap_beats_serial_total_latency() {
        // The MLP argument behind runahead: 4 overlapped misses finish far
        // sooner than 4 dependent (serial) ones.
        let mut overlapped = Dram::new(DramConfig::default());
        let finish_overlapped = (0..4).map(|_| overlapped.request(0)).max().unwrap();
        let mut serial = Dram::new(DramConfig::default());
        let mut t = 0;
        for _ in 0..4 {
            t = serial.request(t);
        }
        assert!(finish_overlapped < t / 2);
    }
}
