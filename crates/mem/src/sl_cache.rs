//! The Speculative-Load cache (SL cache) of the paper's secure runahead
//! scheme (§6).
//!
//! Data fetched from memory *during* runahead mode is parked here — an "L0"
//! staging buffer invisible to the normal hierarchy — instead of polluting
//! L1/L2/L3. Each entry carries the taint tags assigned by the tracker:
//!
//! * `Btag = B(n, m)` — the load executed in the scope of branch `n` as its
//!   `m`-th unsafe speculative load (`m = 0` marks an untainted load inside
//!   the scope; entries outside any branch scope carry no `Btag`).
//! * `IS` — a mask of branch scopes whose taint reaches the load's
//!   *address* (Fig. 12 shows loads tainted by several branches at once,
//!   e.g. `IS = B1, B2`); zero means safe.
//!
//! After runahead exits, Algorithm 1 (implemented by the CPU's secure-mode
//! load path) drains the cache: safe entries promote to L1, `Btag`-scoped
//! entries wait for their branch verdict, and on a misprediction the `IS`
//! masks select the entries to delete. The entry counter `C` lets the
//! processor stop consulting the SL cache once it is empty.
//!
//! Storage is the shared fixed-size [`OpenTable`] (the hardware analogue:
//! a fully-associative CAM of `capacity` lines), consulted on every
//! post-exit load while `C != 0` — so lookups must not chase `HashMap`
//! buckets.

use crate::table::OpenTable;

/// Identifier of a (dynamic) branch scope, the `n` in `B(n, m)`.
pub type BranchId = u32;

/// `Btag` of an SL-cache entry: which branch scope the load executed under
/// and its USL ordinal within that scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Btag {
    /// Enclosing branch (`B_n`).
    pub branch: BranchId,
    /// USL ordinal within the scope; `0` means untainted-but-in-scope.
    pub ordinal: u32,
}

/// Tags attached to one SL-cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlTags {
    /// `Btag`, `None` for loads outside any branch scope (paper: `Btag = 0`).
    pub btag: Option<Btag>,
    /// `IS` mask: bit `n` set when branch scope `n` taints the load's
    /// address (paper: `IS = 0` for safe loads).
    pub is_mask: u64,
}

impl SlTags {
    /// Tags of a load outside any branch scope with an untainted address.
    pub fn safe() -> SlTags {
        SlTags::default()
    }

    /// Whether Algorithm 1 may promote this entry without a branch verdict.
    pub fn is_safe(&self) -> bool {
        self.btag.is_none() && self.is_mask == 0
    }
}

/// The SL cache: line-granular staging buffer with taint tags and the
/// residency counter `C`.
///
/// ```
/// use specrun_mem::{SlCache, SlTags};
/// let mut sl = SlCache::new(64);
/// sl.insert(0x40, SlTags::safe());
/// assert_eq!(sl.counter(), 1);
/// assert!(sl.lookup(0x40).is_some());
/// sl.remove(0x40);
/// assert_eq!(sl.counter(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SlCache {
    table: OpenTable<SlTags>,
    capacity: usize,
}

impl Default for SlCache {
    fn default() -> SlCache {
        SlCache::new(64)
    }
}

impl SlCache {
    /// Creates an SL cache holding at most `capacity` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> SlCache {
        assert!(capacity > 0, "SL cache needs nonzero capacity");
        SlCache { table: OpenTable::with_capacity(capacity), capacity }
    }

    /// Inserts (or re-tags) a line. When full, the insert is dropped — a
    /// full SL cache simply loses prefetch benefit, never security.
    ///
    /// Returns whether the line is resident afterwards.
    pub fn insert(&mut self, line: u64, tags: SlTags) -> bool {
        if let Some(idx) = self.table.find(line) {
            *self.table.value_mut(idx) = tags;
            return true;
        }
        if self.table.len() >= self.capacity {
            return false;
        }
        let idx = self.table.insert(line);
        *self.table.value_mut(idx) = tags;
        true
    }

    /// Tags of a resident line.
    pub fn lookup(&self, line: u64) -> Option<&SlTags> {
        self.table.find(line).map(|idx| self.table.value(idx))
    }

    /// Removes one line (Algorithm 1's per-entry promote-or-drop); returns
    /// its tags if it was resident.
    pub fn remove(&mut self, line: u64) -> Option<SlTags> {
        let idx = self.table.find(line)?;
        Some(*self.table.remove_at(idx))
    }

    /// Deletes every entry whose `IS` mask intersects `mask` — the bulk
    /// removal Algorithm 1 performs when a branch turns out mispredicted
    /// ("use IS to delete entries related to B_n"). Returns `d`, the number
    /// deleted.
    pub fn remove_tainted_by(&mut self, mask: u64) -> usize {
        self.table.retain(|_, tags| tags.is_mask & mask == 0)
    }

    /// Deletes every entry whose `Btag` scope is `branch` (the entries
    /// guarded by the branch itself, USL or not).
    pub fn remove_in_scope(&mut self, branch: BranchId) -> usize {
        self.table.retain(|_, tags| tags.btag.map(|b| b.branch) != Some(branch))
    }

    /// The counter `C`: number of resident entries.
    pub fn counter(&self) -> usize {
        self.table.len()
    }

    /// Whether the SL cache is empty (processor switches back to the
    /// regular load path).
    pub fn is_empty(&self) -> bool {
        self.table.len() == 0
    }

    /// Iterates over resident `(line, tags)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &SlTags)> {
        self.table.iter()
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tainted(branch: BranchId, ordinal: u32) -> SlTags {
        SlTags { btag: Some(Btag { branch, ordinal }), is_mask: 1 << branch }
    }

    #[test]
    fn counter_tracks_inserts_and_removes() {
        let mut sl = SlCache::new(8);
        sl.insert(1, SlTags::safe());
        sl.insert(2, tainted(1, 1));
        assert_eq!(sl.counter(), 2);
        sl.remove(1);
        assert_eq!(sl.counter(), 1);
    }

    #[test]
    fn capacity_drops_new_inserts() {
        let mut sl = SlCache::new(2);
        assert!(sl.insert(1, SlTags::safe()));
        assert!(sl.insert(2, SlTags::safe()));
        assert!(!sl.insert(3, SlTags::safe()));
        assert_eq!(sl.counter(), 2);
        assert!(sl.lookup(3).is_none());
    }

    #[test]
    fn reinsert_updates_tags_in_place() {
        let mut sl = SlCache::new(1);
        sl.insert(9, SlTags::safe());
        assert!(sl.insert(9, tainted(2, 1)), "re-tag must succeed at capacity");
        assert_eq!(sl.lookup(9).unwrap().is_mask, 1 << 2);
    }

    #[test]
    fn bulk_removal_by_is_mask() {
        let mut sl = SlCache::new(8);
        sl.insert(1, tainted(1, 1));
        sl.insert(2, tainted(1, 2));
        sl.insert(3, tainted(2, 1));
        sl.insert(4, SlTags::safe());
        // A multi-branch IS entry (Fig. 12's `IS = B1, B2`).
        sl.insert(5, SlTags { btag: None, is_mask: (1 << 1) | (1 << 2) });
        let d = sl.remove_tainted_by(1 << 1);
        assert_eq!(d, 3, "both B1-only and B1|B2 entries die");
        assert_eq!(sl.counter(), 2);
        assert!(sl.lookup(3).is_some());
        assert!(sl.lookup(4).is_some());
    }

    #[test]
    fn scope_removal_by_btag() {
        let mut sl = SlCache::new(8);
        sl.insert(1, SlTags { btag: Some(Btag { branch: 3, ordinal: 0 }), is_mask: 0 });
        sl.insert(2, tainted(3, 1));
        sl.insert(3, SlTags::safe());
        assert_eq!(sl.remove_in_scope(3), 2);
        assert_eq!(sl.counter(), 1);
    }

    #[test]
    fn remove_reinsert_churn_at_capacity() {
        let mut sl = SlCache::new(2);
        for round in 0..100u64 {
            assert!(sl.insert(round, SlTags::safe()));
            assert!(sl.insert(round + 1000, SlTags::safe()));
            assert_eq!(sl.counter(), 2);
            assert!(sl.remove(round).is_some());
            assert!(sl.remove(round + 1000).is_some());
            assert!(sl.is_empty());
        }
    }

    #[test]
    fn safe_classification() {
        assert!(SlTags::safe().is_safe());
        assert!(!tainted(1, 1).is_safe());
        assert!(!SlTags { btag: Some(Btag { branch: 1, ordinal: 0 }), is_mask: 0 }.is_safe());
        assert!(!SlTags { btag: None, is_mask: 4 }.is_safe());
    }
}
