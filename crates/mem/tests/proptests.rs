//! Property-based tests for the memory subsystem.

use proptest::prelude::*;
use specrun_mem::{
    AccessKind, BackingStore, Cache, CacheConfig, FillPolicy, HitLevel, MemHierarchy,
    RunaheadCache, RunaheadRead, SlCache, SlTags,
};

proptest! {
    /// Backing store reads return exactly what was last written, for any
    /// interleaving of writes at any width.
    #[test]
    fn backing_store_last_write_wins(
        writes in proptest::collection::vec((0u64..0x10000, prop_oneof![Just(1u64), Just(2), Just(4), Just(8)], any::<u64>()), 1..50)
    ) {
        let mut mem = BackingStore::new();
        let mut model = std::collections::HashMap::<u64, u8>::new();
        for (addr, width, value) in &writes {
            mem.write(*addr, *width, *value);
            for i in 0..*width {
                model.insert(addr + i, (value >> (8 * i)) as u8);
            }
        }
        for (addr, _, _) in &writes {
            let expect = *model.get(addr).unwrap_or(&0);
            prop_assert_eq!(mem.read_u8(*addr), expect);
        }
    }

    /// A cache never holds more lines than its capacity, and a line that was
    /// just filled is always resident.
    #[test]
    fn cache_capacity_invariant(lines in proptest::collection::vec(0u64..4096, 1..300)) {
        let cfg = CacheConfig::new(4096, 4, 64, 2); // 16 sets x 4 ways
        let capacity = (cfg.size_bytes / cfg.line_bytes) as usize;
        let mut cache = Cache::new(cfg);
        for (i, &line) in lines.iter().enumerate() {
            cache.fill(line, i as u64, false);
            prop_assert!(cache.probe(line), "just-filled line resident");
            prop_assert!(cache.resident_lines() <= capacity);
        }
    }

    /// After an access completes, re-accessing the same address at a later
    /// time is always at least as fast (monotone warming), absent flushes.
    #[test]
    fn warming_is_monotone(addrs in proptest::collection::vec(0u64..0x40000, 1..60)) {
        let mut mem = MemHierarchy::default();
        let mut now = 0u64;
        for &addr in &addrs {
            let first = mem.access(addr, now, AccessKind::Load, FillPolicy::Normal);
            let first_latency = first.ready_at - now;
            now = first.ready_at + 1;
            let second = mem.access(addr, now, AccessKind::Load, FillPolicy::Normal);
            prop_assert!(second.ready_at - now <= first_latency);
            prop_assert_ne!(second.level, HitLevel::Mem);
            now = second.ready_at + 1;
        }
    }

    /// Flushing any subset of addresses evicts exactly those lines.
    #[test]
    fn flush_is_precise(
        warm in proptest::collection::hash_set(0u64..256, 1..40),
        flush in proptest::collection::hash_set(0u64..256, 1..40),
    ) {
        let mut mem = MemHierarchy::default();
        let line = mem.line_bytes();
        for &w in &warm {
            mem.warm(w * line);
        }
        for &f in &flush {
            mem.flush_line(f * line, 0);
        }
        for &w in &warm {
            let resident = mem.residency(w * line) != HitLevel::Mem;
            prop_assert_eq!(resident, !flush.contains(&w), "line {}", w);
        }
    }

    /// Runahead-cache reads reproduce the most recent valid write at any
    /// overlap, and INV writes never produce a Hit.
    #[test]
    fn runahead_cache_forwarding(
        ops in proptest::collection::vec((0u64..64, prop_oneof![Just(1u64), Just(2), Just(4), Just(8)], any::<u64>(), any::<bool>()), 1..40)
    ) {
        let mut rc = RunaheadCache::new(4096);
        let mut bytes = std::collections::HashMap::<u64, (u8, bool)>::new();
        for (addr, width, value, inv) in &ops {
            rc.write(*addr, *width, *value, *inv);
            for i in 0..*width {
                bytes.insert(addr + i, ((value >> (8 * i)) as u8, *inv));
            }
        }
        for (addr, width, _, _) in &ops {
            let mut expect_val = 0u64;
            let mut poisoned = false;
            for i in 0..*width {
                let (v, inv) = bytes[&(addr + i)];
                expect_val |= u64::from(v) << (8 * i);
                poisoned |= inv;
            }
            match rc.read(*addr, *width) {
                RunaheadRead::Hit(v) => {
                    prop_assert!(!poisoned);
                    prop_assert_eq!(v, expect_val);
                }
                RunaheadRead::Invalid => prop_assert!(poisoned),
                RunaheadRead::Miss => prop_assert!(false, "bytes were written"),
            }
        }
    }

    /// The SL-cache counter always equals the number of resident entries,
    /// through any mix of inserts and bulk removals.
    #[test]
    fn sl_counter_consistent(
        ops in proptest::collection::vec((0u64..64, 0u32..4, any::<bool>()), 1..80)
    ) {
        let mut sl = SlCache::new(32);
        for (line, branch, remove) in ops {
            if remove {
                sl.remove_tainted_by(1u64 << branch);
            } else {
                let tags = if branch == 0 {
                    SlTags::safe()
                } else {
                    SlTags { btag: Some(specrun_mem::Btag { branch, ordinal: 1 }), is_mask: 1u64 << branch }
                };
                sl.insert(line, tags);
            }
            prop_assert_eq!(sl.counter(), sl.iter().count());
            prop_assert!(sl.counter() <= 32);
        }
    }
}
