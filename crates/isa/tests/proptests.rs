//! Property-based tests for the ISA crate: encode/decode round trips,
//! assembler/disassembler agreement, and evaluator invariants.

use proptest::prelude::*;
use specrun_isa::{
    assemble, decode, encode, AluOp, BranchCond, CtrlClass, DecodedProgram, FpOp, FpReg, Inst,
    IntReg, MemWidth, ProgramBuilder, INST_BYTES,
};

fn int_reg() -> impl Strategy<Value = IntReg> {
    (0u8..32).prop_map(|i| IntReg::new(i).unwrap())
}

fn fp_reg() -> impl Strategy<Value = FpReg> {
    (0u8..16).prop_map(|i| FpReg::new(i).unwrap())
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Sar),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ]
}

fn fp_op() -> impl Strategy<Value = FpOp> {
    prop_oneof![Just(FpOp::Add), Just(FpOp::Sub), Just(FpOp::Mul), Just(FpOp::Div)]
}

fn cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![Just(MemWidth::B1), Just(MemWidth::B2), Just(MemWidth::B4), Just(MemWidth::B8)]
}

fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Halt),
        Just(Inst::Ret),
        (alu_op(), int_reg(), int_reg(), int_reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (alu_op(), int_reg(), int_reg(), any::<i32>())
            .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
        (int_reg(), any::<i32>()).prop_map(|(rd, imm)| Inst::MovImm { rd, imm }),
        (fp_op(), fp_reg(), fp_reg(), fp_reg()).prop_map(|(op, fd, fs1, fs2)| Inst::FpAlu {
            op,
            fd,
            fs1,
            fs2
        }),
        (fp_reg(), int_reg()).prop_map(|(fd, rs1)| Inst::FpCvt { fd, rs1 }),
        (int_reg(), fp_reg()).prop_map(|(rd, fs1)| Inst::FpMov { rd, fs1 }),
        (width(), int_reg(), int_reg(), any::<i32>())
            .prop_map(|(width, rd, base, offset)| Inst::Load { width, rd, base, offset }),
        (fp_reg(), int_reg(), any::<i32>()).prop_map(|(fd, base, offset)| Inst::FpLoad {
            fd,
            base,
            offset
        }),
        (width(), int_reg(), int_reg(), any::<i32>())
            .prop_map(|(width, src, base, offset)| Inst::Store { width, src, base, offset }),
        (fp_reg(), int_reg(), any::<i32>()).prop_map(|(fs, base, offset)| Inst::FpStore {
            fs,
            base,
            offset
        }),
        (int_reg(), any::<i32>()).prop_map(|(base, offset)| Inst::Flush { base, offset }),
        (cond(), int_reg(), int_reg(), any::<i32>())
            .prop_map(|(cond, rs1, rs2, offset)| Inst::Branch { cond, rs1, rs2, offset }),
        any::<i32>().prop_map(|offset| Inst::Jump { offset }),
        (int_reg(), any::<i32>()).prop_map(|(base, offset)| Inst::JumpInd { base, offset }),
        any::<i32>().prop_map(|offset| Inst::Call { offset }),
        int_reg().prop_map(|base| Inst::CallInd { base }),
        int_reg().prop_map(|rd| Inst::RdCycle { rd }),
    ]
}

proptest! {
    /// Every instruction encodes to 8 bytes and decodes back to itself.
    #[test]
    fn encode_decode_round_trip(i in inst()) {
        let word = encode(&i);
        prop_assert_eq!(decode(&word).unwrap(), i);
    }

    /// ALU evaluation never panics and Slt/Sltu produce only 0 or 1.
    #[test]
    fn alu_eval_total(op in alu_op(), a in any::<u64>(), b in any::<u64>()) {
        let r = op.eval(a, b);
        if matches!(op, AluOp::Slt | AluOp::Sltu) {
            prop_assert!(r <= 1);
        }
    }

    /// Branch conditions are exhaustive complements: Eq/Ne, Lt/Ge, Ltu/Geu.
    #[test]
    fn cond_complements(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_ne!(BranchCond::Eq.eval(a, b), BranchCond::Ne.eval(a, b));
        prop_assert_ne!(BranchCond::Lt.eval(a, b), BranchCond::Ge.eval(a, b));
        prop_assert_ne!(BranchCond::Ltu.eval(a, b), BranchCond::Geu.eval(a, b));
    }

    /// li64 materializes any 64-bit constant (checked by symbolic execution
    /// of the emitted μops).
    #[test]
    fn li64_materializes_any_constant(value in any::<u64>()) {
        let rd = IntReg::new(5).unwrap();
        let mut b = ProgramBuilder::new(0);
        b.li64(rd, value);
        b.halt();
        let p = b.build().unwrap();
        let mut reg = 0u64;
        for inst in p.insts() {
            match *inst {
                Inst::MovImm { imm, .. } => reg = imm as i64 as u64,
                Inst::AluImm { op, imm, .. } => reg = op.eval(reg, imm as i64 as u64),
                Inst::Halt => break,
                ref other => prop_assert!(false, "unexpected inst {}", other),
            }
        }
        prop_assert_eq!(reg, value);
    }

    /// The assembler accepts every disassembled instruction and reproduces it.
    #[test]
    fn disasm_asm_round_trip(insts in proptest::collection::vec(inst(), 1..40)) {
        let src: String = insts.iter().map(|i| format!("{i}\n")).collect();
        let p = assemble(&src).unwrap();
        prop_assert_eq!(p.insts(), &insts[..]);
    }

    /// `sources` never reports r0 and never exceeds three entries.
    #[test]
    fn sources_exclude_zero_reg(i in inst()) {
        for src in i.sources().into_iter().flatten() {
            prop_assert_ne!(src, specrun_isa::ArchReg::Int(IntReg::ZERO));
        }
    }

    /// Predecoded `UopMeta` agrees with every `Inst`-derived static fact
    /// for arbitrary programs: sources/dest, the classification predicates,
    /// the serializing flag, the control class and the pre-resolved direct
    /// target (including wrapping branch offsets).
    #[test]
    fn decoded_program_matches_inst_derivations(
        insts in proptest::collection::vec(inst(), 1..60),
        base_page in 0u64..0x1_0000,
    ) {
        let base = base_page * INST_BYTES;
        let mut b = ProgramBuilder::new(base);
        for i in &insts {
            b.push(*i);
        }
        let d = DecodedProgram::new(b.build().unwrap());
        prop_assert_eq!(d.meta().len(), insts.len());
        for (idx, i) in insts.iter().enumerate() {
            let pc = base + idx as u64 * INST_BYTES;
            let (fetched, m) = d.fetch(pc).expect("pc inside the image");
            prop_assert_eq!(fetched, *i);
            prop_assert_eq!(m.srcs, i.sources());
            prop_assert_eq!(m.dest, i.dest());
            prop_assert_eq!(m.is_load(), i.is_load());
            prop_assert_eq!(m.is_store(), i.is_store());
            prop_assert_eq!(m.is_mem(), i.is_mem());
            prop_assert_eq!(m.is_serializing(), i.is_serializing());
            prop_assert_eq!(m.is_control(), i.is_control());
            prop_assert_eq!(m.is_cond_branch(), i.is_cond_branch());
            prop_assert_eq!(m.is_halt(), matches!(i, Inst::Halt));
            prop_assert_eq!(m.direct_target(), i.direct_target(pc));
            let expected_ctrl = match i {
                Inst::Branch { .. } => CtrlClass::Conditional,
                Inst::Jump { .. } => CtrlClass::Direct,
                Inst::JumpInd { .. } => CtrlClass::Indirect,
                Inst::Call { .. } | Inst::CallInd { .. } => CtrlClass::Call,
                Inst::Ret => CtrlClass::Return,
                _ => CtrlClass::None,
            };
            prop_assert_eq!(m.ctrl, expected_ctrl);
        }
    }
}
