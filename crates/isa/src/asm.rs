//! A small text assembler for the micro-op ISA.
//!
//! The syntax mirrors the [`core::fmt::Display`] output of [`Inst`], one
//! instruction per line, with `name:` labels, `;` or `#` comments and two
//! directives:
//!
//! * `.base ADDR` — set the text base address (before any instruction)
//! * `.sym NAME ADDR` — define a data symbol usable with `la`
//!
//! Branch and jump targets may be labels or signed numeric offsets.
//!
//! ```
//! let program = specrun_isa::assemble(
//!     r"
//!     .base 0x1000
//!     .sym array1 0x20000
//!         la   r1, array1
//!         li   r2, 0
//!     loop:
//!         ld1  r3, 0(r1)
//!         addi r2, r2, 1
//!         blt  r2, r4, loop
//!         halt
//!     ",
//! )?;
//! assert_eq!(program.text_base(), 0x1000);
//! assert_eq!(program.len(), 6);
//! # Ok::<(), specrun_isa::AsmError>(())
//! ```

use core::fmt;

use crate::inst::{AluOp, BranchCond, FpOp, MemWidth};
use crate::program::{Program, ProgramBuilder, ProgramError};
use crate::reg::{FpReg, IntReg};

/// Error produced by [`assemble`], carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError { line, message: message.into() }
    }

    /// 1-based line number of the offending source line (0 for link-time
    /// errors such as undefined labels).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly failed: {}", self.message)
        } else {
            write!(f, "assembly failed at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

impl From<ProgramError> for AsmError {
    fn from(err: ProgramError) -> AsmError {
        AsmError::new(0, err.to_string())
    }
}

fn parse_u64(tok: &str) -> Option<u64> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        tok.parse().ok()
    }
}

fn parse_i32(tok: &str) -> Option<i32> {
    if let Some(rest) = tok.strip_prefix('-') {
        parse_u64(rest).and_then(|v| i32::try_from(-(v as i64)).ok())
    } else {
        parse_u64(tok).and_then(|v| i32::try_from(v).ok())
    }
}

/// `offset(base)` operand, e.g. `8(r2)`.
fn parse_mem(tok: &str) -> Option<(i32, IntReg)> {
    let open = tok.find('(')?;
    let close = tok.strip_suffix(')')?;
    let offset = if open == 0 { 0 } else { parse_i32(&tok[..open])? };
    let base: IntReg = close[open + 1..].parse().ok()?;
    Some((offset, base))
}

struct Line<'a> {
    num: usize,
    mnemonic: &'a str,
    operands: Vec<&'a str>,
}

impl<'a> Line<'a> {
    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError::new(self.num, msg)
    }

    fn expect(&self, n: usize) -> Result<(), AsmError> {
        if self.operands.len() == n {
            Ok(())
        } else {
            Err(self.err(format!(
                "`{}` expects {n} operand(s), found {}",
                self.mnemonic,
                self.operands.len()
            )))
        }
    }

    fn int_reg(&self, i: usize) -> Result<IntReg, AsmError> {
        self.operands[i].parse().map_err(|e: crate::reg::ParseRegError| self.err(e.to_string()))
    }

    fn fp_reg(&self, i: usize) -> Result<FpReg, AsmError> {
        self.operands[i].parse().map_err(|e: crate::reg::ParseRegError| self.err(e.to_string()))
    }

    fn imm(&self, i: usize) -> Result<i32, AsmError> {
        parse_i32(self.operands[i])
            .ok_or_else(|| self.err(format!("invalid immediate `{}`", self.operands[i])))
    }

    fn mem(&self, i: usize) -> Result<(i32, IntReg), AsmError> {
        parse_mem(self.operands[i])
            .ok_or_else(|| self.err(format!("invalid memory operand `{}`", self.operands[i])))
    }
}

fn alu_op(m: &str) -> Option<(AluOp, bool)> {
    let (name, imm) = match m.strip_suffix('i') {
        // `slti`/`sltui` end in `i` after stripping; careful with `srli`… the
        // mnemonic set here is exactly `Display`'s: opi forms append `i`.
        Some(base) if !base.is_empty() => (base, true),
        _ => (m, false),
    };
    let op = match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "sar" => AluOp::Sar,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        _ => return None,
    };
    Some((op, imm))
}

fn branch_cond(m: &str) -> Option<BranchCond> {
    Some(match m {
        "beq" => BranchCond::Eq,
        "bne" => BranchCond::Ne,
        "blt" => BranchCond::Lt,
        "bge" => BranchCond::Ge,
        "bltu" => BranchCond::Ltu,
        "bgeu" => BranchCond::Geu,
        _ => return None,
    })
}

fn mem_width(m: &str, prefix: &str) -> Option<MemWidth> {
    Some(match m.strip_prefix(prefix)? {
        "1" => MemWidth::B1,
        "2" => MemWidth::B2,
        "4" => MemWidth::B4,
        "8" => MemWidth::B8,
        _ => return None,
    })
}

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] (with a line number) for syntax errors, and a
/// line-zero error for link failures such as undefined labels.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // Pass 0: find `.base` so the builder starts at the right address.
    let mut base = 0u64;
    for (i, raw) in source.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if let Some(rest) = line.strip_prefix(".base") {
            base = parse_u64(rest.trim())
                .ok_or_else(|| AsmError::new(i + 1, "invalid .base address"))?;
        }
    }
    let mut b = ProgramBuilder::new(base);
    for (i, raw) in source.lines().enumerate() {
        let num = i + 1;
        let text = strip_comment(raw).trim();
        if text.is_empty() {
            continue;
        }
        if let Some(label) = text.strip_suffix(':') {
            if label.chars().any(char::is_whitespace) {
                return Err(AsmError::new(num, format!("invalid label `{label}`")));
            }
            b.label(label);
            continue;
        }
        if let Some(rest) = text.strip_prefix(".sym") {
            let mut parts = rest.split_whitespace();
            let (name, addr) = match (parts.next(), parts.next(), parts.next()) {
                (Some(n), Some(a), None) => (n, a),
                _ => return Err(AsmError::new(num, ".sym expects NAME ADDR")),
            };
            let addr = parse_u64(addr)
                .ok_or_else(|| AsmError::new(num, format!("invalid address `{addr}`")))?;
            b.def_sym(name, addr);
            continue;
        }
        if text.starts_with(".base") {
            continue; // handled in pass 0
        }
        if text == ".entry" {
            b.entry_here();
            continue;
        }
        let (mnemonic, ops) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
        let operands: Vec<&str> = ops.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        let line = Line { num, mnemonic, operands };
        emit(&mut b, &line)?;
    }
    Ok(b.build()?)
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find([';', '#']).unwrap_or(line.len());
    &line[..cut]
}

fn emit(b: &mut ProgramBuilder, line: &Line<'_>) -> Result<(), AsmError> {
    let m = line.mnemonic;
    if let Some(cond) = branch_cond(m) {
        line.expect(3)?;
        let (rs1, rs2) = (line.int_reg(0)?, line.int_reg(1)?);
        match parse_i32(line.operands[2]) {
            Some(off) => {
                b.push(crate::Inst::Branch { cond, rs1, rs2, offset: off });
            }
            None => {
                b.branch(cond, rs1, rs2, line.operands[2]);
            }
        }
        return Ok(());
    }
    if let Some(width) = mem_width(m, "ld") {
        line.expect(2)?;
        let rd = line.int_reg(0)?;
        let (offset, base) = line.mem(1)?;
        b.load(width, rd, base, offset);
        return Ok(());
    }
    if let Some(width) = mem_width(m, "st") {
        line.expect(2)?;
        let src = line.int_reg(0)?;
        let (offset, base) = line.mem(1)?;
        b.store(width, src, base, offset);
        return Ok(());
    }
    match m {
        "li" => {
            line.expect(2)?;
            let rd = line.int_reg(0)?;
            b.li(rd, line.imm(1)?);
        }
        "la" => {
            line.expect(2)?;
            let rd = line.int_reg(0)?;
            b.la(rd, line.operands[1]);
        }
        "mv" => {
            line.expect(2)?;
            b.mv(line.int_reg(0)?, line.int_reg(1)?);
        }
        "fld" => {
            line.expect(2)?;
            let fd = line.fp_reg(0)?;
            let (offset, base) = line.mem(1)?;
            b.fld(fd, base, offset);
        }
        "fst" => {
            line.expect(2)?;
            let fs = line.fp_reg(0)?;
            let (offset, base) = line.mem(1)?;
            b.fst(fs, base, offset);
        }
        "fcvt" => {
            line.expect(2)?;
            b.fcvt(line.fp_reg(0)?, line.int_reg(1)?);
        }
        "fmov" => {
            line.expect(2)?;
            b.fmov(line.int_reg(0)?, line.fp_reg(1)?);
        }
        "fadd" | "fsub" | "fmul" | "fdiv" => {
            line.expect(3)?;
            let op = match m {
                "fadd" => FpOp::Add,
                "fsub" => FpOp::Sub,
                "fmul" => FpOp::Mul,
                _ => FpOp::Div,
            };
            b.fp(op, line.fp_reg(0)?, line.fp_reg(1)?, line.fp_reg(2)?);
        }
        "clflush" => {
            line.expect(1)?;
            let (offset, base) = line.mem(0)?;
            b.flush(base, offset);
        }
        "j" | "jmp" => {
            line.expect(1)?;
            match parse_i32(line.operands[0]) {
                Some(off) => {
                    b.push(crate::Inst::Jump { offset: off });
                }
                None => {
                    b.jump(line.operands[0]);
                }
            }
        }
        "jr" => {
            line.expect(1)?;
            let (offset, base) = line.mem(0)?;
            b.jr(base, offset);
        }
        "call" => {
            line.expect(1)?;
            match parse_i32(line.operands[0]) {
                Some(off) => {
                    b.push(crate::Inst::Call { offset: off });
                }
                None => {
                    b.call(line.operands[0]);
                }
            }
        }
        "callr" => {
            line.expect(1)?;
            b.callr(line.int_reg(0)?);
        }
        "ret" => {
            line.expect(0)?;
            b.ret();
        }
        "rdcycle" => {
            line.expect(1)?;
            b.rdcycle(line.int_reg(0)?);
        }
        "nop" => {
            line.expect(0)?;
            b.nop();
        }
        "halt" => {
            line.expect(0)?;
            b.halt();
        }
        _ => {
            if let Some((op, is_imm)) = alu_op(m) {
                line.expect(3)?;
                let rd = line.int_reg(0)?;
                let rs1 = line.int_reg(1)?;
                if is_imm {
                    b.alui(op, rd, rs1, line.imm(2)?);
                } else {
                    b.alu(op, rd, rs1, line.int_reg(2)?);
                }
            } else {
                return Err(line.err(format!("unknown mnemonic `{m}`")));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            "
            .base 0x100
            start:
                li r1, 42       ; the answer
                addi r1, r1, 1  # increment
                halt
            ",
        )
        .unwrap();
        assert_eq!(p.text_base(), 0x100);
        assert_eq!(p.len(), 3);
        assert_eq!(p.symbol("start"), Some(0x100));
        assert!(matches!(p.fetch(0x100), Some(Inst::MovImm { imm: 42, .. })));
    }

    #[test]
    fn branch_to_label_and_numeric_offset() {
        let p = assemble(
            "
            loop:
                nop
                bne r1, r2, loop
                beq r1, r2, -16
            ",
        )
        .unwrap();
        match p.fetch(8) {
            Some(Inst::Branch { offset, .. }) => assert_eq!(offset, -8),
            other => panic!("unexpected {other:?}"),
        }
        match p.fetch(16) {
            Some(Inst::Branch { offset, .. }) => assert_eq!(offset, -16),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn memory_operands() {
        let p = assemble("ld1 r2, 8(r3)\nst8 r4, (r5)\nclflush -64(r6)").unwrap();
        assert!(matches!(p.fetch(0), Some(Inst::Load { width: MemWidth::B1, offset: 8, .. })));
        assert!(matches!(p.fetch(8), Some(Inst::Store { width: MemWidth::B8, offset: 0, .. })));
        assert!(matches!(p.fetch(16), Some(Inst::Flush { offset: -64, .. })));
    }

    #[test]
    fn sym_and_la() {
        let p = assemble(".sym buf 0x8000\nla r1, buf\nhalt").unwrap();
        assert!(matches!(p.fetch(0), Some(Inst::MovImm { imm: 0x8000, .. })));
        assert_eq!(p.symbol("buf"), Some(0x8000));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus r1, r2").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn undefined_label_reports_link_error() {
        let err = assemble("j nowhere").unwrap_err();
        assert_eq!(err.line(), 0);
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn wrong_operand_count() {
        let err = assemble("add r1, r2").unwrap_err();
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn alu_imm_forms() {
        let p = assemble("slti r1, r2, 5\nxori r3, r4, -1").unwrap();
        assert!(matches!(p.fetch(0), Some(Inst::AluImm { op: AluOp::Slt, imm: 5, .. })));
        assert!(matches!(p.fetch(8), Some(Inst::AluImm { op: AluOp::Xor, imm: -1, .. })));
    }

    #[test]
    fn display_output_reassembles() {
        // The assembler accepts the disassembler's instruction syntax.
        let p = assemble(
            "
            li r1, 1
            add r2, r1, r1
            ld8 r3, (r2)
            st1 r3, 4(r2)
            bgeu r3, r1, 8
            rdcycle r4
            ret
            halt
            ",
        )
        .unwrap();
        let mut src = String::new();
        for inst in p.insts() {
            src.push_str(&inst.to_string());
            src.push('\n');
        }
        let p2 = assemble(&src).unwrap();
        assert_eq!(p.insts(), p2.insts());
    }
}
