//! Predecoded micro-op metadata: the simulator's "trace cache".
//!
//! A cycle-level pipeline consults the same *static* facts about an
//! instruction on every cycle it is in flight — which registers it reads
//! and writes, whether it is a load/store/branch/serializer, which
//! functional-unit class it needs, where a direct branch goes. Re-deriving
//! those facts by pattern-matching the [`Inst`] enum at every pipeline
//! stage of every simulated cycle dominated the busy-pipeline simulation
//! cost. [`DecodedProgram`] lowers each instruction exactly **once** (at
//! program construction) into a flat, cache-friendly [`UopMeta`] table
//! indexed by `pc / INST_BYTES`; the pipeline then reads pre-resolved
//! fields instead of re-matching. The `Inst` itself stays alongside for the
//! semantics-carrying execute paths (operand evaluation, branch-condition
//! evaluation, attack/defense hooks).
//!
//! This mirrors how hardware amortizes decode: the paper's Fig. 6 front end
//! fetches from a *trace cache* of predecoded micro-ops, and the core's
//! rename/issue stages operate on decoded fields, never on raw bytes.
//!
//! ```
//! use specrun_isa::{DecodedProgram, IntReg, ProgramBuilder};
//! let r1 = IntReg::new(1).unwrap();
//! let mut b = ProgramBuilder::new(0x1000);
//! b.ld(r1, r1, 0);
//! b.halt();
//! let d = DecodedProgram::new(b.build().unwrap());
//! let (_, meta) = d.fetch(0x1000).unwrap();
//! assert!(meta.is_load() && meta.is_mem() && !meta.is_store());
//! assert!(d.fetch(0x1008).unwrap().1.is_halt());
//! ```

use crate::inst::{AluOp, FpOp, Inst, Sources, INST_BYTES};
use crate::program::Program;
use crate::reg::ArchReg;

/// Static execution-resource class of a micro-op (the functional-unit mix
/// of the paper's Table 1). The mapping is fixed at decode so issue does
/// not re-classify the instruction every cycle it retries for a free unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(u8)]
pub enum ExecClass {
    /// Integer add/logic/shift/compare, branches, moves, nops.
    IntAdd,
    /// Integer multiply.
    IntMul,
    /// Integer divide/remainder.
    IntDiv,
    /// FP add/subtract (and int→FP conversion).
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide.
    FpDiv,
    /// Load/store/flush address port (calls and returns touch the stack).
    Mem,
}

/// Control-flow class of a micro-op — the predictor classification,
/// resolved once at decode instead of per fetch cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(u8)]
pub enum CtrlClass {
    /// Not a control-flow instruction.
    None,
    /// Conditional branch (PHT-predicted).
    Conditional,
    /// Unconditional direct jump (target exact at decode).
    Direct,
    /// Indirect jump (BTB-predicted).
    Indirect,
    /// Direct or indirect call (BTB-predicted, pushes the RSB).
    Call,
    /// Return (RSB-predicted).
    Return,
}

/// Classification flag bits of a [`UopMeta`] (see the `is_*` accessors).
mod flags {
    pub const LOAD: u16 = 1 << 0;
    pub const STORE: u16 = 1 << 1;
    pub const MEM: u16 = 1 << 2;
    pub const FLUSH: u16 = 1 << 3;
    pub const NEEDS_SQ: u16 = 1 << 4;
    pub const SERIALIZING: u16 = 1 << 5;
    pub const CONTROL: u16 = 1 << 6;
    pub const COND_BRANCH: u16 = 1 << 7;
    pub const HALT: u16 = 1 << 8;
    pub const DATA_STORE: u16 = 1 << 9;
    pub const DIRECT_TARGET: u16 = 1 << 10;
}

/// Predecoded static metadata of one micro-op: everything the pipeline's
/// fetch/rename/issue/writeback stages would otherwise re-derive from the
/// [`Inst`] enum on every cycle, resolved once.
///
/// Every field agrees with the corresponding `Inst` derivation by
/// construction; `CpuConfig::predecode_check` re-derives and asserts the
/// agreement at every fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UopMeta {
    /// Renamed-at-dispatch source registers ([`Inst::sources`]).
    pub srcs: Sources,
    /// Destination register, if any ([`Inst::dest`]).
    pub dest: Option<ArchReg>,
    /// Absolute direct control-flow target ([`Inst::direct_target`]
    /// resolved against this micro-op's own PC). Meaningful only when the
    /// `DIRECT_TARGET` flag is set; use [`UopMeta::direct_target`].
    target: u64,
    /// Classification bits (see the `is_*` accessors).
    flags: u16,
    /// Functional-unit class required at issue.
    pub exec: ExecClass,
    /// Predictor classification.
    pub ctrl: CtrlClass,
    /// Memory access width in bytes: the load/store data width (stack pushes
    /// and pops are 8), the line size for `clflush` store-queue slots, 8 for
    /// non-memory micro-ops.
    pub mem_width: u8,
}

impl UopMeta {
    /// Lowers one instruction at `pc` (called once per program instruction
    /// by [`DecodedProgram::new`], and by the `predecode_check` audit).
    pub fn of(inst: &Inst, pc: u64) -> UopMeta {
        use flags::*;
        let mut f = 0u16;
        if inst.is_load() {
            f |= LOAD;
        }
        if inst.is_store() {
            f |= STORE;
        }
        if inst.is_mem() {
            f |= MEM;
        }
        if matches!(inst, Inst::Flush { .. }) {
            f |= FLUSH;
        }
        if inst.is_store() || matches!(inst, Inst::Flush { .. }) {
            f |= NEEDS_SQ;
        }
        if inst.is_serializing() {
            f |= SERIALIZING;
        }
        if inst.is_control() {
            f |= CONTROL;
        }
        if inst.is_cond_branch() {
            f |= COND_BRANCH;
        }
        if matches!(inst, Inst::Halt) {
            f |= HALT;
        }
        if matches!(inst, Inst::Store { .. } | Inst::FpStore { .. }) {
            f |= DATA_STORE;
        }
        let ctrl = match inst {
            Inst::Branch { .. } => CtrlClass::Conditional,
            Inst::Jump { .. } => CtrlClass::Direct,
            Inst::JumpInd { .. } => CtrlClass::Indirect,
            Inst::Call { .. } | Inst::CallInd { .. } => CtrlClass::Call,
            Inst::Ret => CtrlClass::Return,
            _ => CtrlClass::None,
        };
        let exec = match inst {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => match op {
                AluOp::Mul => ExecClass::IntMul,
                AluOp::Div | AluOp::Rem => ExecClass::IntDiv,
                _ => ExecClass::IntAdd,
            },
            Inst::FpAlu { op, .. } => match op {
                FpOp::Add | FpOp::Sub => ExecClass::FpAdd,
                FpOp::Mul => ExecClass::FpMul,
                FpOp::Div => ExecClass::FpDiv,
            },
            Inst::FpCvt { .. } => ExecClass::FpAdd,
            Inst::Load { .. }
            | Inst::FpLoad { .. }
            | Inst::Store { .. }
            | Inst::FpStore { .. }
            | Inst::Flush { .. }
            | Inst::Call { .. }
            | Inst::CallInd { .. }
            | Inst::Ret => ExecClass::Mem,
            _ => ExecClass::IntAdd,
        };
        let mem_width = match inst {
            Inst::Load { width, .. } | Inst::Store { width, .. } => width.bytes() as u8,
            // The line-granular clflush slot; the simulator's fixed line
            // size (all level geometries share it, see `MemConfig`).
            Inst::Flush { .. } => 64,
            // FP accesses and stack pushes/pops move 8 bytes; non-memory
            // micro-ops keep the old `load_width` default of 8.
            _ => 8,
        };
        let target = inst.direct_target(pc);
        if target.is_some() {
            f |= DIRECT_TARGET;
        }
        UopMeta {
            srcs: inst.sources(),
            dest: inst.dest(),
            target: target.unwrap_or(0),
            flags: f,
            exec,
            ctrl,
            mem_width,
        }
    }

    /// Whether this micro-op reads data memory ([`Inst::is_load`]).
    #[inline]
    pub fn is_load(&self) -> bool {
        self.flags & flags::LOAD != 0
    }

    /// Whether this micro-op writes data memory ([`Inst::is_store`]).
    #[inline]
    pub fn is_store(&self) -> bool {
        self.flags & flags::STORE != 0
    }

    /// Whether this micro-op occupies a load/store-queue slot
    /// ([`Inst::is_mem`]).
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.flags & flags::MEM != 0
    }

    /// Whether this is a `clflush`.
    #[inline]
    pub fn is_flush(&self) -> bool {
        self.flags & flags::FLUSH != 0
    }

    /// Whether dispatch must claim a store-queue slot (stores, call-pushes
    /// and flushes).
    #[inline]
    pub fn needs_sq(&self) -> bool {
        self.flags & flags::NEEDS_SQ != 0
    }

    /// Whether this is a data store (`Store`/`FpStore`) issued in two
    /// phases (address generation, then data delivery).
    #[inline]
    pub fn is_data_store(&self) -> bool {
        self.flags & flags::DATA_STORE != 0
    }

    /// Whether this micro-op issues alone at the window head
    /// ([`Inst::is_serializing`]).
    #[inline]
    pub fn is_serializing(&self) -> bool {
        self.flags & flags::SERIALIZING != 0
    }

    /// Whether this micro-op can redirect control flow
    /// ([`Inst::is_control`]).
    #[inline]
    pub fn is_control(&self) -> bool {
        self.flags & flags::CONTROL != 0
    }

    /// Whether this is a conditional branch ([`Inst::is_cond_branch`]).
    #[inline]
    pub fn is_cond_branch(&self) -> bool {
        self.flags & flags::COND_BRANCH != 0
    }

    /// Whether this micro-op halts the machine.
    #[inline]
    pub fn is_halt(&self) -> bool {
        self.flags & flags::HALT != 0
    }

    /// Pre-resolved direct control-flow target ([`Inst::direct_target`]).
    #[inline]
    pub fn direct_target(&self) -> Option<u64> {
        (self.flags & flags::DIRECT_TARGET != 0).then_some(self.target)
    }
}

/// A [`Program`] lowered once into its [`UopMeta`] table.
///
/// The table is flat and indexed by `(pc - text_base) / INST_BYTES`, so the
/// per-fetch lookup is one bounds check and two array reads.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    program: Program,
    meta: Box<[UopMeta]>,
}

impl DecodedProgram {
    /// Lowers every instruction of `program` exactly once.
    pub fn new(program: Program) -> DecodedProgram {
        let base = program.text_base();
        let meta = program
            .insts()
            .iter()
            .enumerate()
            .map(|(i, inst)| UopMeta::of(inst, base + i as u64 * INST_BYTES))
            .collect();
        DecodedProgram { program, meta }
    }

    /// The underlying program image.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The full metadata table, in layout order.
    pub fn meta(&self) -> &[UopMeta] {
        &self.meta
    }

    /// The instruction and its predecoded metadata at `pc`, or `None`
    /// outside the text image or at a misaligned PC (same domain as
    /// [`Program::fetch`]).
    #[inline]
    pub fn fetch(&self, pc: u64) -> Option<(Inst, &UopMeta)> {
        const _: () = assert!(INST_BYTES.is_power_of_two());
        let base = self.program.text_base();
        let off = pc.wrapping_sub(base);
        if pc < base || off & (INST_BYTES - 1) != 0 {
            return None;
        }
        let idx = (off / INST_BYTES) as usize;
        let inst = *self.program.insts().get(idx)?;
        Some((inst, &self.meta[idx]))
    }

    /// The metadata at `pc`, with [`DecodedProgram::fetch`]'s domain.
    #[inline]
    pub fn meta_at(&self, pc: u64) -> Option<&UopMeta> {
        self.fetch(pc).map(|(_, m)| m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::MemWidth;
    use crate::program::ProgramBuilder;
    use crate::reg::{FpReg, IntReg};

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    fn decode_one(inst: Inst) -> UopMeta {
        UopMeta::of(&inst, 0x1000)
    }

    #[test]
    fn classification_flags_match_inst_queries() {
        let cases = [
            Inst::Nop,
            Inst::Halt,
            Inst::Ret,
            Inst::RdCycle { rd: r(1) },
            Inst::Load { width: MemWidth::B4, rd: r(2), base: r(3), offset: 8 },
            Inst::Store { width: MemWidth::B2, src: r(2), base: r(3), offset: -8 },
            Inst::FpStore { fs: FpReg::new(1).unwrap(), base: r(4), offset: 0 },
            Inst::Flush { base: r(5), offset: 0 },
            Inst::Call { offset: 64 },
            Inst::CallInd { base: r(6) },
            Inst::Branch { cond: crate::BranchCond::Eq, rs1: r(1), rs2: r(2), offset: 16 },
            Inst::Jump { offset: -16 },
            Inst::JumpInd { base: r(7), offset: 0 },
        ];
        for inst in cases {
            let m = decode_one(inst);
            assert_eq!(m.is_load(), inst.is_load(), "{inst}");
            assert_eq!(m.is_store(), inst.is_store(), "{inst}");
            assert_eq!(m.is_mem(), inst.is_mem(), "{inst}");
            assert_eq!(m.is_control(), inst.is_control(), "{inst}");
            assert_eq!(m.is_cond_branch(), inst.is_cond_branch(), "{inst}");
            assert_eq!(m.is_serializing(), inst.is_serializing(), "{inst}");
            assert_eq!(m.is_halt(), matches!(inst, Inst::Halt), "{inst}");
            assert_eq!(m.srcs, inst.sources(), "{inst}");
            assert_eq!(m.dest, inst.dest(), "{inst}");
            assert_eq!(m.direct_target(), inst.direct_target(0x1000), "{inst}");
            assert_eq!(
                m.needs_sq(),
                inst.is_store() || matches!(inst, Inst::Flush { .. }),
                "{inst}"
            );
        }
    }

    #[test]
    fn direct_targets_are_pre_resolved_per_pc() {
        let mut b = ProgramBuilder::new(0x2000);
        b.label("head");
        b.nop();
        b.jump("head");
        b.halt();
        let d = DecodedProgram::new(b.build().unwrap());
        let (_, jmp) = d.fetch(0x2008).unwrap();
        assert_eq!(jmp.ctrl, CtrlClass::Direct);
        assert_eq!(jmp.direct_target(), Some(0x2000));
        assert_eq!(d.meta_at(0x2000).unwrap().direct_target(), None);
    }

    #[test]
    fn fetch_domain_matches_program_fetch() {
        let mut b = ProgramBuilder::new(0x1000);
        b.nop();
        b.halt();
        let p = b.build().unwrap();
        let d = DecodedProgram::new(p.clone());
        for pc in [0x0ff8, 0x1000, 0x1004, 0x1008, 0x1010, u64::MAX] {
            assert_eq!(d.fetch(pc).map(|(i, _)| i), p.fetch(pc), "pc {pc:#x}");
        }
    }

    #[test]
    fn exec_classes_cover_the_fu_mix() {
        assert_eq!(
            decode_one(Inst::Alu { op: AluOp::Mul, rd: r(1), rs1: r(2), rs2: r(3) }).exec,
            ExecClass::IntMul
        );
        assert_eq!(
            decode_one(Inst::AluImm { op: AluOp::Rem, rd: r(1), rs1: r(2), imm: 3 }).exec,
            ExecClass::IntDiv
        );
        let f0 = FpReg::new(0).unwrap();
        assert_eq!(
            decode_one(Inst::FpAlu { op: FpOp::Div, fd: f0, fs1: f0, fs2: f0 }).exec,
            ExecClass::FpDiv
        );
        assert_eq!(decode_one(Inst::Ret).exec, ExecClass::Mem);
        assert_eq!(decode_one(Inst::Nop).exec, ExecClass::IntAdd);
    }

    #[test]
    fn mem_widths() {
        assert_eq!(
            decode_one(Inst::Load { width: MemWidth::B2, rd: r(1), base: r(2), offset: 0 })
                .mem_width,
            2
        );
        assert_eq!(decode_one(Inst::Ret).mem_width, 8);
        assert_eq!(decode_one(Inst::Flush { base: r(1), offset: 0 }).mem_width, 64);
        assert_eq!(
            decode_one(Inst::Store { width: MemWidth::B1, src: r(1), base: r(2), offset: 0 })
                .mem_width,
            1
        );
    }
}
