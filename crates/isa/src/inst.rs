//! The micro-op instruction set.
//!
//! Instructions are fixed-width (8 bytes in the encoded form, see
//! [`crate::encode`]) and PC arithmetic is always in units of
//! [`INST_BYTES`]. The set is deliberately small: it is the subset of an
//! x86-like machine that the SPECRUN proof of concept (paper Fig. 8) and the
//! SPEC2006-like workload kernels require — ALU ops, loads/stores with
//! base+offset addressing, trainable conditional branches, indirect
//! jumps/calls/returns (for the BTB/RSB Spectre variants), `clflush` and a
//! serializing cycle-counter read standing in for `rdtscp`.

use core::fmt;

use crate::reg::{ArchReg, FpReg, IntReg};

/// Size of one encoded instruction in bytes; PCs advance by this much.
pub const INST_BYTES: u64 = 8;

/// Integer ALU operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Logical shift right (shift amount taken modulo 64).
    Shr,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Sar,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; division by zero yields `u64::MAX`.
    Div,
    /// Unsigned remainder; remainder by zero yields the dividend.
    Rem,
    /// Signed set-less-than (1 if `rs1 < rs2`, else 0).
    Slt,
    /// Unsigned set-less-than.
    Sltu,
}

impl AluOp {
    /// Evaluates the operation on two 64-bit operands.
    ///
    /// ```
    /// use specrun_isa::AluOp;
    /// assert_eq!(AluOp::Add.eval(7, u64::MAX), 6); // wrapping
    /// assert_eq!(AluOp::Div.eval(10, 0), u64::MAX);
    /// assert_eq!(AluOp::Slt.eval(-1i64 as u64, 0), 1);
    /// ```
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32),
            AluOp::Shr => a.wrapping_shr(b as u32),
            AluOp::Sar => (a as i64).wrapping_shr(b as u32) as u64,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Rem => a.checked_rem(b).unwrap_or(a),
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
            AluOp::Sltu => u64::from(a < b),
        }
    }

    /// Lowercase mnemonic, e.g. `"add"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Floating-point ALU operation kinds (IEEE-754 double precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl FpOp {
    /// Evaluates the operation on two doubles stored as raw bits.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        let (x, y) = (f64::from_bits(a), f64::from_bits(b));
        let r = match self {
            FpOp::Add => x + y,
            FpOp::Sub => x - y,
            FpOp::Mul => x * y,
            FpOp::Div => x / y,
        };
        r.to_bits()
    }

    /// Lowercase mnemonic, e.g. `"fadd"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpOp::Add => "fadd",
            FpOp::Sub => "fsub",
            FpOp::Mul => "fmul",
            FpOp::Div => "fdiv",
        }
    }
}

/// Condition codes for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    /// Evaluates the condition on two operands.
    ///
    /// ```
    /// use specrun_isa::BranchCond;
    /// assert!(BranchCond::Ltu.eval(3, 5));
    /// assert!(!BranchCond::Lt.eval(3, u64::MAX)); // -1 signed
    /// ```
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }

    /// Lowercase mnemonic suffix, e.g. `"eq"` for `beq`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "eq",
            BranchCond::Ne => "ne",
            BranchCond::Lt => "lt",
            BranchCond::Ge => "ge",
            BranchCond::Ltu => "ltu",
            BranchCond::Geu => "geu",
        }
    }
}

/// Access width of a memory operation in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MemWidth {
    /// One byte.
    B1,
    /// Two bytes.
    B2,
    /// Four bytes.
    B4,
    /// Eight bytes.
    B8,
}

impl MemWidth {
    /// Width in bytes (1, 2, 4 or 8).
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

/// One micro-op.
///
/// All loads zero-extend. `Call` pushes the return address to the memory
/// stack through [`IntReg::SP`] (so it can be overwritten by a store, as the
/// SpectreRSB variant requires) while the microarchitectural return-stack
/// buffer predicts `Ret` targets.
///
/// Field conventions: `rd`/`fd` destination, `rs*`/`fs*` sources, `base` +
/// `offset` the effective address, `imm` a sign-extended 32-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[allow(missing_docs)] // field meanings are uniform; see enum-level docs
pub enum Inst {
    /// `rd = op(rs1, rs2)`.
    Alu { op: AluOp, rd: IntReg, rs1: IntReg, rs2: IntReg },
    /// `rd = op(rs1, sign_extend(imm))`.
    AluImm { op: AluOp, rd: IntReg, rs1: IntReg, imm: i32 },
    /// `rd = sign_extend(imm)`.
    MovImm { rd: IntReg, imm: i32 },
    /// `fd = op(fs1, fs2)` on doubles.
    FpAlu { op: FpOp, fd: FpReg, fs1: FpReg, fs2: FpReg },
    /// `fd = (double)(int64)rs1` — integer to double conversion.
    FpCvt { fd: FpReg, rs1: IntReg },
    /// `rd = raw_bits(fs1)` — move double bits to an integer register.
    FpMov { rd: IntReg, fs1: FpReg },
    /// `rd = zero_extend(mem[rs(base) + offset])`.
    Load { width: MemWidth, rd: IntReg, base: IntReg, offset: i32 },
    /// `fd = mem[rs(base) + offset]` as raw double bits (8 bytes).
    FpLoad { fd: FpReg, base: IntReg, offset: i32 },
    /// `mem[rs(base) + offset] = low_bytes(src)`.
    Store { width: MemWidth, src: IntReg, base: IntReg, offset: i32 },
    /// `mem[rs(base) + offset] = raw_bits(fs)` (8 bytes).
    FpStore { fs: FpReg, base: IntReg, offset: i32 },
    /// Evicts the cache line containing `rs(base) + offset` from the whole
    /// hierarchy (the `clflush` the paper added to Multi2Sim).
    Flush { base: IntReg, offset: i32 },
    /// Conditional branch to `pc + offset` when `cond(rs1, rs2)` holds.
    Branch { cond: BranchCond, rs1: IntReg, rs2: IntReg, offset: i32 },
    /// Unconditional direct jump to `pc + offset`.
    Jump { offset: i32 },
    /// Indirect jump to `rs(base) + offset` (target predicted by the BTB).
    JumpInd { base: IntReg, offset: i32 },
    /// Direct call: `sp -= 8; mem[sp] = pc + 8; pc += offset` (pushes the
    /// return-stack-buffer entry).
    Call { offset: i32 },
    /// Indirect call through a register.
    CallInd { base: IntReg },
    /// Return: `pc = mem[sp]; sp += 8` (target predicted by the RSB).
    Ret,
    /// Serializing read of the cycle counter into `rd` (models
    /// `lfence; rdtscp`): issues only once it is the oldest instruction.
    RdCycle { rd: IntReg },
    /// No operation.
    Nop,
    /// Stops the machine.
    Halt,
}

/// Up to three source registers of an instruction.
pub type Sources = [Option<ArchReg>; 3];

impl Inst {
    /// The destination register, if the instruction writes one.
    ///
    /// Writes to `r0` are reported as `None` (they are architectural no-ops).
    /// `Call`/`Ret` destinations include the stack-pointer update.
    pub fn dest(&self) -> Option<ArchReg> {
        let keep = |r: IntReg| (!r.is_zero()).then_some(ArchReg::Int(r));
        match *self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::MovImm { rd, .. }
            | Inst::FpMov { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::RdCycle { rd } => keep(rd),
            Inst::FpAlu { fd, .. } | Inst::FpCvt { fd, .. } | Inst::FpLoad { fd, .. } => {
                Some(ArchReg::Fp(fd))
            }
            Inst::Call { .. } | Inst::CallInd { .. } | Inst::Ret => Some(ArchReg::Int(IntReg::SP)),
            _ => None,
        }
    }

    /// The source registers read by the instruction.
    ///
    /// Reads of `r0` are omitted (its value is constant-zero).
    pub fn sources(&self) -> Sources {
        let mut out: Sources = [None, None, None];
        let mut n = 0;
        let push_int = |r: IntReg, out: &mut Sources, n: &mut usize| {
            if !r.is_zero() {
                out[*n] = Some(ArchReg::Int(r));
                *n += 1;
            }
        };
        match *self {
            Inst::Alu { rs1, rs2, .. } => {
                push_int(rs1, &mut out, &mut n);
                push_int(rs2, &mut out, &mut n);
            }
            Inst::AluImm { rs1, .. } | Inst::FpCvt { rs1, .. } => {
                push_int(rs1, &mut out, &mut n);
            }
            Inst::FpAlu { fs1, fs2, .. } => {
                out[0] = Some(ArchReg::Fp(fs1));
                out[1] = Some(ArchReg::Fp(fs2));
            }
            Inst::FpMov { fs1, .. } => out[0] = Some(ArchReg::Fp(fs1)),
            Inst::Load { base, .. }
            | Inst::FpLoad { base, .. }
            | Inst::Flush { base, .. }
            | Inst::JumpInd { base, .. } => {
                push_int(base, &mut out, &mut n);
            }
            Inst::CallInd { base } => {
                push_int(base, &mut out, &mut n);
                push_int(IntReg::SP, &mut out, &mut n);
            }
            Inst::Store { src, base, .. } => {
                push_int(src, &mut out, &mut n);
                push_int(base, &mut out, &mut n);
            }
            Inst::FpStore { fs, base, .. } => {
                out[0] = Some(ArchReg::Fp(fs));
                n = 1;
                push_int(base, &mut out, &mut n);
            }
            Inst::Branch { rs1, rs2, .. } => {
                push_int(rs1, &mut out, &mut n);
                push_int(rs2, &mut out, &mut n);
            }
            Inst::Call { .. } => push_int(IntReg::SP, &mut out, &mut n),
            Inst::Ret => push_int(IntReg::SP, &mut out, &mut n),
            Inst::MovImm { .. }
            | Inst::Jump { .. }
            | Inst::RdCycle { .. }
            | Inst::Nop
            | Inst::Halt => {}
        }
        out
    }

    /// Whether this instruction can redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. }
                | Inst::Jump { .. }
                | Inst::JumpInd { .. }
                | Inst::Call { .. }
                | Inst::CallInd { .. }
                | Inst::Ret
        )
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Whether this instruction reads data memory (`Ret` pops the stack).
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::FpLoad { .. } | Inst::Ret)
    }

    /// Whether this instruction writes data memory (`Call` pushes the
    /// return address).
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. } | Inst::FpStore { .. } | Inst::Call { .. } | Inst::CallInd { .. }
        )
    }

    /// Whether this instruction occupies a load/store-queue slot.
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store() || matches!(self, Inst::Flush { .. })
    }

    /// Whether the instruction must issue alone at the head of the window
    /// (only [`Inst::RdCycle`], the serializing timer read).
    pub fn is_serializing(&self) -> bool {
        matches!(self, Inst::RdCycle { .. })
    }

    /// Direct control-flow target for `pc`, if statically known.
    pub fn direct_target(&self, pc: u64) -> Option<u64> {
        match *self {
            Inst::Branch { offset, .. } | Inst::Jump { offset } | Inst::Call { offset } => {
                Some(pc.wrapping_add_signed(i64::from(offset)))
            }
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Inst::MovImm { rd, imm } => write!(f, "li {rd}, {imm}"),
            Inst::FpAlu { op, fd, fs1, fs2 } => {
                write!(f, "{} {fd}, {fs1}, {fs2}", op.mnemonic())
            }
            Inst::FpCvt { fd, rs1 } => write!(f, "fcvt {fd}, {rs1}"),
            Inst::FpMov { rd, fs1 } => write!(f, "fmov {rd}, {fs1}"),
            Inst::Load { width, rd, base, offset } => {
                write!(f, "ld{} {rd}, {offset}({base})", width.bytes())
            }
            Inst::FpLoad { fd, base, offset } => write!(f, "fld {fd}, {offset}({base})"),
            Inst::Store { width, src, base, offset } => {
                write!(f, "st{} {src}, {offset}({base})", width.bytes())
            }
            Inst::FpStore { fs, base, offset } => write!(f, "fst {fs}, {offset}({base})"),
            Inst::Flush { base, offset } => write!(f, "clflush {offset}({base})"),
            Inst::Branch { cond, rs1, rs2, offset } => {
                write!(f, "b{} {rs1}, {rs2}, {offset}", cond.mnemonic())
            }
            Inst::Jump { offset } => write!(f, "j {offset}"),
            Inst::JumpInd { base, offset } => write!(f, "jr {offset}({base})"),
            Inst::Call { offset } => write!(f, "call {offset}"),
            Inst::CallInd { base } => write!(f, "callr {base}"),
            Inst::Ret => write!(f, "ret"),
            Inst::RdCycle { rd } => write!(f, "rdcycle {rd}"),
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Sub.eval(3, 5), (-2i64) as u64);
        assert_eq!(AluOp::Shl.eval(1, 8), 256);
        assert_eq!(AluOp::Sar.eval((-16i64) as u64, 2), (-4i64) as u64);
        assert_eq!(AluOp::Rem.eval(10, 3), 1);
        assert_eq!(AluOp::Rem.eval(10, 0), 10);
        assert_eq!(AluOp::Sltu.eval(1, u64::MAX), 1);
    }

    #[test]
    fn fp_eval_basics() {
        let two = 2.0f64.to_bits();
        let three = 3.0f64.to_bits();
        assert_eq!(f64::from_bits(FpOp::Add.eval(two, three)), 5.0);
        assert_eq!(f64::from_bits(FpOp::Mul.eval(two, three)), 6.0);
        assert_eq!(f64::from_bits(FpOp::Div.eval(three, two)), 1.5);
    }

    #[test]
    fn zero_register_filtered_from_defs_and_uses() {
        let i = Inst::Alu { op: AluOp::Add, rd: IntReg::ZERO, rs1: r(0), rs2: r(5) };
        assert_eq!(i.dest(), None);
        let srcs = i.sources();
        assert_eq!(srcs[0], Some(ArchReg::Int(r(5))));
        assert_eq!(srcs[1], None);
    }

    #[test]
    fn call_ret_touch_sp_and_memory() {
        let call = Inst::Call { offset: 64 };
        assert!(call.is_store());
        assert_eq!(call.dest(), Some(ArchReg::Int(IntReg::SP)));
        assert_eq!(call.sources()[0], Some(ArchReg::Int(IntReg::SP)));
        let callr = Inst::CallInd { base: r(3) };
        assert_eq!(callr.sources()[0], Some(ArchReg::Int(r(3))));
        assert_eq!(callr.sources()[1], Some(ArchReg::Int(IntReg::SP)), "indirect call reads SP");
        let ret = Inst::Ret;
        assert!(ret.is_load());
        assert!(ret.is_control());
    }

    #[test]
    fn classification() {
        assert!(
            Inst::Branch { cond: BranchCond::Lt, rs1: r(1), rs2: r(2), offset: 8 }.is_cond_branch()
        );
        assert!(Inst::Flush { base: r(1), offset: 0 }.is_mem());
        assert!(!Inst::Flush { base: r(1), offset: 0 }.is_load());
        assert!(Inst::RdCycle { rd: r(1) }.is_serializing());
        assert!(!Inst::Nop.is_control());
    }

    #[test]
    fn direct_targets() {
        let b = Inst::Branch { cond: BranchCond::Eq, rs1: r(1), rs2: r(2), offset: -16 };
        assert_eq!(b.direct_target(0x1010), Some(0x1000));
        assert_eq!(Inst::Ret.direct_target(0x1000), None);
    }

    #[test]
    fn display_smoke() {
        assert_eq!(
            Inst::Load { width: MemWidth::B1, rd: r(2), base: r(3), offset: 4 }.to_string(),
            "ld1 r2, 4(r3)"
        );
        assert_eq!(Inst::MovImm { rd: r(7), imm: -3 }.to_string(), "li r7, -3");
        assert_eq!(
            Inst::Branch { cond: BranchCond::Geu, rs1: r(1), rs2: r(0), offset: 8 }.to_string(),
            "bgeu r1, r0, 8"
        );
    }
}
