//! # specrun-isa
//!
//! The micro-op instruction set used by the SPECRUN runahead-processor
//! simulator: register names, the [`Inst`] enum, a lossless 8-byte binary
//! [encoding](crate::encode()), a label-resolving [`ProgramBuilder`] and a
//! small [text assembler](assemble).
//!
//! The ISA is the minimal x86-like substrate the paper's proof of concept
//! (Fig. 8) needs: base+offset loads/stores, trainable conditional branches,
//! indirect jumps/calls and returns (for the SpectreBTB/RSB variants),
//! `clflush`, and a serializing cycle-counter read standing in for `rdtscp`.
//! Structured `if` blocks additionally record [`BranchScope`] metadata
//! (`B_ns`/`B_ne` in the paper's §6) consumed by the secure-runahead taint
//! tracker.
//!
//! ## Example
//!
//! ```
//! use specrun_isa::{BranchCond, IntReg, ProgramBuilder};
//!
//! let x = IntReg::new(1).unwrap();
//! let bound = IntReg::new(2).unwrap();
//! let mut b = ProgramBuilder::new(0x1000);
//! b.li(x, 10);
//! b.li(bound, 16);
//! b.if_block(BranchCond::Lt, x, bound, |b| {
//!     b.addi(x, x, 1);
//! });
//! b.halt();
//! let program = b.build()?;
//! assert_eq!(program.entry(), 0x1000);
//! # Ok::<(), specrun_isa::ProgramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod decoded;
mod encode;
mod inst;
mod program;
mod reg;

pub use asm::{assemble, AsmError};
pub use decoded::{CtrlClass, DecodedProgram, ExecClass, UopMeta};
pub use encode::{decode, encode, DecodeError, EncodedInst};
pub use inst::{AluOp, BranchCond, FpOp, Inst, MemWidth, Sources, INST_BYTES};
pub use program::{BranchScope, Program, ProgramBuilder, ProgramError};
pub use reg::{ArchReg, FpReg, IntReg, ParseRegError, NUM_FP_REGS, NUM_INT_REGS};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{
        assemble, AluOp, ArchReg, BranchCond, FpOp, FpReg, Inst, IntReg, MemWidth, Program,
        ProgramBuilder, INST_BYTES,
    };
}
