//! Programs and the label-resolving program builder.
//!
//! A [`Program`] is an immutable instruction image placed at a base address,
//! together with the *branch-scope metadata* (`B_ns`/`B_ne` start and end
//! addresses of every structured branch) that the paper's secure-runahead
//! defense (§6) assumes the compiler communicates to the processor.
//!
//! [`ProgramBuilder`] provides labelled assembly with mnemonic helper
//! methods and structured `if`-block helpers that emit the scope metadata
//! automatically:
//!
//! ```
//! use specrun_isa::{BranchCond, IntReg, ProgramBuilder};
//! let r1 = IntReg::new(1).unwrap();
//! let r2 = IntReg::new(2).unwrap();
//! let mut b = ProgramBuilder::new(0x1000);
//! b.li(r1, 3);
//! b.li(r2, 5);
//! // if (r1 < r2) { r1 = r1 + 1; }
//! b.if_block(BranchCond::Lt, r1, r2, |b| {
//!     b.addi(r1, r1, 1);
//! });
//! b.halt();
//! let prog = b.build()?;
//! assert_eq!(prog.branch_scopes().len(), 1);
//! # Ok::<(), specrun_isa::ProgramError>(())
//! ```

use core::fmt;
use std::collections::BTreeMap;

use crate::inst::{AluOp, BranchCond, FpOp, Inst, MemWidth, INST_BYTES};
use crate::reg::{FpReg, IntReg};

/// Start/end addresses of a structured branch body, the `B_ns`/`B_ne`
/// metadata consumed by the secure-runahead taint tracker (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BranchScope {
    /// PC of the guarding conditional branch (`B_ns`).
    pub branch_pc: u64,
    /// First PC after the guarded body (`B_ne`).
    pub end_pc: u64,
}

/// An assembled, immutable program image.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Program {
    text_base: u64,
    entry: u64,
    insts: Vec<Inst>,
    branch_scopes: Vec<BranchScope>,
    symbols: BTreeMap<String, u64>,
}

impl Program {
    /// Lowest PC of the program text.
    pub fn text_base(&self) -> u64 {
        self.text_base
    }

    /// First PC past the program text.
    pub fn text_end(&self) -> u64 {
        self.text_base + self.insts.len() as u64 * INST_BYTES
    }

    /// Entry-point PC (defaults to [`Program::text_base`]).
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at `pc`, or `None` outside the text image or at a
    /// misaligned PC.
    pub fn fetch(&self, pc: u64) -> Option<Inst> {
        if pc < self.text_base || (pc - self.text_base) % INST_BYTES != 0 {
            return None;
        }
        let idx = (pc - self.text_base) / INST_BYTES;
        self.insts.get(idx as usize).copied()
    }

    /// All instructions in layout order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Branch-scope metadata emitted by the structured-if builder helpers.
    pub fn branch_scopes(&self) -> &[BranchScope] {
        &self.branch_scopes
    }

    /// Address of a label or data symbol defined during building.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// All symbols (labels and data symbols) with their addresses.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u64)> {
        self.symbols.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// A human-readable listing with one `pc: inst` line per instruction.
    pub fn disassemble(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let labels: BTreeMap<u64, &str> =
            self.symbols.iter().map(|(k, v)| (*v, k.as_str())).collect();
        for (i, inst) in self.insts.iter().enumerate() {
            let pc = self.text_base + i as u64 * INST_BYTES;
            if let Some(name) = labels.get(&pc) {
                let _ = writeln!(out, "{name}:");
            }
            let _ = writeln!(out, "  {pc:#08x}: {inst}");
        }
        out
    }
}

/// Errors produced while building a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label or symbol was defined twice.
    DuplicateLabel(String),
    /// A resolved branch offset does not fit in the 32-bit immediate.
    OffsetOutOfRange {
        /// The target label.
        label: String,
        /// The out-of-range distance or address.
        offset: i64,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            ProgramError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            ProgramError::OffsetOutOfRange { label, offset } => {
                write!(f, "branch offset to `{label}` out of range ({offset})")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

#[derive(Debug, Clone, Copy)]
enum FixupKind {
    /// Patch the `offset` field with `target - inst_pc`.
    PcRelative,
    /// Patch a `MovImm` immediate with the absolute target address.
    Absolute,
}

#[derive(Debug, Clone)]
struct Fixup {
    inst_index: usize,
    label: String,
    kind: FixupKind,
}

/// Incremental assembler for [`Program`]s with labels, mnemonic helpers and
/// structured control flow.
///
/// Branch helper methods taking a label accept forward references; they are
/// resolved by [`ProgramBuilder::build`].
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    text_base: u64,
    entry: Option<u64>,
    insts: Vec<Inst>,
    branch_scopes: Vec<BranchScope>,
    symbols: BTreeMap<String, u64>,
    fixups: Vec<Fixup>,
    anon: u64,
}

impl ProgramBuilder {
    /// Creates a builder placing the program text at `text_base`.
    pub fn new(text_base: u64) -> ProgramBuilder {
        ProgramBuilder {
            text_base,
            entry: None,
            insts: Vec::new(),
            branch_scopes: Vec::new(),
            symbols: BTreeMap::new(),
            fixups: Vec::new(),
            anon: 0,
        }
    }

    /// PC of the *next* instruction to be appended.
    pub fn here(&self) -> u64 {
        self.text_base + self.insts.len() as u64 * INST_BYTES
    }

    /// Number of instructions appended so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Appends a raw instruction and returns its PC.
    pub fn push(&mut self, inst: Inst) -> u64 {
        let pc = self.here();
        self.insts.push(inst);
        pc
    }

    /// Defines `name` at the current PC.
    ///
    /// Duplicate definitions are reported by [`ProgramBuilder::build`].
    pub fn label(&mut self, name: &str) -> &mut ProgramBuilder {
        let pc = self.here();
        self.define(name, pc);
        self
    }

    /// Defines a data symbol at an arbitrary address (not part of the text).
    pub fn def_sym(&mut self, name: &str, addr: u64) -> &mut ProgramBuilder {
        self.define(name, addr);
        self
    }

    fn define(&mut self, name: &str, addr: u64) {
        // Duplicates are detected at build time so `define` itself stays
        // infallible; remember the first definition and flag the clash.
        if self.symbols.contains_key(name) {
            self.fixups.push(Fixup {
                inst_index: usize::MAX,
                label: name.to_owned(),
                kind: FixupKind::PcRelative,
            });
        } else {
            self.symbols.insert(name.to_owned(), addr);
        }
    }

    /// Marks the entry point at the current PC (defaults to the text base).
    pub fn entry_here(&mut self) -> &mut ProgramBuilder {
        self.entry = Some(self.here());
        self
    }

    fn fresh_label(&mut self, prefix: &str) -> String {
        self.anon += 1;
        format!("__{prefix}_{}", self.anon)
    }

    // ---- ALU helpers -----------------------------------------------------

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> u64 {
        self.push(Inst::Alu { op: AluOp::Add, rd, rs1, rs2 })
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> u64 {
        self.push(Inst::Alu { op: AluOp::Sub, rd, rs1, rs2 })
    }

    /// `rd = rs1 * rs2`.
    pub fn mul(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> u64 {
        self.push(Inst::Alu { op: AluOp::Mul, rd, rs1, rs2 })
    }

    /// `rd = op(rs1, rs2)` for any [`AluOp`].
    pub fn alu(&mut self, op: AluOp, rd: IntReg, rs1: IntReg, rs2: IntReg) -> u64 {
        self.push(Inst::Alu { op, rd, rs1, rs2 })
    }

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: IntReg, rs1: IntReg, imm: i32) -> u64 {
        self.push(Inst::AluImm { op: AluOp::Add, rd, rs1, imm })
    }

    /// `rd = op(rs1, imm)` for any [`AluOp`].
    pub fn alui(&mut self, op: AluOp, rd: IntReg, rs1: IntReg, imm: i32) -> u64 {
        self.push(Inst::AluImm { op, rd, rs1, imm })
    }

    /// `rd = rs1 << imm`.
    pub fn shli(&mut self, rd: IntReg, rs1: IntReg, imm: i32) -> u64 {
        self.push(Inst::AluImm { op: AluOp::Shl, rd, rs1, imm })
    }

    /// `rd = imm` (sign-extended 32-bit immediate).
    pub fn li(&mut self, rd: IntReg, imm: i32) -> u64 {
        self.push(Inst::MovImm { rd, imm })
    }

    /// Loads an arbitrary 64-bit constant using `rd` only (up to seven μops,
    /// one `li` when the value sign-extends from 32 bits).
    pub fn li64(&mut self, rd: IntReg, value: u64) -> u64 {
        let pc = self.here();
        if let Ok(imm) = i32::try_from(value as i64) {
            self.li(rd, imm);
            return pc;
        }
        let chunks = [
            ((value >> 48) & 0xffff) as i32,
            ((value >> 32) & 0xffff) as i32,
            ((value >> 16) & 0xffff) as i32,
            (value & 0xffff) as i32,
        ];
        self.li(rd, chunks[0]);
        for &chunk in &chunks[1..] {
            self.shli(rd, rd, 16);
            if chunk != 0 {
                self.alui(AluOp::Or, rd, rd, chunk);
            }
        }
        pc
    }

    /// Loads the address of a label or data symbol (resolved at build time).
    ///
    /// Addresses must fit in `i32` (the simulator's address-space convention
    /// is the low 2 GiB); larger addresses are reported as
    /// [`ProgramError::OffsetOutOfRange`] by [`ProgramBuilder::build`].
    pub fn la(&mut self, rd: IntReg, symbol: &str) -> u64 {
        let idx = self.insts.len();
        self.fixups.push(Fixup {
            inst_index: idx,
            label: symbol.to_owned(),
            kind: FixupKind::Absolute,
        });
        self.push(Inst::MovImm { rd, imm: 0 })
    }

    /// `rd = rs` (register move pseudo-op).
    pub fn mv(&mut self, rd: IntReg, rs: IntReg) -> u64 {
        self.addi(rd, rs, 0)
    }

    // ---- floating point --------------------------------------------------

    /// `fd = op(fs1, fs2)`.
    pub fn fp(&mut self, op: FpOp, fd: FpReg, fs1: FpReg, fs2: FpReg) -> u64 {
        self.push(Inst::FpAlu { op, fd, fs1, fs2 })
    }

    /// `fd = (double)rs1`.
    pub fn fcvt(&mut self, fd: FpReg, rs1: IntReg) -> u64 {
        self.push(Inst::FpCvt { fd, rs1 })
    }

    /// `rd = bits(fs1)`.
    pub fn fmov(&mut self, rd: IntReg, fs1: FpReg) -> u64 {
        self.push(Inst::FpMov { rd, fs1 })
    }

    /// `fd = mem[base + offset]` (8 bytes).
    pub fn fld(&mut self, fd: FpReg, base: IntReg, offset: i32) -> u64 {
        self.push(Inst::FpLoad { fd, base, offset })
    }

    /// `mem[base + offset] = fs` (8 bytes).
    pub fn fst(&mut self, fs: FpReg, base: IntReg, offset: i32) -> u64 {
        self.push(Inst::FpStore { fs, base, offset })
    }

    // ---- memory ----------------------------------------------------------

    /// `rd = zx(mem[base + offset])` with the given width.
    pub fn load(&mut self, width: MemWidth, rd: IntReg, base: IntReg, offset: i32) -> u64 {
        self.push(Inst::Load { width, rd, base, offset })
    }

    /// 8-byte load.
    pub fn ld(&mut self, rd: IntReg, base: IntReg, offset: i32) -> u64 {
        self.load(MemWidth::B8, rd, base, offset)
    }

    /// 1-byte load.
    pub fn ldb(&mut self, rd: IntReg, base: IntReg, offset: i32) -> u64 {
        self.load(MemWidth::B1, rd, base, offset)
    }

    /// `mem[base + offset] = src` with the given width.
    pub fn store(&mut self, width: MemWidth, src: IntReg, base: IntReg, offset: i32) -> u64 {
        self.push(Inst::Store { width, src, base, offset })
    }

    /// 8-byte store.
    pub fn sd(&mut self, src: IntReg, base: IntReg, offset: i32) -> u64 {
        self.store(MemWidth::B8, src, base, offset)
    }

    /// `clflush` of the line containing `base + offset`.
    pub fn flush(&mut self, base: IntReg, offset: i32) -> u64 {
        self.push(Inst::Flush { base, offset })
    }

    // ---- control flow ----------------------------------------------------

    /// Conditional branch to `label` when `cond(rs1, rs2)`.
    pub fn branch(&mut self, cond: BranchCond, rs1: IntReg, rs2: IntReg, label: &str) -> u64 {
        let idx = self.insts.len();
        self.fixups.push(Fixup {
            inst_index: idx,
            label: label.to_owned(),
            kind: FixupKind::PcRelative,
        });
        self.push(Inst::Branch { cond, rs1, rs2, offset: 0 })
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: IntReg, rs2: IntReg, label: &str) -> u64 {
        self.branch(BranchCond::Eq, rs1, rs2, label)
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: IntReg, rs2: IntReg, label: &str) -> u64 {
        self.branch(BranchCond::Ne, rs1, rs2, label)
    }

    /// `blt rs1, rs2, label` (signed).
    pub fn blt(&mut self, rs1: IntReg, rs2: IntReg, label: &str) -> u64 {
        self.branch(BranchCond::Lt, rs1, rs2, label)
    }

    /// `bge rs1, rs2, label` (signed).
    pub fn bge(&mut self, rs1: IntReg, rs2: IntReg, label: &str) -> u64 {
        self.branch(BranchCond::Ge, rs1, rs2, label)
    }

    /// `bgeu rs1, rs2, label` (unsigned).
    pub fn bgeu(&mut self, rs1: IntReg, rs2: IntReg, label: &str) -> u64 {
        self.branch(BranchCond::Geu, rs1, rs2, label)
    }

    /// `bltu rs1, rs2, label` (unsigned).
    pub fn bltu(&mut self, rs1: IntReg, rs2: IntReg, label: &str) -> u64 {
        self.branch(BranchCond::Ltu, rs1, rs2, label)
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: &str) -> u64 {
        let idx = self.insts.len();
        self.fixups.push(Fixup {
            inst_index: idx,
            label: label.to_owned(),
            kind: FixupKind::PcRelative,
        });
        self.push(Inst::Jump { offset: 0 })
    }

    /// Indirect jump to `base + offset`.
    pub fn jr(&mut self, base: IntReg, offset: i32) -> u64 {
        self.push(Inst::JumpInd { base, offset })
    }

    /// Direct call to `label`.
    pub fn call(&mut self, label: &str) -> u64 {
        let idx = self.insts.len();
        self.fixups.push(Fixup {
            inst_index: idx,
            label: label.to_owned(),
            kind: FixupKind::PcRelative,
        });
        self.push(Inst::Call { offset: 0 })
    }

    /// Indirect call through `base`.
    pub fn callr(&mut self, base: IntReg) -> u64 {
        self.push(Inst::CallInd { base })
    }

    /// Return through the stack (predicted by the RSB).
    pub fn ret(&mut self) -> u64 {
        self.push(Inst::Ret)
    }

    // ---- misc ------------------------------------------------------------

    /// Serializing cycle-counter read.
    pub fn rdcycle(&mut self, rd: IntReg) -> u64 {
        self.push(Inst::RdCycle { rd })
    }

    /// Single no-op.
    pub fn nop(&mut self) -> u64 {
        self.push(Inst::Nop)
    }

    /// A slide of `n` no-ops (used by the §5.3 transient-window experiments).
    pub fn nops(&mut self, n: usize) -> u64 {
        let pc = self.here();
        for _ in 0..n {
            self.nop();
        }
        pc
    }

    /// Machine halt.
    pub fn halt(&mut self) -> u64 {
        self.push(Inst::Halt)
    }

    // ---- structured control flow ------------------------------------------

    /// Emits `if cond(rs1, rs2) { body }` and records its [`BranchScope`].
    ///
    /// Compiled as a *fall-through body*: the guard is the inverted branch to
    /// the end label, so a predictor trained "not taken" speculatively runs
    /// the body — the shape every Spectre-PHT gadget in the paper relies on.
    pub fn if_block(
        &mut self,
        cond: BranchCond,
        rs1: IntReg,
        rs2: IntReg,
        body: impl FnOnce(&mut ProgramBuilder),
    ) -> u64 {
        let end = self.fresh_label("if_end");
        let inverted = match cond {
            BranchCond::Eq => BranchCond::Ne,
            BranchCond::Ne => BranchCond::Eq,
            BranchCond::Lt => BranchCond::Ge,
            BranchCond::Ge => BranchCond::Lt,
            BranchCond::Ltu => BranchCond::Geu,
            BranchCond::Geu => BranchCond::Ltu,
        };
        let branch_pc = self.branch(inverted, rs1, rs2, &end);
        body(self);
        self.label(&end);
        let end_pc = self.here();
        self.branch_scopes.push(BranchScope { branch_pc, end_pc });
        branch_pc
    }

    /// Emits a bounded counted loop: `for idx in 0..count { body }`.
    ///
    /// `idx` holds the loop counter and must not be clobbered by the body.
    /// The assembler temporary `r30` holds the comparison result, so bodies
    /// must not rely on it either.
    pub fn for_loop(
        &mut self,
        idx: IntReg,
        count: i32,
        body: impl FnOnce(&mut ProgramBuilder),
    ) -> u64 {
        let head = self.fresh_label("loop_head");
        let done = self.fresh_label("loop_done");
        let tmp = IntReg::new(30).expect("r30 exists");
        let first_pc = self.li(idx, 0);
        self.label(&head);
        self.alui(AluOp::Slt, tmp, idx, count);
        self.beq(tmp, IntReg::ZERO, &done); // idx >= count → exit
        body(self);
        self.addi(idx, idx, 1);
        self.jump(&head);
        self.label(&done);
        first_pc
    }

    /// Resolves all fixups and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] for undefined or duplicate labels and for
    /// branch targets whose offset exceeds the 32-bit immediate range.
    pub fn build(&self) -> Result<Program, ProgramError> {
        let mut insts = self.insts.clone();
        for fixup in &self.fixups {
            if fixup.inst_index == usize::MAX {
                return Err(ProgramError::DuplicateLabel(fixup.label.clone()));
            }
            let target = *self
                .symbols
                .get(&fixup.label)
                .ok_or_else(|| ProgramError::UndefinedLabel(fixup.label.clone()))?;
            let pc = self.text_base + fixup.inst_index as u64 * INST_BYTES;
            let value: i64 = match fixup.kind {
                FixupKind::PcRelative => target.wrapping_sub(pc) as i64,
                FixupKind::Absolute => target as i64,
            };
            let imm = i32::try_from(value).map_err(|_| ProgramError::OffsetOutOfRange {
                label: fixup.label.clone(),
                offset: value,
            })?;
            let inst = &mut insts[fixup.inst_index];
            match inst {
                Inst::Branch { offset, .. }
                | Inst::Jump { offset }
                | Inst::Call { offset }
                | Inst::JumpInd { offset, .. } => *offset = imm,
                Inst::MovImm { imm: dst, .. } => *dst = imm,
                other => unreachable!("fixup applied to non-relocatable {other}"),
            }
        }
        Ok(Program {
            text_base: self.text_base,
            entry: self.entry.unwrap_or(self.text_base),
            insts,
            branch_scopes: self.branch_scopes.clone(),
            symbols: self.symbols.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    #[test]
    fn fetch_respects_alignment_and_bounds() {
        let mut b = ProgramBuilder::new(0x1000);
        b.nop();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.fetch(0x1000), Some(Inst::Nop));
        assert_eq!(p.fetch(0x1008), Some(Inst::Halt));
        assert_eq!(p.fetch(0x1004), None); // misaligned
        assert_eq!(p.fetch(0x1010), None); // past end
        assert_eq!(p.fetch(0x0ff8), None); // before base
    }

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new(0);
        b.label("start");
        b.beq(r(1), r(2), "end"); // forward
        b.nop();
        b.jump("start"); // backward
        b.label("end");
        b.halt();
        let p = b.build().unwrap();
        match p.fetch(0).unwrap() {
            Inst::Branch { offset, .. } => assert_eq!(offset, 24),
            other => panic!("expected branch, got {other}"),
        }
        match p.fetch(16).unwrap() {
            Inst::Jump { offset } => assert_eq!(offset, -16),
            other => panic!("expected jump, got {other}"),
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new(0);
        b.jump("nowhere");
        assert_eq!(b.build().unwrap_err(), ProgramError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut b = ProgramBuilder::new(0);
        b.label("x");
        b.nop();
        b.label("x");
        assert_eq!(b.build().unwrap_err(), ProgramError::DuplicateLabel("x".into()));
    }

    #[test]
    fn la_resolves_data_symbols() {
        let mut b = ProgramBuilder::new(0x2000);
        b.def_sym("array1", 0x3eef_0000);
        b.la(r(3), "array1");
        b.halt();
        let p = b.build().unwrap();
        match p.fetch(0x2000).unwrap() {
            Inst::MovImm { rd, imm } => {
                assert_eq!(rd, r(3));
                assert_eq!(imm as u32 as u64, 0x3eef_0000);
            }
            other => panic!("expected li, got {other}"),
        }
    }

    #[test]
    fn la_rejects_addresses_above_2_gib() {
        let mut b = ProgramBuilder::new(0);
        b.def_sym("high", 0xbeef_0000);
        b.la(r(3), "high");
        assert!(matches!(b.build(), Err(ProgramError::OffsetOutOfRange { .. })));
    }

    #[test]
    fn if_block_records_scope_and_inverts_condition() {
        let mut b = ProgramBuilder::new(0);
        b.if_block(BranchCond::Lt, r(1), r(2), |b| {
            b.nop();
            b.nop();
        });
        b.halt();
        let p = b.build().unwrap();
        let scope = p.branch_scopes()[0];
        assert_eq!(scope.branch_pc, 0);
        assert_eq!(scope.end_pc, 24); // branch + 2 nops
        match p.fetch(0).unwrap() {
            Inst::Branch { cond, offset, .. } => {
                assert_eq!(cond, BranchCond::Ge); // inverted
                assert_eq!(offset, 24);
            }
            other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn nested_if_blocks_record_two_scopes() {
        let mut b = ProgramBuilder::new(0);
        b.if_block(BranchCond::Lt, r(1), r(2), |b| {
            b.nop();
            b.if_block(BranchCond::Lt, r(3), r(4), |b| {
                b.nop();
            });
        });
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.branch_scopes().len(), 2);
        let outer = p.branch_scopes()[1];
        let inner = p.branch_scopes()[0];
        assert!(outer.branch_pc < inner.branch_pc);
        assert!(inner.end_pc <= outer.end_pc);
    }

    #[test]
    fn entry_defaults_to_base_and_can_move() {
        let mut b = ProgramBuilder::new(0x100);
        b.nop();
        b.entry_here();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.entry(), 0x108);
    }

    #[test]
    fn nops_emits_exactly_n() {
        let mut b = ProgramBuilder::new(0);
        b.nops(123);
        b.halt();
        assert_eq!(b.build().unwrap().len(), 124);
    }

    #[test]
    fn disassemble_contains_labels_and_pcs() {
        let mut b = ProgramBuilder::new(0x40);
        b.label("main");
        b.li(r(1), 7);
        b.halt();
        let text = b.build().unwrap().disassemble();
        assert!(text.contains("main:"));
        assert!(text.contains("li r1, 7"));
        assert!(text.contains("0x000040"));
    }
}
