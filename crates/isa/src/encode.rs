//! Binary instruction encoding.
//!
//! Every instruction encodes to exactly [`INST_BYTES`] bytes:
//!
//! ```text
//! byte 0      opcode
//! byte 1      sub-operation (ALU op / FP op / condition / width)
//! byte 2      rd / fd / store-src
//! byte 3      rs1 / base
//! byte 4      rs2 / fs2            (register formats only)
//! bytes 4..8  imm32, little endian (immediate formats only)
//! ```
//!
//! The encoding exists so the instruction stream has a concrete memory
//! footprint (the L1 I-cache in the CPU model is indexed by real PC bytes)
//! and round-trips losslessly:
//!
//! ```
//! use specrun_isa::{encode, decode, Inst};
//! let word = encode(&Inst::Nop);
//! assert_eq!(decode(&word).unwrap(), Inst::Nop);
//! ```

use core::fmt;

use crate::inst::{AluOp, BranchCond, FpOp, Inst, MemWidth, INST_BYTES};
use crate::reg::{FpReg, IntReg};

/// An encoded instruction word.
pub type EncodedInst = [u8; INST_BYTES as usize];

mod opcode {
    pub const NOP: u8 = 0x00;
    pub const HALT: u8 = 0x01;
    pub const ALU: u8 = 0x02;
    pub const ALU_IMM: u8 = 0x03;
    pub const MOV_IMM: u8 = 0x04;
    pub const FP_ALU: u8 = 0x05;
    pub const FP_CVT: u8 = 0x06;
    pub const FP_MOV: u8 = 0x07;
    pub const LOAD: u8 = 0x08;
    pub const FP_LOAD: u8 = 0x09;
    pub const STORE: u8 = 0x0a;
    pub const FP_STORE: u8 = 0x0b;
    pub const FLUSH: u8 = 0x0c;
    pub const BRANCH: u8 = 0x0d;
    pub const JUMP: u8 = 0x0e;
    pub const JUMP_IND: u8 = 0x0f;
    pub const CALL: u8 = 0x10;
    pub const CALL_IND: u8 = 0x11;
    pub const RET: u8 = 0x12;
    pub const RD_CYCLE: u8 = 0x13;
}

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Shl => 5,
        AluOp::Shr => 6,
        AluOp::Sar => 7,
        AluOp::Mul => 8,
        AluOp::Div => 9,
        AluOp::Rem => 10,
        AluOp::Slt => 11,
        AluOp::Sltu => 12,
    }
}

fn alu_from(code: u8) -> Option<AluOp> {
    Some(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Shl,
        6 => AluOp::Shr,
        7 => AluOp::Sar,
        8 => AluOp::Mul,
        9 => AluOp::Div,
        10 => AluOp::Rem,
        11 => AluOp::Slt,
        12 => AluOp::Sltu,
        _ => return None,
    })
}

fn fp_code(op: FpOp) -> u8 {
    match op {
        FpOp::Add => 0,
        FpOp::Sub => 1,
        FpOp::Mul => 2,
        FpOp::Div => 3,
    }
}

fn fp_from(code: u8) -> Option<FpOp> {
    Some(match code {
        0 => FpOp::Add,
        1 => FpOp::Sub,
        2 => FpOp::Mul,
        3 => FpOp::Div,
        _ => return None,
    })
}

fn cond_code(c: BranchCond) -> u8 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
        BranchCond::Ltu => 4,
        BranchCond::Geu => 5,
    }
}

fn cond_from(code: u8) -> Option<BranchCond> {
    Some(match code {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::Ltu,
        5 => BranchCond::Geu,
        _ => return None,
    })
}

fn width_code(w: MemWidth) -> u8 {
    match w {
        MemWidth::B1 => 0,
        MemWidth::B2 => 1,
        MemWidth::B4 => 2,
        MemWidth::B8 => 3,
    }
}

fn width_from(code: u8) -> Option<MemWidth> {
    Some(match code {
        0 => MemWidth::B1,
        1 => MemWidth::B2,
        2 => MemWidth::B4,
        3 => MemWidth::B8,
        _ => return None,
    })
}

fn put_imm(word: &mut EncodedInst, imm: i32) {
    word[4..8].copy_from_slice(&imm.to_le_bytes());
}

fn get_imm(word: &EncodedInst) -> i32 {
    i32::from_le_bytes([word[4], word[5], word[6], word[7]])
}

/// Encodes an instruction into its 8-byte form.
pub fn encode(inst: &Inst) -> EncodedInst {
    let mut w: EncodedInst = [0; 8];
    match *inst {
        Inst::Nop => w[0] = opcode::NOP,
        Inst::Halt => w[0] = opcode::HALT,
        Inst::Alu { op, rd, rs1, rs2 } => {
            w[0] = opcode::ALU;
            w[1] = alu_code(op);
            w[2] = rd.index() as u8;
            w[3] = rs1.index() as u8;
            w[4] = rs2.index() as u8;
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            w[0] = opcode::ALU_IMM;
            w[1] = alu_code(op);
            w[2] = rd.index() as u8;
            w[3] = rs1.index() as u8;
            put_imm(&mut w, imm);
        }
        Inst::MovImm { rd, imm } => {
            w[0] = opcode::MOV_IMM;
            w[2] = rd.index() as u8;
            put_imm(&mut w, imm);
        }
        Inst::FpAlu { op, fd, fs1, fs2 } => {
            w[0] = opcode::FP_ALU;
            w[1] = fp_code(op);
            w[2] = fd.index() as u8;
            w[3] = fs1.index() as u8;
            w[4] = fs2.index() as u8;
        }
        Inst::FpCvt { fd, rs1 } => {
            w[0] = opcode::FP_CVT;
            w[2] = fd.index() as u8;
            w[3] = rs1.index() as u8;
        }
        Inst::FpMov { rd, fs1 } => {
            w[0] = opcode::FP_MOV;
            w[2] = rd.index() as u8;
            w[3] = fs1.index() as u8;
        }
        Inst::Load { width, rd, base, offset } => {
            w[0] = opcode::LOAD;
            w[1] = width_code(width);
            w[2] = rd.index() as u8;
            w[3] = base.index() as u8;
            put_imm(&mut w, offset);
        }
        Inst::FpLoad { fd, base, offset } => {
            w[0] = opcode::FP_LOAD;
            w[2] = fd.index() as u8;
            w[3] = base.index() as u8;
            put_imm(&mut w, offset);
        }
        Inst::Store { width, src, base, offset } => {
            w[0] = opcode::STORE;
            w[1] = width_code(width);
            w[2] = src.index() as u8;
            w[3] = base.index() as u8;
            put_imm(&mut w, offset);
        }
        Inst::FpStore { fs, base, offset } => {
            w[0] = opcode::FP_STORE;
            w[2] = fs.index() as u8;
            w[3] = base.index() as u8;
            put_imm(&mut w, offset);
        }
        Inst::Flush { base, offset } => {
            w[0] = opcode::FLUSH;
            w[3] = base.index() as u8;
            put_imm(&mut w, offset);
        }
        Inst::Branch { cond, rs1, rs2, offset } => {
            w[0] = opcode::BRANCH;
            w[1] = cond_code(cond);
            w[2] = rs1.index() as u8;
            w[3] = rs2.index() as u8;
            put_imm(&mut w, offset);
        }
        Inst::Jump { offset } => {
            w[0] = opcode::JUMP;
            put_imm(&mut w, offset);
        }
        Inst::JumpInd { base, offset } => {
            w[0] = opcode::JUMP_IND;
            w[3] = base.index() as u8;
            put_imm(&mut w, offset);
        }
        Inst::Call { offset } => {
            w[0] = opcode::CALL;
            put_imm(&mut w, offset);
        }
        Inst::CallInd { base } => {
            w[0] = opcode::CALL_IND;
            w[3] = base.index() as u8;
        }
        Inst::Ret => w[0] = opcode::RET,
        Inst::RdCycle { rd } => {
            w[0] = opcode::RD_CYCLE;
            w[2] = rd.index() as u8;
        }
    }
    w
}

/// Error produced by [`decode`] on a malformed instruction word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    word: EncodedInst,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:02x?}", self.word)
    }
}

impl std::error::Error for DecodeError {}

/// Decodes an 8-byte instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode, sub-operation or register fields
/// are out of range.
pub fn decode(word: &EncodedInst) -> Result<Inst, DecodeError> {
    let err = || DecodeError { word: *word };
    let int = |b: u8| IntReg::new(b).ok_or_else(err);
    let fp = |b: u8| FpReg::new(b).ok_or_else(err);
    let inst = match word[0] {
        opcode::NOP => Inst::Nop,
        opcode::HALT => Inst::Halt,
        opcode::ALU => Inst::Alu {
            op: alu_from(word[1]).ok_or_else(err)?,
            rd: int(word[2])?,
            rs1: int(word[3])?,
            rs2: int(word[4])?,
        },
        opcode::ALU_IMM => Inst::AluImm {
            op: alu_from(word[1]).ok_or_else(err)?,
            rd: int(word[2])?,
            rs1: int(word[3])?,
            imm: get_imm(word),
        },
        opcode::MOV_IMM => Inst::MovImm { rd: int(word[2])?, imm: get_imm(word) },
        opcode::FP_ALU => Inst::FpAlu {
            op: fp_from(word[1]).ok_or_else(err)?,
            fd: fp(word[2])?,
            fs1: fp(word[3])?,
            fs2: fp(word[4])?,
        },
        opcode::FP_CVT => Inst::FpCvt { fd: fp(word[2])?, rs1: int(word[3])? },
        opcode::FP_MOV => Inst::FpMov { rd: int(word[2])?, fs1: fp(word[3])? },
        opcode::LOAD => Inst::Load {
            width: width_from(word[1]).ok_or_else(err)?,
            rd: int(word[2])?,
            base: int(word[3])?,
            offset: get_imm(word),
        },
        opcode::FP_LOAD => {
            Inst::FpLoad { fd: fp(word[2])?, base: int(word[3])?, offset: get_imm(word) }
        }
        opcode::STORE => Inst::Store {
            width: width_from(word[1]).ok_or_else(err)?,
            src: int(word[2])?,
            base: int(word[3])?,
            offset: get_imm(word),
        },
        opcode::FP_STORE => {
            Inst::FpStore { fs: fp(word[2])?, base: int(word[3])?, offset: get_imm(word) }
        }
        opcode::FLUSH => Inst::Flush { base: int(word[3])?, offset: get_imm(word) },
        opcode::BRANCH => Inst::Branch {
            cond: cond_from(word[1]).ok_or_else(err)?,
            rs1: int(word[2])?,
            rs2: int(word[3])?,
            offset: get_imm(word),
        },
        opcode::JUMP => Inst::Jump { offset: get_imm(word) },
        opcode::JUMP_IND => Inst::JumpInd { base: int(word[3])?, offset: get_imm(word) },
        opcode::CALL => Inst::Call { offset: get_imm(word) },
        opcode::CALL_IND => Inst::CallInd { base: int(word[3])? },
        opcode::RET => Inst::Ret,
        opcode::RD_CYCLE => Inst::RdCycle { rd: int(word[2])? },
        _ => return Err(err()),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    #[test]
    fn nop_is_all_zero_word() {
        assert_eq!(encode(&Inst::Nop), [0u8; 8]);
    }

    #[test]
    fn rejects_bad_opcode() {
        let mut w = [0u8; 8];
        w[0] = 0xff;
        assert!(decode(&w).is_err());
    }

    #[test]
    fn rejects_bad_register() {
        let mut w = encode(&Inst::MovImm { rd: r(1), imm: 0 });
        w[2] = 32; // out of range int reg
        assert!(decode(&w).is_err());
    }

    #[test]
    fn rejects_bad_subop() {
        let mut w = encode(&Inst::Alu { op: AluOp::Add, rd: r(1), rs1: r(2), rs2: r(3) });
        w[1] = 200;
        assert!(decode(&w).is_err());
    }

    #[test]
    fn negative_immediates_round_trip() {
        let i = Inst::AluImm { op: AluOp::Add, rd: r(4), rs1: r(4), imm: -123456 };
        assert_eq!(decode(&encode(&i)).unwrap(), i);
    }

    #[test]
    fn exhaustive_opcode_round_trip() {
        let fp = |i: u8| FpReg::new(i).unwrap();
        let samples = [
            Inst::Nop,
            Inst::Halt,
            Inst::Alu { op: AluOp::Xor, rd: r(1), rs1: r(2), rs2: r(3) },
            Inst::AluImm { op: AluOp::Shl, rd: r(9), rs1: r(9), imm: 63 },
            Inst::MovImm { rd: r(31), imm: i32::MIN },
            Inst::FpAlu { op: FpOp::Div, fd: fp(0), fs1: fp(1), fs2: fp(2) },
            Inst::FpCvt { fd: fp(3), rs1: r(7) },
            Inst::FpMov { rd: r(8), fs1: fp(4) },
            Inst::Load { width: MemWidth::B1, rd: r(10), base: r(11), offset: 4096 },
            Inst::FpLoad { fd: fp(5), base: r(12), offset: -8 },
            Inst::Store { width: MemWidth::B8, src: r(13), base: r(14), offset: 0 },
            Inst::FpStore { fs: fp(6), base: r(15), offset: 16 },
            Inst::Flush { base: r(16), offset: 64 },
            Inst::Branch { cond: BranchCond::Geu, rs1: r(17), rs2: r(18), offset: -800 },
            Inst::Jump { offset: 8000 },
            Inst::JumpInd { base: r(19), offset: 0 },
            Inst::Call { offset: 256 },
            Inst::CallInd { base: r(20) },
            Inst::Ret,
            Inst::RdCycle { rd: r(21) },
        ];
        for inst in samples {
            assert_eq!(decode(&encode(&inst)).unwrap(), inst, "round trip of {inst}");
        }
    }
}
