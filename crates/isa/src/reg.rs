//! Architectural register names.
//!
//! The ISA exposes 32 integer registers (`r0`–`r31`, with `r0` hardwired to
//! zero and `r31` used as the stack pointer by [`Inst::Call`]/[`Inst::Ret`])
//! and 16 floating-point registers (`f0`–`f15`).
//!
//! [`Inst::Call`]: crate::Inst::Call
//! [`Inst::Ret`]: crate::Inst::Ret

use core::fmt;
use std::str::FromStr;

/// Number of architectural integer registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of architectural floating-point registers.
pub const NUM_FP_REGS: usize = 16;

/// An architectural integer register (`r0`–`r31`).
///
/// `r0` always reads zero and writes to it are discarded, which gives gadget
/// builders a free discard target. `r31` is the stack pointer used implicitly
/// by call/return instructions.
///
/// ```
/// use specrun_isa::IntReg;
/// let r = IntReg::new(5).unwrap();
/// assert_eq!(r.to_string(), "r5");
/// assert_eq!(IntReg::ZERO.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IntReg(u8);

impl IntReg {
    /// The hardwired-zero register `r0`.
    pub const ZERO: IntReg = IntReg(0);
    /// The stack pointer `r31`, used implicitly by `Call`/`Ret`.
    pub const SP: IntReg = IntReg(31);

    /// Creates an integer register from its index.
    ///
    /// Returns `None` if `index >= 32`.
    pub fn new(index: u8) -> Option<IntReg> {
        (usize::from(index) < NUM_INT_REGS).then_some(IntReg(index))
    }

    /// The register index in `0..32`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Whether this is the hardwired-zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An architectural floating-point register (`f0`–`f15`).
///
/// Values are IEEE-754 doubles stored as raw bits.
///
/// ```
/// use specrun_isa::FpReg;
/// assert_eq!(FpReg::new(3).unwrap().to_string(), "f3");
/// assert!(FpReg::new(16).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FpReg(u8);

impl FpReg {
    /// Creates a floating-point register from its index.
    ///
    /// Returns `None` if `index >= 16`.
    pub fn new(index: u8) -> Option<FpReg> {
        (usize::from(index) < NUM_FP_REGS).then_some(FpReg(index))
    }

    /// The register index in `0..16`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Either kind of architectural register; the key type used by register
/// renaming in the CPU model.
///
/// ```
/// use specrun_isa::{ArchReg, IntReg};
/// let a = ArchReg::Int(IntReg::SP);
/// assert_eq!(a.to_string(), "r31");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ArchReg {
    /// An integer register.
    Int(IntReg),
    /// A floating-point register.
    Fp(FpReg),
}

impl ArchReg {
    /// A dense index over all architectural registers (ints first).
    pub fn flat_index(self) -> usize {
        match self {
            ArchReg::Int(r) => r.index(),
            ArchReg::Fp(r) => NUM_INT_REGS + r.index(),
        }
    }

    /// Total number of architectural registers across both classes.
    pub const COUNT: usize = NUM_INT_REGS + NUM_FP_REGS;
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchReg::Int(r) => r.fmt(f),
            ArchReg::Fp(r) => r.fmt(f),
        }
    }
}

impl From<IntReg> for ArchReg {
    fn from(r: IntReg) -> ArchReg {
        ArchReg::Int(r)
    }
}

impl From<FpReg> for ArchReg {
    fn from(r: FpReg) -> ArchReg {
        ArchReg::Fp(r)
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl ParseRegError {
    pub(crate) fn new(text: &str) -> ParseRegError {
        ParseRegError { text: text.to_owned() }
    }
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for IntReg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<IntReg, ParseRegError> {
        match s {
            "zero" => return Ok(IntReg::ZERO),
            "sp" => return Ok(IntReg::SP),
            _ => {}
        }
        s.strip_prefix('r')
            .and_then(|n| n.parse::<u8>().ok())
            .and_then(IntReg::new)
            .ok_or_else(|| ParseRegError::new(s))
    }
}

impl FromStr for FpReg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<FpReg, ParseRegError> {
        s.strip_prefix('f')
            .and_then(|n| n.parse::<u8>().ok())
            .and_then(FpReg::new)
            .ok_or_else(|| ParseRegError::new(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_reg_bounds() {
        assert!(IntReg::new(31).is_some());
        assert!(IntReg::new(32).is_none());
        assert_eq!(IntReg::new(0), Some(IntReg::ZERO));
    }

    #[test]
    fn fp_reg_bounds() {
        assert!(FpReg::new(15).is_some());
        assert!(FpReg::new(16).is_none());
    }

    #[test]
    fn zero_register_identity() {
        assert!(IntReg::ZERO.is_zero());
        assert!(!IntReg::SP.is_zero());
    }

    #[test]
    fn display_round_trip() {
        for i in 0..32u8 {
            let r = IntReg::new(i).unwrap();
            assert_eq!(r.to_string().parse::<IntReg>().unwrap(), r);
        }
        for i in 0..16u8 {
            let r = FpReg::new(i).unwrap();
            assert_eq!(r.to_string().parse::<FpReg>().unwrap(), r);
        }
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("sp".parse::<IntReg>().unwrap(), IntReg::SP);
        assert_eq!("zero".parse::<IntReg>().unwrap(), IntReg::ZERO);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("r32".parse::<IntReg>().is_err());
        assert!("x1".parse::<IntReg>().is_err());
        assert!("f16".parse::<FpReg>().is_err());
        assert!("".parse::<IntReg>().is_err());
    }

    #[test]
    fn flat_index_is_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..32u8 {
            assert!(seen.insert(ArchReg::Int(IntReg::new(i).unwrap()).flat_index()));
        }
        for i in 0..16u8 {
            assert!(seen.insert(ArchReg::Fp(FpReg::new(i).unwrap()).flat_index()));
        }
        assert_eq!(seen.len(), ArchReg::COUNT);
        assert!(seen.iter().all(|&i| i < ArchReg::COUNT));
    }
}
