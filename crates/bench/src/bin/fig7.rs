//! Thin alias for `specrun-lab run fig7 --no-artifacts` (Fig. 7: runahead IPC on the
//! kernel suite, full fidelity). The experiment itself lives in the
//! `specrun-lab` scenario registry.

fn main() {
    specrun_lab::cli::legacy_main("fig7")
}
