//! Regenerates Fig. 7: normalized IPC, no-runahead vs runahead, for the six
//! SPEC2006-like kernels.
//!
//! The paper reports an average improvement of 11%; this harness prints the
//! per-kernel normalized IPC pairs and the geometric mean.

use specrun_workloads::{compare, fig7_suite, geomean_speedup};

fn main() {
    println!("Fig. 7: standardized performance (IPC) comparison");
    println!("kernel,no_runahead,runahead,speedup,runahead_entries");
    let mut results = Vec::new();
    for workload in fig7_suite() {
        let c = compare(&workload, 50_000_000);
        let (base_norm, ra_norm) = c.normalized_ipc();
        println!(
            "{},{:.3},{:.3},{:.3},{}",
            c.name,
            base_norm,
            ra_norm,
            c.speedup(),
            c.runahead.runahead_entries
        );
        results.push(c);
    }
    let mean = geomean_speedup(&results);
    println!("geomean,1.000,{mean:.3},{mean:.3},-");
    println!();
    println!(
        "paper: runahead improves every benchmark, mean +11%; measured mean {:+.1}%",
        (mean - 1.0) * 100.0
    );
}
