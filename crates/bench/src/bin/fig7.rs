//! Regenerates Fig. 7: normalized IPC, no-runahead vs runahead, for the six
//! SPEC2006-like kernels. All twelve simulations fan out over the host's
//! cores through the parallel trial harness.
//!
//! The paper reports an average improvement of 11%; this harness prints the
//! per-kernel normalized IPC pairs and the geometric mean.

use specrun_workloads::ipc::compare_parallel;
use specrun_workloads::{fig7_suite, geomean_speedup};

fn main() {
    println!("Fig. 7: standardized performance (IPC) comparison");
    println!("kernel,no_runahead,runahead,speedup,runahead_entries");
    let suite = fig7_suite();
    let results = compare_parallel(&suite, 50_000_000, 0);
    for c in &results {
        let (base_norm, ra_norm) = c.normalized_ipc();
        println!(
            "{},{:.3},{:.3},{:.3},{}",
            c.name,
            base_norm,
            ra_norm,
            c.speedup(),
            c.runahead.runahead_entries
        );
    }
    let mean = geomean_speedup(&results);
    println!("geomean,1.000,{mean:.3},{mean:.3},-");
    println!();
    println!(
        "paper: runahead improves every benchmark, mean +11%; measured mean {:+.1}%",
        (mean - 1.0) * 100.0
    );
}
