//! Thin alias for `specrun-lab run table1 --no-artifacts` (Table 1: the machine
//! configuration). The experiment itself lives in the `specrun-lab`
//! scenario registry.

fn main() {
    specrun_lab::cli::legacy_main("table1")
}
