//! Regenerates Table 1: the basic configuration of the processor.

use specrun_cpu::CpuConfig;

fn main() {
    let c = CpuConfig::default();
    println!("Table 1: The basic configuration of the processor");
    println!("{:-<66}", "");
    println!("{:<18} Parameter", "Component");
    println!("{:-<66}", "");
    println!("{:<18} {} GHz, out-of-order", "Core", c.freq_ghz);
    println!("{:<18} {}-wide fetch/decode/dispatch/commit", "Processor width", c.width);
    println!("{:<18} {} front-end stages", "Pipeline depth", c.frontend_stages);
    println!("{:<18} two-level adaptive predictor", "Branch predictor");
    println!(
        "{:<18} {} int add ({} cycle), {} int mult ({} cycle),",
        "Functional units",
        c.fu.int_add.count,
        c.fu.int_add.latency,
        c.fu.int_mul.count,
        c.fu.int_mul.latency
    );
    println!(
        "{:<18} {} int div ({} cycle), {} fp add ({} cycle),",
        "", c.fu.int_div.count, c.fu.int_div.latency, c.fu.fp_add.count, c.fu.fp_add.latency
    );
    println!(
        "{:<18} {} fp mult ({} cycle), {} fp div ({} cycle)",
        "", c.fu.fp_mul.count, c.fu.fp_mul.latency, c.fu.fp_div.count, c.fu.fp_div.latency
    );
    println!("{:<18} {} int (64 bit), {} fp (64 bit)", "Register file", c.int_prf, c.fp_prf);
    println!("{:<18} {} entries", "ROB", c.rob_entries);
    println!(
        "{:<18} i ({}), load ({}), store ({})",
        "Queue", c.iq_entries, c.lq_entries, c.sq_entries
    );
    let cache = |cc: &specrun_mem::CacheConfig| {
        format!("{}KB, {} way, {} cycle", cc.size_bytes / 1024, cc.ways, cc.hit_latency)
    };
    println!("{:<18} {}", "L1 I-cache", cache(&c.mem.l1i));
    println!("{:<18} {}", "L1 D-cache", cache(&c.mem.l1d));
    println!("{:<18} {}", "L2 cache", cache(&c.mem.l2));
    println!(
        "{:<18} {}MB, {} way, {} cycle",
        "L3 cache",
        c.mem.l3.size_bytes / (1024 * 1024),
        c.mem.l3.ways,
        c.mem.l3.hit_latency
    );
    println!(
        "{:<18} request-based contention model, {} cycle",
        "Memory", c.mem.dram.latency
    );
}
