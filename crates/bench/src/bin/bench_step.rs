//! Thin alias for `specrun-lab perf`: the simulator-throughput benchmark
//! and perf-regression gate. Emits `BENCH_step.json`; honours the legacy
//! `SPECRUN_BENCH_QUICK` / `SPECRUN_BENCH_BASELINE` /
//! `SPECRUN_BENCH_GATE_MAX_DROP` environment variables and additionally
//! accepts the `perf` subcommand flags (`--quick`, `--baseline PATH`,
//! `--baseline-from-git`, `--max-drop F`). The baseline is read before the
//! report is written, so gating against the committed `BENCH_step.json`
//! in place is safe.

use specrun_lab::perf::PerfOptions;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match PerfOptions::from_env().apply_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    std::process::exit(specrun_lab::perf::run(&opts))
}
