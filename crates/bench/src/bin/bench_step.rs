//! Simulator-throughput benchmark, the perf-trajectory anchor tracked by
//! CI: emits `BENCH_step.json` with cycles-simulated-per-second on fixed
//! kernels (idle-cycle fast-forward off vs on) and the thread-scaling of a
//! Fig. 9-style multi-trial attack sweep.
//!
//! ```sh
//! cargo run --release -p specrun-bench --bin bench_step            # full
//! SPECRUN_BENCH_QUICK=1 cargo run --release -p specrun-bench --bin bench_step
//! ```

use std::time::Instant;

use specrun::attack::{run_pht_sweep, SweepConfig};
use specrun_bench::BenchReport;
use specrun_cpu::CpuConfig;
use specrun_workloads::harness;
use specrun_workloads::ipc::run_workload;
use specrun_workloads::kernels;
use specrun_workloads::Workload;

struct KernelResult {
    cycles: u64,
    naive_secs: f64,
    ff_secs: f64,
}

fn measure_kernel(w: &Workload, base: CpuConfig, max_cycles: u64) -> KernelResult {
    let mut naive_cfg = base.clone();
    naive_cfg.fast_forward = false;
    let mut ff_cfg = base;
    ff_cfg.fast_forward = true;

    let t = Instant::now();
    let naive = run_workload(w, naive_cfg, max_cycles);
    let naive_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let ff = run_workload(w, ff_cfg, max_cycles);
    let ff_secs = t.elapsed().as_secs_f64();

    assert_eq!(
        (naive.cycles, naive.committed),
        (ff.cycles, ff.committed),
        "fast-forward must be architecturally invisible on {}",
        w.name
    );
    KernelResult { cycles: ff.cycles, naive_secs, ff_secs }
}

fn main() {
    let quick = std::env::var("SPECRUN_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let iters = if quick { 400 } else { 3000 };
    let sweep_trials = if quick { 8 } else { 24 };

    let mut report = BenchReport::new("step");
    report.note("quick_mode", if quick { "yes" } else { "no" });

    println!("== simulator throughput: naive stepping vs idle-cycle fast-forward ==");
    println!("kernel,machine,cycles,naive_Mcyc_per_s,ff_Mcyc_per_s,speedup");
    let chase = kernels::pointer_chase(iters);
    let mcf = kernels::mcf(iters / 2);
    for (label, w, cfg) in [
        ("pointer_chase/no_runahead", &chase, CpuConfig::no_runahead()),
        ("pointer_chase/runahead", &chase, CpuConfig::default()),
        ("mcf/no_runahead", &mcf, CpuConfig::no_runahead()),
        ("mcf/runahead", &mcf, CpuConfig::default()),
    ] {
        let r = measure_kernel(w, cfg, 500_000_000);
        let naive_rate = r.cycles as f64 / r.naive_secs;
        let ff_rate = r.cycles as f64 / r.ff_secs;
        let speedup = r.naive_secs / r.ff_secs;
        println!(
            "{label},{},{:.2},{:.2},{:.2}",
            r.cycles,
            naive_rate / 1e6,
            ff_rate / 1e6,
            speedup
        );
        let key = label.replace('/', "_");
        report.metric(format!("{key}_cycles"), r.cycles as f64);
        report.metric(format!("{key}_naive_cycles_per_sec"), naive_rate);
        report.metric(format!("{key}_ff_cycles_per_sec"), ff_rate);
        report.metric(format!("{key}_ff_speedup"), speedup);
    }

    println!();
    let host_threads = harness::default_threads();
    println!("== Fig. 9-style sweep scaling ({sweep_trials} trials, host has {host_threads} core(s)) ==");
    if host_threads < 4 {
        println!("note: wall-clock scaling needs >= 4 host cores; on this host the");
        println!("      sweep only demonstrates thread-safety and low fan-out overhead");
    }
    println!("threads,wall_secs,speedup,efficiency");
    let mut thread_points = vec![1usize, 2, 4];
    if host_threads > 4 {
        thread_points.push(host_threads.min(16));
    }
    thread_points.retain(|&t| t <= host_threads.max(4));
    let mut serial_secs = None;
    for &threads in &thread_points {
        let cfg = SweepConfig { trials: sweep_trials, threads, ..SweepConfig::default() };
        let t = Instant::now();
        let sweep = run_pht_sweep(&cfg);
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(
            sweep.successes(),
            sweep.trials.len(),
            "every sweep trial must leak on the runahead machine"
        );
        let base = *serial_secs.get_or_insert(secs);
        let speedup = base / secs;
        println!("{threads},{secs:.3},{speedup:.2},{:.2}", speedup / threads as f64);
        report.metric(format!("sweep_{threads}t_wall_secs"), secs);
        report.metric(format!("sweep_{threads}t_speedup"), speedup);
    }
    report.metric("sweep_trials", sweep_trials as f64);
    report.metric("host_threads", host_threads as f64);

    let path = report.write().expect("BENCH_step.json is writable");
    println!();
    println!("wrote {}", path.display());
}
