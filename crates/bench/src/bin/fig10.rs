//! Regenerates the §5.3 / Fig. 10 transient-window measurement: the number
//! of instructions executable behind a stalled load in the three scenarios
//! ➀ normal (flush once), ➁ runahead (flush once), ➂ runahead (repeated
//! flush). Paper: N1 = 255, N2 = 480, N3 = 840 on a 256-entry ROB.

use specrun::window::measure_windows;

fn main() {
    let r = measure_windows();
    println!("Fig. 10 / §5.3: available transient window (ROB = {})", r.rob_entries);
    println!("scenario,measured,paper");
    println!("N1 normal flush-once,{},255", r.n1);
    println!("N2 runahead flush-once,{},480", r.n2);
    println!("N3 runahead repeated-flush,{},840", r.n3);
    println!();
    println!(
        "episodes in scenario 3: {}; shape N1 < ROB <= N2 < N3 holds: {}",
        r.episodes_n3,
        r.shape_holds()
    );
}
