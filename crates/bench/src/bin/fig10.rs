//! Thin alias for `specrun-lab run fig10 --no-artifacts` (Fig. 10 / §5.3: transient
//! windows). The experiment itself lives in the `specrun-lab` scenario
//! registry.

fn main() {
    specrun_lab::cli::legacy_main("fig10")
}
