//! Thin alias for `specrun-lab run fig9 --no-artifacts` (Fig. 9: the SPECRUN PoC leak).
//! The experiment itself lives in the `specrun-lab` scenario registry.

fn main() {
    specrun_lab::cli::legacy_main("fig9")
}
