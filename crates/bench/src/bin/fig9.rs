//! Regenerates Fig. 9: the probe-array access-time series after executing
//! SPECRUN (secret = 86 leaks through a sharp latency dip).

use specrun::attack::{run_pht_poc, PocConfig};
use specrun::Machine;

fn main() {
    let cfg = PocConfig::default(); // secret 86, as in the paper
    let mut machine = Machine::runahead();
    let outcome = run_pht_poc(&mut machine, &cfg);
    println!("Fig. 9: probe array access time after executing SPECRUN");
    print!("{}", outcome.timings.to_csv());
    println!();
    println!(
        "leaked={:?} expected={} runahead_entries={} unresolved_inv_branches={}",
        outcome.leaked, outcome.expected, outcome.runahead_entries, outcome.inv_branches
    );
    println!(
        "paper: significant drop at index 86; measured dip at index {:?} ({} cycles vs miss floor {:.0})",
        outcome.leaked,
        outcome.leaked.map(|i| outcome.timings.as_slice()[i as usize]).unwrap_or(0),
        outcome.timings.miss_floor(cfg.threshold)
    );
}
