//! Thin alias for `specrun-lab run defense --no-artifacts` (§6: defense effectiveness
//! and overhead). The experiment itself lives in the `specrun-lab`
//! scenario registry.

fn main() {
    specrun_lab::cli::legacy_main("defense")
}
