//! §6 defense evaluation (the paper proposes the scheme without a figure):
//! leak blocking on the attack PoCs plus the IPC overhead of the SL cache
//! on the Fig. 7 kernels, and the skip-INV-branch ablation.

use specrun::attack::PocConfig;
use specrun::defense::verify_pht_blocked;
use specrun::Machine;
use specrun_cpu::CpuConfig;
use specrun_workloads::{compare_with, geomean_speedup, suite_with_iters};

fn main() {
    println!("== Defense effectiveness (Fig. 11 attack, slide 300) ==");
    println!("machine,leaked,blocked,sl_promotions,sl_deletions,skipped_inv");
    for (name, mut machine) in [
        ("runahead (undefended)", Machine::runahead()),
        ("secure SL-cache", Machine::secure()),
        ("skip-INV-branch", Machine::skip_inv()),
    ] {
        let cfg = PocConfig::fig11(300);
        let report = verify_pht_blocked(&mut machine, &cfg);
        println!(
            "{name},{:?},{},{},{},{}",
            report.outcome.leaked,
            report.blocked(),
            report.sl_promotions,
            report.sl_deletions,
            report.skipped_inv_branches
        );
    }

    println!();
    println!("== Defense overhead on the Fig. 7 kernels (IPC vs baseline) ==");
    println!("kernel,runahead,secure_runahead,skip_inv,secure_overhead_vs_runahead_pct");
    let suite = suite_with_iters(600);
    let mut plain = Vec::new();
    let mut secure = Vec::new();
    let mut skip = Vec::new();
    for w in &suite {
        let p = compare_with(w, CpuConfig::default(), 50_000_000);
        let s = compare_with(w, CpuConfig::secure_runahead(), 50_000_000);
        let mut skip_cfg = CpuConfig::default();
        skip_cfg.runahead.secure = specrun_cpu::SecureConfig::skip_inv_default();
        let k = compare_with(w, skip_cfg, 50_000_000);
        let overhead = (1.0 - s.runahead.ipc / p.runahead.ipc) * 100.0;
        println!(
            "{},{:.3},{:.3},{:.3},{:.1}%",
            w.name, p.speedup(), s.speedup(), k.speedup(), overhead
        );
        plain.push(p);
        secure.push(s);
        skip.push(k);
    }
    println!(
        "geomean,{:.3},{:.3},{:.3},{:.1}%",
        geomean_speedup(&plain),
        geomean_speedup(&secure),
        geomean_speedup(&skip),
        (1.0 - geomean_speedup(&secure) / geomean_speedup(&plain)) * 100.0
    );
}
