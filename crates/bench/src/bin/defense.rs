//! §6 defense evaluation (the paper proposes the scheme without a figure):
//! leak blocking on the attack PoCs plus the IPC overhead of the SL cache
//! on the Fig. 7 kernels, and the skip-INV-branch ablation. The kernel ×
//! machine matrix (6 kernels × 4 machines) fans out over all host cores.

use specrun::attack::PocConfig;
use specrun::defense::verify_pht_blocked;
use specrun::Machine;
use specrun_cpu::CpuConfig;
use specrun_workloads::ipc::{run_workload, IpcComparison};
use specrun_workloads::{geomean_speedup, parallel_map, suite_with_iters};

fn main() {
    println!("== Defense effectiveness (Fig. 11 attack, slide 300) ==");
    println!("machine,leaked,blocked,sl_promotions,sl_deletions,skipped_inv");
    let machines = [
        ("runahead (undefended)", Machine::runahead as fn() -> Machine),
        ("secure SL-cache", Machine::secure),
        ("skip-INV-branch", Machine::skip_inv),
    ];
    let reports = parallel_map(&machines, machines.len(), |_, (_, make)| {
        let mut machine = make();
        verify_pht_blocked(&mut machine, &PocConfig::fig11(300))
    });
    for ((name, _), report) in machines.iter().zip(&reports) {
        println!(
            "{name},{:?},{},{},{},{}",
            report.outcome.leaked,
            report.blocked(),
            report.sl_promotions,
            report.sl_deletions,
            report.skipped_inv_branches
        );
    }

    println!();
    println!("== Defense overhead on the Fig. 7 kernels (IPC vs baseline) ==");
    println!("kernel,runahead,secure_runahead,skip_inv,secure_overhead_vs_runahead_pct");
    let suite = suite_with_iters(600);
    let mut skip_cfg = CpuConfig::default();
    skip_cfg.runahead.secure = specrun_cpu::SecureConfig::skip_inv_default();
    let configs =
        [CpuConfig::no_runahead(), CpuConfig::default(), CpuConfig::secure_runahead(), skip_cfg];
    // One job per (kernel, machine): 24 simulations, all independent.
    let jobs: Vec<(usize, usize)> = (0..suite.len())
        .flat_map(|w| (0..configs.len()).map(move |c| (w, c)))
        .collect();
    let threads = specrun_workloads::harness::default_threads();
    let results = parallel_map(&jobs, threads, |_, &(w, c)| {
        run_workload(&suite[w], configs[c].clone(), 50_000_000)
    });
    let compared = |w: usize, c: usize| IpcComparison {
        name: suite[w].name,
        baseline: results[w * configs.len()],
        runahead: results[w * configs.len() + c],
    };
    let mut plain = Vec::new();
    let mut secure = Vec::new();
    let mut skip = Vec::new();
    for (w, workload) in suite.iter().enumerate() {
        let p = compared(w, 1);
        let s = compared(w, 2);
        let k = compared(w, 3);
        let overhead = (1.0 - s.runahead.ipc / p.runahead.ipc) * 100.0;
        println!(
            "{},{:.3},{:.3},{:.3},{:.1}%",
            workload.name,
            p.speedup(),
            s.speedup(),
            k.speedup(),
            overhead
        );
        plain.push(p);
        secure.push(s);
        skip.push(k);
    }
    println!(
        "geomean,{:.3},{:.3},{:.3},{:.1}%",
        geomean_speedup(&plain),
        geomean_speedup(&secure),
        geomean_speedup(&skip),
        (1.0 - geomean_speedup(&secure) / geomean_speedup(&plain)) * 100.0
    );
}
