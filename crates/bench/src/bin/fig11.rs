//! Thin alias for `specrun-lab run fig11 --no-artifacts` (Fig. 11: the leak beyond the
//! ROB window). The experiment itself lives in the `specrun-lab` scenario
//! registry.

fn main() {
    specrun_lab::cli::legacy_main("fig11")
}
