//! Regenerates Fig. 11: probe access times on the no-runahead and runahead
//! machines with the nop-padded gadget (secret access pushed outside the
//! original ROB window). Paper: leak at index 127 only on the runahead
//! machine. The two machines simulate in parallel.

use specrun::attack::{run_pht_poc, PocConfig};
use specrun::Machine;
use specrun_workloads::parallel_map;

fn main() {
    let slide = 300; // nops between the bounds check and the secret access
    println!("Fig. 11: probe access time, nop slide = {slide} (> ROB)");

    let machines = [Machine::no_runahead, Machine::runahead];
    let outcomes = parallel_map(&machines, 2, |_, make| {
        let mut machine = make();
        run_pht_poc(&mut machine, &PocConfig::fig11(slide))
    });
    let (base, attacked) = (&outcomes[0], &outcomes[1]);

    println!("index,no_runahead_cycles,runahead_cycles");
    let b = base.timings.as_slice();
    let r = attacked.timings.as_slice();
    for i in 0..b.len() {
        println!("{i},{},{}", b[i], r[i]);
    }
    println!();
    println!(
        "no-runahead leaked: {:?} (paper: none); runahead leaked: {:?} (paper: 127)",
        base.leaked, attacked.leaked
    );
}
