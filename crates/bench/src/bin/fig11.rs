//! Regenerates Fig. 11: probe access times on the no-runahead and runahead
//! machines with the nop-padded gadget (secret access pushed outside the
//! original ROB window). Paper: leak at index 127 only on the runahead
//! machine.

use specrun::attack::{run_pht_poc, PocConfig};
use specrun::Machine;

fn main() {
    let slide = 300; // nops between the bounds check and the secret access
    println!("Fig. 11: probe access time, nop slide = {slide} (> ROB)");

    let cfg = PocConfig::fig11(slide);
    let mut plain = Machine::no_runahead();
    let base = run_pht_poc(&mut plain, &cfg);

    let cfg = PocConfig::fig11(slide);
    let mut ra = Machine::runahead();
    let attacked = run_pht_poc(&mut ra, &cfg);

    println!("index,no_runahead_cycles,runahead_cycles");
    let b = base.timings.as_slice();
    let r = attacked.timings.as_slice();
    for i in 0..b.len() {
        println!("{i},{},{}", b[i], r[i]);
    }
    println!();
    println!(
        "no-runahead leaked: {:?} (paper: none); runahead leaked: {:?} (paper: 127)",
        base.leaked, attacked.leaked
    );
}
