//! Thin alias for `specrun-lab run variants --no-artifacts` (§4.3/§4.4: the attack
//! against every runahead policy and Spectre variant). The experiment
//! itself lives in the `specrun-lab` scenario registry.

fn main() {
    specrun_lab::cli::legacy_main("variants")
}
