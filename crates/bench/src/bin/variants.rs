//! §4.3 / §4.4 applicability matrix: the attack against each runahead
//! policy (original, precise, vector) and each Spectre variant
//! (PHT, BTB, RSB). All six attack simulations run in parallel.

use specrun::attack::{run_btb_poc, run_pht_poc, run_rsb_poc, PocConfig, PocOutcome};
use specrun::Machine;
use specrun_cpu::RunaheadPolicy;
use specrun_workloads::parallel_map;

enum Job {
    Policy(RunaheadPolicy),
    Variant(&'static str),
}

fn run(job: &Job) -> PocOutcome {
    match job {
        Job::Policy(policy) => {
            let mut machine = Machine::with_policy(*policy);
            run_pht_poc(&mut machine, &PocConfig::fig11(300))
        }
        Job::Variant(name) => {
            let cfg = PocConfig { nop_slide: 300, ..PocConfig::default() };
            let mut machine = Machine::runahead();
            match *name {
                "SpectrePHT" => run_pht_poc(&mut machine, &cfg),
                "SpectreBTB" => run_btb_poc(&mut machine, &cfg),
                "SpectreRSB" => run_rsb_poc(&mut machine, &cfg),
                other => unreachable!("unknown variant {other}"),
            }
        }
    }
}

fn main() {
    let jobs = [
        Job::Policy(RunaheadPolicy::Original),
        Job::Policy(RunaheadPolicy::Precise),
        Job::Policy(RunaheadPolicy::Vector),
        Job::Variant("SpectrePHT"),
        Job::Variant("SpectreBTB"),
        Job::Variant("SpectreRSB"),
    ];
    let outcomes = parallel_map(&jobs, jobs.len(), |_, job| run(job));

    println!("== SpectrePHT against runahead policies (nop slide 300) ==");
    println!("policy,leaked,expected,runahead_entries,inv_branches");
    for (job, o) in jobs.iter().zip(&outcomes).take(3) {
        let Job::Policy(policy) = job else { unreachable!() };
        println!(
            "{policy:?},{:?},{},{},{}",
            o.leaked, o.expected, o.runahead_entries, o.inv_branches
        );
    }

    println!();
    println!("== Spectre variants nested in (original) runahead ==");
    println!("variant,leaked,expected,runahead_entries");
    for (job, o) in jobs.iter().zip(&outcomes).skip(3) {
        let Job::Variant(name) = job else { unreachable!() };
        println!("{name},{:?},{},{}", o.leaked, o.expected, o.runahead_entries);
    }
}
