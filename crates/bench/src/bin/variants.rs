//! §4.3 / §4.4 applicability matrix: the attack against each runahead
//! policy (original, precise, vector) and each Spectre variant
//! (PHT, BTB, RSB).

use specrun::attack::{run_btb_poc, run_pht_poc, run_rsb_poc, PocConfig};
use specrun::Machine;
use specrun_cpu::RunaheadPolicy;

fn main() {
    println!("== SpectrePHT against runahead policies (nop slide 300) ==");
    println!("policy,leaked,expected,runahead_entries,inv_branches");
    for policy in [RunaheadPolicy::Original, RunaheadPolicy::Precise, RunaheadPolicy::Vector] {
        let cfg = PocConfig::fig11(300);
        let mut machine = Machine::with_policy(policy);
        let o = run_pht_poc(&mut machine, &cfg);
        println!(
            "{policy:?},{:?},{},{},{}",
            o.leaked, o.expected, o.runahead_entries, o.inv_branches
        );
    }

    println!();
    println!("== Spectre variants nested in (original) runahead ==");
    println!("variant,leaked,expected,runahead_entries");
    let cfg = PocConfig { nop_slide: 300, ..PocConfig::default() };
    let mut m = Machine::runahead();
    let pht = run_pht_poc(&mut m, &cfg);
    println!("SpectrePHT,{:?},{},{}", pht.leaked, pht.expected, pht.runahead_entries);

    let cfg = PocConfig { nop_slide: 300, ..PocConfig::default() };
    let mut m = Machine::runahead();
    let btb = run_btb_poc(&mut m, &cfg);
    println!("SpectreBTB,{:?},{},{}", btb.leaked, btb.expected, btb.runahead_entries);

    let cfg = PocConfig { nop_slide: 300, ..PocConfig::default() };
    let mut m = Machine::runahead();
    let rsb = run_rsb_poc(&mut m, &cfg);
    println!("SpectreRSB,{:?},{},{}", rsb.leaked, rsb.expected, rsb.runahead_entries);
}
