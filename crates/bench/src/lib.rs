//! Shared helpers for the SPECRUN benchmark harness binaries and Criterion
//! benches.

/// Prints a CSV table with a header row.
pub fn print_csv(header: &str, rows: impl IntoIterator<Item = String>) {
    println!("{header}");
    for row in rows {
        println!("{row}");
    }
}
