//! Shared helpers for the SPECRUN benchmark binaries and Criterion
//! benches.
//!
//! The heavy lifting moved into `specrun-lab`: the scenario registry owns
//! every figure/table experiment, and the `BENCH_*.json` performance
//! report emitter lives in [`specrun_lab::report`]. This crate keeps the
//! legacy binaries (now thin aliases), the Criterion benches, and
//! re-exports the report types under their historical paths so existing
//! tooling keeps compiling.

pub use specrun_lab::{parse_metrics, BenchReport};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_report_round_trips() {
        let mut r = BenchReport::new("compat");
        r.metric("x_cycles_per_sec", 2.0);
        let parsed = parse_metrics(&r.to_json());
        assert_eq!(parsed, vec![("x_cycles_per_sec".to_string(), 2.0)]);
    }
}
