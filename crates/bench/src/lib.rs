//! Shared helpers for the SPECRUN benchmark harness binaries and Criterion
//! benches: CSV table printing and the `BENCH_*.json` performance-report
//! emitter consumed by CI to track the simulator's throughput trajectory.

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

/// Prints a CSV table with a header row.
pub fn print_csv(header: &str, rows: impl IntoIterator<Item = String>) {
    println!("{header}");
    for row in rows {
        println!("{row}");
    }
}

/// A machine-readable benchmark report, serialized as `BENCH_<name>.json`.
///
/// The format is a flat JSON object: string notes and numeric metrics. No
/// serde in this offline build — the writer escapes and formats by hand.
///
/// ```
/// let mut r = specrun_bench::BenchReport::new("step");
/// r.note("kernel", "pointer_chase");
/// r.metric("cycles_per_sec", 1.25e7);
/// assert!(r.to_json().contains("\"cycles_per_sec\""));
/// ```
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    notes: Vec<(String, String)>,
    metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// Starts a report named `name` (the file becomes `BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> BenchReport {
        BenchReport { name: name.into(), notes: Vec::new(), metrics: Vec::new() }
    }

    /// Adds a string annotation.
    pub fn note(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.notes.push((key.into(), value.into()));
        self
    }

    /// Adds a numeric metric.
    pub fn metric(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.metrics.push((key.into(), value));
        self
    }

    /// The numeric metrics collected so far, in insertion order.
    pub fn metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut fields = vec![format!("  \"bench\": {}", json_string(&self.name))];
        fields.extend(
            self.notes.iter().map(|(k, v)| format!("  {}: {}", json_string(k), json_string(v))),
        );
        fields.extend(
            self.metrics.iter().map(|(k, v)| format!("  {}: {}", json_string(k), json_number(*v))),
        );
        format!("{{\n{}\n}}\n", fields.join(",\n"))
    }

    /// Writes `BENCH_<name>.json` into `dir` and returns the path.
    pub fn write_to(&self, dir: impl Into<PathBuf>) -> io::Result<PathBuf> {
        let mut path = dir.into();
        path.push(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes `BENCH_<name>.json` into the current directory.
    pub fn write(&self) -> io::Result<PathBuf> {
        self.write_to(".")
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses the numeric metrics out of a flat `BENCH_*.json` report (the
/// shape [`BenchReport::to_json`] writes: one `"key": value` pair per
/// line). String notes are skipped. Used by the CI perf-regression gate to
/// read the committed baseline without a JSON dependency.
pub fn parse_metrics(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else { continue };
        let key = key.trim();
        if key.len() < 2 || !key.starts_with('"') || !key.ends_with('"') {
            continue;
        }
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((key[1..key.len() - 1].to_string(), v));
        }
    }
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_valid_shape() {
        let mut r = BenchReport::new("step");
        r.note("kernel", "pointer_chase");
        r.metric("speedup", 3.5);
        r.metric("cycles", 600227.0);
        let json = r.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"bench\": \"step\""));
        assert!(json.contains("\"speedup\": 3.5"));
        assert!(json.contains("\"cycles\": 600227"));
        // No trailing comma before the closing brace.
        assert!(!json.contains(",\n}"));
    }

    #[test]
    fn parse_metrics_round_trips_a_report() {
        let mut r = BenchReport::new("step");
        r.note("quick_mode", "yes");
        r.metric("a_cycles_per_sec", 1234.5);
        r.metric("cycles", 600227.0);
        let parsed = parse_metrics(&r.to_json());
        assert_eq!(
            parsed,
            vec![("a_cycles_per_sec".to_string(), 1234.5), ("cycles".to_string(), 600227.0)],
            "string notes are skipped, numbers survive"
        );
    }

    #[test]
    fn empty_metrics_have_no_trailing_comma() {
        let mut r = BenchReport::new("x");
        r.note("k", "v");
        let json = r.to_json();
        assert!(!json.contains(",\n}"), "trailing comma breaks strict parsers: {json}");
        assert!(json.ends_with("\"k\": \"v\"\n}\n"));
        // Bare report: just the bench name.
        let bare = BenchReport::new("y").to_json();
        assert_eq!(bare, "{\n  \"bench\": \"y\"\n}\n");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn write_creates_named_file() {
        let dir = std::env::temp_dir();
        let mut r = BenchReport::new("emitter_test");
        r.metric("x", 1.0);
        let path = r.write_to(&dir).expect("writable temp dir");
        assert!(path.ends_with("BENCH_emitter_test.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x\": 1"));
        let _ = std::fs::remove_file(path);
    }
}
