//! Criterion bench for the §4.3/§4.4 variant matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use specrun::attack::{run_btb_poc, run_pht_poc, run_rsb_poc, PocConfig};
use specrun::session::{Policy, Session};
use specrun_cpu::RunaheadPolicy;

fn variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_variants");
    group.sample_size(10);
    for policy in [RunaheadPolicy::Precise, RunaheadPolicy::Vector] {
        group.bench_function(format!("pht_{policy:?}"), |b| {
            b.iter(|| {
                let cfg = PocConfig::fig11(300);
                let mut m = Session::builder().policy(Policy::Variant(policy)).build();
                assert_eq!(run_pht_poc(&mut m, &cfg).leaked, Some(127));
            })
        });
    }
    group.bench_function("btb_variant", |b| {
        b.iter(|| {
            let cfg = PocConfig { nop_slide: 300, ..PocConfig::default() };
            let mut m = Session::builder().policy(Policy::Runahead).build();
            assert_eq!(run_btb_poc(&mut m, &cfg).leaked, Some(86));
        })
    });
    group.bench_function("rsb_variant", |b| {
        b.iter(|| {
            let cfg = PocConfig { nop_slide: 300, ..PocConfig::default() };
            let mut m = Session::builder().policy(Policy::Runahead).build();
            assert_eq!(run_rsb_poc(&mut m, &cfg).leaked, Some(86));
        })
    });
    group.finish();
}

criterion_group!(benches, variants);
criterion_main!(benches);
