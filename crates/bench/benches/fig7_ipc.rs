//! Criterion bench for the Fig. 7 experiment: simulate each kernel on the
//! no-runahead and runahead machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specrun_cpu::CpuConfig;
use specrun_workloads::{ipc::run_workload, suite_with_iters};

fn fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_ipc");
    group.sample_size(10);
    for workload in suite_with_iters(200) {
        group.bench_with_input(
            BenchmarkId::new("no_runahead", workload.name),
            &workload,
            |b, w| b.iter(|| run_workload(w, CpuConfig::no_runahead(), 20_000_000).cycles),
        );
        group.bench_with_input(BenchmarkId::new("runahead", workload.name), &workload, |b, w| {
            b.iter(|| run_workload(w, CpuConfig::default(), 20_000_000).cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
