//! Criterion bench for the Fig. 11 experiment: nop-padded gadget on the
//! no-runahead vs runahead machine.

use criterion::{criterion_group, criterion_main, Criterion};
use specrun::attack::{run_pht_poc, PocConfig};
use specrun::session::{Policy, Session};

fn fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_nop_leak");
    group.sample_size(10);
    group.bench_function("no_runahead_no_leak", |b| {
        b.iter(|| {
            let cfg = PocConfig::fig11(300);
            let mut m = Session::builder().policy(Policy::NoRunahead).build();
            let o = run_pht_poc(&mut m, &cfg);
            assert_eq!(o.leaked, None);
        })
    });
    group.bench_function("runahead_leaks_127", |b| {
        b.iter(|| {
            let cfg = PocConfig::fig11(300);
            let mut m = Session::builder().policy(Policy::Runahead).build();
            let o = run_pht_poc(&mut m, &cfg);
            assert_eq!(o.leaked, Some(127));
        })
    });
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
