//! Criterion bench for the §5.3 / Fig. 10 transient-window measurements.

use criterion::{criterion_group, criterion_main, Criterion};
use specrun::window::{measure_n1, measure_n2, measure_n3};

fn fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_window");
    group.sample_size(10);
    group.bench_function("n1_normal", |b| {
        b.iter(|| {
            let n1 = measure_n1(2048);
            assert_eq!(n1, 255);
            n1
        })
    });
    group.bench_function("n2_runahead", |b| {
        b.iter(|| {
            let n2 = measure_n2(2048);
            assert!(n2 > 256);
            n2
        })
    });
    group.bench_function("n3_repeated_flush", |b| b.iter(|| measure_n3(4096, 1).0));
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
