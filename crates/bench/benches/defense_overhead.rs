//! Criterion bench for the §6 defense: attack blocking and kernel overhead
//! under the SL-cache scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use specrun::attack::PocConfig;
use specrun::defense::verify_pht_blocked;
use specrun::session::{Policy, Session};
use specrun_cpu::CpuConfig;
use specrun_workloads::{ipc::run_workload, kernels};

fn defense(c: &mut Criterion) {
    let mut group = c.benchmark_group("defense_overhead");
    group.sample_size(10);
    group.bench_function("sl_cache_blocks_attack", |b| {
        b.iter(|| {
            let cfg = PocConfig::fig11(300);
            let mut m = Session::builder().policy(Policy::Secure).build();
            let report = verify_pht_blocked(&mut m, &cfg);
            assert!(report.blocked());
        })
    });
    let lbm = kernels::lbm(200);
    group.bench_function("lbm_secure_runahead", |b| {
        b.iter(|| run_workload(&lbm, CpuConfig::secure_runahead(), 20_000_000).cycles)
    });
    group.bench_function("lbm_plain_runahead", |b| {
        b.iter(|| run_workload(&lbm, CpuConfig::default(), 20_000_000).cycles)
    });
    group.finish();
}

criterion_group!(benches, defense);
criterion_main!(benches);
