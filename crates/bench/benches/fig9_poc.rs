//! Criterion bench for the Fig. 9 proof of concept: the full SPECRUN attack
//! (train, flush, runahead leak, probe) on the runahead machine.

use criterion::{criterion_group, criterion_main, Criterion};
use specrun::attack::{run_pht_poc, PocConfig};
use specrun::session::{Policy, Session};

fn fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_poc");
    group.sample_size(10);
    group.bench_function("specrun_pht_leak", |b| {
        b.iter(|| {
            let cfg = PocConfig::default();
            let mut machine = Session::builder().policy(Policy::Runahead).build();
            let outcome = run_pht_poc(&mut machine, &cfg);
            assert_eq!(outcome.leaked, Some(86));
            outcome.runahead_entries
        })
    });
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
