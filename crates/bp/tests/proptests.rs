//! Property-based tests for the branch prediction structures.

use proptest::prelude::*;
use specrun_bp::{BranchKind, BranchPredictor, Btb, BtbConfig, Rsb, SaturatingCounter, TwoLevel};

proptest! {
    /// Counter value stays within [0, 2^bits).
    #[test]
    fn counter_bounded(bits in 1u8..=7, outcomes in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut c = SaturatingCounter::new(bits);
        let max = (1u16 << bits) - 1;
        for taken in outcomes {
            c.update(taken);
            prop_assert!(u16::from(c.value()) <= max);
        }
    }

    /// A counter trained with k consecutive identical outcomes (k >= width)
    /// always predicts that outcome.
    #[test]
    fn counter_converges(bits in 1u8..=7, taken in any::<bool>()) {
        let mut c = SaturatingCounter::new(bits);
        for _ in 0..(1u16 << bits) {
            c.update(taken);
        }
        prop_assert_eq!(c.is_taken(), taken);
    }

    /// The two-level predictor never panics and eventually tracks a constant
    /// branch, regardless of PC.
    #[test]
    fn two_level_constant_branch(pc in any::<u64>(), taken in any::<bool>()) {
        let mut p = TwoLevel::default();
        for _ in 0..32 {
            p.update(pc, taken);
        }
        prop_assert_eq!(p.predict(pc), taken);
    }

    /// BTB predict-after-update returns the installed target for arbitrary
    /// PCs and targets.
    #[test]
    fn btb_update_then_predict(pc in any::<u64>(), target in any::<u64>()) {
        let mut btb = Btb::new(BtbConfig::default());
        btb.update(pc, target);
        prop_assert_eq!(btb.predict(pc), Some(target));
    }

    /// The BTB never exceeds its capacity.
    #[test]
    fn btb_capacity(updates in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..500)) {
        let cfg = BtbConfig { sets: 16, ways: 2, tag_bits: 8 };
        let mut btb = Btb::new(cfg);
        for (pc, t) in updates {
            btb.update(pc, t);
            prop_assert!(btb.len() <= cfg.sets * cfg.ways);
        }
    }

    /// RSB push/pop is LIFO while within capacity.
    #[test]
    fn rsb_lifo_within_capacity(addrs in proptest::collection::vec(any::<u64>(), 1..16)) {
        let mut rsb = Rsb::new(16);
        for &a in &addrs {
            rsb.push(a);
        }
        for &a in addrs.iter().rev() {
            prop_assert_eq!(rsb.pop(), a);
        }
    }

    /// Checkpoint/restore around any number of speculative pushes brings the
    /// next pop back to the checkpointed value (up to capacity-1 pushes).
    #[test]
    fn rsb_checkpoint_repair(spec_pushes in proptest::collection::vec(any::<u64>(), 0..15)) {
        let mut rsb = Rsb::new(16);
        rsb.push(0xabcd);
        let cp = rsb.checkpoint();
        for a in spec_pushes {
            rsb.push(a);
        }
        rsb.restore(cp);
        prop_assert_eq!(rsb.pop(), 0xabcd);
    }

    /// Predictions are pure in the absence of calls/returns: predicting the
    /// same conditional twice gives the same answer.
    #[test]
    fn conditional_prediction_is_stable(pc in any::<u64>(), target in any::<u64>()) {
        let mut p = BranchPredictor::default();
        let a = p.predict(pc, BranchKind::Conditional, Some(target), pc.wrapping_add(8));
        let b = p.predict(pc, BranchKind::Conditional, Some(target), pc.wrapping_add(8));
        prop_assert_eq!(a, b);
    }
}
