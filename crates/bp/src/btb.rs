//! Branch Target Buffer.
//!
//! Set-associative, LRU-replaced, with *partial* tags: two PCs that agree in
//! their index and low tag bits alias to the same entry even if they live in
//! different address-space regions. That aliasing is the SpectreBTB training
//! primitive (paper Fig. 4a: the attacker trains a congruent `src` in her own
//! space so the victim's indirect branch predicts the attacker-chosen
//! `dst2`).

/// Geometry of the BTB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BtbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Number of tag bits kept (partial tagging enables cross-space
    /// aliasing; 64 disables aliasing).
    pub tag_bits: u32,
}

impl Default for BtbConfig {
    fn default() -> BtbConfig {
        BtbConfig { sets: 512, ways: 4, tag_bits: 8 }
    }
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    tag: u64,
    target: u64,
    last_used: u64,
}

/// The branch target buffer.
///
/// ```
/// use specrun_bp::{Btb, BtbConfig};
/// let mut btb = Btb::new(BtbConfig::default());
/// assert_eq!(btb.predict(0x1000), None);
/// btb.update(0x1000, 0x4000);
/// assert_eq!(btb.predict(0x1000), Some(0x4000));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    config: BtbConfig,
    sets: Vec<Vec<Option<BtbEntry>>>,
    stamp: u64,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(config: BtbConfig) -> Btb {
        assert!(config.sets.is_power_of_two(), "BTB sets must be a power of two");
        assert!(config.ways > 0, "BTB needs at least one way");
        Btb { config, sets: (0..config.sets).map(|_| vec![None; config.ways]).collect(), stamp: 0 }
    }

    /// The BTB's configuration.
    pub fn config(&self) -> &BtbConfig {
        &self.config
    }

    fn index_and_tag(&self, pc: u64) -> (usize, u64) {
        let idx = ((pc >> 3) as usize) & (self.config.sets - 1);
        let tag_shift = 3 + self.config.sets.trailing_zeros();
        let tag_mask =
            if self.config.tag_bits >= 64 { u64::MAX } else { (1 << self.config.tag_bits) - 1 };
        (idx, (pc >> tag_shift) & tag_mask)
    }

    /// Predicted target of the control instruction at `pc`, if any.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        let (idx, tag) = self.index_and_tag(pc);
        self.sets[idx].iter().flatten().find(|e| e.tag == tag).map(|e| e.target)
    }

    /// Installs or refreshes the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        let (idx, tag) = self.index_and_tag(pc);
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().flatten().find(|e| e.tag == tag) {
            e.target = target;
            e.last_used = stamp;
            return;
        }
        if let Some(slot) = set.iter_mut().find(|w| w.is_none()) {
            *slot = Some(BtbEntry { tag, target, last_used: stamp });
            return;
        }
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.map_or(0, |e| e.last_used))
            .map(|(i, _)| i)
            .expect("nonzero ways");
        set[victim] = Some(BtbEntry { tag, target, last_used: stamp });
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.iter().flatten().count()).sum()
    }

    /// Whether the BTB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.fill(None);
        }
    }
}

impl Default for Btb {
    fn default() -> Btb {
        Btb::new(BtbConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_update_then_hit() {
        let mut btb = Btb::default();
        assert_eq!(btb.predict(0x40), None);
        btb.update(0x40, 0x999);
        assert_eq!(btb.predict(0x40), Some(0x999));
        assert_eq!(btb.len(), 1);
    }

    #[test]
    fn congruent_addresses_alias() {
        // Same index (512 sets → bits 3..12) and same 8-bit partial tag:
        // stride = 512 << 3 << 8 = 1 MiB.
        let mut btb = Btb::default();
        let victim = 0x0010_0040u64;
        let attacker = victim + (512u64 << 3 << 8);
        btb.update(attacker, 0xdead);
        assert_eq!(btb.predict(victim), Some(0xdead), "cross-space aliasing");
    }

    #[test]
    fn full_tags_prevent_aliasing() {
        let mut btb = Btb::new(BtbConfig { tag_bits: 64, ..BtbConfig::default() });
        let victim = 0x0010_0040u64;
        let attacker = victim + (512u64 << 3 << 8);
        btb.update(attacker, 0xdead);
        assert_eq!(btb.predict(victim), None);
    }

    #[test]
    fn lru_within_set() {
        let mut btb = Btb::new(BtbConfig { sets: 2, ways: 2, tag_bits: 16 });
        // All PCs with (pc>>3) even map to set 0.
        let pcs = [0x0u64, 0x10, 0x20];
        btb.update(pcs[0], 1);
        btb.update(pcs[1], 2);
        btb.predict(pcs[0]); // prediction does not refresh LRU (stamp only on update)
        btb.update(pcs[2], 3);
        assert_eq!(btb.predict(pcs[0]), None, "LRU entry evicted");
        assert_eq!(btb.predict(pcs[1]), Some(2));
        assert_eq!(btb.predict(pcs[2]), Some(3));
    }

    #[test]
    fn retarget_in_place() {
        let mut btb = Btb::default();
        btb.update(0x80, 1);
        btb.update(0x80, 2);
        assert_eq!(btb.predict(0x80), Some(2));
        assert_eq!(btb.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut btb = Btb::default();
        btb.update(0x80, 1);
        btb.clear();
        assert!(btb.is_empty());
    }
}
