//! Saturating counters, the building block of direction predictors.

/// An n-bit saturating counter.
///
/// The counter predicts "taken" in its upper half. A 2-bit counter therefore
/// needs two mispredictions to flip direction — the hysteresis that makes
/// one-shot Spectre training require a short loop rather than a single run.
///
/// ```
/// use specrun_bp::SaturatingCounter;
/// let mut c = SaturatingCounter::new(2);
/// assert!(!c.is_taken()); // starts strongly not-taken
/// c.update(true);
/// c.update(true);
/// assert!(c.is_taken());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates an n-bit counter initialized to zero (strongly not-taken).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 7`.
    pub fn new(bits: u8) -> SaturatingCounter {
        assert!((1..=7).contains(&bits), "counter width out of range");
        SaturatingCounter { value: 0, max: (1 << bits) - 1 }
    }

    /// Creates a counter starting at a chosen value (clamped to the range).
    pub fn with_value(bits: u8, value: u8) -> SaturatingCounter {
        let mut c = SaturatingCounter::new(bits);
        c.value = value.min(c.max);
        c
    }

    /// Current raw value.
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Whether the counter currently predicts taken.
    pub fn is_taken(&self) -> bool {
        self.value > self.max / 2
    }

    /// Trains the counter toward the outcome.
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.value = (self.value + 1).min(self.max);
        } else {
            self.value = self.value.saturating_sub(1);
        }
    }
}

impl Default for SaturatingCounter {
    /// A 2-bit counter, the paper's Table 1 predictor granularity.
    fn default() -> SaturatingCounter {
        SaturatingCounter::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_bounds() {
        let mut c = SaturatingCounter::new(2);
        for _ in 0..10 {
            c.update(true);
        }
        assert_eq!(c.value(), 3);
        for _ in 0..10 {
            c.update(false);
        }
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn hysteresis_requires_two_flips() {
        let mut c = SaturatingCounter::with_value(2, 3); // strongly taken
        c.update(false);
        assert!(c.is_taken(), "one not-taken must not flip a strong counter");
        c.update(false);
        assert!(!c.is_taken());
    }

    #[test]
    fn threshold_is_midpoint() {
        assert!(!SaturatingCounter::with_value(2, 1).is_taken());
        assert!(SaturatingCounter::with_value(2, 2).is_taken());
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn rejects_zero_width() {
        SaturatingCounter::new(0);
    }
}
