//! Two-level adaptive direction predictor (Table 1: "two-level adaptive
//! predictor").
//!
//! Level one is a table of per-branch local histories; level two is a
//! pattern history table (PHT) of 2-bit saturating counters indexed by the
//! local history hashed with the branch PC. Neither table is tagged or
//! tagged per-process — which is precisely what lets an attacker running in
//! its own address space train entries used by a victim (SpectrePHT, paper
//! step ①: "poison PHT").

use crate::counter::SaturatingCounter;

/// Geometry of the two-level predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TwoLevelConfig {
    /// Entries in the level-one branch history table (power of two).
    pub bht_entries: usize,
    /// Bits of local history kept per branch.
    pub history_bits: u32,
    /// Entries in the pattern history table (power of two).
    pub pht_entries: usize,
    /// Width of each PHT counter in bits.
    pub counter_bits: u8,
}

impl Default for TwoLevelConfig {
    fn default() -> TwoLevelConfig {
        TwoLevelConfig { bht_entries: 1024, history_bits: 8, pht_entries: 4096, counter_bits: 2 }
    }
}

/// The two-level adaptive predictor.
#[derive(Debug, Clone)]
pub struct TwoLevel {
    config: TwoLevelConfig,
    histories: Vec<u64>,
    pht: Vec<SaturatingCounter>,
}

impl TwoLevel {
    /// Creates a predictor; all counters start strongly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two.
    pub fn new(config: TwoLevelConfig) -> TwoLevel {
        assert!(config.bht_entries.is_power_of_two(), "BHT size must be a power of two");
        assert!(config.pht_entries.is_power_of_two(), "PHT size must be a power of two");
        TwoLevel {
            config,
            histories: vec![0; config.bht_entries],
            pht: vec![SaturatingCounter::new(config.counter_bits); config.pht_entries],
        }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &TwoLevelConfig {
        &self.config
    }

    fn bht_index(&self, pc: u64) -> usize {
        ((pc >> 3) as usize) & (self.config.bht_entries - 1)
    }

    fn pht_index(&self, pc: u64, history: u64) -> usize {
        let mask = (1u64 << self.config.history_bits) - 1;
        (((history & mask) ^ (pc >> 3)) as usize) & (self.config.pht_entries - 1)
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        let history = self.histories[self.bht_index(pc)];
        self.pht[self.pht_index(pc, history)].is_taken()
    }

    /// Trains with the resolved outcome of the branch at `pc`.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let bht = self.bht_index(pc);
        let history = self.histories[bht];
        let pht = self.pht_index(pc, history);
        self.pht[pht].update(taken);
        self.histories[bht] = (history << 1) | u64::from(taken);
    }

    /// Snapshot of the level-one histories (checkpointed at runahead entry
    /// by the original scheme; pattern-table counters are *not* part of the
    /// checkpoint and keep their training).
    pub fn histories_snapshot(&self) -> Vec<u64> {
        self.histories.clone()
    }

    /// Restores a snapshot taken by [`TwoLevel::histories_snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a different geometry.
    pub fn restore_histories(&mut self, snapshot: &[u64]) {
        assert_eq!(snapshot.len(), self.histories.len(), "snapshot geometry mismatch");
        self.histories.copy_from_slice(snapshot);
    }
}

impl Default for TwoLevel {
    fn default() -> TwoLevel {
        TwoLevel::new(TwoLevelConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_predictor_says_not_taken() {
        let p = TwoLevel::default();
        assert!(!p.predict(0x1000));
    }

    #[test]
    fn repeated_training_flips_prediction() {
        let mut p = TwoLevel::default();
        // Needs history saturation (8 bits) plus counter hysteresis (2).
        for _ in 0..16 {
            p.update(0x1000, true);
        }
        assert!(p.predict(0x1000));
    }

    #[test]
    fn training_learns_alternating_pattern() {
        let mut p = TwoLevel::default();
        for i in 0..64 {
            p.update(0x2000, i % 2 == 0);
        }
        let mut correct = 0;
        for i in 64..96 {
            let taken = i % 2 == 0;
            if p.predict(0x2000) == taken {
                correct += 1;
            }
            p.update(0x2000, taken);
        }
        assert!(correct >= 28, "two-level should learn alternation, got {correct}/32");
    }

    #[test]
    fn congruent_pcs_share_entries() {
        // Two PCs equal modulo the BHT/PHT index width alias to the same
        // entries: the cross-address-space training primitive.
        let mut p = TwoLevel::default();
        let victim_pc = 0x0000_1008;
        let attacker_pc = victim_pc + (1024u64 << 3) * 4; // same low index bits
        for _ in 0..16 {
            p.update(attacker_pc, true);
        }
        assert!(p.predict(victim_pc), "aliased training must transfer");
    }

    #[test]
    fn distinct_branches_do_not_interfere_when_not_aliased() {
        let mut p = TwoLevel::default();
        for _ in 0..16 {
            p.update(0x1000, true);
        }
        assert!(!p.predict(0x1008), "neighboring branch keeps its own state");
    }
}
