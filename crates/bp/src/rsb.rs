//! Return Stack Buffer.
//!
//! A small circular stack of predicted return addresses. Like hardware RSBs
//! it *wraps*: overflow overwrites the oldest entry and underflow re-reads a
//! stale slot instead of failing. Both behaviours are load-bearing for the
//! SpectreRSB variants in the paper's Fig. 4(b)/(c): the architectural
//! return address lives in memory (where a store or `clflush` can interfere)
//! while this buffer supplies the *prediction*.

/// The return stack buffer.
///
/// ```
/// use specrun_bp::Rsb;
/// let mut rsb = Rsb::new(16);
/// rsb.push(0x1008);
/// assert_eq!(rsb.pop(), 0x1008);
/// ```
#[derive(Debug, Clone)]
pub struct Rsb {
    entries: Vec<u64>,
    top: usize,
}

impl Rsb {
    /// Creates an RSB with `capacity` slots, all initially zero.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Rsb {
        assert!(capacity > 0, "RSB needs at least one slot");
        Rsb { entries: vec![0; capacity], top: 0 }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Pushes a predicted return address (call fetched).
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = addr;
    }

    /// Pops the predicted return address (return fetched).
    ///
    /// Underflow wraps and returns whatever stale value the slot holds —
    /// exactly the hardware behaviour `ret2spec`-style attacks rely on.
    pub fn pop(&mut self) -> u64 {
        let value = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        value
    }

    /// Top-of-stack position (for checkpointing at branch/runahead entry).
    pub fn checkpoint(&self) -> usize {
        self.top
    }

    /// Restores a previously checkpointed top-of-stack position.
    ///
    /// Only the pointer is restored; entries pushed since the checkpoint may
    /// have clobbered older slots (real RSB repair has the same limitation).
    pub fn restore(&mut self, checkpoint: usize) {
        self.top = checkpoint % self.entries.len();
    }

    /// Zeroes all slots (context-switch style clearing; a mitigation some
    /// real cores apply).
    pub fn clear(&mut self) {
        self.entries.fill(0);
        self.top = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut rsb = Rsb::new(8);
        rsb.push(1);
        rsb.push(2);
        rsb.push(3);
        assert_eq!(rsb.pop(), 3);
        assert_eq!(rsb.pop(), 2);
        assert_eq!(rsb.pop(), 1);
    }

    #[test]
    fn overflow_wraps_and_clobbers_oldest() {
        let mut rsb = Rsb::new(2);
        rsb.push(1);
        rsb.push(2);
        rsb.push(3); // clobbers 1
        assert_eq!(rsb.pop(), 3);
        assert_eq!(rsb.pop(), 2);
        assert_eq!(rsb.pop(), 3, "underflow re-reads stale slot");
    }

    #[test]
    fn underflow_returns_stale_zero_initially() {
        let mut rsb = Rsb::new(4);
        assert_eq!(rsb.pop(), 0);
    }

    #[test]
    fn checkpoint_restore_repairs_pointer() {
        let mut rsb = Rsb::new(8);
        rsb.push(0xa);
        let cp = rsb.checkpoint();
        rsb.push(0xb);
        rsb.push(0xc);
        rsb.restore(cp);
        assert_eq!(rsb.pop(), 0xa);
    }

    #[test]
    fn clear_zeroes() {
        let mut rsb = Rsb::new(4);
        rsb.push(9);
        rsb.clear();
        assert_eq!(rsb.pop(), 0);
    }
}
