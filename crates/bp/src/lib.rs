//! # specrun-bp
//!
//! Branch prediction structures for the SPECRUN runahead-processor
//! simulator: a [two-level adaptive direction predictor](TwoLevel) (Table 1),
//! a partially-tagged [BTB](Btb), a wrapping [RSB](Rsb), and the combined
//! [`BranchPredictor`] facade the core's front end drives.
//!
//! All structures are untagged across processes — anything co-resident on
//! the core trains them. That is the paper's threat model: SpectrePHT
//! poisons the PHT, SpectreBTB trains congruent-address BTB entries,
//! SpectreRSB desynchronizes the RSB from the architectural stack.
//!
//! ```
//! use specrun_bp::{BranchKind, BranchPredictor};
//! let mut bp = BranchPredictor::default();
//! for _ in 0..16 {
//!     bp.resolve_conditional(0x1000, true, false); // training loop
//! }
//! let p = bp.predict(0x1000, BranchKind::Conditional, Some(0x2000), 0x1008);
//! assert!(p.taken);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod counter;
mod predictor;
mod rsb;
mod two_level;

pub use btb::{Btb, BtbConfig};
pub use counter::SaturatingCounter;
pub use predictor::{BranchKind, BranchPredictor, Prediction, PredictorConfig, PredictorStats};
pub use rsb::Rsb;
pub use two_level::{TwoLevel, TwoLevelConfig};
