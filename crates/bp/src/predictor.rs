//! Combined front-end predictor: direction (two-level) + target (BTB) +
//! returns (RSB).

use crate::btb::{Btb, BtbConfig};
use crate::rsb::Rsb;
use crate::two_level::{TwoLevel, TwoLevelConfig};

/// Classification of a control instruction for prediction purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BranchKind {
    /// Conditional direct branch.
    Conditional,
    /// Unconditional direct jump.
    Direct,
    /// Indirect jump through a register.
    Indirect,
    /// Direct or indirect call (pushes the RSB).
    Call,
    /// Return (pops the RSB).
    Return,
}

/// A front-end prediction for one control instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (always `true` for unconditional control).
    pub taken: bool,
    /// Predicted next PC.
    pub target: u64,
}

/// Configuration of the combined predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PredictorConfig {
    /// Direction predictor geometry.
    pub two_level: TwoLevelConfig,
    /// BTB geometry.
    pub btb: BtbConfig,
    /// RSB depth.
    pub rsb_entries: usize,
}

impl Default for PredictorConfig {
    fn default() -> PredictorConfig {
        PredictorConfig {
            two_level: TwoLevelConfig::default(),
            btb: BtbConfig::default(),
            rsb_entries: 16,
        }
    }
}

/// Counters kept by the predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PredictorStats {
    /// Direction predictions made.
    pub direction_predictions: u64,
    /// Direction mispredictions reported.
    pub direction_mispredicts: u64,
    /// Target predictions made for indirect control.
    pub target_predictions: u64,
    /// Target mispredictions reported.
    pub target_mispredicts: u64,
}

/// The combined branch predictor shared by all contexts on the core.
///
/// The structure is deliberately untagged across processes: anything that
/// runs on the core trains it, which is the paper's threat-model assumption
/// for all three Spectre variants.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    two_level: TwoLevel,
    btb: Btb,
    rsb: Rsb,
    stats: PredictorStats,
}

impl BranchPredictor {
    /// Creates a predictor with the given geometry.
    pub fn new(config: PredictorConfig) -> BranchPredictor {
        BranchPredictor {
            two_level: TwoLevel::new(config.two_level),
            btb: Btb::new(config.btb),
            rsb: Rsb::new(config.rsb_entries),
            stats: PredictorStats::default(),
        }
    }

    /// Predicts the outcome of the control instruction at `pc`.
    ///
    /// `direct_target` is the statically-known target (`None` for indirect
    /// control); `fallthrough` is `pc + inst_size`. Calls push the RSB;
    /// returns pop it — side effects that happen at prediction time, exactly
    /// as in a real front end.
    pub fn predict(
        &mut self,
        pc: u64,
        kind: BranchKind,
        direct_target: Option<u64>,
        fallthrough: u64,
    ) -> Prediction {
        match kind {
            BranchKind::Conditional => {
                self.stats.direction_predictions += 1;
                let taken = self.two_level.predict(pc);
                let target = if taken {
                    direct_target.or_else(|| self.btb.predict(pc)).unwrap_or(fallthrough)
                } else {
                    fallthrough
                };
                Prediction { taken, target }
            }
            BranchKind::Direct => {
                Prediction { taken: true, target: direct_target.unwrap_or(fallthrough) }
            }
            BranchKind::Indirect => {
                self.stats.target_predictions += 1;
                let target = self.btb.predict(pc).unwrap_or(fallthrough);
                Prediction { taken: true, target }
            }
            BranchKind::Call => {
                self.rsb.push(fallthrough);
                match direct_target {
                    Some(t) => Prediction { taken: true, target: t },
                    None => {
                        self.stats.target_predictions += 1;
                        let target = self.btb.predict(pc).unwrap_or(fallthrough);
                        Prediction { taken: true, target }
                    }
                }
            }
            BranchKind::Return => {
                self.stats.target_predictions += 1;
                Prediction { taken: true, target: self.rsb.pop() }
            }
        }
    }

    /// Trains the predictor with a resolved conditional branch.
    pub fn resolve_conditional(&mut self, pc: u64, taken: bool, mispredicted: bool) {
        self.two_level.update(pc, taken);
        if mispredicted {
            self.stats.direction_mispredicts += 1;
        }
    }

    /// Trains the BTB with a resolved taken target (indirect or call).
    pub fn resolve_target(&mut self, pc: u64, target: u64, mispredicted: bool) {
        self.btb.update(pc, target);
        if mispredicted {
            self.stats.target_mispredicts += 1;
        }
    }

    /// Records a return misprediction (the RSB itself self-corrects as the
    /// correct return address is architecturally popped).
    pub fn resolve_return(&mut self, mispredicted: bool) {
        if mispredicted {
            self.stats.target_mispredicts += 1;
        }
    }

    /// Snapshot of the direction-predictor histories (runahead entry
    /// checkpoint; see [`TwoLevel::histories_snapshot`]).
    pub fn history_checkpoint(&self) -> Vec<u64> {
        self.two_level.histories_snapshot()
    }

    /// Restores a history snapshot (runahead exit).
    pub fn history_restore(&mut self, snapshot: &[u64]) {
        self.two_level.restore_histories(snapshot);
    }

    /// RSB checkpoint for speculation repair (top-of-stack pointer).
    pub fn rsb_checkpoint(&self) -> usize {
        self.rsb.checkpoint()
    }

    /// Restores an RSB checkpoint.
    pub fn rsb_restore(&mut self, checkpoint: usize) {
        self.rsb.restore(checkpoint);
    }

    /// Direct access to the direction predictor (training loops, tests).
    pub fn two_level_mut(&mut self) -> &mut TwoLevel {
        &mut self.two_level
    }

    /// Direct access to the BTB (training loops, tests).
    pub fn btb_mut(&mut self) -> &mut Btb {
        &mut self.btb
    }

    /// Direct access to the RSB (training loops, tests).
    pub fn rsb_mut(&mut self) -> &mut Rsb {
        &mut self.rsb
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    /// Clears counters (table contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = PredictorStats::default();
    }
}

impl Default for BranchPredictor {
    fn default() -> BranchPredictor {
        BranchPredictor::new(PredictorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditional_cold_predicts_fallthrough() {
        let mut p = BranchPredictor::default();
        let pred = p.predict(0x100, BranchKind::Conditional, Some(0x200), 0x108);
        assert!(!pred.taken);
        assert_eq!(pred.target, 0x108);
    }

    #[test]
    fn trained_conditional_predicts_target() {
        let mut p = BranchPredictor::default();
        for _ in 0..16 {
            p.resolve_conditional(0x100, true, false);
        }
        let pred = p.predict(0x100, BranchKind::Conditional, Some(0x200), 0x108);
        assert!(pred.taken);
        assert_eq!(pred.target, 0x200);
    }

    #[test]
    fn indirect_uses_btb() {
        let mut p = BranchPredictor::default();
        let cold = p.predict(0x300, BranchKind::Indirect, None, 0x308);
        assert_eq!(cold.target, 0x308);
        p.resolve_target(0x300, 0x4000, true);
        let warm = p.predict(0x300, BranchKind::Indirect, None, 0x308);
        assert_eq!(warm.target, 0x4000);
        assert_eq!(p.stats().target_mispredicts, 1);
    }

    #[test]
    fn call_return_pair_round_trips() {
        let mut p = BranchPredictor::default();
        let call = p.predict(0x500, BranchKind::Call, Some(0x1000), 0x508);
        assert_eq!(call.target, 0x1000);
        let ret = p.predict(0x1040, BranchKind::Return, None, 0x1048);
        assert_eq!(ret.target, 0x508);
    }

    #[test]
    fn rsb_checkpoint_repair() {
        let mut p = BranchPredictor::default();
        p.predict(0x500, BranchKind::Call, Some(0x1000), 0x508);
        let cp = p.rsb_checkpoint();
        // Wrong-path call pushed speculatively…
        p.predict(0x600, BranchKind::Call, Some(0x2000), 0x608);
        // …then squashed.
        p.rsb_restore(cp);
        let ret = p.predict(0x1040, BranchKind::Return, None, 0x1048);
        assert_eq!(ret.target, 0x508);
    }

    #[test]
    fn stats_accumulate() {
        let mut p = BranchPredictor::default();
        p.predict(0x100, BranchKind::Conditional, Some(0x200), 0x108);
        p.resolve_conditional(0x100, true, true);
        assert_eq!(p.stats().direction_predictions, 1);
        assert_eq!(p.stats().direction_mispredicts, 1);
        p.reset_stats();
        assert_eq!(p.stats(), &PredictorStats::default());
    }
}
