//! End-to-end fork-campaign tests: the whole paper matrix through
//! [`specrun::pool::run_campaign`], with per-shard leak verdicts and the
//! double-run determinism the repro gate depends on.

use specrun::pool::run_campaign;
use specrun_workloads::pool::{CampaignSpec, ShardStatus};

/// The full eight-shard PHT/BTB/RSB × policy matrix, 24 forked sessions,
/// checked shard by shard against the paper's verdicts.
#[test]
fn paper_matrix_reproduces_per_figure_verdicts() {
    let spec = CampaignSpec::paper_matrix();
    let report = run_campaign(&spec, 0);
    assert!(report.all_done(), "{:?}", report.shards);
    assert!(!report.breaker_tripped);
    assert_eq!(report.total_units(), spec.unit_count());

    let rate = |label: &str| {
        report
            .shards
            .iter()
            .find(|s| s.spec.label() == label)
            .unwrap_or_else(|| panic!("shard {label} missing"))
            .stats
            .leak_rate()
    };
    // Vulnerable runahead leaks in both the Fig. 9 and Fig. 11 shapes.
    assert_eq!(rate("pht_runahead"), 1.0);
    assert_eq!(rate("pht_runahead_s300"), 1.0);
    // Past the ROB, the no-runahead baseline and both §6 defenses hold.
    assert_eq!(rate("pht_norunahead_s300"), 0.0);
    assert_eq!(rate("pht_secure_s300"), 0.0);
    assert_eq!(rate("pht_skipinv_s300"), 0.0);
    // The §4.4 variants leak — including BTB on the defended machine,
    // the paper's finding that the SL scheme does not cover BTB/RSB.
    assert_eq!(rate("btb_runahead_s300"), 1.0);
    assert_eq!(rate("btb_secure_s300"), 1.0);
    assert_eq!(rate("rsb_runahead_s300"), 1.0);

    for shard in &report.shards {
        assert!(matches!(shard.status, ShardStatus::Done { attempts: 1 }), "{:?}", shard);
        let label = shard.spec.label();
        if shard.spec.policy == specrun_workloads::plan::PlanPolicy::NoRunahead {
            assert_eq!(shard.stats.runahead_entries, 0, "{label}: baseline cannot enter runahead");
        } else {
            assert!(shard.stats.runahead_entries > 0, "{label} must enter runahead");
        }
    }
}

/// Two runs of the matrix at different thread counts must agree bit for
/// bit — the in-process half of the CI `pool-repro` artifact gate.
#[test]
fn paper_matrix_is_deterministic_across_thread_counts() {
    let spec = CampaignSpec::paper_matrix();
    let serial = run_campaign(&spec, 1);
    let parallel = run_campaign(&spec, 4);
    assert_eq!(serial, parallel);
    assert_eq!(serial.metrics(), parallel.metrics());
}
