//! End-to-end attack tests: the paper's headline results as assertions.

use specrun::attack::{run_btb_poc, run_pht_poc, run_rsb_poc, PocConfig};
use specrun::session::{Policy, Session};
use specrun_cpu::RunaheadPolicy;

/// Fig. 9: the Fig. 8 PoC leaks the planted secret (86) on the runahead
/// machine, through a clear latency dip in the probe series.
#[test]
fn fig9_pht_poc_leaks_on_runahead_machine() {
    let cfg = PocConfig::default();
    let mut machine = Session::builder().policy(Policy::Runahead).build();
    let outcome = run_pht_poc(&mut machine, &cfg);
    assert!(outcome.runahead_entries >= 1, "attack must trigger runahead");
    assert!(outcome.inv_branches >= 1, "the poisoned branch must stay unresolved");
    assert_eq!(outcome.leaked, Some(86), "timings: {:?}", outcome.timings.as_slice());
    // The dip must be sharp: hit far below the miss floor.
    let dip = outcome.timings.as_slice()[86];
    let floor = outcome.timings.miss_floor(cfg.threshold);
    assert!((dip as f64) < floor / 3.0, "dip {dip} should be far below the miss floor {floor}");
}

/// Fig. 11: with a nop slide longer than the ROB, the no-runahead machine
/// shows no leak while the runahead machine still leaks (secret 127).
#[test]
fn fig11_nop_slide_separates_machines() {
    let cfg = PocConfig::fig11(300);
    let mut plain = Session::builder().policy(Policy::NoRunahead).build();
    let baseline = run_pht_poc(&mut plain, &cfg);
    assert_eq!(baseline.leaked, None, "no-runahead machine must not leak past the ROB");

    let mut runahead = Session::builder().policy(Policy::Runahead).build();
    let attacked = run_pht_poc(&mut runahead, &cfg);
    assert_eq!(attacked.leaked, Some(127), "runahead machine leaks beyond the ROB");
}

/// Short slides leak on *both* machines (ordinary Spectre): the runahead
/// advantage is specifically the windows beyond the ROB.
#[test]
fn short_slide_leaks_even_without_runahead() {
    let cfg = PocConfig::default();
    let mut plain = Session::builder().policy(Policy::NoRunahead).build();
    let outcome = run_pht_poc(&mut plain, &cfg);
    assert_eq!(outcome.leaked, Some(86), "plain Spectre-PHT works within the ROB");
    assert_eq!(outcome.runahead_entries, 0);
}

/// §4.3: the attack applies to precise and vector runahead as well.
#[test]
fn variants_of_runahead_all_leak() {
    for policy in [RunaheadPolicy::Original, RunaheadPolicy::Precise, RunaheadPolicy::Vector] {
        let cfg = PocConfig::fig11(300);
        let mut machine = Session::builder().policy(Policy::Variant(policy)).build();
        let outcome = run_pht_poc(&mut machine, &cfg);
        assert_eq!(
            outcome.leaked,
            Some(127),
            "{policy:?} runahead must leak (runahead_entries={})",
            outcome.runahead_entries
        );
    }
}

/// §4.4 / Fig. 4a: SpectreBTB nested in runahead — cross-address-space BTB
/// training steers the victim's unresolvable indirect jump into the gadget.
#[test]
fn btb_variant_leaks_via_congruent_training() {
    let cfg = PocConfig { nop_slide: 300, ..PocConfig::default() };
    let mut machine = Session::builder().policy(Policy::Runahead).build();
    let outcome = run_btb_poc(&mut machine, &cfg);
    assert!(outcome.runahead_entries >= 1, "victim must enter runahead");
    assert_eq!(outcome.leaked, Some(86));

    // Control: without training, the same victim does not leak.
    let mut fresh = Session::builder().policy(Policy::Runahead).build();
    let cfg2 = PocConfig { nop_slide: 300, ..PocConfig::default() };
    specrun::attack::poc::plant_data(&mut fresh, &cfg2);
    let victim = specrun::attack::build_btb_victim(&cfg2.layout, cfg2.nop_slide);
    let benign = victim.symbol("benign").unwrap();
    fresh.write_value(cfg2.layout.bound_addr + 64, 8, benign);
    fresh.flush(cfg2.layout.bound_addr + 64);
    fresh.run_program(&victim, cfg2.max_cycles);
    assert_eq!(
        fresh.residency(cfg2.layout.probe_addr(86_u64)),
        specrun_mem::HitLevel::Mem,
        "untrained BTB must not reach the gadget"
    );
}

/// §4.4 / Fig. 4b: SpectreRSB nested in runahead — the return address is
/// overwritten with a value derived from the stalling load, the `ret` never
/// resolves, and the RSB-predicted return site (the gadget) executes.
#[test]
fn rsb_variant_leaks_via_poisoned_return() {
    let cfg = PocConfig { nop_slide: 300, ..PocConfig::default() };
    let mut machine = Session::builder().policy(Policy::Runahead).build();
    let outcome = run_rsb_poc(&mut machine, &cfg);
    assert!(outcome.runahead_entries >= 1, "victim must enter runahead");
    assert_eq!(outcome.leaked, Some(86));

    // The architectural path skipped the gadget: no mis-commit happened.
    // (The gadget would have halted at `benign` either way; what matters is
    // that the leak came from runahead, which `runahead_entries` shows.)
}

/// The PoC is deterministic: identical runs leak identical bytes with
/// identical timing series.
#[test]
fn poc_is_deterministic() {
    let run = || {
        let cfg = PocConfig::default();
        let mut machine = Session::builder().policy(Policy::Runahead).build();
        let o = run_pht_poc(&mut machine, &cfg);
        (o.leaked, o.timings.as_slice().to_vec())
    };
    assert_eq!(run(), run());
}

/// Different secrets leak faithfully (sweep a few byte values).
#[test]
fn leaks_arbitrary_secret_values() {
    for secret in [1u8, 42, 171, 254] {
        let cfg = PocConfig { secret, ..PocConfig::default() };
        let mut machine = Session::builder().policy(Policy::Runahead).build();
        let outcome = run_pht_poc(&mut machine, &cfg);
        assert_eq!(outcome.leaked, Some(secret), "secret {secret}");
    }
}
