//! §6 defense verification: the SL-cache scheme and the skip-INV-branch
//! mitigation must block every attack configuration that leaks on the
//! undefended runahead machine.

use specrun::attack::{run_pht_poc, PocConfig};
use specrun::defense::verify_pht_blocked;
use specrun::session::{Policy, Session};

/// Control: the undefended machine leaks (so the defense tests below are
/// meaningful).
#[test]
fn undefended_machine_leaks() {
    let cfg = PocConfig::fig11(300);
    let outcome = run_pht_poc(&mut Session::builder().policy(Policy::Runahead).build(), &cfg);
    assert_eq!(outcome.leaked, Some(127));
}

/// The SL cache blocks the Fig. 11 attack: runahead fills stay out of the
/// hierarchy and the mispredicted branch's entries are deleted.
#[test]
fn sl_cache_blocks_fig11_attack() {
    let cfg = PocConfig::fig11(300);
    let mut machine = Session::builder().policy(Policy::Secure).build();
    let report = verify_pht_blocked(&mut machine, &cfg);
    assert!(report.outcome.runahead_entries >= 1, "attack still triggers runahead");
    assert!(report.blocked(), "leak must be blocked: {:?}", report.outcome.leaked);
    assert!(
        report.sl_deletions > 0,
        "the poisoned branch's entries must be deleted (promotions={}, deletions={})",
        report.sl_promotions,
        report.sl_deletions
    );
}

/// The SL cache blocks the short-window Fig. 9 shape too (the secret access
/// then happens under ordinary speculation — out of the SL cache's scope —
/// so this asserts only the runahead channel is closed; see the nop-slide
/// test above for the runahead-only channel).
#[test]
fn sl_cache_closes_runahead_channel_with_short_slide() {
    // With a slide just over the ROB, plain speculation cannot reach the
    // gadget and the only channel is runahead: the defense must close it.
    let cfg = PocConfig { secret: 86, nop_slide: 260, ..PocConfig::default() };
    let mut machine = Session::builder().policy(Policy::Secure).build();
    let report = verify_pht_blocked(&mut machine, &cfg);
    assert!(report.blocked(), "leaked {:?}", report.outcome.leaked);
}

/// The skip-INV-branch mitigation (§6 closing paragraph) also blocks the
/// attack: speculation past an unresolvable branch is suppressed.
#[test]
fn skip_inv_branches_blocks_fig11_attack() {
    let cfg = PocConfig::fig11(300);
    let mut machine = Session::builder().policy(Policy::SkipInv).build();
    let report = verify_pht_blocked(&mut machine, &cfg);
    assert!(report.outcome.runahead_entries >= 1);
    assert!(report.blocked(), "leaked {:?}", report.outcome.leaked);
    assert!(report.skipped_inv_branches > 0, "mitigation must have fired");
}

/// Reproduction finding: the §6 SL-cache scheme as specified does *not*
/// block the BTB/RSB variants. Its taint seeds come exclusively from
/// conditional-branch predicates (`Btag`/`IS`), and the indirect jumps and
/// returns that steer those variants carry no branch scope — their fills
/// are tagged safe and promote. This test pins the analyzed behaviour.
#[test]
fn finding_sl_cache_does_not_cover_btb_rsb() {
    use specrun::attack::{run_btb_poc, run_rsb_poc};
    let cfg = PocConfig { nop_slide: 300, ..PocConfig::default() };
    let mut m = Session::builder().policy(Policy::Secure).build();
    assert_eq!(run_btb_poc(&mut m, &cfg).leaked, Some(86), "BTB evades the SL scheme");
    let cfg = PocConfig { nop_slide: 300, ..PocConfig::default() };
    let mut m = Session::builder().policy(Policy::Secure).build();
    assert_eq!(run_rsb_poc(&mut m, &cfg).leaked, Some(86), "RSB evades the SL scheme");
}

/// The skip-INV mitigation generalizes to all unresolvable control flow
/// (conditional branches, indirect jumps, poisoned returns) and therefore
/// blocks all three variants.
#[test]
fn skip_inv_blocks_btb_and_rsb_variants() {
    use specrun::attack::{run_btb_poc, run_rsb_poc};
    let cfg = PocConfig { nop_slide: 300, ..PocConfig::default() };
    let mut m = Session::builder().policy(Policy::SkipInv).build();
    assert_eq!(run_btb_poc(&mut m, &cfg).leaked, None);
    let cfg = PocConfig { nop_slide: 300, ..PocConfig::default() };
    let mut m = Session::builder().policy(Policy::SkipInv).build();
    assert_eq!(run_rsb_poc(&mut m, &cfg).leaked, None);
}

/// The defense preserves architectural correctness: a benign program
/// produces identical results on the secure and baseline machines.
#[test]
fn defense_preserves_architecture() {
    use specrun_isa::{AluOp, IntReg, ProgramBuilder};
    let r = |i| IntReg::new(i).unwrap();
    let mut b = ProgramBuilder::new(0x1000);
    b.li(r(1), 0x9000);
    b.flush(r(1), 0);
    b.ld(r(2), r(1), 0);
    b.nops(300); // force a runahead episode
    b.alui(AluOp::Add, r(3), r(2), 7);
    b.for_loop(r(4), 10, |b| {
        b.add(r(3), r(3), r(4));
    });
    b.halt();
    let p = b.build().unwrap();

    let mut plain = Session::builder().policy(Policy::Runahead).build();
    plain.run_program(&p, 1_000_000);
    let mut secure = Session::builder().policy(Policy::Secure).build();
    secure.run_program(&p, 1_000_000);
    assert_eq!(plain.reg(r(3)), secure.reg(r(3)));
    assert!(secure.stats().runahead_entries >= 1);
}

/// Safe runahead prefetches keep their value under the defense: SL entries
/// not guarded by a branch promote to L1 (Algorithm 1 lines 21–23).
#[test]
fn safe_prefetches_promote() {
    use specrun_isa::{IntReg, ProgramBuilder};
    let r = |i| IntReg::new(i).unwrap();
    let mut b = ProgramBuilder::new(0x1000);
    b.li(r(1), 0x9000);
    b.li(r(2), 0x20000);
    b.flush(r(1), 0);
    b.flush(r(2), 0);
    b.ld(r(3), r(1), 0); // stalling load
    b.nops(300);
    b.ld(r(4), r(2), 0); // independent, branch-free runahead load
    b.ld(r(5), r(2), 0); // re-executed after exit: SL hit → promote
    b.halt();
    let p = b.build().unwrap();
    let mut machine = Session::builder().policy(Policy::Secure).build();
    machine.run_program(&p, 1_000_000);
    assert!(machine.stats().runahead_entries >= 1);
    assert!(
        machine.stats().sl_promotions > 0,
        "safe fill must promote (sl_hits={}, promotions={})",
        machine.stats().sl_hits,
        machine.stats().sl_promotions
    );
}
