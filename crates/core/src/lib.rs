//! # specrun
//!
//! A full reproduction of **"SPECRUN: The Danger of Speculative Runahead
//! Execution in Processors"** (DAC 2024): the first transient-execution
//! attack on runahead execution, built on a cycle-level out-of-order
//! simulator ([`specrun_cpu`]) configured per the paper's Table 1.
//!
//! The crate provides:
//!
//! * [`Machine`] — a simulated core whose microarchitectural state (caches,
//!   PHT/BTB/RSB) persists across programs, modelling co-resident processes;
//! * [`attack`] — the Fig. 8 proof of concept ([`attack::run_pht_poc`]) and
//!   the SpectreBTB/RSB variants of §4.4, each leaking a planted secret
//!   byte through a flush+reload cache covert channel;
//! * [`window`] — the §5.3 transient-window measurements (N1/N2/N3)
//!   showing runahead removes the ROB-size limit on transient instructions;
//! * [`defense`] — verification harnesses for the §6 secure-runahead
//!   scheme (SL cache + taint tracking) and the skip-INV-branch mitigation.
//!
//! ## Quick start
//!
//! ```
//! use specrun::attack::{run_pht_poc, PocConfig};
//! use specrun::session::{Policy, Session};
//!
//! let mut session = Session::builder().policy(Policy::Runahead).build();
//! let cfg = PocConfig { training_rounds: 16, ..PocConfig::default() };
//! let outcome = run_pht_poc(&mut session, &cfg);
//! assert_eq!(outcome.leaked, Some(cfg.secret), "SPECRUN leaks on a runahead machine");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod defense;
mod machine;
mod metrics;
pub mod plan;
pub mod pool;
pub mod session;
pub mod window;

pub use machine::Machine;
pub use plan::{
    config_for, layout_for, poc_config_for, run_plan, try_run_plan, try_run_plan_governed,
    try_run_plan_recorded, PlanOutcome,
};
pub use pool::{run_campaign, run_shard, run_unit_fresh, ShardSnapshot, UnitResult};
pub use session::{Policy, Session, SessionBuilder};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::attack::{
        run_btb_poc, run_pht_poc, run_rsb_poc, AttackLayout, PocConfig, PocOutcome, ProbeTimings,
        DEFAULT_THRESHOLD,
    };
    pub use crate::defense::{verify_pht_blocked, DefenseReport};
    pub use crate::session::{leak_trace_for, Policy, Session, SessionBuilder};
    pub use crate::window::{measure_windows, WindowReport};
    pub use crate::Machine;
}
