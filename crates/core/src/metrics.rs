//! [`MetricSource`] implementations for the experiment result types, so
//! the campaign runner can flatten any outcome into named metrics without
//! per-scenario glue.

use specrun_workloads::metrics::{metric_key, MetricSet, MetricSource};

use crate::attack::poc::PocOutcome;
use crate::attack::sweep::SweepReport;
use crate::defense::DefenseReport;
use crate::window::WindowReport;

impl MetricSource for PocOutcome {
    fn emit_metrics(&self, prefix: &str, out: &mut MetricSet) {
        // `leaked` is an Option<u8>; -1 encodes "no byte recovered" so the
        // metric stays numeric and the success flag stays separate.
        let leaked = self.leaked.map_or(-1.0, f64::from);
        out.push(metric_key(prefix, "leaked"), leaked);
        out.push(metric_key(prefix, "expected"), f64::from(self.expected));
        out.push(metric_key(prefix, "success"), f64::from(u8::from(self.success())));
        out.push(metric_key(prefix, "runahead_entries"), self.runahead_entries as f64);
        out.push(metric_key(prefix, "inv_branches"), self.inv_branches as f64);
    }
}

impl MetricSource for WindowReport {
    fn emit_metrics(&self, prefix: &str, out: &mut MetricSet) {
        out.push(metric_key(prefix, "n1"), self.n1 as f64);
        out.push(metric_key(prefix, "n2"), self.n2 as f64);
        out.push(metric_key(prefix, "n3"), self.n3 as f64);
        out.push(metric_key(prefix, "rob_entries"), self.rob_entries as f64);
        out.push(metric_key(prefix, "episodes_n3"), self.episodes_n3 as f64);
        out.push(metric_key(prefix, "shape_holds"), f64::from(u8::from(self.shape_holds())));
    }
}

impl MetricSource for DefenseReport {
    fn emit_metrics(&self, prefix: &str, out: &mut MetricSet) {
        self.outcome.emit_metrics(prefix, out);
        out.push(metric_key(prefix, "blocked"), f64::from(u8::from(self.blocked())));
        out.push(metric_key(prefix, "sl_promotions"), self.sl_promotions as f64);
        out.push(metric_key(prefix, "sl_deletions"), self.sl_deletions as f64);
        out.push(metric_key(prefix, "skipped_inv_branches"), self.skipped_inv_branches as f64);
    }
}

impl MetricSource for SweepReport {
    fn emit_metrics(&self, prefix: &str, out: &mut MetricSet) {
        out.push(metric_key(prefix, "trials"), self.trials.len() as f64);
        out.push(metric_key(prefix, "successes"), self.successes() as f64);
        out.push(metric_key(prefix, "accuracy"), self.accuracy());
        out.push(metric_key(prefix, "mean_runahead_entries"), self.mean_runahead_entries());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::covert::ProbeTimings;

    fn outcome(leaked: Option<u8>) -> PocOutcome {
        PocOutcome {
            timings: ProbeTimings::new(vec![10, 200]),
            leaked,
            expected: 86,
            runahead_entries: 3,
            inv_branches: 1,
        }
    }

    #[test]
    fn poc_outcome_flattens() {
        let mut set = MetricSet::new();
        outcome(Some(86)).emit_metrics("poc", &mut set);
        assert_eq!(set.get("poc_leaked"), Some(86.0));
        assert_eq!(set.get("poc_success"), Some(1.0));
        assert_eq!(set.get("poc_runahead_entries"), Some(3.0));
    }

    #[test]
    fn missing_leak_encodes_negative() {
        let mut set = MetricSet::new();
        outcome(None).emit_metrics("", &mut set);
        assert_eq!(set.get("leaked"), Some(-1.0));
        assert_eq!(set.get("success"), Some(0.0));
    }

    #[test]
    fn window_report_flattens() {
        let r = WindowReport { n1: 255, n2: 480, n3: 840, rob_entries: 256, episodes_n3: 2 };
        let mut set = MetricSet::new();
        r.emit_metrics("w", &mut set);
        assert_eq!(set.get("w_n3"), Some(840.0));
        assert_eq!(set.get("w_shape_holds"), Some(1.0));
    }
}
