//! The [`Machine`]: a convenience facade over the simulated core for attack
//! experiments.
//!
//! A machine owns one core (and through it the memory hierarchy and
//! predictors). Running several programs in sequence on the same machine
//! models co-resident processes time-sharing a physical core: architectural
//! state resets between programs, microarchitectural state — caches,
//! PHT/BTB/RSB, DRAM contention — deliberately persists. That persistence
//! is the paper's threat model.
//!
//! Experiments are set up through
//! [`Session::builder()`](crate::session::Session::builder), the single
//! experiment surface, which also carries the memory layout, planted
//! secrets and an optional [`PipelineObserver`]; the machine itself is the
//! session's execution substrate.

use std::sync::Arc;

use specrun_cpu::probe::{NoopObserver, PipelineObserver};
use specrun_cpu::{CancelToken, Core, CpuConfig, RunExit};
use specrun_isa::{DecodedProgram, IntReg, Program};
use specrun_mem::HitLevel;

/// A simulated machine (core + memory + predictors), generic over an
/// attached [`PipelineObserver`] (detached by default).
#[derive(Debug, Clone)]
pub struct Machine<O: PipelineObserver = NoopObserver> {
    core: Core<O>,
    last_exit: Option<RunExit>,
    first_non_halt: Option<(RunExit, u64)>,
    cancel: Option<CancelToken>,
}

impl Machine {
    /// Creates a detached machine from an explicit configuration.
    pub fn new(config: CpuConfig) -> Machine {
        Machine { core: Core::new(config), last_exit: None, first_non_halt: None, cancel: None }
    }
}

impl<O: PipelineObserver> Machine<O> {
    /// Creates a machine with `observer` attached to its core's pipeline.
    pub fn with_observer(config: CpuConfig, observer: O) -> Machine<O> {
        Machine {
            core: Core::with_observer(config, observer),
            last_exit: None,
            first_non_halt: None,
            cancel: None,
        }
    }

    /// Attaches a supervisor [`CancelToken`]: every subsequent run is
    /// governed — it publishes heartbeats and stops with
    /// [`RunExit::Cancelled`] when the token trips. `None` detaches, and a
    /// detached machine runs the exact zero-cost ungoverned loop.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Loads a program (resets architectural state only; see module docs).
    pub fn load(&mut self, program: &Program) {
        self.core.load_program(program);
    }

    /// Runs until `halt` or the cycle budget is exhausted.
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        // One branch per run call, not per cycle: the governed loop is a
        // separate monomorphization, so the default path stays zero-cost.
        let exit = match self.cancel.clone() {
            Some(token) => self.core.run_governed(max_cycles, &token),
            None => self.core.run(max_cycles),
        };
        self.last_exit = Some(exit);
        if exit != RunExit::Halted && self.first_non_halt.is_none() {
            self.first_non_halt = Some((exit, max_cycles));
        }
        exit
    }

    /// How the most recent [`Machine::run`] ended (`None` before any run).
    pub fn last_exit(&self) -> Option<RunExit> {
        self.last_exit
    }

    /// The first non-halting exit any run on this machine produced, with
    /// the cycle budget that run was given — sticky across program
    /// switches. Multi-program experiments (trainer → victim → probe)
    /// check this once at the end instead of plumbing every intermediate
    /// [`RunExit`] through; `None` means every run halted cleanly.
    pub fn first_non_halt(&self) -> Option<(RunExit, u64)> {
        self.first_non_halt
    }

    /// Discharges the sticky non-halt record, returning it. For programs
    /// whose *normal* termination is not a `halt` — the BTB trainer
    /// architecturally jumps to the gadget address, which has no
    /// instruction in its own image, so `Wedged` is its expected exit —
    /// the experiment acknowledges the exit right after running them, and
    /// the end-of-run health check only sees genuine failures.
    pub fn acknowledge_non_halt(&mut self) -> Option<(RunExit, u64)> {
        self.first_non_halt.take()
    }

    /// Loads an already-predecoded program, sharing its micro-op table
    /// (forked campaign sessions reuse one [`DecodedProgram`] per attack
    /// program instead of re-lowering it per session).
    pub fn load_predecoded(&mut self, decoded: Arc<DecodedProgram>) {
        self.core.load_program_predecoded(decoded);
    }

    /// Loads and runs a program in one call.
    pub fn run_program(&mut self, program: &Program, max_cycles: u64) -> RunExit {
        self.load(program);
        self.run(max_cycles)
    }

    /// Loads and runs an already-predecoded program in one call.
    pub fn run_predecoded(&mut self, decoded: Arc<DecodedProgram>, max_cycles: u64) -> RunExit {
        self.load_predecoded(decoded);
        self.run(max_cycles)
    }

    /// Architectural value of an integer register.
    pub fn reg(&self, r: IntReg) -> u64 {
        self.core.read_int_reg(r)
    }

    /// Writes bytes into simulated memory (host-side setup).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        self.core.mem_mut().write_bytes(addr, bytes);
    }

    /// Writes a little-endian value into simulated memory.
    pub fn write_value(&mut self, addr: u64, width: u64, value: u64) {
        self.core.mem_mut().write_data(addr, width, value);
    }

    /// Reads bytes from simulated memory.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        self.core.mem().read_bytes(addr, len)
    }

    /// Reads bytes from simulated memory into a caller-owned buffer
    /// (allocation-free [`Machine::read_bytes`]).
    pub fn read_bytes_into(&self, addr: u64, out: &mut [u8]) {
        self.core.mem().read_bytes_into(addr, out);
    }

    /// Reads a little-endian value from simulated memory.
    pub fn read_value(&self, addr: u64, width: u64) -> u64 {
        self.core.mem().read_data(addr, width)
    }

    /// Warms the cache line(s) covering `addr .. addr+len` (the "load data
    /// into the cache" helper the paper added to Multi2Sim).
    pub fn warm(&mut self, addr: u64, len: u64) {
        self.core.mem_mut().warm_range(addr, len);
    }

    /// Warms a program's text image on the instruction side, modelling code
    /// that has run recently (trained victims, looping attackers).
    pub fn warm_text(&mut self, program: &specrun_isa::Program) {
        let len = program.text_end() - program.text_base();
        self.core.mem_mut().warm_ifetch_range(program.text_base(), len);
    }

    /// Evicts the line containing `addr` from the whole hierarchy (host-side
    /// `clflush`, modelling a co-resident attacker's eviction).
    pub fn flush(&mut self, addr: u64) {
        let now = self.core.cycle();
        self.core.mem_mut().flush_line(addr, now);
    }

    /// Schedules a `clflush` to fire mid-run at a given cycle (§5.3 ➂: the
    /// co-resident attacker re-flushing the trigger line).
    pub fn schedule_flush(&mut self, cycle: u64, addr: u64) {
        self.core.schedule_flush(cycle, addr);
    }

    /// Where `addr` currently resides, without disturbing state.
    pub fn residency(&self, addr: u64) -> HitLevel {
        self.core.mem().residency(addr)
    }

    /// Direct access to the core.
    pub fn core(&self) -> &Core<O> {
        &self.core
    }

    /// Mutable access to the core.
    pub fn core_mut(&mut self) -> &mut Core<O> {
        &mut self.core
    }

    /// The attached pipeline observer.
    pub fn observer(&self) -> &O {
        self.core.observer()
    }

    /// Mutable access to the attached pipeline observer.
    pub fn observer_mut(&mut self) -> &mut O {
        self.core.observer_mut()
    }

    /// Core statistics.
    pub fn stats(&self) -> &specrun_cpu::CpuStats {
        self.core.stats()
    }

    /// Resets statistics counters.
    pub fn reset_stats(&mut self) {
        self.core.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrun_isa::ProgramBuilder;

    #[test]
    fn microarch_state_survives_program_switch() {
        let mut m = Machine::new(CpuConfig::no_runahead());
        m.warm(0x5000, 8);
        let mut b = ProgramBuilder::new(0x100);
        b.halt();
        m.run_program(&b.build().unwrap(), 1000);
        assert_eq!(m.residency(0x5000), HitLevel::L1, "caches persist across programs");
    }

    #[test]
    fn exit_tracking_is_sticky_across_program_switches() {
        let mut m = Machine::new(CpuConfig::no_runahead());
        assert_eq!(m.last_exit(), None);
        assert_eq!(m.first_non_halt(), None);
        // A loop that never halts within its budget.
        let mut b = ProgramBuilder::new(0x100);
        b.label("spin");
        b.jump("spin");
        let spin = b.build().unwrap();
        assert_eq!(m.run_program(&spin, 64), RunExit::CycleLimit);
        assert_eq!(m.last_exit(), Some(RunExit::CycleLimit));
        assert_eq!(m.first_non_halt(), Some((RunExit::CycleLimit, 64)));
        // A later clean run updates last_exit but not the sticky record.
        let mut b = ProgramBuilder::new(0x100);
        b.halt();
        assert_eq!(m.run_program(&b.build().unwrap(), 1000), RunExit::Halted);
        assert_eq!(m.last_exit(), Some(RunExit::Halted));
        assert_eq!(m.first_non_halt(), Some((RunExit::CycleLimit, 64)));
    }

    #[test]
    fn attached_token_cancels_and_detaching_restores_plain_runs() {
        use specrun_cpu::{CancelReason, CancelToken};
        let mut m = Machine::new(CpuConfig::no_runahead());
        let token = CancelToken::new();
        token.cancel(CancelReason::Deadline);
        m.set_cancel_token(Some(token.clone()));
        let mut b = ProgramBuilder::new(0x100);
        b.label("spin");
        b.jump("spin");
        let spin = b.build().unwrap();
        assert_eq!(m.run_program(&spin, 1_000_000), RunExit::Cancelled);
        assert!(token.beat_cycle() > 0, "the cancelling checkpoint published a heartbeat");
        assert_eq!(m.first_non_halt(), Some((RunExit::Cancelled, 1_000_000)));
        m.set_cancel_token(None);
        m.acknowledge_non_halt();
        assert_eq!(m.run_program(&spin, 64), RunExit::CycleLimit, "detached runs are ungoverned");
    }

    #[test]
    fn host_memory_round_trip() {
        let mut m = Machine::new(CpuConfig::default());
        m.write_bytes(0x1234, b"hello");
        assert_eq!(m.read_bytes(0x1234, 5), b"hello");
        m.write_value(0x2000, 8, 77);
        assert_eq!(m.read_value(0x2000, 8), 77);
    }
}
