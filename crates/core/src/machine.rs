//! The [`Machine`]: a convenience facade over the simulated core for attack
//! experiments.
//!
//! A machine owns one core (and through it the memory hierarchy and
//! predictors). Running several programs in sequence on the same machine
//! models co-resident processes time-sharing a physical core: architectural
//! state resets between programs, microarchitectural state — caches,
//! PHT/BTB/RSB, DRAM contention — deliberately persists. That persistence
//! is the paper's threat model.
//!
//! The named constructors (`runahead()`, `secure()`, …) are deprecated
//! shims: experiments are set up through
//! [`Session::builder()`](crate::session::Session::builder), the single
//! experiment surface, which also carries the memory layout, planted
//! secrets and an optional [`PipelineObserver`].

use specrun_cpu::probe::{NoopObserver, PipelineObserver};
use specrun_cpu::{Core, CpuConfig, RunExit, RunaheadPolicy, RunaheadTrigger, SecureConfig};
use specrun_isa::{IntReg, Program};
use specrun_mem::HitLevel;

/// A simulated machine (core + memory + predictors), generic over an
/// attached [`PipelineObserver`] (detached by default).
#[derive(Debug, Clone)]
pub struct Machine<O: PipelineObserver = NoopObserver> {
    core: Core<O>,
}

impl Machine {
    /// Creates a detached machine from an explicit configuration.
    pub fn new(config: CpuConfig) -> Machine {
        Machine { core: Core::new(config) }
    }

    /// The paper's *runahead machine* (Table 1, original runahead).
    #[deprecated(since = "0.1.0", note = "use `Session::builder().policy(Policy::Runahead)`")]
    pub fn runahead() -> Machine {
        Machine::new(CpuConfig::default())
    }

    /// The paper's *no-runahead machine* (Table 1, runahead disabled).
    #[deprecated(since = "0.1.0", note = "use `Session::builder().policy(Policy::NoRunahead)`")]
    pub fn no_runahead() -> Machine {
        Machine::new(CpuConfig::no_runahead())
    }

    /// A runahead machine with the relaxed "data cache miss" trigger used by
    /// the paper's §5.3 scenario ➂.
    #[deprecated(
        since = "0.1.0",
        note = "use `Session::builder().policy(Policy::HeadMissTrigger)`"
    )]
    pub fn runahead_head_miss() -> Machine {
        let mut cfg = CpuConfig::default();
        cfg.runahead.trigger = RunaheadTrigger::HeadMiss;
        Machine::new(cfg)
    }

    /// A machine running the given runahead variant (§4.3).
    #[deprecated(since = "0.1.0", note = "use `Session::builder().policy(Policy::Variant(..))`")]
    pub fn with_policy(policy: RunaheadPolicy) -> Machine {
        let mut cfg = CpuConfig::default();
        cfg.runahead.policy = policy;
        Machine::new(cfg)
    }

    /// The §6 secure runahead machine (SL cache + taint tracking).
    #[deprecated(since = "0.1.0", note = "use `Session::builder().policy(Policy::Secure)`")]
    pub fn secure() -> Machine {
        Machine::new(CpuConfig::secure_runahead())
    }

    /// The §6 alternative mitigation (skip INV-source branches).
    #[deprecated(since = "0.1.0", note = "use `Session::builder().policy(Policy::SkipInv)`")]
    pub fn skip_inv() -> Machine {
        let mut cfg = CpuConfig::default();
        cfg.runahead.secure = SecureConfig::skip_inv_default();
        Machine::new(cfg)
    }
}

impl<O: PipelineObserver> Machine<O> {
    /// Creates a machine with `observer` attached to its core's pipeline.
    pub fn with_observer(config: CpuConfig, observer: O) -> Machine<O> {
        Machine { core: Core::with_observer(config, observer) }
    }

    /// Loads a program (resets architectural state only; see module docs).
    pub fn load(&mut self, program: &Program) {
        self.core.load_program(program);
    }

    /// Runs until `halt` or the cycle budget is exhausted.
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        self.core.run(max_cycles)
    }

    /// Loads and runs a program in one call.
    pub fn run_program(&mut self, program: &Program, max_cycles: u64) -> RunExit {
        self.load(program);
        self.run(max_cycles)
    }

    /// Architectural value of an integer register.
    pub fn reg(&self, r: IntReg) -> u64 {
        self.core.read_int_reg(r)
    }

    /// Writes bytes into simulated memory (host-side setup).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        self.core.mem_mut().write_bytes(addr, bytes);
    }

    /// Writes a little-endian value into simulated memory.
    pub fn write_value(&mut self, addr: u64, width: u64, value: u64) {
        self.core.mem_mut().write_data(addr, width, value);
    }

    /// Reads bytes from simulated memory.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        self.core.mem().read_bytes(addr, len)
    }

    /// Reads bytes from simulated memory into a caller-owned buffer
    /// (allocation-free [`Machine::read_bytes`]).
    pub fn read_bytes_into(&self, addr: u64, out: &mut [u8]) {
        self.core.mem().read_bytes_into(addr, out);
    }

    /// Reads a little-endian value from simulated memory.
    pub fn read_value(&self, addr: u64, width: u64) -> u64 {
        self.core.mem().read_data(addr, width)
    }

    /// Warms the cache line(s) covering `addr .. addr+len` (the "load data
    /// into the cache" helper the paper added to Multi2Sim).
    pub fn warm(&mut self, addr: u64, len: u64) {
        self.core.mem_mut().warm_range(addr, len);
    }

    /// Warms a program's text image on the instruction side, modelling code
    /// that has run recently (trained victims, looping attackers).
    pub fn warm_text(&mut self, program: &specrun_isa::Program) {
        let len = program.text_end() - program.text_base();
        self.core.mem_mut().warm_ifetch_range(program.text_base(), len);
    }

    /// Evicts the line containing `addr` from the whole hierarchy (host-side
    /// `clflush`, modelling a co-resident attacker's eviction).
    pub fn flush(&mut self, addr: u64) {
        let now = self.core.cycle();
        self.core.mem_mut().flush_line(addr, now);
    }

    /// Schedules a `clflush` to fire mid-run at a given cycle (§5.3 ➂: the
    /// co-resident attacker re-flushing the trigger line).
    pub fn schedule_flush(&mut self, cycle: u64, addr: u64) {
        self.core.schedule_flush(cycle, addr);
    }

    /// Where `addr` currently resides, without disturbing state.
    pub fn residency(&self, addr: u64) -> HitLevel {
        self.core.mem().residency(addr)
    }

    /// Direct access to the core.
    pub fn core(&self) -> &Core<O> {
        &self.core
    }

    /// Mutable access to the core.
    pub fn core_mut(&mut self) -> &mut Core<O> {
        &mut self.core
    }

    /// The attached pipeline observer.
    pub fn observer(&self) -> &O {
        self.core.observer()
    }

    /// Mutable access to the attached pipeline observer.
    pub fn observer_mut(&mut self) -> &mut O {
        self.core.observer_mut()
    }

    /// Core statistics.
    pub fn stats(&self) -> &specrun_cpu::CpuStats {
        self.core.stats()
    }

    /// Resets statistics counters.
    pub fn reset_stats(&mut self) {
        self.core.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Policy, Session};
    use specrun_isa::ProgramBuilder;

    #[test]
    fn microarch_state_survives_program_switch() {
        let mut m = Machine::new(CpuConfig::no_runahead());
        m.warm(0x5000, 8);
        let mut b = ProgramBuilder::new(0x100);
        b.halt();
        m.run_program(&b.build().unwrap(), 1000);
        assert_eq!(m.residency(0x5000), HitLevel::L1, "caches persist across programs");
    }

    /// The deprecated preset shims must agree with the `Session` policies
    /// they point at, for the one release both exist.
    #[test]
    #[allow(deprecated)]
    fn deprecated_presets_match_session_policies() {
        let cases: [(Machine, Policy); 5] = [
            (Machine::runahead(), Policy::Runahead),
            (Machine::no_runahead(), Policy::NoRunahead),
            (Machine::runahead_head_miss(), Policy::HeadMissTrigger),
            (Machine::secure(), Policy::Secure),
            (Machine::skip_inv(), Policy::SkipInv),
        ];
        for (machine, policy) in cases {
            let session = Session::builder().policy(policy).build();
            assert_eq!(
                format!("{:?}", machine.core().config()),
                format!("{:?}", session.machine().core().config()),
                "preset and session policy {policy:?} must configure identical machines"
            );
        }
    }

    #[test]
    fn host_memory_round_trip() {
        let mut m = Machine::new(CpuConfig::default());
        m.write_bytes(0x1234, b"hello");
        assert_eq!(m.read_bytes(0x1234, 5), b"hello");
        m.write_value(0x2000, 8, 77);
        assert_eq!(m.read_value(0x2000, 8), 77);
    }
}
