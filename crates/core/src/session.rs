//! The [`Session`]: one experiment surface for every SPECRUN artifact.
//!
//! Before this module each experiment hand-plumbed a [`Machine`] preset
//! plus its own layout/warm/plant/run/readback sequence. A session bundles
//! the whole experiment state — machine configuration, attack memory
//! layout, planted secret, warmed ranges, and an optional
//! [`PipelineObserver`] — behind one builder, and is the path the attack,
//! defense and window experiments, the lab registry and the examples all
//! share.
//!
//! ```
//! use specrun::attack::{run_pht_poc, PocConfig};
//! use specrun::session::{Policy, Session};
//!
//! let mut session = Session::builder().policy(Policy::Runahead).build();
//! let cfg = PocConfig { training_rounds: 16, ..PocConfig::default() };
//! let outcome = run_pht_poc(&mut session, &cfg);
//! assert_eq!(outcome.leaked, Some(cfg.secret), "SPECRUN leaks on the runahead machine");
//! ```
//!
//! The builder covers the full setup sequence; every step is optional:
//!
//! ```
//! use specrun::attack::AttackLayout;
//! use specrun::session::{Policy, Session};
//! use specrun_cpu::probe::CountingObserver;
//!
//! let layout = AttackLayout::default();
//! let session = Session::builder()
//!     .config(specrun_cpu::CpuConfig::default()) // explicit machine config
//!     .policy(Policy::Secure)                    // then a named policy on top
//!     .layout(layout)                            // attack memory geometry
//!     .plant_secret(0xAB)                        // plant + warm the PoC data
//!     .warm(0x9000, 64)                          // extra warmed ranges
//!     .observer(CountingObserver::default())     // ground-truth event tracing
//!     .build();
//! assert_eq!(session.read_bytes(layout.secret_addr, 1), vec![0xAB]);
//! assert!(session.machine().core().config().runahead.secure.sl_cache);
//! ```

use std::io;
use std::ops::{Deref, DerefMut};
use std::path::PathBuf;

use specrun_cpu::probe::{LeakTraceObserver, NoopObserver, PipelineObserver};
use specrun_cpu::{CpuConfig, RunaheadPolicy, RunaheadTrigger, SecureConfig};
use specrun_trace::{PipelineEvent, RecordingObserver};

use crate::attack::covert::ProbeTimings;
use crate::attack::layout::AttackLayout;
use crate::attack::poc::PocOutcome;
use crate::machine::Machine;

/// The paper's machine policies, as one closed choice instead of six named
/// constructors. Applied on top of whatever configuration the builder holds,
/// so `.config(custom).policy(Policy::Secure)` composes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Table 1 with original runahead (the vulnerable machine).
    Runahead,
    /// Table 1 with runahead disabled (the baseline).
    NoRunahead,
    /// Runahead with the relaxed "data cache miss" entry trigger (§5.3 ➂).
    HeadMissTrigger,
    /// A specific runahead variant (§4.3: original / precise / vector).
    Variant(RunaheadPolicy),
    /// The §6 secure-runahead defense (SL cache + taint tracking).
    Secure,
    /// The §6 alternative mitigation (skip INV-source branches).
    SkipInv,
}

impl Policy {
    /// Applies the policy to a configuration.
    pub fn apply(self, cfg: &mut CpuConfig) {
        match self {
            Policy::Runahead => {
                cfg.runahead.policy = RunaheadPolicy::Original;
            }
            Policy::NoRunahead => {
                cfg.runahead.policy = RunaheadPolicy::Disabled;
            }
            Policy::HeadMissTrigger => {
                cfg.runahead.trigger = RunaheadTrigger::HeadMiss;
            }
            Policy::Variant(policy) => {
                cfg.runahead.policy = policy;
            }
            Policy::Secure => {
                cfg.runahead.secure = SecureConfig::sl_cache_default();
            }
            Policy::SkipInv => {
                cfg.runahead.secure = SecureConfig::skip_inv_default();
            }
        }
    }
}

/// Builder for a [`Session`]; see the [module docs](self) for the chain.
#[derive(Debug, Clone)]
pub struct SessionBuilder<O: PipelineObserver = NoopObserver> {
    config: CpuConfig,
    layout: AttackLayout,
    secret: Option<u8>,
    warm: Vec<(u64, u64)>,
    observer: O,
    trace_path: Option<PathBuf>,
}

impl Default for SessionBuilder {
    fn default() -> SessionBuilder {
        SessionBuilder {
            config: CpuConfig::default(),
            layout: AttackLayout::default(),
            secret: None,
            warm: Vec::new(),
            observer: NoopObserver,
            trace_path: None,
        }
    }
}

impl<O: PipelineObserver> SessionBuilder<O> {
    /// Replaces the machine configuration wholesale (default: Table 1 with
    /// original runahead). Call before [`SessionBuilder::policy`] if you
    /// use both — policies edit the configuration in place.
    pub fn config(mut self, config: CpuConfig) -> Self {
        self.config = config;
        self
    }

    /// Applies a named machine policy on top of the current configuration.
    pub fn policy(mut self, policy: Policy) -> Self {
        policy.apply(&mut self.config);
        self
    }

    /// Sets the attack memory layout ([`AttackLayout::default`] otherwise);
    /// [`Session::probe_timings`] and secret planting read it.
    pub fn layout(mut self, layout: AttackLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Plants `secret` (and the PoC's arrays, bound and probe geometry) in
    /// machine memory at build, per the paper's preconditions — see
    /// [`Session::plant`].
    pub fn plant_secret(mut self, secret: u8) -> Self {
        self.secret = Some(secret);
        self
    }

    /// Warms the cache line(s) covering `addr .. addr+len` at build (after
    /// any planting; may be called repeatedly).
    pub fn warm(mut self, addr: u64, len: u64) -> Self {
        self.warm.push((addr, len));
        self
    }

    /// Attaches a pipeline observer (see [`specrun_cpu::probe`]). The
    /// observer rides the session's type, so a detached session stays
    /// zero-cost.
    pub fn observer<P: PipelineObserver>(self, observer: P) -> SessionBuilder<P> {
        SessionBuilder {
            config: self.config,
            layout: self.layout,
            secret: self.secret,
            warm: self.warm,
            observer,
            trace_path: self.trace_path,
        }
    }

    /// Arms trace recording: a [`RecordingObserver`] is composed beside
    /// the current observer (which keeps seeing every event), and
    /// [`Session::write_trace`] later serializes the captured stream to
    /// `path` as a binary trace log (see `specrun-trace`). Call after
    /// [`SessionBuilder::observer`] — attaching a new observer replaces
    /// the whole pair, recorder included.
    pub fn trace(self, path: impl Into<PathBuf>) -> SessionBuilder<(O, RecordingObserver)> {
        SessionBuilder {
            config: self.config,
            layout: self.layout,
            secret: self.secret,
            warm: self.warm,
            observer: (self.observer, RecordingObserver::new()),
            trace_path: Some(path.into()),
        }
    }

    /// Builds the session: machine constructed, secret planted, ranges
    /// warmed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// ([`CpuConfig::validate`]).
    pub fn build(self) -> Session<O> {
        let mut session = Session {
            machine: Machine::with_observer(self.config, self.observer),
            layout: self.layout,
            trace_path: self.trace_path,
        };
        if let Some(secret) = self.secret {
            let layout = session.layout;
            session.plant(&layout, secret);
        }
        for (addr, len) in self.warm {
            session.machine.warm(addr, len);
        }
        session
    }
}

/// One configured experiment: a machine plus the attack-layout context the
/// readback helpers need. Dereferences to [`Machine`], so every machine
/// facility (memory setup, program runs, register/stat readback) is
/// available directly on the session.
#[derive(Debug, Clone)]
pub struct Session<O: PipelineObserver = NoopObserver> {
    machine: Machine<O>,
    layout: AttackLayout,
    trace_path: Option<PathBuf>,
}

impl Session {
    /// Starts a builder with the default (Table 1 runahead) machine.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }
}

impl<O: PipelineObserver> Session<O> {
    /// The session's attack memory layout.
    pub fn layout(&self) -> &AttackLayout {
        &self.layout
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<O> {
        &self.machine
    }

    /// Mutable access to the underlying machine.
    pub fn machine_mut(&mut self) -> &mut Machine<O> {
        &mut self.machine
    }

    /// Plants the attack's data per the paper's preconditions (the secret
    /// is the victim's recently-used data — cached; `array1`, its bound and
    /// the probe array are set up; the probe array is cold) and adopts
    /// `layout` as the session's layout for later readback.
    pub fn plant(&mut self, layout: &AttackLayout, secret: u8) {
        self.layout = *layout;
        self.machine.write_value(layout.bound_addr, 8, layout.bound_value);
        // array1's in-bounds content is zero; the training access hits
        // entry 0.
        self.machine.write_bytes(layout.array1_base, &vec![0u8; layout.bound_value as usize]);
        self.machine.write_bytes(layout.secret_addr, &[secret]);
        // Victim data is warm (the victim used it recently); the trigger
        // line D starts warm too — the attacker flushes it in-program.
        self.machine.warm(layout.bound_addr, 8);
        self.machine.warm(layout.array1_base, layout.bound_value);
        self.machine.warm(layout.secret_addr, 1);
        // Probe array cold.
        for v in 0..layout.probe_entries {
            self.machine.flush(layout.probe_addr(v));
        }
    }

    /// Reads the probe loop's results buffer (per the session layout) from
    /// machine memory.
    pub fn probe_timings(&self) -> ProbeTimings {
        ProbeTimings::read_from(&self.machine, &self.layout)
    }

    /// The typed outcome of an attack run: probe timings read back, the
    /// byte they leak (under `threshold`, ignoring `exclude` indices), and
    /// the runahead/INV-branch signature counters.
    pub fn outcome_with(&self, expected: u8, threshold: u64, exclude: &[usize]) -> PocOutcome {
        let timings = self.probe_timings();
        let leaked = timings.leaked_byte(threshold, exclude);
        let stats = self.machine.stats();
        PocOutcome {
            leaked,
            expected,
            runahead_entries: stats.runahead_entries,
            inv_branches: stats.inv_unresolved_branches,
            timings,
        }
    }

    /// [`Session::outcome_with`] at the default threshold, excluding probe
    /// entry 0 (warmed architecturally by PHT training).
    pub fn outcome(&self, expected: u8) -> PocOutcome {
        self.outcome_with(expected, crate::attack::covert::DEFAULT_THRESHOLD, &[0])
    }
}

impl<O: PipelineObserver> Session<(O, RecordingObserver)> {
    /// The pipeline events recorded so far (the builder's
    /// [`SessionBuilder::trace`] composed the recorder).
    pub fn recorded_events(&self) -> &[PipelineEvent] {
        self.machine.observer().1.events()
    }

    /// Serializes the recorded event stream to the path given to
    /// [`SessionBuilder::trace`], atomically, and returns it. The log is a
    /// pure function of the recorded events — byte-stable across runs.
    pub fn write_trace(&self) -> io::Result<PathBuf> {
        let Some(path) = self.trace_path.clone() else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "session has no trace path (use SessionBuilder::trace)",
            ));
        };
        specrun_trace::write_trace_file(&path, self.recorded_events())?;
        Ok(path)
    }
}

impl<O: PipelineObserver> Deref for Session<O> {
    type Target = Machine<O>;

    fn deref(&self) -> &Machine<O> {
        &self.machine
    }
}

impl<O: PipelineObserver> DerefMut for Session<O> {
    fn deref_mut(&mut self) -> &mut Machine<O> {
        &mut self.machine
    }
}

/// A [`LeakTraceObserver`] pre-configured for `layout`'s probe array on a
/// machine with `config`'s line size, watching the secret line — the
/// ground-truth tracer for the flush+reload channel the layout describes.
pub fn leak_trace_for(layout: &AttackLayout, config: &CpuConfig) -> LeakTraceObserver {
    LeakTraceObserver::new(
        layout.probe_base,
        layout.probe_stride,
        layout.probe_entries,
        config.mem.l1d.line_bytes,
    )
    .watch_secret(layout.secret_addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrun_cpu::probe::CountingObserver;
    use specrun_isa::{IntReg, ProgramBuilder};
    use specrun_mem::HitLevel;

    #[test]
    fn builder_plants_and_warms() {
        let layout = AttackLayout::default();
        let session = Session::builder()
            .policy(Policy::NoRunahead)
            .layout(layout)
            .plant_secret(0xab)
            .warm(0x9000, 8)
            .build();
        assert_eq!(session.read_value(layout.bound_addr, 8), layout.bound_value);
        assert_eq!(session.read_bytes(layout.secret_addr, 1), vec![0xab]);
        assert_ne!(session.residency(layout.secret_addr), HitLevel::Mem);
        assert_eq!(session.residency(layout.probe_addr(7)), HitLevel::Mem, "probe stays cold");
        assert_eq!(session.residency(0x9000), HitLevel::L1, "extra warm range applied");
    }

    #[test]
    fn policies_configure_expected_machines() {
        let cfg = |p| {
            let s = Session::builder().policy(p).build();
            s.machine().core().config().clone()
        };
        assert_eq!(cfg(Policy::NoRunahead).runahead.policy, RunaheadPolicy::Disabled);
        assert_eq!(cfg(Policy::Runahead).runahead.policy, RunaheadPolicy::Original);
        assert_eq!(cfg(Policy::HeadMissTrigger).runahead.trigger, RunaheadTrigger::HeadMiss);
        assert_eq!(
            cfg(Policy::Variant(RunaheadPolicy::Vector)).runahead.policy,
            RunaheadPolicy::Vector
        );
        assert!(cfg(Policy::Secure).runahead.secure.sl_cache);
        assert!(cfg(Policy::SkipInv).runahead.secure.skip_inv_branches);
    }

    #[test]
    fn session_runs_programs_through_deref() {
        let r1 = IntReg::new(1).unwrap();
        let mut b = ProgramBuilder::new(0x1000);
        b.li(r1, 2);
        b.addi(r1, r1, 40);
        b.halt();
        let program = b.build().unwrap();
        let mut session = Session::builder().observer(CountingObserver::default()).build();
        session.run_program(&program, 10_000);
        assert_eq!(session.reg(r1), 42);
        assert_eq!(session.observer().commits, session.stats().committed);
    }

    #[test]
    fn trace_builder_records_and_writes() {
        let r1 = IntReg::new(1).unwrap();
        let mut b = ProgramBuilder::new(0x1000);
        b.li(r1, 7);
        b.halt();
        let program = b.build().unwrap();
        let path =
            std::env::temp_dir().join(format!("specrun_session_{}.trace", std::process::id()));
        let mut session =
            Session::builder().observer(CountingObserver::default()).trace(path.clone()).build();
        session.run_program(&program, 10_000);
        assert!(!session.recorded_events().is_empty(), "commits must be recorded");
        // The composed analysis observer still sees the live stream.
        assert_eq!(session.observer().0.commits, session.stats().committed);
        let written = session.write_trace().unwrap();
        assert_eq!(written, path);
        let decoded = specrun_trace::read_trace_file(&written).unwrap();
        assert_eq!(decoded.events, session.recorded_events());
        let _ = std::fs::remove_file(written);
    }

    #[test]
    fn write_trace_without_a_path_is_an_input_error() {
        let session = Session::builder()
            .observer((CountingObserver::default(), specrun_trace::RecordingObserver::new()))
            .build();
        // The observer pair matches the traced shape, but no path was armed.
        let err = session.write_trace().expect_err("no path");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn leak_trace_for_matches_layout() {
        let layout = AttackLayout::default();
        let tracer = leak_trace_for(&layout, &CpuConfig::default());
        assert_eq!(tracer.fills_per_entry().len(), layout.probe_entries as usize);
        assert_eq!(tracer.transient_secret_fills(), 0);
    }
}
