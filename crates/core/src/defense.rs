//! Defense verification: the §6 secure-runahead scheme against the attacks.

use specrun_cpu::probe::PipelineObserver;

use crate::attack::poc::{run_pht_poc, PocConfig, PocOutcome};
use crate::session::Session;

/// Outcome of running an attack against a defended machine.
#[derive(Debug, Clone)]
pub struct DefenseReport {
    /// The attack outcome on the defended machine.
    pub outcome: PocOutcome,
    /// SL-cache entries promoted to L1 (safe data kept its prefetch value).
    pub sl_promotions: u64,
    /// SL-cache entries deleted on branch misprediction.
    pub sl_deletions: u64,
    /// INV branches suppressed by the skip-INV mitigation.
    pub skipped_inv_branches: u64,
}

impl DefenseReport {
    /// Whether the defense blocked the leak.
    pub fn blocked(&self) -> bool {
        !self.outcome.success()
    }
}

/// Runs the Fig. 8 PoC against `session`'s machine and reports whether the
/// planted secret stayed hidden.
pub fn verify_pht_blocked<O: PipelineObserver>(
    session: &mut Session<O>,
    cfg: &PocConfig,
) -> DefenseReport {
    let outcome = run_pht_poc(session, cfg);
    let stats = session.stats();
    DefenseReport {
        sl_promotions: stats.sl_promotions,
        sl_deletions: stats.sl_deletions,
        skipped_inv_branches: stats.skipped_inv_branches,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_blocked_logic() {
        let cfg = PocConfig::default();
        let mut s = crate::Session::builder().policy(crate::Policy::NoRunahead).build();
        // On the baseline machine with no nop slide the leak may succeed via
        // plain speculation; this test only checks report plumbing.
        let report = verify_pht_blocked(&mut s, &cfg);
        assert_eq!(report.blocked(), !report.outcome.success());
    }
}
