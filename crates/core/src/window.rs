//! Transient-window measurement (paper §5.3, Fig. 10).
//!
//! Three scenarios measure how many instructions the machine can hold or
//! pseudo-retire behind a stalled DRAM load:
//!
//! * **➀ normal, flush once** — the no-runahead machine. The window is the
//!   ROB occupancy behind the stalled head: `N1 ≈ ROB − 1` (paper: 255).
//! * **➁ runahead, flush once** — one runahead episode. The window is
//!   everything in the ROB at entry plus everything dispatched during the
//!   episode: `N2 > ROB` (paper: 480).
//! * **➂ runahead, flush repeatedly** — a co-resident attacker re-flushes
//!   the trigger line so the reloaded line misses again and a second
//!   episode chains onto the first: `N3 > N2` (paper: 840). The paper calls
//!   this probabilistic; here the host schedules the flushes precisely.

use specrun_cpu::CpuConfig;
use specrun_isa::{IntReg, Program, ProgramBuilder};

use crate::session::{Policy, Session};

/// Address of the flushed trigger line `x` in the Fig. 10 snippets.
const TRIGGER_ADDR: u64 = 0x0009_0000;

/// The runahead machine with efficiency throttling disabled: a pure nop
/// window yields no prefetches, and the paper's §5.3 measurement assumes
/// the raw scheme re-enters whenever the trigger condition holds.
fn unthrottled_runahead() -> Session {
    let mut cfg = CpuConfig::default();
    cfg.runahead.min_episode_yield = 0;
    Session::builder().config(cfg).build()
}

/// The three window sizes of §5.3 plus context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WindowReport {
    /// ➀ normal machine, flush once (paper: 255).
    pub n1: u64,
    /// ➁ runahead machine, flush once (paper: 480).
    pub n2: u64,
    /// ➂ runahead machine, repeated flush (paper: 840).
    pub n3: u64,
    /// ROB capacity for reference (paper: 256).
    pub rob_entries: u64,
    /// Runahead episodes observed in scenario ➂.
    pub episodes_n3: u64,
}

impl WindowReport {
    /// The qualitative claims of §5.3: `N1 < ROB ≤ N2 < N3`.
    pub fn shape_holds(&self) -> bool {
        self.n1 < self.rob_entries && self.n2 > self.rob_entries && self.n3 > self.n2
    }
}

/// Builds the Fig. 10 measurement snippet: `clflush x; load x; nop…; halt`.
pub fn build_window_program(nops: usize) -> Program {
    let mut b = ProgramBuilder::new(0x1000);
    let rx = IntReg::new(1).unwrap();
    b.li(rx, TRIGGER_ADDR as i32);
    b.flush(rx, 0);
    b.ld(IntReg::new(2).unwrap(), rx, 0);
    b.nops(nops);
    b.halt();
    b.build().expect("window program is closed")
}

/// Scenario ➀: the no-runahead machine's window (`N1`).
pub fn measure_n1(nops: usize) -> u64 {
    let mut m = Session::builder().policy(Policy::NoRunahead).build();
    m.warm(TRIGGER_ADDR, 8);
    m.run_program(&build_window_program(nops), 1_000_000);
    m.stats().max_stall_window
}

/// Scenario ➁: one runahead episode's window (`N2`).
pub fn measure_n2(nops: usize) -> u64 {
    let mut m = unthrottled_runahead();
    m.warm(TRIGGER_ADDR, 8);
    m.run_program(&build_window_program(nops), 1_000_000);
    m.stats().total_episode_window
}

/// Scenario ➂: chained episodes via host-scheduled re-flushes (`N3`).
///
/// Returns the cumulative window and the number of episodes.
pub fn measure_n3(nops: usize, extra_flushes: usize) -> (u64, u64) {
    let mut m = unthrottled_runahead();
    m.warm(TRIGGER_ADDR, 8);
    m.load(&build_window_program(nops));
    // The first episode ends when the trigger load's data returns (~200
    // cycles after it issues). Re-flushing in a band around each expected
    // completion chains further episodes, like the paper's co-resident
    // attacker who "waits until all instructions in the ROB have retired
    // before immediately flushing x".
    let mut cycle = 180;
    for _ in 0..extra_flushes {
        for offset in (0..240).step_by(12) {
            m.schedule_flush(cycle + offset, TRIGGER_ADDR);
        }
        cycle += 240;
    }
    m.run(2_000_000);
    (m.stats().total_episode_window, m.stats().runahead_exits)
}

/// Runs all three scenarios — in parallel, one machine per worker — with a
/// slide long enough that the window, not the program, is the limit.
pub fn measure_windows() -> WindowReport {
    let nops = 4096;
    let scenarios = [1u8, 2, 3];
    let results = specrun_workloads::parallel_map(&scenarios, 3, |_, &s| match s {
        1 => (measure_n1(nops), 0),
        2 => (measure_n2(nops), 0),
        _ => measure_n3(nops, 1),
    });
    let (n3, episodes_n3) = results[2];
    WindowReport { n1: results[0].0, n2: results[1].0, n3, rob_entries: 256, episodes_n3 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_shape() {
        let p = build_window_program(10);
        assert_eq!(p.len(), 3 + 10 + 1);
    }

    #[test]
    fn n1_is_rob_minus_one() {
        assert_eq!(measure_n1(2048), 255);
    }

    #[test]
    fn n2_exceeds_rob() {
        let n2 = measure_n2(2048);
        assert!(n2 > 256, "N2 = {n2} must exceed the ROB");
    }

    #[test]
    fn n3_exceeds_n2() {
        let n2 = measure_n2(4096);
        let (n3, episodes) = measure_n3(4096, 1);
        assert!(episodes >= 2, "re-flush must chain a second episode (got {episodes})");
        assert!(n3 > n2, "N3 = {n3} must exceed N2 = {n2}");
    }

    #[test]
    fn full_report_shape() {
        let report = measure_windows();
        assert!(report.shape_holds(), "{report:?}");
    }
}
