//! The `Plan → Session` bridge: turns a fuzzed [`Plan`] into a configured
//! [`Session`] and runs it to a [`PlanOutcome`].
//!
//! The plan grammar lives in `specrun-workloads` (pure data, no dependency
//! on this crate); the invariant registry lives in `specrun-lab`. This
//! module owns the middle: mapping plan policies onto session
//! [`Policy`]s, composing the machine configuration (policy first, then
//! the fuzzed knobs — so a Secure plan's fuzzed SL geometry survives), and
//! driving the right PoC flavour with the ground-truth observers attached.

use specrun_cpu::probe::{CountingObserver, NoopObserver, PipelineEvent, PipelineObserver};
use specrun_cpu::{CancelToken, CpuConfig, CpuStats, RunExit, RunaheadPolicy};
use specrun_trace::RecordingObserver;
use specrun_workloads::harness::RunError;
use specrun_workloads::plan::{GadgetKind, Plan, PlanPolicy};

use crate::attack::{run_btb_poc, run_pht_poc, run_rsb_poc, AttackLayout, PocConfig};
use crate::session::{leak_trace_for, Policy, Session};

impl From<PlanPolicy> for Policy {
    fn from(p: PlanPolicy) -> Policy {
        match p {
            PlanPolicy::Runahead => Policy::Runahead,
            PlanPolicy::NoRunahead => Policy::NoRunahead,
            PlanPolicy::HeadMissTrigger => Policy::HeadMissTrigger,
            PlanPolicy::Precise => Policy::Variant(RunaheadPolicy::Precise),
            PlanPolicy::Vector => Policy::Variant(RunaheadPolicy::Vector),
            PlanPolicy::Secure => Policy::Secure,
            PlanPolicy::SkipInv => Policy::SkipInv,
        }
    }
}

/// The machine configuration a plan describes: Table 1, then the plan's
/// policy, then its knobs (in that order — knobs refine the policy's
/// machine, and defense-only knobs are gated on the policy having armed
/// the defense).
pub fn config_for(plan: &Plan) -> CpuConfig {
    let mut cfg = CpuConfig::default();
    Policy::from(plan.policy).apply(&mut cfg);
    plan.knobs.apply(&mut cfg);
    cfg
}

/// The attack layout a plan describes.
pub fn layout_for(plan: &Plan) -> AttackLayout {
    let l = &plan.layout;
    AttackLayout {
        bound_addr: l.bound_addr,
        bound_value: l.bound_value,
        array1_base: l.array1_base,
        secret_addr: l.secret_addr,
        probe_base: l.probe_base,
        probe_stride: l.probe_stride,
        probe_entries: l.probe_entries,
        results_base: l.results_base,
    }
}

/// The PoC configuration a plan describes.
pub fn poc_config_for(plan: &Plan) -> PocConfig {
    PocConfig {
        layout: layout_for(plan),
        secret: plan.secret,
        training_rounds: plan.victim.training_rounds,
        nop_slide: plan.victim.nop_slide as usize,
        attack_filler: plan.victim.attack_filler as usize,
        max_cycles: plan.victim.max_cycles,
        ..PocConfig::default()
    }
}

/// Everything one plan execution produced, in a form the fuzz oracles can
/// compare: the channel's claim, the ground-truth trace, the reconciliation
/// counters and the architectural fingerprint. `PartialEq` is the
/// determinism invariant — two runs of the same plan must be equal.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanOutcome {
    /// Byte the covert channel claims to have recovered, if any.
    pub leaked: Option<u8>,
    /// The planted secret.
    pub expected: u8,
    /// Runahead episodes the attack caused.
    pub runahead_entries: u64,
    /// INV-source branches that never resolved (the SPECRUN signature).
    pub inv_branches: u64,
    /// Ground truth from the leak tracer: the unique probe entry filled
    /// transiently, excluding the training entry 0.
    pub ground_truth: Option<u8>,
    /// Transient fills of the watched secret's probe line.
    pub transient_secret_fills: u64,
    /// Transient reads of the secret line itself.
    pub secret_reads: u64,
    /// Transient fill count per probe entry.
    pub fills_per_entry: Vec<u64>,
    /// Event totals for observer/stats reconciliation.
    pub counts: CountingObserver,
    /// The core's statistics at the end of the run.
    pub stats: CpuStats,
    /// Architectural-state fingerprint at the end of the run.
    pub arch_fingerprint: u64,
}

/// Runs `plan` end to end on a fresh session with the ground-truth
/// observers attached.
///
/// # Panics
///
/// Panics if the plan describes an invalid machine configuration, a
/// program exhausts its cycle budget, or the simulator itself fails — the
/// fuzz harness runs this under `catch_unwind` and treats a panic as a
/// reportable failing plan. [`try_run_plan`] is the structured form.
pub fn run_plan(plan: &Plan) -> PlanOutcome {
    try_run_plan(plan).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_plan`]: a plan whose programs exhaust their cycle budget
/// or wedge the core comes back as a structured
/// [`RunError`] instead of a panic, so a campaign can record it as a
/// failed entry and keep going. Panics inside the simulator still
/// propagate (the harness boundary catches those).
pub fn try_run_plan(plan: &Plan) -> Result<PlanOutcome, RunError> {
    try_run_plan_governed(plan, None)
}

/// [`try_run_plan`] under a supervisor [`CancelToken`]: every program run
/// publishes heartbeats through the token and stops cooperatively when it
/// trips, surfacing as [`RunError::Cancelled`] (the supervisor reclassifies
/// that into a deadline or stall verdict using the token's recorded
/// reason). `None` is exactly [`try_run_plan`].
pub fn try_run_plan_governed(
    plan: &Plan,
    token: Option<CancelToken>,
) -> Result<PlanOutcome, RunError> {
    run_plan_with(plan, token, NoopObserver).map(|(outcome, _)| outcome)
}

/// [`try_run_plan`] with a trace recorder riding beside the ground-truth
/// observers: returns the outcome *and* the full pipeline-event stream the
/// run emitted, ready for `specrun_trace::encode_events`. This is the
/// forensic path behind `specrun-lab fuzz --replay … --trace`: the same
/// deterministic run, now explorable offline.
pub fn try_run_plan_recorded(plan: &Plan) -> Result<(PlanOutcome, Vec<PipelineEvent>), RunError> {
    run_plan_with(plan, None, RecordingObserver::new())
        .map(|(outcome, recorder)| (outcome, recorder.into_events()))
}

/// The shared plan executor: the ground-truth pair `(CountingObserver,
/// LeakTraceObserver)` always rides; `extra` composes any further observer
/// (a `NoopObserver` for plain runs, a `RecordingObserver` for traced
/// ones) and is handed back alongside the outcome. Observer invisibility
/// (proptested in `specrun-cpu`) guarantees `extra` never changes the
/// outcome.
fn run_plan_with<X: PipelineObserver>(
    plan: &Plan,
    token: Option<CancelToken>,
    extra: X,
) -> Result<(PlanOutcome, X), RunError> {
    let layout = layout_for(plan);
    let config = config_for(plan);
    let tracer = leak_trace_for(&layout, &config);
    let mut session = Session::builder()
        .config(config)
        .layout(layout)
        .observer(((CountingObserver::default(), tracer), extra))
        .build();
    session.machine_mut().set_cancel_token(token);
    for w in &plan.warm {
        session.warm(w.addr, w.len);
    }
    let cfg = poc_config_for(plan);
    let outcome = match plan.victim.gadget {
        GadgetKind::Pht => run_pht_poc(&mut session, &cfg),
        GadgetKind::Btb => run_btb_poc(&mut session, &cfg),
        GadgetKind::Rsb => run_rsb_poc(&mut session, &cfg),
    };
    let stats = *session.stats();
    let what = || format!("plan {} ({:?} gadget)", plan.index, plan.victim.gadget);
    match session.first_non_halt() {
        None => {}
        Some((RunExit::CycleLimit, budget)) => {
            return Err(RunError::CycleBudgetExceeded {
                what: what(),
                budget,
                committed: stats.committed,
            });
        }
        Some((RunExit::Cancelled, _)) => {
            return Err(RunError::Cancelled { what: what(), committed: stats.committed });
        }
        Some((exit, _)) => {
            return Err(RunError::NoHalt {
                what: what(),
                detail: format!("a program exited with {exit:?}"),
            });
        }
    }
    let arch_fingerprint = session.machine().core().arch_fingerprint();
    let ((counts, trace), extra) = session.observer().clone();
    Ok((
        PlanOutcome {
            leaked: outcome.leaked,
            expected: outcome.expected,
            runahead_entries: outcome.runahead_entries,
            inv_branches: outcome.inv_branches,
            ground_truth: trace.ground_truth_byte(&[0]),
            transient_secret_fills: trace.transient_secret_fills(),
            secret_reads: trace.secret_reads(),
            fills_per_entry: trace.fills_per_entry().to_vec(),
            counts,
            stats,
            arch_fingerprint,
        },
        extra,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrun_cpu::RunaheadTrigger;
    use specrun_workloads::plan::KnobSpec;

    fn paper_plan(policy: PlanPolicy) -> Plan {
        let mut plan = Plan::generate(1, 0, true);
        plan.policy = policy;
        plan.victim.gadget = GadgetKind::Pht;
        plan.knobs = KnobSpec::default();
        plan
    }

    #[test]
    fn policy_mapping_matches_session_policies() {
        let cfg = |p: PlanPolicy| {
            let mut c = CpuConfig::default();
            Policy::from(p).apply(&mut c);
            c
        };
        assert_eq!(cfg(PlanPolicy::NoRunahead).runahead.policy, RunaheadPolicy::Disabled);
        assert_eq!(cfg(PlanPolicy::Precise).runahead.policy, RunaheadPolicy::Precise);
        assert_eq!(cfg(PlanPolicy::Vector).runahead.policy, RunaheadPolicy::Vector);
        assert_eq!(cfg(PlanPolicy::HeadMissTrigger).runahead.trigger, RunaheadTrigger::HeadMiss);
        assert!(cfg(PlanPolicy::Secure).runahead.secure.sl_cache);
        assert!(cfg(PlanPolicy::SkipInv).runahead.secure.skip_inv_branches);
    }

    #[test]
    fn secure_knobs_survive_policy_composition() {
        let mut plan = paper_plan(PlanPolicy::Secure);
        plan.knobs.sl_entries = 16;
        plan.knobs.sl_latency = 2;
        let cfg = config_for(&plan);
        assert!(cfg.runahead.secure.sl_cache);
        assert_eq!(cfg.runahead.secure.sl_entries, 16);
        assert_eq!(cfg.runahead.secure.sl_latency, 2);
    }

    #[test]
    fn run_plan_is_deterministic_and_leak_matches_ground_truth() {
        // Fig. 11 shape (slide > ROB): plain speculation cannot reach the
        // gadget, so every probe fill is runahead-transient and the tracer
        // sees the complete channel. (With a short slide the first transmit
        // happens under plain speculation and ground truth is rightly
        // absent — the fuzz invariant only requires agreement, not
        // presence.)
        let mut plan = paper_plan(PlanPolicy::Runahead);
        plan.victim.nop_slide = 300;
        let a = run_plan(&plan);
        let b = run_plan(&plan);
        assert_eq!(a, b, "same plan, same outcome");
        assert_eq!(a.leaked, Some(plan.secret), "paper machine leaks");
        assert_eq!(a.ground_truth, Some(plan.secret), "tracer saw the same byte");
        assert!(a.transient_secret_fills > 0);
    }

    #[test]
    fn starved_budget_surfaces_as_structured_error() {
        let mut plan = paper_plan(PlanPolicy::Runahead);
        plan.victim.max_cycles = 40;
        match try_run_plan(&plan) {
            Err(specrun_workloads::harness::RunError::CycleBudgetExceeded {
                what, budget, ..
            }) => {
                assert!(what.contains("Pht gadget"), "{what}");
                assert_eq!(budget, 40);
            }
            other => panic!("expected CycleBudgetExceeded, got {other:?}"),
        }
        // The panicking wrapper renders the same error.
        let caught = std::panic::catch_unwind(|| run_plan(&plan)).expect_err("must panic");
        let message = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("cycle budget exceeded"), "{message}");
    }

    #[test]
    fn recorded_run_is_outcome_identical_and_replayable() {
        let mut plan = paper_plan(PlanPolicy::Runahead);
        plan.victim.nop_slide = 300;
        let plain = run_plan(&plan);
        let (outcome, events) = try_run_plan_recorded(&plan).expect("paper plan runs");
        assert_eq!(plain, outcome, "the riding recorder must be invisible to the outcome");
        assert!(!events.is_empty());
        let mut counts = CountingObserver::default();
        specrun_trace::replay(&events, &mut counts);
        assert_eq!(counts, outcome.counts, "replay reproduces the live counting observer");
    }

    #[test]
    fn run_plan_secure_sees_zero_transient_fills() {
        let plan = paper_plan(PlanPolicy::Secure);
        let out = run_plan(&plan);
        assert_eq!(out.transient_secret_fills, 0, "SL cache blocks transient fills");
    }
}
