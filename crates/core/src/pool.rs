//! The `CampaignSpec → Session` fork bridge: one warmed snapshot per
//! shard, one copy-on-write fork per secret.
//!
//! The campaign grammar ([`CampaignSpec`], [`ShardSpec`], the streaming
//! [`ShardStats`]) lives in `specrun-workloads` as pure data; this module
//! owns the session side, mirroring how [`crate::plan`] pairs with the
//! fuzz plan grammar. Per shard it builds **one** [`ShardSnapshot`]: the
//! machine configured (policy, then knobs), the campaign's warm-up
//! applied, the gadget's programs built and predecoded once into
//! `Arc<DecodedProgram>`s, and every secret-independent attack step —
//! PHT/BTB text warming, BTB predictor training — already executed. Each
//! unit then *forks* the snapshot: cloning a [`Session`] clones the
//! machine, whose backing store shares its pages `Arc`-per-page and
//! unshares only what the fork writes (see `specrun_mem::BackingStore`),
//! and whose program slots share the snapshot's predecode. Planting the
//! secret and running the victim touches a handful of pages, so a fork
//! costs a small fraction of a fresh [`Session::builder`] build — that
//! ratio is what `specrun-lab perf` reports as `sessions_per_sec`.
//!
//! [`run_unit_fresh`] is the control: the same unit on a snapshot built
//! from scratch and consumed in place, never cloned. Fork and fresh runs
//! must agree **bit for bit** (leak verdict, signature counters,
//! architectural fingerprint) — the property the tests below pin and the
//! `pool-repro` CI gate re-checks end to end.

use std::sync::Arc;

use specrun_cpu::{CancelToken, CpuConfig, RunExit};
use specrun_isa::DecodedProgram;
use specrun_workloads::clock::WallClock;
use specrun_workloads::harness::RunError;
use specrun_workloads::plan::GadgetKind;
use specrun_workloads::pool::{CampaignSpec, PoolReport, SessionPool, ShardSpec, ShardStats};
use specrun_workloads::supervisor::UnitCtx;

use crate::attack::covert::DEFAULT_THRESHOLD;
use crate::attack::gadget;
use crate::attack::poc::{build_pht_program, PocConfig};
use crate::attack::variants::{build_btb_trainer, build_btb_victim, build_rsb_victim};
use crate::attack::AttackLayout;
use crate::session::{Policy, Session};

/// BTB training runs performed while preparing a BTB shard's snapshot
/// (the §4.4 variant's fixed warm-up, not the PHT `training_rounds` axis).
const BTB_TRAINING_RUNS: u32 = 4;
/// Cycle budget for one BTB trainer run (its normal exit is Wedged).
const BTB_TRAINER_BUDGET: u64 = 100_000;

/// The machine configuration one shard describes: Table 1, then the
/// shard's policy, then the campaign's knobs — the same composition order
/// as [`crate::plan::config_for`], so defense-only knobs stay gated on
/// the policy having armed the defense.
pub fn shard_config(spec: &CampaignSpec, shard: &ShardSpec) -> CpuConfig {
    let mut cfg = CpuConfig::default();
    Policy::from(shard.policy).apply(&mut cfg);
    spec.knobs.apply(&mut cfg);
    cfg
}

/// The attack layout a campaign describes (shared by every shard).
pub fn campaign_layout(spec: &CampaignSpec) -> AttackLayout {
    let l = &spec.layout;
    AttackLayout {
        bound_addr: l.bound_addr,
        bound_value: l.bound_value,
        array1_base: l.array1_base,
        secret_addr: l.secret_addr,
        probe_base: l.probe_base,
        probe_stride: l.probe_stride,
        probe_entries: l.probe_entries,
        results_base: l.results_base,
    }
}

/// The gadget-specific half of a snapshot: predecoded programs plus the
/// addresses the per-unit steps need. None of these depend on the secret.
#[derive(Debug, Clone)]
enum ShardPrograms {
    /// Fig. 8 single-binary attack (train → flush → victim → probe).
    Pht { attack: Arc<DecodedProgram> },
    /// §4.4 BTB variant: trained victim plus the attacker's probe;
    /// `slot_addr` is the victim's jump-table slot the unit flushes.
    Btb { victim: Arc<DecodedProgram>, probe: Arc<DecodedProgram>, slot_addr: u64 },
    /// §4.4 RSB variant: victim plus the attacker's probe.
    Rsb { victim: Arc<DecodedProgram>, probe: Arc<DecodedProgram> },
}

/// One shard's warmed parent machine plus its predecoded programs.
///
/// Everything secret-independent has already happened here; a unit is
/// [`ShardSnapshot::run_forked`] — clone, plant, run, read back.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    session: Session,
    programs: ShardPrograms,
    layout: AttackLayout,
    max_cycles: u64,
    label: String,
}

impl ShardSnapshot {
    /// Builds and warms the shard's parent machine: configuration
    /// composed, campaign warm-up applied, programs built and predecoded,
    /// attacker/victim text warmed, and (for BTB) the predictor trained.
    pub fn prepare(spec: &CampaignSpec, shard: &ShardSpec) -> ShardSnapshot {
        let layout = campaign_layout(spec);
        let mut session =
            Session::builder().config(shard_config(spec, shard)).layout(layout).build();
        for w in &spec.warm {
            session.warm(w.addr, w.len);
        }
        let programs = match shard.gadget {
            GadgetKind::Pht => {
                let cfg = PocConfig {
                    layout,
                    // The program encodes geometry and scale, never the
                    // secret — that is what makes one predecode per shard
                    // sound. The placeholder is unused.
                    secret: 0,
                    training_rounds: spec.training_rounds,
                    nop_slide: shard.nop_slide as usize,
                    attack_filler: spec.attack_filler as usize,
                    threshold: DEFAULT_THRESHOLD,
                    max_cycles: spec.max_cycles,
                };
                let program = build_pht_program(&cfg);
                session.warm_text(&program);
                ShardPrograms::Pht { attack: Arc::new(DecodedProgram::new(program)) }
            }
            GadgetKind::Btb => {
                let victim = build_btb_victim(&layout, shard.nop_slide as usize);
                let benign = victim.symbol("benign").expect("BTB victim has a benign label");
                let slot_addr = layout.bound_addr + 64;
                session.write_value(slot_addr, 8, benign);
                session.warm(slot_addr, 8);
                // Train the BTB once for the whole shard: the predictor
                // state is part of the snapshot every fork inherits.
                let trainer = Arc::new(DecodedProgram::new(build_btb_trainer(&victim)));
                for _ in 0..BTB_TRAINING_RUNS {
                    session.run_predecoded(trainer.clone(), BTB_TRAINER_BUDGET);
                }
                // The trainer's normal exit is Wedged (it jumps to an
                // address that exists only in the victim's image);
                // discharge it so unit health checks see units only.
                session.acknowledge_non_halt();
                session.warm_text(&victim);
                let probe = gadget::build_probe_program(&layout);
                ShardPrograms::Btb {
                    victim: Arc::new(DecodedProgram::new(victim)),
                    probe: Arc::new(DecodedProgram::new(probe)),
                    slot_addr,
                }
            }
            GadgetKind::Rsb => {
                let victim = build_rsb_victim(&layout, shard.nop_slide as usize);
                session.warm_text(&victim);
                let probe = gadget::build_probe_program(&layout);
                ShardPrograms::Rsb {
                    victim: Arc::new(DecodedProgram::new(victim)),
                    probe: Arc::new(DecodedProgram::new(probe)),
                }
            }
        };
        ShardSnapshot {
            session,
            programs,
            layout,
            max_cycles: spec.max_cycles,
            label: shard.label(),
        }
    }

    /// The warmed parent session (read-only; forks clone it).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Runs one unit on a copy-on-write fork of the snapshot.
    pub fn run_forked(
        &self,
        secret: u8,
        token: Option<CancelToken>,
    ) -> Result<UnitResult, RunError> {
        self.run_on(self.session.clone(), secret, token)
    }

    /// Runs one unit on the snapshot itself, consuming it — the fresh
    /// (never-forked) control path for equivalence tests and the perf
    /// baseline.
    pub fn run_consuming(
        self,
        secret: u8,
        token: Option<CancelToken>,
    ) -> Result<UnitResult, RunError> {
        let session = self.session.clone();
        self.run_on(session, secret, token)
    }

    fn run_on(
        &self,
        mut session: Session,
        secret: u8,
        token: Option<CancelToken>,
    ) -> Result<UnitResult, RunError> {
        session.machine_mut().set_cancel_token(token);
        session.plant(&self.layout, secret);
        let (leaked, runahead_entries, inv_branches) = match &self.programs {
            ShardPrograms::Pht { attack } => {
                session.reset_stats();
                session.run_predecoded(attack.clone(), self.max_cycles);
                let out = session.outcome_with(secret, DEFAULT_THRESHOLD, &[0]);
                (out.leaked, out.runahead_entries, out.inv_branches)
            }
            ShardPrograms::Btb { victim, probe, slot_addr } => {
                // Evict the victim's jump-table slot, then let the victim
                // enter runahead and fetch down the trained BTB path.
                session.flush(*slot_addr);
                session.reset_stats();
                session.run_predecoded(victim.clone(), self.max_cycles);
                let runahead = session.stats().runahead_entries;
                let inv = session.stats().inv_unresolved_branches;
                session.run_predecoded(probe.clone(), self.max_cycles);
                let leaked = session.probe_timings().leaked_byte(DEFAULT_THRESHOLD, &[0]);
                (leaked, runahead, inv)
            }
            ShardPrograms::Rsb { victim, probe } => {
                // D holds 0 so that architecturally F = benign.
                session.write_value(self.layout.bound_addr, 8, 0);
                session.warm(self.layout.bound_addr, 8);
                session.reset_stats();
                session.run_predecoded(victim.clone(), self.max_cycles);
                let runahead = session.stats().runahead_entries;
                let inv = session.stats().inv_unresolved_branches;
                session.run_predecoded(probe.clone(), self.max_cycles);
                let leaked = session.probe_timings().leaked_byte(DEFAULT_THRESHOLD, &[0]);
                (leaked, runahead, inv)
            }
        };
        let committed = session.stats().committed;
        let what = || format!("pool shard {} secret {secret}", self.label);
        match session.first_non_halt() {
            None => {}
            Some((RunExit::CycleLimit, budget)) => {
                return Err(RunError::CycleBudgetExceeded { what: what(), budget, committed });
            }
            Some((RunExit::Cancelled, _)) => {
                return Err(RunError::Cancelled { what: what(), committed });
            }
            Some((exit, _)) => {
                return Err(RunError::NoHalt {
                    what: what(),
                    detail: format!("a program exited with {exit:?}"),
                });
            }
        }
        Ok(UnitResult {
            leaked,
            expected: secret,
            runahead_entries,
            inv_branches,
            arch_fingerprint: session.machine().core().arch_fingerprint(),
        })
    }
}

/// Everything one unit (one forked session, one secret) produced. Fork
/// and fresh runs of the same unit must compare equal — `PartialEq` *is*
/// the fork-fidelity invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitResult {
    /// Byte the covert channel recovered, if any.
    pub leaked: Option<u8>,
    /// The planted secret.
    pub expected: u8,
    /// Runahead episodes the victim caused.
    pub runahead_entries: u64,
    /// Unresolved INV-source branches (the SPECRUN signature).
    pub inv_branches: u64,
    /// Architectural-state fingerprint after the unit's last program.
    pub arch_fingerprint: u64,
}

/// The shard runner [`SessionPool::run_with`] expects: prepares the
/// shard's snapshot once, forks a session per secret, folds every unit
/// into a streaming [`ShardStats`].
pub fn run_shard(
    spec: &CampaignSpec,
    shard: &ShardSpec,
    ctx: &UnitCtx,
) -> Result<ShardStats, RunError> {
    let snapshot = ShardSnapshot::prepare(spec, shard);
    let mut stats = ShardStats::default();
    for &secret in &spec.secrets {
        let unit = snapshot.run_forked(secret, Some(ctx.token.clone()))?;
        stats.record(
            unit.leaked,
            unit.expected,
            unit.runahead_entries,
            unit.inv_branches,
            unit.arch_fingerprint,
        );
    }
    Ok(stats)
}

/// Runs one unit on a fresh, never-forked snapshot — the control the
/// fork path is measured and verified against.
pub fn run_unit_fresh(
    spec: &CampaignSpec,
    shard: &ShardSpec,
    secret: u8,
) -> Result<UnitResult, RunError> {
    ShardSnapshot::prepare(spec, shard).run_consuming(secret, None)
}

/// Runs a whole campaign with fork-based pooling under passive
/// supervision: `spec.shards` fanned out over `threads` workers, one
/// snapshot per shard, one fork per secret.
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> PoolReport {
    SessionPool::new(threads).run_with(spec, &WallClock::new(), run_shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use specrun_workloads::plan::PlanPolicy;
    use specrun_workloads::pool::ShardStatus;

    /// A cut-down campaign that still exercises every per-unit path.
    fn small_spec(shards: Vec<ShardSpec>) -> CampaignSpec {
        CampaignSpec { secrets: vec![86, 201], shards, ..CampaignSpec::paper_matrix() }
    }

    fn shard(gadget: GadgetKind, policy: PlanPolicy, nop_slide: u32) -> ShardSpec {
        ShardSpec { gadget, policy, nop_slide }
    }

    #[test]
    fn fork_equals_fresh_bit_for_bit_across_gadgets() {
        let spec = small_spec(vec![]);
        for cell in [
            shard(GadgetKind::Pht, PlanPolicy::Runahead, 0),
            shard(GadgetKind::Pht, PlanPolicy::Runahead, 300),
            shard(GadgetKind::Btb, PlanPolicy::Runahead, 0),
            shard(GadgetKind::Rsb, PlanPolicy::Runahead, 0),
        ] {
            let snapshot = ShardSnapshot::prepare(&spec, &cell);
            for &secret in &spec.secrets {
                let forked = snapshot.run_forked(secret, None).expect("forked unit runs");
                let fresh = run_unit_fresh(&spec, &cell, secret).expect("fresh unit runs");
                assert_eq!(forked, fresh, "{} secret {secret}: fork must be exact", cell.label());
            }
        }
    }

    #[test]
    fn forked_units_leak_on_runahead_and_not_under_defenses() {
        let spec = small_spec(vec![]);
        let leak = shard(GadgetKind::Pht, PlanPolicy::Runahead, 0);
        let snapshot = ShardSnapshot::prepare(&spec, &leak);
        for &secret in &spec.secrets {
            let unit = snapshot.run_forked(secret, None).unwrap();
            assert_eq!(unit.leaked, Some(secret), "runahead machine leaks each fork's secret");
            assert!(unit.runahead_entries > 0);
        }
        // Fig. 11 shape: with the slide past the ROB only the runahead
        // channel can reach the gadget, which is what the defense blocks.
        let secure =
            ShardSnapshot::prepare(&spec, &shard(GadgetKind::Pht, PlanPolicy::Secure, 300));
        let unit = secure.run_forked(86, None).unwrap();
        assert_eq!(unit.leaked, None, "SL cache blocks the channel");
    }

    #[test]
    fn sibling_forks_see_their_own_secrets_only() {
        let spec = small_spec(vec![]);
        let snapshot =
            ShardSnapshot::prepare(&spec, &shard(GadgetKind::Pht, PlanPolicy::Runahead, 0));
        let layout = *snapshot.session().layout();
        let mut a = snapshot.session().clone();
        let mut b = snapshot.session().clone();
        a.plant(&layout, 0x11);
        b.plant(&layout, 0x22);
        assert_eq!(a.read_bytes(layout.secret_addr, 1), vec![0x11]);
        assert_eq!(b.read_bytes(layout.secret_addr, 1), vec![0x22]);
        assert_eq!(
            snapshot.session().read_bytes(layout.secret_addr, 1),
            vec![0],
            "the parent snapshot never held a secret"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// COW fidelity, memory-only: whatever a fork writes, parent and
        /// sibling reads are unaffected, and untouched addresses read
        /// through to the shared (parent) value.
        #[test]
        fn forked_session_writes_never_bleed(
            offset in 0u64..0x4000,
            parent_byte in any::<u8>(),
            fork_a_byte in any::<u8>(),
            fork_b_byte in any::<u8>(),
        ) {
            let base = specrun_workloads::plan::WARM_SCRATCH_BASE;
            let addr = base + offset;
            let spec = small_spec(vec![]);
            let cell = shard(GadgetKind::Pht, PlanPolicy::Runahead, 0);
            let mut snapshot = ShardSnapshot::prepare(&spec, &cell);
            snapshot.session.write_bytes(addr, &[parent_byte]);
            let mut a = snapshot.session().clone();
            let mut b = snapshot.session().clone();
            a.write_bytes(addr, &[fork_a_byte]);
            b.write_bytes(addr + 0x4000, &[fork_b_byte]);
            prop_assert_eq!(a.read_bytes(addr, 1), vec![fork_a_byte]);
            prop_assert_eq!(b.read_bytes(addr, 1), vec![parent_byte],
                "sibling must not see fork A's write");
            prop_assert_eq!(b.read_bytes(addr + 0x4000, 1), vec![fork_b_byte]);
            prop_assert_eq!(snapshot.session().read_bytes(addr, 1), vec![parent_byte],
                "parent must not see fork A's write");
            prop_assert_eq!(snapshot.session().read_bytes(addr + 0x4000, 1), vec![0u8],
                "parent must not see fork B's write");
            prop_assert_eq!(a.read_bytes(addr + 0x4000, 1), vec![0u8],
                "fork A must not see fork B's write");
        }
    }

    #[test]
    fn run_campaign_aggregates_mixed_policies() {
        let spec = small_spec(vec![
            shard(GadgetKind::Pht, PlanPolicy::Runahead, 0),
            shard(GadgetKind::Pht, PlanPolicy::Secure, 300),
        ]);
        let report = run_campaign(&spec, 2);
        assert!(report.all_done(), "{:?}", report.shards);
        assert_eq!(report.total_units(), 4);
        assert_eq!(report.shards[0].stats.leaks, 2, "runahead shard leaks every secret");
        assert_eq!(report.shards[1].stats.leaks, 0, "secure shard leaks nothing");
        assert!(matches!(report.shards[0].status, ShardStatus::Done { attempts: 1 }));
    }

    #[test]
    fn campaign_report_is_thread_count_invariant() {
        let spec = small_spec(vec![
            shard(GadgetKind::Pht, PlanPolicy::Runahead, 0),
            shard(GadgetKind::Rsb, PlanPolicy::Runahead, 0),
        ]);
        let one = run_campaign(&spec, 1);
        let four = run_campaign(&spec, 4);
        assert_eq!(one, four, "shard fingerprints must not depend on scheduling");
    }

    #[test]
    fn starved_budget_surfaces_as_structured_error() {
        let mut spec = small_spec(vec![]);
        spec.max_cycles = 40;
        let cell = shard(GadgetKind::Pht, PlanPolicy::Runahead, 0);
        match run_unit_fresh(&spec, &cell, 86) {
            Err(RunError::CycleBudgetExceeded { what, budget, .. }) => {
                assert!(what.contains("pht_runahead"), "{what}");
                assert_eq!(budget, 40);
            }
            other => panic!("expected CycleBudgetExceeded, got {other:?}"),
        }
    }
}
