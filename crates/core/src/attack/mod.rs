//! The SPECRUN attack framework (paper §4): gadget construction, predictor
//! training, runahead triggering, covert-channel probing and the
//! SpectrePHT/BTB/RSB variants nested inside runahead execution.

pub mod covert;
pub mod gadget;
pub mod layout;
pub mod poc;
pub mod sweep;
pub mod variants;

pub use covert::{ProbeTimings, DEFAULT_THRESHOLD};
pub use layout::AttackLayout;
pub use poc::{build_pht_program, plant_data, run_pht_poc, PocConfig, PocOutcome};
pub use sweep::{run_pht_sweep, SweepConfig, SweepReport, SweepTrial};
pub use variants::{build_btb_victim, build_rsb_victim, run_btb_poc, run_rsb_poc};
