//! The end-to-end SPECRUN proof of concept (paper Fig. 8 / Fig. 9).

use specrun_cpu::probe::PipelineObserver;
use specrun_isa::ProgramBuilder;

use crate::attack::covert::{ProbeTimings, DEFAULT_THRESHOLD};
use crate::attack::gadget;
use crate::attack::layout::AttackLayout;
use crate::session::Session;

/// Configuration of a SPECRUN proof-of-concept run.
#[derive(Debug, Clone)]
pub struct PocConfig {
    /// Memory layout of the attack structures.
    pub layout: AttackLayout,
    /// The secret byte planted at [`AttackLayout::secret_addr`].
    pub secret: u8,
    /// Training iterations for the PHT (paper step ①).
    pub training_rounds: u32,
    /// Nops inserted between the bounds check and the secret access
    /// (0 reproduces Fig. 9; > ROB size reproduces Fig. 11).
    pub nop_slide: usize,
    /// Filler between the victim call and the probe — the paper's Fig. 8
    /// line 16, `<some_operations> // waiting for the victim's execution`.
    /// It both supplies the instructions that fill the ROB (triggering
    /// runahead) and keeps the runahead episode from running into the probe
    /// loop and prefetching probe entries.
    pub attack_filler: usize,
    /// Hit/miss threshold for the covert-channel analyzer.
    pub threshold: u64,
    /// Cycle budget for the whole attack program.
    pub max_cycles: u64,
}

impl Default for PocConfig {
    fn default() -> PocConfig {
        PocConfig {
            layout: AttackLayout::default(),
            secret: 86, // the byte the paper leaks in Fig. 9
            training_rounds: 24,
            nop_slide: 0,
            attack_filler: 1200,
            threshold: DEFAULT_THRESHOLD,
            max_cycles: 3_000_000,
        }
    }
}

impl PocConfig {
    /// The Fig. 11 configuration: secret 127 behind a nop slide longer than
    /// the ROB.
    pub fn fig11(nop_slide: usize) -> PocConfig {
        PocConfig { secret: 127, nop_slide, ..PocConfig::default() }
    }
}

/// Outcome of one proof-of-concept run.
#[derive(Debug, Clone)]
pub struct PocOutcome {
    /// The probe-timing series (Fig. 9 / Fig. 11 material).
    pub timings: ProbeTimings,
    /// Byte recovered through the covert channel, if any.
    pub leaked: Option<u8>,
    /// The secret that was planted.
    pub expected: u8,
    /// Runahead episodes the attack caused.
    pub runahead_entries: u64,
    /// INV-source branches that never resolved (the SPECRUN signature).
    pub inv_branches: u64,
}

impl PocOutcome {
    /// Whether the covert channel recovered the planted secret.
    pub fn success(&self) -> bool {
        self.leaked == Some(self.expected)
    }
}

/// Builds the single-binary Fig. 8 attack program: train → flush probe →
/// flush `D` → victim call with malicious `x` → probe.
pub fn build_pht_program(cfg: &PocConfig) -> specrun_isa::Program {
    let mut b = ProgramBuilder::new(0x1000);
    gadget::define_symbols(&mut b, &cfg.layout);
    gadget::emit_training_loop(&mut b, cfg.training_rounds);
    gadget::emit_probe_flush(&mut b, &cfg.layout);
    gadget::emit_attack_call(&mut b, &cfg.layout);
    b.nops(cfg.attack_filler); // Fig. 8 line 16: wait for the victim
    gadget::emit_probe_loop(&mut b, &cfg.layout);
    b.halt();
    gadget::emit_victim_function(&mut b, &cfg.layout, cfg.nop_slide);
    b.build().expect("PoC program is closed")
}

/// Plants the attack's data in session memory — a thin alias for
/// [`Session::plant`] taking the PoC configuration.
pub fn plant_data<O: PipelineObserver>(session: &mut Session<O>, cfg: &PocConfig) {
    session.plant(&cfg.layout, cfg.secret);
}

/// Runs the SpectrePHT-in-runahead proof of concept on `session`.
///
/// The session's machine decides the outcome: a runahead machine leaks,
/// the no-runahead machine (given a `nop_slide` > ROB) and the §6 defenses
/// do not.
pub fn run_pht_poc<O: PipelineObserver>(session: &mut Session<O>, cfg: &PocConfig) -> PocOutcome {
    plant_data(session, cfg);
    let program = build_pht_program(cfg);
    // Attacker and victim code are steady-state warm (the training loop has
    // executed the whole flow repeatedly in a real attack).
    session.warm_text(&program);
    session.reset_stats();
    session.run_program(&program, cfg.max_cycles);
    // Training touches array1[0] = 0, so probe entry 0 is excluded.
    session.outcome_with(cfg.secret, cfg.threshold, &[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_builds_and_contains_victim() {
        let cfg = PocConfig::default();
        let p = build_pht_program(&cfg);
        assert!(p.symbol("victim_function").is_some());
        assert!(p.len() > 30, "static length {}", p.len());
    }

    #[test]
    fn planting_places_secret_and_bound() {
        let cfg = PocConfig { secret: 0xab, ..PocConfig::default() };
        let mut s = crate::session::Session::builder().policy(crate::Policy::NoRunahead).build();
        plant_data(&mut s, &cfg);
        assert_eq!(s.read_value(cfg.layout.bound_addr, 8), cfg.layout.bound_value);
        assert_eq!(s.read_bytes(cfg.layout.secret_addr, 1), vec![0xab]);
        assert_ne!(s.residency(cfg.layout.secret_addr), specrun_mem::HitLevel::Mem);
        assert_eq!(s.residency(cfg.layout.probe_addr(7)), specrun_mem::HitLevel::Mem);
    }
}
