//! The end-to-end SPECRUN proof of concept (paper Fig. 8 / Fig. 9).

use specrun_isa::ProgramBuilder;

use crate::attack::covert::{ProbeTimings, DEFAULT_THRESHOLD};
use crate::attack::gadget;
use crate::attack::layout::AttackLayout;
use crate::machine::Machine;

/// Configuration of a SPECRUN proof-of-concept run.
#[derive(Debug, Clone)]
pub struct PocConfig {
    /// Memory layout of the attack structures.
    pub layout: AttackLayout,
    /// The secret byte planted at [`AttackLayout::secret_addr`].
    pub secret: u8,
    /// Training iterations for the PHT (paper step ①).
    pub training_rounds: u32,
    /// Nops inserted between the bounds check and the secret access
    /// (0 reproduces Fig. 9; > ROB size reproduces Fig. 11).
    pub nop_slide: usize,
    /// Filler between the victim call and the probe — the paper's Fig. 8
    /// line 16, `<some_operations> // waiting for the victim's execution`.
    /// It both supplies the instructions that fill the ROB (triggering
    /// runahead) and keeps the runahead episode from running into the probe
    /// loop and prefetching probe entries.
    pub attack_filler: usize,
    /// Hit/miss threshold for the covert-channel analyzer.
    pub threshold: u64,
    /// Cycle budget for the whole attack program.
    pub max_cycles: u64,
}

impl Default for PocConfig {
    fn default() -> PocConfig {
        PocConfig {
            layout: AttackLayout::default(),
            secret: 86, // the byte the paper leaks in Fig. 9
            training_rounds: 24,
            nop_slide: 0,
            attack_filler: 1200,
            threshold: DEFAULT_THRESHOLD,
            max_cycles: 3_000_000,
        }
    }
}

impl PocConfig {
    /// The Fig. 11 configuration: secret 127 behind a nop slide longer than
    /// the ROB.
    pub fn fig11(nop_slide: usize) -> PocConfig {
        PocConfig { secret: 127, nop_slide, ..PocConfig::default() }
    }
}

/// Outcome of one proof-of-concept run.
#[derive(Debug, Clone)]
pub struct PocOutcome {
    /// The probe-timing series (Fig. 9 / Fig. 11 material).
    pub timings: ProbeTimings,
    /// Byte recovered through the covert channel, if any.
    pub leaked: Option<u8>,
    /// The secret that was planted.
    pub expected: u8,
    /// Runahead episodes the attack caused.
    pub runahead_entries: u64,
    /// INV-source branches that never resolved (the SPECRUN signature).
    pub inv_branches: u64,
}

impl PocOutcome {
    /// Whether the covert channel recovered the planted secret.
    pub fn success(&self) -> bool {
        self.leaked == Some(self.expected)
    }
}

/// Builds the single-binary Fig. 8 attack program: train → flush probe →
/// flush `D` → victim call with malicious `x` → probe.
pub fn build_pht_program(cfg: &PocConfig) -> specrun_isa::Program {
    let mut b = ProgramBuilder::new(0x1000);
    gadget::define_symbols(&mut b, &cfg.layout);
    gadget::emit_training_loop(&mut b, cfg.training_rounds);
    gadget::emit_probe_flush(&mut b, &cfg.layout);
    gadget::emit_attack_call(&mut b, &cfg.layout);
    b.nops(cfg.attack_filler); // Fig. 8 line 16: wait for the victim
    gadget::emit_probe_loop(&mut b, &cfg.layout);
    b.halt();
    gadget::emit_victim_function(&mut b, &cfg.layout, cfg.nop_slide);
    b.build().expect("PoC program is closed")
}

/// Plants the attack's data in machine memory (paper preconditions: the
/// secret is the victim's recently-used data — cached; `array1`, its bound
/// and the probe array are set up; the probe array is cold).
pub fn plant_data(machine: &mut Machine, cfg: &PocConfig) {
    let l = &cfg.layout;
    machine.write_value(l.bound_addr, 8, l.bound_value);
    // array1's in-bounds content is zero; the training access hits entry 0.
    machine.write_bytes(l.array1_base, &vec![0u8; l.bound_value as usize]);
    machine.write_bytes(l.secret_addr, &[cfg.secret]);
    // Victim data is warm (the victim used it recently); the trigger line D
    // starts warm too — the attacker flushes it in-program.
    machine.warm(l.bound_addr, 8);
    machine.warm(l.array1_base, l.bound_value);
    machine.warm(l.secret_addr, 1);
    // Probe array cold.
    for v in 0..l.probe_entries {
        machine.flush(l.probe_addr(v));
    }
}

/// Runs the SpectrePHT-in-runahead proof of concept on `machine`.
///
/// The machine decides the outcome: a runahead machine leaks, the
/// no-runahead machine (given a `nop_slide` > ROB) and the §6 defenses do
/// not.
pub fn run_pht_poc(machine: &mut Machine, cfg: &PocConfig) -> PocOutcome {
    plant_data(machine, cfg);
    let program = build_pht_program(cfg);
    // Attacker and victim code are steady-state warm (the training loop has
    // executed the whole flow repeatedly in a real attack).
    machine.warm_text(&program);
    machine.reset_stats();
    machine.run_program(&program, cfg.max_cycles);
    let timings = ProbeTimings::read_from(machine, &cfg.layout);
    // Training touches array1[0] = 0, so probe entry 0 is excluded.
    let leaked = timings.leaked_byte(cfg.threshold, &[0]);
    PocOutcome {
        leaked,
        expected: cfg.secret,
        runahead_entries: machine.stats().runahead_entries,
        inv_branches: machine.stats().inv_unresolved_branches,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_builds_and_contains_victim() {
        let cfg = PocConfig::default();
        let p = build_pht_program(&cfg);
        assert!(p.symbol("victim_function").is_some());
        assert!(p.len() > 30, "static length {}", p.len());
    }

    #[test]
    fn planting_places_secret_and_bound() {
        let cfg = PocConfig { secret: 0xab, ..PocConfig::default() };
        let mut m = Machine::no_runahead();
        plant_data(&mut m, &cfg);
        assert_eq!(m.read_value(cfg.layout.bound_addr, 8), cfg.layout.bound_value);
        assert_eq!(m.read_bytes(cfg.layout.secret_addr, 1), vec![0xab]);
        assert_ne!(m.residency(cfg.layout.secret_addr), specrun_mem::HitLevel::Mem);
        assert_eq!(m.residency(cfg.layout.probe_addr(7)), specrun_mem::HitLevel::Mem);
    }
}
