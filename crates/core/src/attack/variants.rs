//! SpectreBTB and SpectreRSB nested inside runahead (paper §4.4, Fig. 4).
//!
//! Both variants are *multi-program* attacks on one [`Session`]: the
//! attacker process trains or poisons a shared predictor structure from its
//! own address space, the victim process runs and leaks during runahead, and
//! the attacker probes afterwards. The predictor structures are untagged
//! (and the BTB partially tagged), so training transfers — exactly the
//! paper's threat-model assumption for cross-process Spectre variants.

use specrun_isa::{IntReg, Program, ProgramBuilder};

use specrun_cpu::probe::PipelineObserver;

use crate::attack::gadget;
use crate::attack::layout::AttackLayout;
use crate::attack::poc::{PocConfig, PocOutcome};
use crate::session::Session;

fn r(i: u8) -> IntReg {
    IntReg::new(i).unwrap()
}

/// PC of the victim's indirect jump (the `src` of Fig. 4a).
const VICTIM_JR_PC_BASE: u64 = 0x1000;
/// BTB congruence stride: 512 sets × 8-byte slots × 2^8 partial-tag values.
const BTB_ALIAS_STRIDE: u64 = (512 << 3) << 8;

/// Emits the secret-access + transmit gadget body (no branch around it).
fn emit_gadget_body(b: &mut ProgramBuilder, layout: &AttackLayout) {
    b.la(r(4), "array1");
    b.li(r(1), layout.malicious_x() as i32);
    b.add(r(4), r(4), r(1));
    b.ldb(r(5), r(4), 0); // S = array1[x]
    b.li(r(6), layout.probe_stride as i32);
    b.mul(r(5), r(5), r(6));
    b.la(r(6), "array2");
    b.add(r(5), r(5), r(6));
    b.ldb(r(7), r(5), 0); // transmit
}

/// Builds the victim program for the BTB variant: an indirect jump whose
/// target register is loaded from the (flushed) location `D`. During
/// runahead the target is INV, the jump never resolves, and fetch follows
/// the BTB entry the attacker trained.
pub fn build_btb_victim(layout: &AttackLayout, nop_slide: usize) -> Program {
    let mut b = ProgramBuilder::new(VICTIM_JR_PC_BASE - 4 * specrun_isa::INST_BYTES);
    gadget::define_symbols(&mut b, layout);
    // D holds the (benign) jump target; flushed by the attacker program.
    b.la(r(2), "bound_addr");
    b.ld(r(3), r(2), 64); // D+64: the victim's jump-table slot
    b.nop();
    b.nop(); // align the jr to VICTIM_JR_PC_BASE + 0? (alignment is cosmetic)
    b.jr(r(3), 0); // ← the poisoned indirect branch (Fig. 4a's `src`)
    b.label("benign");
    b.halt();
    b.label("gadget");
    b.nops(nop_slide);
    emit_gadget_body(&mut b, layout);
    b.jump("benign");
    b.build().expect("BTB victim is closed")
}

/// Builds the attacker's training program: an indirect jump at a
/// *congruent* PC (same BTB set and partial tag, different address-space
/// region) that architecturally jumps to the victim's gadget address.
pub fn build_btb_trainer(victim: &Program) -> Program {
    let jr_pc = victim
        .symbols()
        .find(|(name, _)| *name == "benign")
        .map(|(_, addr)| addr - specrun_isa::INST_BYTES)
        .expect("victim has a benign label after the jr");
    let gadget_pc = victim.symbol("gadget").expect("victim has a gadget");
    let trainer_jr_pc = jr_pc + BTB_ALIAS_STRIDE;
    // The trainer's own landing pad sits at the gadget address *in its own
    // program image* — the BTB stores the raw target PC.
    let mut b = ProgramBuilder::new(trainer_jr_pc - 2 * specrun_isa::INST_BYTES);
    b.la(r(1), "landing");
    b.nop();
    b.jr(r(1), 0); // at trainer_jr_pc: congruent with the victim's jr
    b.def_sym("landing", gadget_pc);
    // Place a halt at the landing address (the trainer architecturally
    // jumps there, in its own image).
    // The assembler needs instructions up to that address; emit the halt at
    // the landing label via a second text island.
    b.build().expect("BTB trainer is closed")
}

/// Builds the halting landing-pad program placed at the gadget address for
/// the trainer's architectural jump target.
fn build_btb_trainer_with_landing(victim: &Program) -> (Program, u64) {
    let gadget_pc = victim.symbol("gadget").expect("victim has a gadget");
    (build_btb_trainer(victim), gadget_pc)
}

/// Runs the SpectreBTB-in-runahead variant end to end.
pub fn run_btb_poc<O: PipelineObserver>(session: &mut Session<O>, cfg: &PocConfig) -> PocOutcome {
    let layout = cfg.layout;
    // Plant data: D+64 holds the benign target; secret and arrays as usual.
    crate::attack::poc::plant_data(session, cfg);
    let victim = build_btb_victim(&layout, cfg.nop_slide);
    let benign = victim.symbol("benign").expect("benign label");
    session.write_value(layout.bound_addr + 64, 8, benign);
    session.warm(layout.bound_addr + 64, 8);

    // ① Train the BTB from the attacker's own (congruent) address space.
    let (trainer, _gadget_pc) = build_btb_trainer_with_landing(&victim);
    for _ in 0..4 {
        session.run_program(&trainer, 100_000);
    }
    // The trainer's normal exit is Wedged: it architecturally jumps to the
    // gadget address, which exists only in the victim's image. Discharge
    // the sticky record so the end-of-run health check reports the victim
    // and probe only.
    session.acknowledge_non_halt();
    // ② Evict the victim's jump-table slot (co-resident clflush).
    session.flush(layout.bound_addr + 64);
    // ③ Victim executes: enters runahead on the slot load, the INV jr never
    // resolves, fetch follows the trained BTB entry into the gadget. The
    // victim's code is steady-state warm.
    session.warm_text(&victim);
    session.reset_stats();
    session.run_program(&victim, cfg.max_cycles);
    let runahead_entries = session.stats().runahead_entries;
    let inv_branches = session.stats().inv_unresolved_branches;
    // ④ Attacker probes from her own process.
    let probe = gadget::build_probe_program(&layout);
    session.run_program(&probe, cfg.max_cycles);
    let timings = session.probe_timings();
    let leaked = timings.leaked_byte(cfg.threshold, &[0]);
    PocOutcome { leaked, expected: cfg.secret, runahead_entries, inv_branches, timings }
}

/// Builds the victim program for the RSB variant (Fig. 4b, direct
/// overwrite): a callee replaces its own return address with a value `F`
/// derived from the stalling load, so the `ret` pops INV data, never
/// resolves, and speculative execution continues at the RSB-predicted
/// return site — where the gadget lives. Architecturally `F` points past
/// the gadget, which therefore never commits.
pub fn build_rsb_victim(layout: &AttackLayout, nop_slide: usize) -> Program {
    let mut b = ProgramBuilder::new(0x1000);
    gadget::define_symbols(&mut b, layout);
    b.la(r(2), "bound_addr");
    b.flush(r(2), 0); // the attacker-controlled eviction of D
    b.call("callee");
    // RSB-predicted return site: the speculative-only gadget.
    b.nops(nop_slide);
    emit_gadget_body(&mut b, layout);
    b.label("benign");
    b.halt();
    b.label("callee");
    b.ld(r(3), r(2), 0); // stalling load of D (value 0)
    b.la(r(8), "benign");
    b.add(r(8), r(8), r(3)); // F = benign + *D — "polluted value F"
    b.sd(r(8), IntReg::SP, 0); // overwrite the stored return address
    b.ret(); // pops INV data during runahead → never resolves
    b.build().expect("RSB victim is closed")
}

/// Runs the SpectreRSB-in-runahead variant end to end.
pub fn run_rsb_poc<O: PipelineObserver>(session: &mut Session<O>, cfg: &PocConfig) -> PocOutcome {
    let layout = cfg.layout;
    crate::attack::poc::plant_data(session, cfg);
    // D holds 0 so that architecturally F = benign.
    session.write_value(layout.bound_addr, 8, 0);
    session.warm(layout.bound_addr, 8);
    let victim = build_rsb_victim(&layout, cfg.nop_slide);
    session.warm_text(&victim);
    session.reset_stats();
    session.run_program(&victim, cfg.max_cycles);
    let runahead_entries = session.stats().runahead_entries;
    let inv_branches = session.stats().inv_unresolved_branches;
    let probe = gadget::build_probe_program(&layout);
    session.run_program(&probe, cfg.max_cycles);
    let timings = session.probe_timings();
    let leaked = timings.leaked_byte(cfg.threshold, &[0]);
    PocOutcome { leaked, expected: cfg.secret, runahead_entries, inv_branches, timings }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btb_victim_and_trainer_are_congruent() {
        let layout = AttackLayout::default();
        let victim = build_btb_victim(&layout, 0);
        let benign = victim.symbol("benign").unwrap();
        let jr_pc = benign - specrun_isa::INST_BYTES;
        let trainer = build_btb_trainer(&victim);
        // The trainer contains a jr at jr_pc + BTB_ALIAS_STRIDE.
        let aliased = jr_pc + BTB_ALIAS_STRIDE;
        assert!(
            matches!(trainer.fetch(aliased), Some(specrun_isa::Inst::JumpInd { .. })),
            "trainer jr must sit at the congruent PC"
        );
    }

    #[test]
    fn rsb_victim_builds() {
        let p = build_rsb_victim(&AttackLayout::default(), 0);
        assert!(p.symbol("callee").is_some());
        assert!(p.symbol("benign").is_some());
    }
}
