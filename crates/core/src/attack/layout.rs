//! Memory layout shared by the attack programs.

/// Addresses and geometry of the attack's data structures (Fig. 8).
///
/// * `bound_addr` is `D`: the location of `array1_size`, the value the
///   attacker flushes to trigger runahead.
/// * `array1_base` is the victim array; the malicious index `x` is chosen so
///   `array1_base + x` lands on the secret byte.
/// * `probe_base`/`probe_stride` define `array2`, the covert-channel probe
///   array (one cache line per possible byte value).
/// * `results_base` receives the 256 probe timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttackLayout {
    /// Address of `array1_size` (the paper's `D`).
    pub bound_addr: u64,
    /// In-bounds length of `array1`.
    pub bound_value: u64,
    /// Base of the victim array `array1`.
    pub array1_base: u64,
    /// Address of the secret byte the attacker wants.
    pub secret_addr: u64,
    /// Base of the probe array `array2`.
    pub probe_base: u64,
    /// Bytes between probe entries (`N` in the paper; at least a line).
    pub probe_stride: u64,
    /// Number of probe entries (one per byte value).
    pub probe_entries: u64,
    /// Where the probe loop stores its 256 latencies (8 bytes each).
    pub results_base: u64,
}

impl AttackLayout {
    /// The malicious index: `secret_addr - array1_base`.
    pub fn malicious_x(&self) -> u64 {
        self.secret_addr - self.array1_base
    }

    /// Address of probe entry `value`.
    pub fn probe_addr(&self, value: u64) -> u64 {
        self.probe_base + value * self.probe_stride
    }

    /// Address of the timing slot for probe entry `value`.
    pub fn result_addr(&self, value: u64) -> u64 {
        self.results_base + value * 8
    }
}

impl Default for AttackLayout {
    fn default() -> AttackLayout {
        AttackLayout {
            bound_addr: 0x0009_0000,
            bound_value: 16,
            array1_base: 0x000a_0000,
            secret_addr: 0x000b_0000,
            probe_base: 0x0100_0000,
            probe_stride: 512,
            probe_entries: 256,
            results_base: 0x0200_0000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_is_disjoint_and_line_separated() {
        let l = AttackLayout::default();
        assert!(l.probe_stride >= 64, "probe entries must not share lines");
        assert!(l.array1_base + l.bound_value < l.secret_addr);
        assert!(l.probe_addr(255) < l.results_base);
        assert_eq!(l.malicious_x(), 0x1_0000);
        assert!(l.secret_addr < l.probe_base);
    }

    #[test]
    fn addressing_helpers() {
        let l = AttackLayout::default();
        assert_eq!(l.probe_addr(2) - l.probe_addr(1), l.probe_stride);
        assert_eq!(l.result_addr(3) - l.result_addr(2), 8);
    }
}
