//! Multi-trial attack sweeps (the Fig. 9 methodology at scale).
//!
//! A single SPECRUN run leaks one byte. Evaluating the channel — accuracy
//! across secrets, machine variants, defense configurations — takes many
//! independent runs, exactly like the original Spectre proof of concept
//! averaged thousands of covert-channel trials. Every trial owns a fresh
//! [`Session`], so the sweep fans out over all host cores through
//! [`specrun_workloads::harness`].

use specrun_cpu::CpuConfig;
use specrun_workloads::harness::{self, parallel_map, TrialSpec};

use crate::attack::poc::{run_pht_poc, PocConfig, PocOutcome};
use crate::session::Session;

/// Configuration of a multi-trial SpectrePHT-in-runahead sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Machine configuration each trial instantiates afresh.
    pub machine: CpuConfig,
    /// Attack template; each trial overrides `secret` from its own seed.
    pub poc: PocConfig,
    /// Number of independent trials.
    pub trials: u32,
    /// Worker threads (`0` = all host cores).
    pub threads: usize,
    /// Base seed for per-trial secrets.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            machine: CpuConfig::default(),
            poc: PocConfig::default(),
            trials: 16,
            threads: 0,
            seed: 0xf199,
        }
    }
}

/// One trial's outcome within a sweep.
#[derive(Debug, Clone)]
pub struct SweepTrial {
    /// Trial index.
    pub id: usize,
    /// The secret planted for this trial.
    pub secret: u8,
    /// The full PoC outcome.
    pub outcome: PocOutcome,
}

/// Aggregated sweep results.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-trial outcomes, in trial order.
    pub trials: Vec<SweepTrial>,
    /// Worker threads actually used.
    pub threads: usize,
}

impl SweepReport {
    /// Trials whose covert channel recovered the planted secret.
    pub fn successes(&self) -> usize {
        self.trials.iter().filter(|t| t.outcome.success()).count()
    }

    /// Fraction of successful trials in [0, 1].
    pub fn accuracy(&self) -> f64 {
        if self.trials.is_empty() {
            0.0
        } else {
            self.successes() as f64 / self.trials.len() as f64
        }
    }

    /// Mean runahead episodes per trial.
    pub fn mean_runahead_entries(&self) -> f64 {
        harness::Summary::of(self.trials.iter().map(|t| t.outcome.runahead_entries as f64)).mean
    }
}

/// Runs `cfg.trials` independent SpectrePHT-in-runahead attacks in
/// parallel, each with a per-trial random secret, and aggregates the
/// results. Deterministic for a fixed seed regardless of thread count.
pub fn run_pht_sweep(cfg: &SweepConfig) -> SweepReport {
    let threads = if cfg.threads == 0 { harness::default_threads() } else { cfg.threads };
    let specs: Vec<TrialSpec> =
        harness::ConfigMatrix::new(cfg.machine.clone()).trials(cfg.trials).seed(cfg.seed).build();
    let trials = parallel_map(&specs, threads, |i, spec| {
        let mut rng = spec.rng();
        // Avoid 0: probe entry 0 is warmed by training and excluded by the
        // analyzer, so a 0 secret could never be recovered.
        let secret = (rng.next_below(255) + 1) as u8;
        let mut session = Session::builder().config(spec.config.clone()).build();
        let poc = PocConfig { secret, ..cfg.poc.clone() };
        let outcome = run_pht_poc(&mut session, &poc);
        SweepTrial { id: i, secret, outcome }
    });
    SweepReport { trials, threads }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_recovers_random_secrets_on_runahead_machine() {
        let cfg = SweepConfig { trials: 4, threads: 2, ..SweepConfig::default() };
        let report = run_pht_sweep(&cfg);
        assert_eq!(report.trials.len(), 4);
        assert_eq!(report.successes(), 4, "runahead machine must leak every secret");
        assert!(report.mean_runahead_entries() > 0.0);
    }

    #[test]
    fn sweep_is_thread_invariant() {
        let one = run_pht_sweep(&SweepConfig { trials: 3, threads: 1, ..SweepConfig::default() });
        let four = run_pht_sweep(&SweepConfig { trials: 3, threads: 4, ..SweepConfig::default() });
        let secrets = |r: &SweepReport| r.trials.iter().map(|t| t.secret).collect::<Vec<_>>();
        let leaks = |r: &SweepReport| r.trials.iter().map(|t| t.outcome.leaked).collect::<Vec<_>>();
        assert_eq!(secrets(&one), secrets(&four));
        assert_eq!(leaks(&one), leaks(&four));
    }
}
