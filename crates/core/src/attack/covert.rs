//! Covert-channel analysis: turning probe timings into leaked bytes.

use crate::attack::layout::AttackLayout;
use crate::machine::Machine;

/// Default hit/miss decision threshold in cycles.
///
/// An L3 hit costs 32 cycles and a DRAM access 200+ on the Table 1 machine,
/// so anything under 100 cycles is a cache hit.
pub const DEFAULT_THRESHOLD: u64 = 100;

/// The 256 probe-entry access times measured by an attack's probe loop
/// (the paper's Fig. 9 / Fig. 11 series).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProbeTimings {
    timings: Vec<u64>,
}

impl ProbeTimings {
    /// Wraps raw timings (index = byte value).
    pub fn new(timings: Vec<u64>) -> ProbeTimings {
        ProbeTimings { timings }
    }

    /// Reads the probe loop's results buffer from machine memory.
    pub fn read_from<O: specrun_cpu::probe::PipelineObserver>(
        machine: &Machine<O>,
        layout: &AttackLayout,
    ) -> ProbeTimings {
        let timings = (0..layout.probe_entries)
            .map(|v| machine.read_value(layout.result_addr(v), 8))
            .collect();
        ProbeTimings { timings }
    }

    /// The raw series (index = probed byte value, value = cycles).
    pub fn as_slice(&self) -> &[u64] {
        &self.timings
    }

    /// Indices that measured faster than `threshold` (cache hits).
    pub fn hot_indices(&self, threshold: u64) -> Vec<usize> {
        self.timings.iter().enumerate().filter(|(_, &t)| t < threshold).map(|(i, _)| i).collect()
    }

    /// Recovers the leaked byte: the unique sub-threshold index, ignoring
    /// `exclude` (e.g. the value warmed by the training loop).
    ///
    /// Returns `None` when no index is hot — the no-leak outcome the paper's
    /// Fig. 11 shows for the no-runahead machine and §6 shows for the
    /// defended machine.
    pub fn leaked_byte(&self, threshold: u64, exclude: &[usize]) -> Option<u8> {
        self.timings
            .iter()
            .enumerate()
            .filter(|(i, &t)| t < threshold && !exclude.contains(i))
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i as u8)
    }

    /// Mean access time of the non-hot entries (the miss floor).
    pub fn miss_floor(&self, threshold: u64) -> f64 {
        let misses: Vec<u64> = self.timings.iter().copied().filter(|&t| t >= threshold).collect();
        if misses.is_empty() {
            0.0
        } else {
            misses.iter().sum::<u64>() as f64 / misses.len() as f64
        }
    }

    /// Renders the series as `index,cycles` CSV (one row per probe entry),
    /// the format the figure binaries print.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("index,cycles\n");
        for (i, t) in self.timings.iter().enumerate() {
            let _ = writeln!(out, "{i},{t}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with_dip(dip: usize) -> ProbeTimings {
        let mut t = vec![210u64; 256];
        t[dip] = 12;
        ProbeTimings::new(t)
    }

    #[test]
    fn single_dip_is_recovered() {
        let t = series_with_dip(86);
        assert_eq!(t.leaked_byte(DEFAULT_THRESHOLD, &[]), Some(86));
        assert_eq!(t.hot_indices(DEFAULT_THRESHOLD), vec![86]);
    }

    #[test]
    fn excluded_indices_are_ignored() {
        let mut t = vec![210u64; 256];
        t[0] = 10; // training artifact
        t[127] = 15;
        let t = ProbeTimings::new(t);
        assert_eq!(t.leaked_byte(DEFAULT_THRESHOLD, &[0]), Some(127));
    }

    #[test]
    fn flat_series_means_no_leak() {
        let t = ProbeTimings::new(vec![205; 256]);
        assert_eq!(t.leaked_byte(DEFAULT_THRESHOLD, &[]), None);
        assert!(t.hot_indices(DEFAULT_THRESHOLD).is_empty());
    }

    #[test]
    fn miss_floor_excludes_hits() {
        let t = series_with_dip(9);
        assert!((t.miss_floor(DEFAULT_THRESHOLD) - 210.0).abs() < 1e-9);
    }

    #[test]
    fn fastest_hot_index_wins() {
        let mut v = vec![210u64; 256];
        v[3] = 90;
        v[200] = 8;
        let t = ProbeTimings::new(v);
        assert_eq!(t.leaked_byte(DEFAULT_THRESHOLD, &[]), Some(200));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = series_with_dip(1).to_csv();
        assert!(csv.starts_with("index,cycles\n"));
        assert_eq!(csv.lines().count(), 257);
    }
}
