//! Program fragments shared by the attack proofs of concept: the Fig. 8
//! victim function, predictor training loops, the probe-array flush loop and
//! the timing probe.
//!
//! Register conventions inside generated programs: `r1` carries the victim
//! argument `x`; `r2`–`r9` are victim scratch; `r10`–`r25` attacker scratch;
//! `r30` is the assembler temporary; `r31` is the stack pointer.

use specrun_isa::{AluOp, BranchCond, IntReg, ProgramBuilder};

use crate::attack::layout::AttackLayout;

fn r(i: u8) -> IntReg {
    IntReg::new(i).unwrap()
}

/// Emits the Fig. 8 `victim_function` under the label `victim_function`.
///
/// ```text
/// void victim_function(size_t x) {         // x in r1
///     if (x < array1_size) {                // array1_size = *D (stall source)
///         <nop_slide nops>                  // Fig. 11's padding
///         S = array1[x];                    // access secret
///         tmp = array2[S * N];              // transmit secret
///     }
/// }
/// ```
///
/// The bounds check is emitted through [`ProgramBuilder::if_block`], so the
/// branch-scope metadata the §6 defense requires is attached automatically.
pub fn emit_victim_function(b: &mut ProgramBuilder, layout: &AttackLayout, nop_slide: usize) {
    b.label("victim_function");
    b.la(r(2), "bound_addr");
    b.ld(r(3), r(2), 0); // array1_size = *D — the stalling load
    b.if_block(BranchCond::Ltu, r(1), r(3), |b| {
        b.nops(nop_slide);
        b.la(r(4), "array1");
        b.add(r(4), r(4), r(1));
        b.ldb(r(5), r(4), 0); // S = array1[x]
        b.li(r(6), layout.probe_stride as i32);
        b.mul(r(5), r(5), r(6));
        b.la(r(6), "array2");
        b.add(r(5), r(5), r(6));
        b.ldb(r(7), r(5), 0); // transmit: touch array2[S * N]
    });
    b.ret();
}

/// Defines the layout's data symbols on a builder.
pub fn define_symbols(b: &mut ProgramBuilder, layout: &AttackLayout) {
    b.def_sym("bound_addr", layout.bound_addr);
    b.def_sym("array1", layout.array1_base);
    b.def_sym("array2", layout.probe_base);
    b.def_sym("results", layout.results_base);
}

/// Emits the training phase: `rounds` calls of `victim_function` with the
/// in-bounds argument `x = 0`, teaching the PHT that the bounds check
/// falls through into the body (paper step ①).
pub fn emit_training_loop(b: &mut ProgramBuilder, rounds: u32) {
    b.for_loop(r(20), rounds as i32, |b| {
        b.li(r(1), 0);
        b.call("victim_function");
    });
}

/// Emits a loop that `clflush`es every probe-array entry, resetting the
/// covert channel after training (training itself touches `array2[0]`).
pub fn emit_probe_flush(b: &mut ProgramBuilder, layout: &AttackLayout) {
    b.la(r(10), "array2");
    b.for_loop(r(20), layout.probe_entries as i32, |b| {
        b.flush(r(10), 0);
        b.alui(AluOp::Add, r(10), r(10), layout.probe_stride as i32);
    });
}

/// Emits the attack trigger (paper steps ② and ③): flush `D`, set the
/// malicious index, call the victim.
pub fn emit_attack_call(b: &mut ProgramBuilder, layout: &AttackLayout) {
    b.la(r(11), "bound_addr");
    b.flush(r(11), 0);
    b.li(r(1), layout.malicious_x() as i32);
    b.call("victim_function");
}

/// Emits the probe loop (paper step ④): measure the access latency of every
/// probe entry with serialized `rdcycle` pairs and store the 256 timings to
/// `results`.
pub fn emit_probe_loop(b: &mut ProgramBuilder, layout: &AttackLayout) {
    b.la(r(12), "array2");
    b.la(r(13), "results");
    b.for_loop(r(20), layout.probe_entries as i32, |b| {
        b.rdcycle(r(15));
        b.ldb(r(16), r(12), 0);
        b.rdcycle(r(17));
        b.sub(r(18), r(17), r(15));
        b.sd(r(18), r(13), 0);
        b.alui(AluOp::Add, r(12), r(12), layout.probe_stride as i32);
        b.alui(AluOp::Add, r(13), r(13), 8);
    });
}

/// Builds a standalone probe program (used by the multi-program BTB/RSB
/// variants, where the attacker probes from her own process).
pub fn build_probe_program(layout: &AttackLayout) -> specrun_isa::Program {
    let mut b = ProgramBuilder::new(0x40_0000);
    define_symbols(&mut b, layout);
    emit_probe_loop(&mut b, layout);
    b.halt();
    b.build().expect("probe program is closed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_function_has_branch_scope() {
        let layout = AttackLayout::default();
        let mut b = ProgramBuilder::new(0x1000);
        define_symbols(&mut b, &layout);
        emit_victim_function(&mut b, &layout, 0);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.branch_scopes().len(), 1, "bounds check must carry scope metadata");
        assert!(p.symbol("victim_function").is_some());
    }

    #[test]
    fn nop_slide_grows_the_body() {
        let layout = AttackLayout::default();
        let len = |slide| {
            let mut b = ProgramBuilder::new(0x1000);
            define_symbols(&mut b, &layout);
            emit_victim_function(&mut b, &layout, slide);
            b.build().unwrap().len()
        };
        assert_eq!(len(300) - len(0), 300);
    }

    #[test]
    fn probe_program_builds() {
        let p = build_probe_program(&AttackLayout::default());
        assert!(p.len() > 256 / 64, "probe loop exists");
    }
}
