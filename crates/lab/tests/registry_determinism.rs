//! The determinism gate the CI reproduction job relies on: every
//! registered scenario's quick mode must produce byte-identical artifact
//! JSON across independent runs, every legacy experiment must be present,
//! and every paper-claim invariant must hold at quick scale.

use specrun_lab::registry::registry;
use specrun_lab::report::LabReport;
use specrun_lab::scenario::RunContext;

/// The eight experiments that used to be standalone binaries. A registry
/// regression dropping any of them must fail here, not in CI archaeology.
const LEGACY_EXPERIMENTS: [&str; 8] =
    ["fig7", "fig9", "fig10", "fig11", "table1", "variants", "defense", "bench_step"];

/// Scenarios born after the registry (no legacy binary): the ground-truth
/// observer trace, the COW fork-campaign matrix and the trace
/// record/replay self-check. Must stay registered too.
const OBSERVER_SCENARIOS: [&str; 3] = ["leak_trace", "pool_matrix", "trace_repro"];

#[test]
fn every_scenario_quick_mode_is_byte_identical_across_runs() {
    let ctx = RunContext::quick();
    let mut runs = Vec::new();
    for scenario in registry() {
        let first = scenario.execute(&ctx).to_json().render();
        let second = scenario.execute(&ctx).to_json().render();
        assert_eq!(
            first, second,
            "scenario {} must serialize byte-identically across runs",
            scenario.name
        );
        runs.push((scenario.name, first));
    }
    for legacy in LEGACY_EXPERIMENTS {
        assert!(
            runs.iter().any(|(name, _)| *name == legacy),
            "legacy experiment {legacy} missing from the registry"
        );
    }
}

#[test]
fn quick_campaign_passes_every_paper_claim() {
    let ctx = RunContext::quick();
    let mut report = LabReport::default();
    for scenario in registry() {
        report.runs.push(scenario.execute(&ctx).into());
    }
    assert_eq!(report.runs.len(), LEGACY_EXPERIMENTS.len() + OBSERVER_SCENARIOS.len());
    assert!(report.passed(), "quick-mode paper-claim invariants failed: {:?}", report.failures());
    // The merged report is itself deterministic content: no wall-clock
    // fields, insertion-ordered keys.
    let json = report.to_json().render();
    assert!(json.contains("\"passed\": true"));
    for name in LEGACY_EXPERIMENTS.iter().chain(&OBSERVER_SCENARIOS) {
        assert!(json.contains(&format!("\"scenario\": \"{name}\"")), "{name} missing");
    }
}

#[test]
fn thread_count_does_not_change_artifacts() {
    // The CI runner and a developer laptop use different thread counts;
    // artifacts must not care. Cover both fan-out paths that consume
    // ctx.threads: parallel_map over machines (fig11, leak_trace,
    // trace_repro), the seeded multi-trial sweep (bench_step) and the
    // supervised pool fan-out (pool_matrix).
    for name in ["fig11", "bench_step", "leak_trace", "pool_matrix", "trace_repro"] {
        let scenario = specrun_lab::registry::find(name).unwrap();
        let one = scenario.execute(&RunContext { threads: 1, ..RunContext::quick() });
        let four = scenario.execute(&RunContext { threads: 4, ..RunContext::quick() });
        assert_eq!(
            one.to_json().render(),
            four.to_json().render(),
            "{name} artifact must be thread-count-invariant"
        );
    }
}

#[test]
fn seed_changes_are_recorded_in_artifacts() {
    let scenario = specrun_lab::registry::find("bench_step").unwrap();
    let a = scenario.execute(&RunContext { seed: 1, ..RunContext::quick() });
    let b = scenario.execute(&RunContext { seed: 2, ..RunContext::quick() });
    assert_eq!(a.seed, 1);
    assert_eq!(b.seed, 2);
    assert_ne!(
        a.to_json().render(),
        b.to_json().render(),
        "the sweep seed must flow into the artifact"
    );
}
