//! End-to-end tests of the fuzz campaign: byte stability across runs and
//! thread counts, and the inverted-invariant failure pipeline (shrink +
//! replayable fail file + failing status).

use std::path::PathBuf;

use specrun_lab::fuzz::{self, FuzzOptions};
use specrun_lab::FsSink;

fn quick_opts(plans: u64, threads: usize) -> FuzzOptions {
    FuzzOptions { plans, seed: 0xC0FFEE, threads, quick: true, ..FuzzOptions::default() }
}

#[test]
fn campaign_is_byte_stable_across_runs_and_thread_counts() {
    let first = fuzz::campaign(&quick_opts(12, 1));
    let again = fuzz::campaign(&quick_opts(12, 1));
    assert_eq!(first.report, again.report, "same seed, same bytes");

    let sharded = fuzz::campaign(&quick_opts(12, 4));
    assert_eq!(first.report, sharded.report, "thread count must not show in the artifact");

    assert!(first.passed(), "the healthy simulator violates no invariant:\n{}", first.report);
    assert_eq!(first.panics, 0);
    assert!(first.report.contains("\"passed\": true"));
    assert!(first.report.contains("\"campaign_seed\": \"12648430\""));
    // Every invariant is listed, including those with zero applicable plans.
    for inv in fuzz::INVARIANTS {
        assert!(first.report.contains(&format!("\"{}\"", inv.name)), "missing {}", inv.name);
    }
}

#[test]
fn inverted_invariant_drives_the_failure_pipeline() {
    // `makes_progress` holds on every plan, so inverting it makes every
    // plan a failing case — exercising shrink + serialization without
    // needing a real simulator bug.
    let opts = FuzzOptions { invert: Some("makes_progress".to_string()), ..quick_opts(2, 2) };
    let result = fuzz::campaign(&opts);

    assert!(!result.passed());
    assert_eq!(result.failures.len(), 2, "every plan fails under the inversion");
    assert!(result.report.contains("\"passed\": false"));
    assert!(result.report.contains("\"inverted_invariant\": \"makes_progress\""));

    let case = &result.failures[0];
    assert_eq!(case.violated, vec!["makes_progress".to_string()]);
    assert_eq!(case.file_name, format!("fail_{}.json", case.plan_index));
    // The shrunk plan is the grammar's floor: the inverted predicate holds
    // for every plan, so shrinking runs all the way down.
    assert!(case.shrunk.weight() < 10_000, "shrunk weight {} not minimal", case.shrunk.weight());
    for key in
        ["\"fuzz_fail\"", "\"campaign_seed\"", "\"plan_index\"", "\"plan\"", "\"shrunk_plan\""]
    {
        assert!(case.file_body.contains(key), "fail file missing {key}:\n{}", case.file_body);
    }
    assert!(case.file_body.contains("inverted predicate"));
}

#[test]
fn replay_reproduces_a_recorded_failure() {
    let opts = FuzzOptions { invert: Some("makes_progress".to_string()), ..quick_opts(1, 1) };
    let result = fuzz::campaign(&opts);
    let case = &result.failures[0];

    let dir = std::env::temp_dir().join(format!("specrun_fuzz_replay_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(&case.file_name);
    std::fs::write(&path, &case.file_body).unwrap();

    // The recorded inversion replays with the file, so the same violation
    // (and the same shrunk digest) reproduces from seed + index alone.
    assert_eq!(fuzz::replay(&path, None, &FsSink), 1, "the recorded failure still reproduces");
    assert_eq!(
        fuzz::replay(&PathBuf::from("/nonexistent/fail.json"), None, &FsSink),
        2,
        "unreadable file"
    );

    let bogus = dir.join("bogus.json");
    std::fs::write(&bogus, "{\"not\": \"a fail file\"}\n").unwrap();
    assert_eq!(fuzz::replay(&bogus, None, &FsSink), 2, "malformed file");

    // `--trace` on the same replay writes a decodable forensic log of the
    // shrunk plan's pipeline events alongside the reproduction.
    let trace = dir.join("fail_trace.bin");
    assert_eq!(fuzz::replay(&path, Some(&trace), &FsSink), 1, "tracing must not mask the verdict");
    let bytes = std::fs::read(&trace).expect("replay wrote the forensic trace");
    let decoded = specrun_trace::decode_events(&bytes).expect("the trace decodes cleanly");
    assert!(!decoded.events.is_empty(), "the shrunk plan emits pipeline events");
    assert!(!decoded.torn_tail, "a completed replay never leaves a torn tail");

    std::fs::remove_dir_all(&dir).ok();
}
