//! Binary-level crash-safety tests: a SIGKILLed campaign resumes from its
//! journal to a byte-identical report, foreign journals are refused, and
//! artifact-write failures exit non-zero without corrupting prior output.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn lab_bin() -> &'static str {
    env!("CARGO_BIN_EXE_specrun-lab")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("specrun-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Wait until `path` exists and holds at least `lines` newline-terminated
/// lines (header + entries), or the deadline passes.
fn wait_for_lines(path: &Path, lines: usize, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if let Ok(text) = std::fs::read_to_string(path) {
            if text.lines().count() >= lines {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn sigkilled_fuzz_campaign_resumes_byte_identically() {
    let dir = scratch("fuzz");
    let report = dir.join("FUZZ_report.json");
    let journal = dir.join("FUZZ_report.json.journal");
    let fail_dir = dir.join("fail");
    let args = |extra: &[&str]| {
        let mut v = vec![
            "fuzz".to_string(),
            "--plans".into(),
            "200".into(),
            "--quick".into(),
            "--shard-threads".into(),
            "1".into(),
            "--report".into(),
            report.display().to_string(),
            "--fail-dir".into(),
            fail_dir.display().to_string(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };

    // Reference: the same campaign, uninterrupted.
    let ref_report = dir.join("reference.json");
    let status = Command::new(lab_bin())
        .args(args(&[]))
        .stdout(Stdio::null())
        .status()
        .expect("spawn reference fuzz");
    assert!(status.success(), "reference campaign must pass");
    std::fs::rename(&report, &ref_report).expect("stash reference report");

    // Interrupted run: SIGKILL once the journal holds a few completed plans.
    let mut child = Command::new(lab_bin())
        .args(args(&[]))
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn fuzz to interrupt");
    let journaled = wait_for_lines(&journal, 4, Duration::from_secs(30));
    let _ = child.kill(); // SIGKILL on unix: no cleanup runs
    let _ = child.wait();

    if journaled && !report.exists() {
        assert!(journal.exists(), "the journal survives the kill");
    }
    // (If the campaign raced to completion before the kill, --resume below
    // simply starts fresh — the byte-identity assertion still holds.)

    let status = Command::new(lab_bin())
        .args(args(&["--resume"]))
        .stdout(Stdio::null())
        .status()
        .expect("spawn resumed fuzz");
    assert!(status.success(), "resumed campaign must pass");

    let resumed = std::fs::read(&report).expect("resumed report");
    let reference = std::fs::read(&ref_report).expect("reference report");
    assert_eq!(resumed, reference, "resume must reproduce the reference bytes exactly");
    assert!(!journal.exists(), "the journal retires once the report is durable");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_supervised_campaign_never_double_counts_retries() {
    let dir = scratch("retry");
    let report = dir.join("FUZZ_report.json");
    let journal = dir.join("FUZZ_report.json.journal");
    let fail_dir = dir.join("fail");
    let args = |extra: &[&str]| {
        let mut v = vec![
            "fuzz".to_string(),
            "--plans".into(),
            "200".into(),
            "--quick".into(),
            "--shard-threads".into(),
            "1".into(),
            "--report".into(),
            report.display().to_string(),
            "--fail-dir".into(),
            fail_dir.display().to_string(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };
    // The injected flakes fail each plan's first attempt and heal on the
    // retry, so the supervised campaign exercises the full retry path but
    // must still converge on the unsupervised reference bytes.
    let supervised = ["--retries", "2", "--chaos-flaky-plans", "0,7,19,41,87,143"];

    // Reference: the same campaign with no supervision flags at all.
    let ref_report = dir.join("reference.json");
    let status = Command::new(lab_bin())
        .args(args(&[]))
        .stdout(Stdio::null())
        .status()
        .expect("spawn reference fuzz");
    assert!(status.success(), "reference campaign must pass");
    std::fs::rename(&report, &ref_report).expect("stash reference report");

    // Supervised run, SIGKILLed while retries are still in flight.
    let mut child = Command::new(lab_bin())
        .args(args(&supervised))
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn supervised fuzz to interrupt");
    wait_for_lines(&journal, 6, Duration::from_secs(30));
    let _ = child.kill();
    let _ = child.wait();

    // The journal records *final* attempts only: every plan key appears at
    // most once, and a healed flaky plan is journaled as a plain success.
    let text = std::fs::read_to_string(&journal).expect("journal survives the kill");
    let mut seen = std::collections::HashSet::new();
    for line in text.lines().skip(1) {
        // Entry lines read `e <key> [payload] <digest>`; a torn tail may
        // lack the digest but the key field is still second.
        let Some(key) = line.split_whitespace().nth(1) else { continue };
        assert!(seen.insert(key.to_string()), "journal double-counts {key}:\n{text}");
    }
    if let Some(line) = text.lines().find(|l| l.starts_with("e plan:0 ")) {
        assert!(line.contains(" ok "), "flaky plan 0 heals before it is journaled: {line}");
    }

    // Resume under the same flags: retries replay deterministically and the
    // report matches the flag-free reference byte for byte.
    let status = Command::new(lab_bin())
        .args(args(&supervised))
        .arg("--resume")
        .stdout(Stdio::null())
        .status()
        .expect("spawn resumed supervised fuzz");
    assert!(status.success(), "resumed supervised campaign must pass");
    let resumed = std::fs::read(&report).expect("resumed report");
    let reference = std::fs::read(&ref_report).expect("reference report");
    assert_eq!(resumed, reference, "supervision flags must never change the report bytes");
    assert!(!journal.exists(), "the journal retires once the report is durable");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_run_campaign_resumes_byte_identically() {
    let dir = scratch("run");
    let ref_dir = dir.join("reference");
    let cut_dir = dir.join("interrupted");
    let run_args = |artifacts: &Path, extra: &[&str]| {
        let mut v = vec![
            "run".to_string(),
            "fig7".into(),
            "table1".into(),
            "--quick".into(),
            "--artifacts-dir".into(),
            artifacts.display().to_string(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };

    let status = Command::new(lab_bin())
        .args(run_args(&ref_dir, &[]))
        .stdout(Stdio::null())
        .status()
        .expect("spawn reference run");
    assert!(status.success(), "reference run must pass");

    let journal = cut_dir.join("LAB_report.journal");
    let mut child = Command::new(lab_bin())
        .args(run_args(&cut_dir, &[]))
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn run to interrupt");
    wait_for_lines(&journal, 2, Duration::from_secs(60));
    let _ = child.kill();
    let _ = child.wait();

    let status = Command::new(lab_bin())
        .args(run_args(&cut_dir, &["--resume"]))
        .stdout(Stdio::null())
        .status()
        .expect("spawn resumed run");
    assert!(status.success(), "resumed run must pass");

    for name in ["LAB_report.json", "fig7.json", "table1.json"] {
        let reference = std::fs::read(ref_dir.join(name)).expect(name);
        let resumed = std::fs::read(cut_dir.join(name)).expect(name);
        assert_eq!(resumed, reference, "{name} must be byte-identical after resume");
    }
    assert!(!journal.exists(), "the journal retires once artifacts are durable");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_journal_is_refused_with_exit_2() {
    let dir = scratch("foreign");
    let report = dir.join("FUZZ_report.json");
    let journal = dir.join("FUZZ_report.json.journal");
    std::fs::write(&journal, "not a specrun journal\n").expect("seed foreign journal");

    let output = Command::new(lab_bin())
        .args([
            "fuzz",
            "--plans",
            "2",
            "--quick",
            "--resume",
            "--report",
            &report.display().to_string(),
            "--fail-dir",
            &dir.join("fail").display().to_string(),
        ])
        .output()
        .expect("spawn fuzz with foreign journal");
    assert_eq!(output.status.code(), Some(2), "journal corruption is a hard error");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot resume"), "stderr explains the refusal:\n{stderr}");
    assert!(stderr.contains("delete the journal"), "stderr offers the way out:\n{stderr}");
    assert!(!report.exists(), "no report is written from a refused resume");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_report_path_exits_2_and_keeps_the_journal() {
    let dir = scratch("unwritable");
    // A directory at the report path makes the final rename fail after a
    // full, healthy campaign — the journal must survive for a retry.
    let report = dir.join("FUZZ_report.json");
    std::fs::create_dir_all(&report).expect("squat on the report path");

    let output = Command::new(lab_bin())
        .args([
            "fuzz",
            "--plans",
            "2",
            "--quick",
            "--report",
            &report.display().to_string(),
            "--fail-dir",
            &dir.join("fail").display().to_string(),
        ])
        .output()
        .expect("spawn fuzz with unwritable report");
    assert_eq!(output.status.code(), Some(2), "artifact-write failure is a hard error");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("journal is kept"), "stderr points at the journal:\n{stderr}");
    assert!(dir.join("FUZZ_report.json.journal").exists(), "journal survives the write failure");

    let _ = std::fs::remove_dir_all(&dir);
}
