//! `specrun-lab fuzz`: the generative attack-plan soak runner.
//!
//! A fuzz campaign is a pure function of `(seed, plan count, mode)`: it
//! generates [`Plan`]s with the grammar in `specrun_workloads::plan`, runs
//! each one twice through [`specrun::run_plan`] (the re-run feeds the
//! determinism oracle), and checks the [`INVARIANTS`] registry — the
//! cross-cutting claims that must hold for *every* victim shape the
//! grammar can produce, not just the paper's hand-written PoCs. Trials fan
//! out over [`try_parallel_map_with`], so a panicking plan becomes a reportable
//! failing case rather than killing the campaign; every failing plan is
//! then minimized by [`shrink_plan`] while preserving at least one of its
//! originally-violated invariants, and serialized (original + shrunk) to a
//! replayable `fail_<index>.json`.
//!
//! The campaign summary (`FUZZ_report.json`) is byte-stable across runs
//! and thread counts for a fixed seed — the property the CI `fuzz-soak`
//! job double-runs to verify. `--invert-invariant NAME` flips one
//! predicate so CI can also prove the failure path (shrink + artifact +
//! nonzero exit) works without needing a real simulator bug on hand.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;

use specrun::plan::{run_plan, try_run_plan, try_run_plan_governed, PlanOutcome};
use specrun_workloads::clock::WallClock;
use specrun_workloads::fuzz::shrink_plan;
use specrun_workloads::harness::{default_threads, try_parallel_map_with, RunError};
use specrun_workloads::plan::{GadgetKind, Plan, PlanPolicy};
use specrun_workloads::supervisor::{
    supervised_map_with, CancelToken, SupervisorConfig, UnitCtx, UnitOutcome,
};

use crate::journal::{self, Journal, JournalError};
use crate::json::Json;
use crate::scenario::fnv1a;
use crate::sink::{ArtifactSink, FsSink};

/// Default campaign seed (the CI soak seed).
pub const DEFAULT_FUZZ_SEED: u64 = 0xC0FFEE;
/// Default campaign size.
pub const DEFAULT_PLANS: u64 = 200;
/// Name of the campaign summary artifact.
pub const FUZZ_REPORT_NAME: &str = "FUZZ_report.json";

/// Both executions of one plan — the second exists solely so oracles can
/// demand the first was reproducible.
#[derive(Debug, Clone)]
pub struct PlanEval {
    /// Outcome of the first run.
    pub first: PlanOutcome,
    /// Outcome of the independent re-run.
    pub second: PlanOutcome,
}

/// One cross-cutting claim checked against every applicable plan.
pub struct FuzzInvariant {
    /// Stable name (report key, `--invert-invariant` argument).
    pub name: &'static str,
    /// Human-readable claim.
    pub claim: &'static str,
    /// Whether the claim applies to this plan.
    pub applies: fn(&Plan) -> bool,
    /// `Err(detail)` when the plan violates the claim.
    pub check: fn(&Plan, &PlanEval) -> Result<(), String>,
}

fn beyond_rob(plan: &Plan) -> bool {
    // A margin over the ROB so the *whole* gadget (slide + access +
    // transmit) sits outside the reorder window — only then is the
    // plain-speculation path provably closed and "no leak" a theorem
    // rather than a probability.
    u64::from(plan.victim.nop_slide) > u64::from(plan.knobs.rob_entries) + 16
}

/// The fuzz-invariant registry. Order is the report's key order.
pub const INVARIANTS: &[FuzzInvariant] = &[
    FuzzInvariant {
        name: "determinism",
        claim: "re-running a plan reproduces the outcome bit for bit",
        applies: |_| true,
        check: |_, eval| {
            if eval.first == eval.second {
                Ok(())
            } else {
                Err(format!(
                    "first run fingerprint {:#x} / cycles {} vs re-run {:#x} / {}",
                    eval.first.arch_fingerprint,
                    eval.first.stats.cycles,
                    eval.second.arch_fingerprint,
                    eval.second.stats.cycles
                ))
            }
        },
    },
    FuzzInvariant {
        name: "leak_is_planted",
        claim: "a tracer-corroborated leak names the planted secret byte",
        applies: |_| true,
        // The flush+reload readout picks the fastest sub-threshold probe
        // entry, so a plan whose attack *fails* can still claim a byte out
        // of wrong-path cache pollution — that is attack physics, not a
        // simulator defect. The channel is only on the hook when the
        // tracer corroborates that the planted secret's probe line was the
        // unique transient fill: then a different claim means the covert
        // channel's accounting is broken.
        check: |plan, eval| match (eval.first.leaked, eval.first.ground_truth) {
            (Some(b), Some(g)) if g == plan.secret && b != plan.secret => Err(format!(
                "channel claimed {b:#04x} while the tracer saw only {:#04x}",
                plan.secret
            )),
            _ => Ok(()),
        },
    },
    FuzzInvariant {
        name: "ground_truth_agrees",
        claim: "the tracer's unique transient probe byte is the planted secret",
        applies: |_| true,
        check: |plan, eval| match eval.first.ground_truth {
            None => Ok(()),
            Some(b) if b == plan.secret => Ok(()),
            Some(b) => Err(format!("tracer saw {b:#04x}, planted {:#04x}", plan.secret)),
        },
    },
    FuzzInvariant {
        name: "secure_zero_transient_secret_fills",
        claim: "the SL-cache defense permits zero transient secret-line fills",
        applies: |plan| plan.policy == PlanPolicy::Secure,
        check: |_, eval| {
            if eval.first.transient_secret_fills == 0 {
                Ok(())
            } else {
                Err(format!("{} transient secret fills", eval.first.transient_secret_fills))
            }
        },
    },
    FuzzInvariant {
        name: "defended_no_leak_beyond_rob",
        claim: "a defended machine never leaks a beyond-the-ROB PHT gadget's secret",
        // Beyond the ROB, plain speculation cannot reach the gadget, so
        // only runahead could leak — and the defense must stop it. The
        // channel may still *claim* a garbage byte (wrong-path pollution
        // makes some probe entry hot on a failed attack), so the check is
        // on the planted byte and the secret line, not on silence.
        //
        // PHT gadgets only: the SL cache's Btag machinery (paper Fig. 12 /
        // Algorithm 1) scopes fills under *conditional* branches. A gadget
        // reached through a mispredicted return or indirect target opens
        // no scope, so its fills carry Btag = 0 — which Algorithm 1 lines
        // 21–23 promote as safe after exit, and the secret is recovered
        // architecturally. The fuzzer surfaced that limitation (see the
        // README's fuzzing section); it is faithful to the paper, whose
        // defense targets the bound-check (PHT) gadget.
        applies: |plan| {
            plan.policy.is_defended() && plan.victim.gadget == GadgetKind::Pht && beyond_rob(plan)
        },
        check: |plan, eval| {
            if eval.first.leaked == Some(plan.secret) {
                return Err("defended machine leaked the planted secret".to_string());
            }
            if eval.first.transient_secret_fills > 0 {
                return Err(format!(
                    "{} transient fills of the secret's probe line",
                    eval.first.transient_secret_fills
                ));
            }
            Ok(())
        },
    },
    FuzzInvariant {
        name: "observer_reconciles",
        claim: "pipeline-observer event totals equal the core's statistics",
        // The BTB flavour runs its trainer before `reset_stats`, so the
        // observer (which has no reset) legitimately counts events the
        // statistics do not — reconciliation is a Pht/Rsb claim.
        applies: |plan| plan.victim.gadget != GadgetKind::Btb,
        check: |_, eval| {
            let c = &eval.first.counts;
            let s = &eval.first.stats;
            let pairs = [
                ("runahead_enters", c.runahead_enters, s.runahead_entries),
                ("runahead_exits", c.runahead_exits, s.runahead_exits),
                ("squashed", c.squashed_total, s.squashed),
                ("commits", c.commits, s.committed),
            ];
            for (what, observed, stat) in pairs {
                if observed != stat {
                    return Err(format!("{what}: observer {observed} vs stats {stat}"));
                }
            }
            // `CpuStats::branch_mispredicts` counts conditional branches
            // only (it feeds `mispredict_rate`); the observer's event fires
            // for every branch kind, so indirect/return mispredicts widen
            // it — the observer may exceed the stat but never trail it.
            if c.mispredicts < s.branch_mispredicts {
                return Err(format!(
                    "mispredicts: observer {} trails stats {}",
                    c.mispredicts, s.branch_mispredicts
                ));
            }
            Ok(())
        },
    },
    FuzzInvariant {
        name: "makes_progress",
        claim: "every plan commits instructions within its cycle budget",
        applies: |_| true,
        check: |_, eval| {
            if eval.first.stats.committed > 0 {
                Ok(())
            } else {
                Err("no instructions committed".to_string())
            }
        },
    },
];

/// Looks an invariant up by name.
pub fn find_invariant(name: &str) -> Option<&'static FuzzInvariant> {
    INVARIANTS.iter().find(|inv| inv.name == name)
}

/// One invariant violation (or panic) a plan produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated invariant, or `"panic"`.
    pub invariant: String,
    /// What was observed.
    pub detail: String,
}

/// Runs `plan` twice and returns both outcomes. Panics propagate — the
/// campaign path catches them in the trial harness, the shrinking path
/// in [`checked_violations`].
pub fn evaluate(plan: &Plan) -> PlanEval {
    PlanEval { first: run_plan(plan), second: run_plan(plan) }
}

/// Fallible [`evaluate`]: a plan whose programs exhaust their cycle
/// budget (or wedge) surfaces as a [`RunError`] instead of a panic, which
/// the campaign records as a `run_error` violation — a reported failing
/// plan, not a dead campaign.
pub fn try_evaluate(plan: &Plan) -> Result<PlanEval, RunError> {
    Ok(PlanEval { first: try_run_plan(plan)?, second: try_run_plan(plan)? })
}

/// [`try_evaluate`] under a supervisor [`CancelToken`]: both executions
/// publish heartbeats through the token and stop cooperatively when the
/// monitor trips it, surfacing as [`RunError::Cancelled`] for the
/// supervisor to classify as a deadline or stall.
pub fn try_evaluate_governed(plan: &Plan, token: &CancelToken) -> Result<PlanEval, RunError> {
    Ok(PlanEval {
        first: try_run_plan_governed(plan, Some(token.clone()))?,
        second: try_run_plan_governed(plan, Some(token.clone()))?,
    })
}

/// Name under which a structured [`RunError`] appears in violation lists
/// (beside the per-invariant names and `"panic"`).
pub const RUN_ERROR_VIOLATION: &str = "run_error";

/// Digest summarizing one evaluation, journaled with a passing plan so a
/// resumed campaign can (and tests do) cross-check that skipped work
/// matches what actually ran.
fn eval_digest(eval: &PlanEval) -> u64 {
    fnv1a(
        format!(
            "{:016x}/{}/{:?}",
            eval.first.arch_fingerprint, eval.first.stats.cycles, eval.first.leaked
        )
        .as_bytes(),
    )
}

/// Checks every applicable invariant, honouring an optional inverted
/// predicate (`invert`): for that invariant, a pass becomes a violation
/// and a violation a pass — the self-test hook proving the failure
/// pipeline works.
pub fn violations_for(plan: &Plan, eval: &PlanEval, invert: Option<&str>) -> Vec<Violation> {
    let mut out = Vec::new();
    for inv in INVARIANTS {
        if !(inv.applies)(plan) {
            continue;
        }
        let result = (inv.check)(plan, eval);
        let inverted = invert == Some(inv.name);
        match (result, inverted) {
            (Ok(()), false) | (Err(_), true) => {}
            (Err(detail), false) => {
                out.push(Violation { invariant: inv.name.to_string(), detail });
            }
            (Ok(()), true) => out.push(Violation {
                invariant: inv.name.to_string(),
                detail: "inverted predicate: the invariant held".to_string(),
            }),
        }
    }
    out
}

/// [`violations_for`] with failure capture: a plan that exhausts its
/// cycle budget yields a single [`RUN_ERROR_VIOLATION`] violation, a
/// panicking plan a single `"panic"` violation carrying the payload. This
/// is the serial flavour the shrinker's `still_fails` probe uses, so both
/// failure signatures shrink like any invariant violation.
pub fn checked_violations(plan: &Plan, invert: Option<&str>) -> Vec<Violation> {
    match catch_unwind(AssertUnwindSafe(|| {
        try_evaluate(plan).map(|eval| violations_for(plan, &eval, invert))
    })) {
        Ok(Ok(violations)) => violations,
        Ok(Err(run_error)) => vec![Violation {
            invariant: RUN_ERROR_VIOLATION.to_string(),
            detail: run_error.to_string(),
        }],
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            vec![Violation { invariant: "panic".to_string(), detail: message }]
        }
    }
}

/// Options of a fuzz campaign (the `specrun-lab fuzz` arguments).
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of plans to generate and run.
    pub plans: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Worker threads (`0` = all host cores).
    pub threads: usize,
    /// Quick (CI-soak) scale.
    pub quick: bool,
    /// Directory receiving `fail_<index>.json` files.
    pub fail_dir: PathBuf,
    /// Path of the campaign summary.
    pub report_path: PathBuf,
    /// Invariant to invert (self-test of the failure pipeline).
    pub invert: Option<String>,
    /// Replay a failing-plan file instead of running a campaign.
    pub replay: Option<PathBuf>,
    /// With `--replay`: also record the replayed plan's pipeline events
    /// to this binary log, so a shrunk reproducer yields a forensic trace
    /// (`specrun-lab trace replay`/`diff` fodder) in one command.
    pub trace: Option<PathBuf>,
    /// Resume from the campaign journal: plans it records as passed are
    /// skipped; everything else re-runs. The final report is byte-identical
    /// to an uninterrupted run.
    pub resume: bool,
    /// Journal path override (default: `<report path>.journal`).
    pub journal: Option<PathBuf>,
    /// Keep the journal after a completed campaign instead of deleting it
    /// (chaos-harness and test hook; not exposed on the CLI).
    pub keep_journal: bool,
    /// Chaos hook (not a CLI flag): plan indices whose evaluation panics,
    /// driving the panic-isolation recovery path deterministically.
    pub chaos_panic_plans: Vec<u64>,
    /// Per-plan wall-clock deadline in ms (`0` = no deadline). A plan
    /// still progressing past it is cancelled cooperatively and reported
    /// as a deadline overrun.
    pub deadline_ms: u64,
    /// No-heartbeat window in ms before a plan counts as stalled
    /// (`0` = no stall detection).
    pub stall_ms: u64,
    /// Retry attempts per failing plan (supervision errors only; invariant
    /// violations are results, not failures, and never retry).
    pub retries: u32,
    /// Failure-rate threshold of the campaign circuit breaker
    /// (`1.0` = disabled).
    pub max_failure_rate: f64,
    /// Chaos hook (`--chaos-flaky-plans`, a self-test flag): plan indices
    /// whose first attempt fails with a transient IO error, proving the
    /// retry path heals byte-identically.
    pub chaos_flaky_plans: Vec<u64>,
    /// Chaos hook (not a CLI flag): plan indices failing identically on
    /// every attempt, driving the quarantine and circuit-breaker paths.
    pub chaos_sick_plans: Vec<u64>,
    /// Completed plans required before the breaker may trip (chaos/test
    /// hook; not a CLI flag).
    pub breaker_min_units: u64,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            plans: DEFAULT_PLANS,
            seed: DEFAULT_FUZZ_SEED,
            threads: 0,
            quick: false,
            fail_dir: PathBuf::from("fuzz-failures"),
            report_path: PathBuf::from(FUZZ_REPORT_NAME),
            invert: None,
            replay: None,
            trace: None,
            resume: false,
            journal: None,
            keep_journal: false,
            chaos_panic_plans: Vec::new(),
            deadline_ms: 0,
            stall_ms: 0,
            retries: 0,
            max_failure_rate: 1.0,
            chaos_flaky_plans: Vec::new(),
            chaos_sick_plans: Vec::new(),
            breaker_min_units: SupervisorConfig::default().breaker_min_units,
        }
    }
}

impl FuzzOptions {
    /// Where this campaign's journal lives.
    pub fn journal_path(&self) -> PathBuf {
        self.journal
            .clone()
            .unwrap_or_else(|| PathBuf::from(format!("{}.journal", self.report_path.display())))
    }

    /// The supervision policy these options describe.
    pub fn supervisor_config(&self) -> SupervisorConfig {
        SupervisorConfig {
            deadline_ms: self.deadline_ms,
            stall_ms: self.stall_ms,
            retries: self.retries,
            seed: self.seed,
            max_failure_rate: self.max_failure_rate,
            breaker_min_units: self.breaker_min_units,
            ..SupervisorConfig::default()
        }
    }

    /// Whether the campaign runs under the supervisor (any supervision
    /// feature on, or a supervision chaos hook armed). A plain campaign
    /// keeps the monitor-free harness path.
    fn supervised(&self) -> bool {
        self.supervisor_config().is_active()
            || !self.chaos_flaky_plans.is_empty()
            || !self.chaos_sick_plans.is_empty()
    }

    /// The journal header string: everything that determines the
    /// campaign's bytes. Thread count is deliberately absent — results
    /// are thread-invariant, so a resume may use a different fan-out.
    /// Supervision options are absent for the same reason: they bound
    /// *how long* a plan may run, never what a completed plan produced.
    fn journal_header(&self) -> String {
        format!(
            "fuzz seed={} plans={} mode={} invert={}",
            self.seed,
            self.plans,
            if self.quick { "quick" } else { "full" },
            self.invert.as_deref().unwrap_or("-"),
        )
    }
}

/// One failing plan, fully processed: violations, shrunk reproducer,
/// serialized fail file.
#[derive(Debug, Clone)]
pub struct FailCase {
    /// Index of the plan in its campaign.
    pub plan_index: u64,
    /// Names of the violated invariants (sorted, deduplicated).
    pub violated: Vec<String>,
    /// Violation details as observed on the original plan.
    pub details: Vec<Violation>,
    /// The minimized plan, still violating at least one of `violated`.
    pub shrunk: Plan,
    /// FNV-1a digest of the shrunk plan's JSON.
    pub digest: u64,
    /// File name of the serialized case (relative to the fail dir).
    pub file_name: String,
    /// Full serialized fail-file contents.
    pub file_body: String,
}

/// Everything a campaign produced, I/O-free: the summary artifact and the
/// fail files as `(name, body)` pairs. [`run`] writes them to disk; tests
/// compare them byte for byte.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Rendered `FUZZ_report.json` contents.
    pub report: String,
    /// Per-invariant `(applicable, violations)` tallies in registry order.
    pub tallies: Vec<(String, u64, u64)>,
    /// Plans that panicked.
    pub panics: u64,
    /// Plans that failed with a structured [`RunError`] (budget
    /// exhaustion, wedged core, deadline, stall) instead of completing.
    pub run_errors: u64,
    /// Plans quarantined by the supervisor for failing identically twice.
    pub quarantined: u64,
    /// Plans the circuit breaker skipped: they never ran, and the report
    /// is explicitly partial (a `--resume` completes them).
    pub skipped_plans: u64,
    /// Whether the campaign circuit breaker tripped.
    pub breaker_tripped: bool,
    /// Every failing plan, shrunk and serialized.
    pub failures: Vec<FailCase>,
}

impl CampaignResult {
    /// Whether the campaign found no violations, no panics, and actually
    /// ran everything (a breaker-tripped partial report never passes).
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.skipped_plans == 0
    }
}

fn render_fail_file(opts: &FuzzOptions, case_plan: &Plan, case: &FailCase) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"fuzz_fail\": \"specrun\",\n");
    s.push_str(&format!("  \"campaign_seed\": \"{}\",\n", case_plan.campaign_seed));
    s.push_str(&format!("  \"plan_index\": {},\n", case.plan_index));
    s.push_str(&format!("  \"mode\": \"{}\",\n", if case_plan.quick { "quick" } else { "full" }));
    match &opts.invert {
        Some(name) => s.push_str(&format!("  \"inverted_invariant\": \"{name}\",\n")),
        None => s.push_str("  \"inverted_invariant\": null,\n"),
    }
    s.push_str("  \"violated\": [");
    for (i, name) in case.violated.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{name}\""));
    }
    s.push_str("],\n");
    s.push_str("  \"details\": [");
    for (i, v) in case.details.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"invariant\": {}, \"observed\": {}}}",
            crate::json::escape(&v.invariant),
            crate::json::escape(&v.detail)
        ));
    }
    s.push_str(if case.details.is_empty() { "],\n" } else { "\n  ],\n" });
    s.push_str(&format!("  \"shrunk_weight\": {},\n", case.shrunk.weight()));
    s.push_str(&format!("  \"shrunk_digest\": \"{:016x}\",\n", case.digest));
    s.push_str(&format!("  \"plan\": {},\n", case_plan.to_json(1)));
    s.push_str(&format!("  \"shrunk_plan\": {}\n", case.shrunk.to_json(1)));
    s.push_str("}\n");
    s
}

/// Why a journaled campaign could not run at all (distinct from plans
/// failing *inside* a campaign, which are reported results).
enum CampaignAbort {
    /// The resume journal is corrupt or belongs to another campaign.
    Journal(JournalError),
    /// The journal could not be written.
    Io(String),
}

/// Runs a fuzz campaign without touching the filesystem.
pub fn campaign(opts: &FuzzOptions) -> CampaignResult {
    let (result, _) = campaign_with(opts, None)
        .unwrap_or_else(|_| unreachable!("journal-free runs cannot abort"));
    result
}

/// One plan's worker-side outcome: its violations, plus the evaluation
/// digest journaled with a pass (0 when the plan never completed).
fn plan_outcome(plan: &Plan, invert: Option<&str>, panic_plans: &[u64]) -> (Vec<Violation>, u64) {
    assert!(
        !panic_plans.contains(&plan.index),
        "chaos: injected panic evaluating plan {}",
        plan.index
    );
    match try_evaluate(plan) {
        Ok(eval) => {
            let digest = eval_digest(&eval);
            (violations_for(plan, &eval, invert), digest)
        }
        Err(run_error) => (
            vec![Violation {
                invariant: RUN_ERROR_VIOLATION.to_string(),
                detail: run_error.to_string(),
            }],
            0,
        ),
    }
}

/// [`plan_outcome`] for the supervised path. Plan-level failures (budget
/// exhaustion, wedged core) stay **in-band** — they are deterministic
/// results, reported exactly as on the plain path and never retried. Only
/// supervision-layer failures (cooperative cancellation, injected IO
/// flakes) return `Err`, handing the supervisor something a retry could
/// plausibly heal.
fn supervised_plan_outcome(
    plan: &Plan,
    invert: Option<&str>,
    opts: &FuzzOptions,
    ctx: &UnitCtx,
) -> Result<(Vec<Violation>, u64), RunError> {
    assert!(
        !opts.chaos_panic_plans.contains(&plan.index),
        "chaos: injected panic evaluating plan {}",
        plan.index
    );
    if opts.chaos_sick_plans.contains(&plan.index) {
        return Err(RunError::Io {
            what: format!("plan {}", plan.index),
            detail: "chaos: injected persistent artifact-sink failure".to_string(),
        });
    }
    if opts.chaos_flaky_plans.contains(&plan.index) && ctx.attempt == 0 {
        return Err(RunError::Io {
            what: format!("plan {}", plan.index),
            detail: "chaos: injected transient artifact-sink flake".to_string(),
        });
    }
    match try_evaluate_governed(plan, &ctx.token) {
        Ok(eval) => {
            let digest = eval_digest(&eval);
            Ok((violations_for(plan, &eval, invert), digest))
        }
        Err(cancelled @ RunError::Cancelled { .. }) => Err(cancelled),
        Err(run_error) => Ok((
            vec![Violation {
                invariant: RUN_ERROR_VIOLATION.to_string(),
                detail: run_error.to_string(),
            }],
            0,
        )),
    }
}

/// Renders a supervised unit's terminal failure as the single violation
/// the report carries for that plan.
fn supervised_violation(error: &RunError, history: &[String], quarantined: bool) -> Violation {
    let (invariant, base) = match error {
        RunError::Panic(e) => ("panic", e.message.clone()),
        other => (RUN_ERROR_VIOLATION, other.to_string()),
    };
    let detail = if quarantined {
        format!("quarantined after {} attempt(s): {}", history.len(), history.join(" | "))
    } else if history.len() > 1 {
        format!("{base} (final of {} attempt(s))", history.len())
    } else {
        base
    };
    Violation { invariant: invariant.to_string(), detail }
}

/// The campaign core. With a journal, every completed plan is durably
/// recorded as it finishes (`plan:<i> ok <digest>` / `plan:<i> fail …`);
/// on `--resume` the journaled passes are skipped and everything else —
/// failing plans included, they are rare and deterministic — re-runs, so
/// the merged result (and hence the report bytes) is identical to an
/// uninterrupted campaign. Returns the result plus how many plans were
/// skipped.
fn campaign_with(
    opts: &FuzzOptions,
    journal: Option<(&dyn ArtifactSink, PathBuf)>,
) -> Result<(CampaignResult, u64), CampaignAbort> {
    let invert = opts.invert.as_deref();
    let plans: Vec<Plan> =
        (0..opts.plans).map(|i| Plan::generate(opts.seed, i, opts.quick)).collect();
    let threads = if opts.threads == 0 { default_threads() } else { opts.threads };
    let header = opts.journal_header();

    let journal = journal.map(|(sink, path)| Journal::new(sink, path));
    let mut skip: BTreeSet<u64> = BTreeSet::new();
    if let Some(j) = &journal {
        if opts.resume {
            match journal::load(j.path(), &header) {
                Ok(Some(state)) => {
                    for (key, payload) in &state.entries {
                        let index = key.strip_prefix("plan:").and_then(|s| s.parse::<u64>().ok());
                        if let Some(index) = index {
                            if index < opts.plans && payload.starts_with("ok") {
                                skip.insert(index);
                            }
                        }
                    }
                }
                Ok(None) => {
                    j.begin(&header).map_err(|e| CampaignAbort::Io(e.to_string()))?;
                }
                Err(e) => return Err(CampaignAbort::Journal(e)),
            }
        } else {
            j.begin(&header).map_err(|e| CampaignAbort::Io(e.to_string()))?;
        }
    }

    // Fan out over the plans the journal does not cover; a panicking plan
    // surfaces as a TrialError, not a dead run. The completion hook
    // journals each plan the moment it finishes, from the worker thread —
    // final attempts only on the supervised path, since the hook fires
    // once per unit after its retry loop resolves.
    let pending: Vec<&Plan> = plans.iter().filter(|p| !skip.contains(&p.index)).collect();
    let journal_error: Mutex<Option<String>> = Mutex::new(None);
    let journal_append = |index: u64, payload: &str| {
        let Some(j) = &journal else { return };
        if let Err(e) = j.append(&format!("plan:{index}"), payload) {
            let mut slot = journal_error.lock().unwrap();
            slot.get_or_insert_with(|| format!("cannot append to journal: {e}"));
        }
    };
    let fail_payload = |violations: &[Violation]| {
        let names: BTreeSet<&str> = violations.iter().map(|v| v.invariant.as_str()).collect();
        format!("fail {}", names.into_iter().collect::<Vec<_>>().join(","))
    };

    let mut by_index: BTreeMap<u64, Vec<Violation>> = BTreeMap::new();
    let mut panics = 0u64;
    let mut quarantined = 0u64;
    let mut skipped_plans: BTreeSet<u64> = BTreeSet::new();
    let mut breaker_tripped = false;

    if opts.supervised() {
        let cfg = opts.supervisor_config();
        let clock = WallClock::new();
        let report = supervised_map_with(
            &pending,
            threads,
            &cfg,
            &clock,
            |_, plan, ctx| supervised_plan_outcome(plan, invert, opts, ctx),
            |i, outcome| {
                let payload = match outcome {
                    UnitOutcome::Done { result: (violations, digest), .. } => {
                        if violations.is_empty() {
                            format!("ok {digest:016x}")
                        } else {
                            fail_payload(violations)
                        }
                    }
                    UnitOutcome::Failed { error, .. } | UnitOutcome::Quarantined { error, .. } => {
                        match error {
                            RunError::Panic(_) => "fail panic".to_string(),
                            _ => format!("fail {RUN_ERROR_VIOLATION}"),
                        }
                    }
                    // Never journaled: a resume must re-run skipped plans.
                    UnitOutcome::Skipped => return,
                };
                journal_append(pending[i].index, &payload);
            },
        );
        breaker_tripped = report.breaker_tripped;
        for (plan, outcome) in pending.iter().zip(report.outcomes) {
            let violations = match outcome {
                UnitOutcome::Done { result: (violations, _), .. } => violations,
                UnitOutcome::Failed { error, history } => {
                    if matches!(error, RunError::Panic(_)) {
                        panics += 1;
                    }
                    vec![supervised_violation(&error, &history, false)]
                }
                UnitOutcome::Quarantined { error, history } => {
                    quarantined += 1;
                    if matches!(error, RunError::Panic(_)) {
                        panics += 1;
                    }
                    vec![supervised_violation(&error, &history, true)]
                }
                UnitOutcome::Skipped => {
                    skipped_plans.insert(plan.index);
                    continue;
                }
            };
            by_index.insert(plan.index, violations);
        }
    } else {
        let results = try_parallel_map_with(
            &pending,
            threads,
            |_, plan| plan_outcome(plan, invert, &opts.chaos_panic_plans),
            |i, result| {
                let payload = match result {
                    Ok((violations, digest)) if violations.is_empty() => {
                        format!("ok {digest:016x}")
                    }
                    Ok((violations, _)) => fail_payload(violations),
                    Err(_) => "fail panic".to_string(),
                };
                journal_append(pending[i].index, &payload);
            },
        );
        for (plan, result) in pending.iter().zip(results) {
            let violations = match result {
                Ok((v, _)) => v,
                Err(e) => {
                    panics += 1;
                    vec![Violation { invariant: "panic".to_string(), detail: e.message }]
                }
            };
            by_index.insert(plan.index, violations);
        }
    }
    if let Some(e) = journal_error.into_inner().unwrap() {
        return Err(CampaignAbort::Io(e));
    }

    let mut tallies: Vec<(String, u64, u64)> =
        INVARIANTS.iter().map(|inv| (inv.name.to_string(), 0, 0)).collect();
    for (slot, inv) in tallies.iter_mut().zip(INVARIANTS) {
        slot.1 = plans.iter().filter(|p| (inv.applies)(p)).count() as u64;
    }
    let mut run_errors = 0u64;
    let mut failures = Vec::new();
    for plan in &plans {
        // A breaker-skipped plan never ran: it must not masquerade as a
        // journaled pass (empty violations), so it is excluded here and
        // surfaces only through the report's `skipped_plans` count.
        if skipped_plans.contains(&plan.index) {
            continue;
        }
        let violations = by_index.remove(&plan.index).unwrap_or_default();
        for v in &violations {
            if let Some(slot) = tallies.iter_mut().find(|(name, _, _)| *name == v.invariant) {
                slot.2 += 1;
            }
        }
        if violations.iter().any(|v| v.invariant == RUN_ERROR_VIOLATION) {
            run_errors += 1;
        }
        if violations.is_empty() {
            continue;
        }
        let names: BTreeSet<String> = violations.iter().map(|v| v.invariant.clone()).collect();
        // Minimize while preserving the failure signature: a candidate
        // must still violate at least one of the original invariants
        // (panics and run errors count as their own signatures).
        let shrunk = shrink_plan(plan, |candidate| {
            checked_violations(candidate, invert).iter().any(|v| names.contains(&v.invariant))
        });
        let digest = fnv1a(shrunk.to_json(0).as_bytes());
        let mut case = FailCase {
            plan_index: plan.index,
            violated: names.into_iter().collect(),
            details: violations,
            shrunk,
            digest,
            file_name: format!("fail_{}.json", plan.index),
            file_body: String::new(),
        };
        case.file_body = render_fail_file(opts, plan, &case);
        failures.push(case);
    }

    let skipped = skipped_plans.len() as u64;
    let report = render_report(
        opts,
        &tallies,
        panics,
        run_errors,
        quarantined,
        skipped,
        breaker_tripped,
        &failures,
    );
    Ok((
        CampaignResult {
            report,
            tallies,
            panics,
            run_errors,
            quarantined,
            skipped_plans: skipped,
            breaker_tripped,
            failures,
        },
        skip.len() as u64,
    ))
}

#[allow(clippy::too_many_arguments)]
fn render_report(
    opts: &FuzzOptions,
    tallies: &[(String, u64, u64)],
    panics: u64,
    run_errors: u64,
    quarantined: u64,
    skipped_plans: u64,
    breaker_tripped: bool,
    failures: &[FailCase],
) -> String {
    let invariants = Json::Obj(
        INVARIANTS
            .iter()
            .zip(tallies)
            .map(|(inv, (_, applicable, violations))| {
                (
                    inv.name.to_string(),
                    Json::obj(vec![
                        ("claim".into(), Json::str(inv.claim)),
                        ("applicable".into(), Json::Num(*applicable as f64)),
                        ("violations".into(), Json::Num(*violations as f64)),
                    ]),
                )
            })
            .collect(),
    );
    let failing = Json::Arr(
        failures
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("plan_index".into(), Json::Num(f.plan_index as f64)),
                    ("violated".into(), Json::Arr(f.violated.iter().map(Json::str).collect())),
                    ("shrunk_weight".into(), Json::Num(f.shrunk.weight() as f64)),
                    ("shrunk_digest".into(), Json::str(format!("{:016x}", f.digest))),
                    ("fail_file".into(), Json::str(&f.file_name)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("fuzz".into(), Json::str("specrun-fuzz")),
        ("mode".into(), Json::str(if opts.quick { "quick" } else { "full" })),
        ("campaign_seed".into(), Json::str(opts.seed.to_string())),
        ("plans".into(), Json::Num(opts.plans as f64)),
        ("inverted_invariant".into(), opts.invert.as_ref().map_or(Json::Null, Json::str)),
        ("invariants".into(), invariants),
        ("panics".into(), Json::Num(panics as f64)),
        ("run_errors".into(), Json::Num(run_errors as f64)),
        // Supervision outcomes are counts and flags only: wall-clock
        // values never enter the gated report.
        ("quarantined".into(), Json::Num(quarantined as f64)),
        ("skipped_plans".into(), Json::Num(skipped_plans as f64)),
        ("breaker_tripped".into(), Json::Bool(breaker_tripped)),
        ("failing_plans".into(), failing),
        ("passed".into(), Json::Bool(failures.is_empty() && skipped_plans == 0)),
    ])
    .render()
}

/// Extracts `"key": "value"` (string) from a fail file's text.
fn extract_str(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let start = body.find(&needle)? + needle.len();
    let end = body[start..].find('"')?;
    Some(body[start..start + end].to_string())
}

/// Extracts `"key": value` (number) from a fail file's text.
fn extract_num(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let start = body.find(&needle)? + needle.len();
    let digits: String = body[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Replays a failing-plan file: regenerates the plan from its recorded
/// seed/index/mode, re-checks the invariants (honouring a recorded
/// inversion), re-shrinks and compares digests. With `trace`, the
/// regenerated plan is additionally run once with a recording observer
/// and its pipeline events written to the given binary log through
/// `sink` — a forensic trace of the reproducer in one command. Returns
/// the process exit code: 0 when the plan no longer fails, 1 when it
/// still does, 2 on a malformed file or a failed trace write.
pub fn replay(
    path: &std::path::Path,
    trace: Option<&std::path::Path>,
    sink: &dyn ArtifactSink,
) -> i32 {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let (seed, index, mode) = match (
        extract_str(&body, "campaign_seed").and_then(|s| s.parse::<u64>().ok()),
        extract_num(&body, "plan_index"),
        extract_str(&body, "mode"),
    ) {
        (Some(s), Some(i), Some(m)) => (s, i, m),
        _ => {
            eprintln!("error: {} is not a specrun fuzz fail file", path.display());
            return 2;
        }
    };
    let invert = extract_str(&body, "inverted_invariant");
    let plan = Plan::generate(seed, index, mode == "quick");
    println!(
        "replaying plan {index} of campaign seed {seed} ({mode} scale){}",
        invert.as_deref().map(|n| format!(", inverted invariant {n}")).unwrap_or_default()
    );
    if let Some(trace_path) = trace {
        use specrun_trace::TraceSink as _;
        match specrun::try_run_plan_recorded(&plan) {
            Ok((_, events)) => {
                let bytes = specrun_trace::encode_events(&events);
                let write = crate::sink::ArtifactTraceSink(sink).write_trace(trace_path, &bytes);
                if let Err(e) = write {
                    eprintln!("error: cannot write trace {}: {e}", trace_path.display());
                    return 2;
                }
                println!(
                    "wrote forensic trace {} ({} event(s), {} bytes)",
                    trace_path.display(),
                    events.len(),
                    bytes.len()
                );
            }
            Err(e) => {
                eprintln!("error: cannot trace the replayed plan: {e}");
                return 2;
            }
        }
    }
    let violations = checked_violations(&plan, invert.as_deref());
    if violations.is_empty() {
        println!("plan no longer violates any invariant");
        return 0;
    }
    for v in &violations {
        println!("  [FAILED] {}: {}", v.invariant, v.detail);
    }
    let names: BTreeSet<String> = violations.iter().map(|v| v.invariant.clone()).collect();
    let shrunk = shrink_plan(&plan, |candidate| {
        checked_violations(candidate, invert.as_deref())
            .iter()
            .any(|v| names.contains(&v.invariant))
    });
    let digest = fnv1a(shrunk.to_json(0).as_bytes());
    println!("shrunk plan (weight {}, digest {:016x}):", shrunk.weight(), digest);
    println!("{}", shrunk.to_json(0));
    match extract_str(&body, "shrunk_digest") {
        Some(recorded) if recorded == format!("{digest:016x}") => {
            println!("shrunk digest matches the recorded failure");
        }
        Some(recorded) => {
            println!("shrunk digest differs from recorded {recorded} (shrinker or oracle drift)");
        }
        None => {}
    }
    1
}

/// Runs the fuzz subcommand end to end (campaign or replay), writing
/// artifacts through the real filesystem sink, and returns the process
/// exit code.
pub fn run(opts: &FuzzOptions) -> i32 {
    run_with(opts, &FsSink)
}

/// [`run`] with an injectable [`ArtifactSink`], so the chaos harness can
/// fail artifact writes deterministically. Exit codes: 0 clean, 1 when
/// any plan failed an invariant, 2 on IO or journal errors.
pub fn run_with(opts: &FuzzOptions, sink: &dyn ArtifactSink) -> i32 {
    if let Some(path) = &opts.replay {
        return replay(path, opts.trace.as_deref(), sink);
    }
    let journal_path = opts.journal_path();
    let (result, skipped) = match campaign_with(opts, Some((sink, journal_path.clone()))) {
        Ok(ok) => ok,
        Err(CampaignAbort::Journal(e)) => {
            eprintln!("error: cannot resume from {}: {e}", journal_path.display());
            eprintln!("hint: delete the journal (or drop --resume) to start fresh");
            return 2;
        }
        Err(CampaignAbort::Io(e)) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    println!(
        "fuzz campaign: {} plans, seed {:#x}, {} scale",
        opts.plans,
        opts.seed,
        if opts.quick { "quick" } else { "full" }
    );
    if skipped > 0 {
        // Progress note only — the report bytes never depend on resume.
        println!(
            "  resumed: {skipped} plan(s) already journaled as passing, skipped; {} re-run",
            opts.plans.saturating_sub(skipped)
        );
    }
    for (name, applicable, violations) in &result.tallies {
        let verdict = if *violations == 0 { "ok" } else { "FAILED" };
        println!("  [{verdict}] {name}: {applicable} applicable, {violations} violation(s)");
    }
    if result.panics > 0 {
        println!("  [FAILED] panic: {} plan(s) panicked", result.panics);
    }
    if result.run_errors > 0 {
        println!(
            "  [FAILED] {RUN_ERROR_VIOLATION}: {} plan(s) hit a structured run error",
            result.run_errors
        );
    }
    if result.quarantined > 0 {
        println!(
            "  [FAILED] quarantine: {} plan(s) failed identically twice, retries stopped",
            result.quarantined
        );
    }
    if result.breaker_tripped {
        println!(
            "  [FAILED] circuit breaker tripped: {} plan(s) skipped, partial results follow",
            result.skipped_plans
        );
        println!("  hint: fix the failures, then `--resume` to complete the campaign");
    }

    if let Err(e) = sink.write_atomic(&opts.report_path, &result.report) {
        eprintln!("error: cannot write {}: {e}", opts.report_path.display());
        eprintln!("note: the campaign journal is kept at {}", journal_path.display());
        return 2;
    }
    println!("wrote {}", opts.report_path.display());

    if !result.failures.is_empty() {
        if let Err(e) = std::fs::create_dir_all(&opts.fail_dir) {
            eprintln!("error: cannot create {}: {e}", opts.fail_dir.display());
            return 2;
        }
        for case in &result.failures {
            let path = opts.fail_dir.join(&case.file_name);
            if let Err(e) = sink.write_atomic(&path, &case.file_body) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return 2;
            }
            println!(
                "wrote {} (plan {}, violated: {})",
                path.display(),
                case.plan_index,
                case.violated.join(", ")
            );
        }
    }

    // Artifacts are durable; retire the journal so a later run without
    // --resume starts clean (kept for the chaos drills, and always kept
    // after a breaker trip so `--resume` can finish the campaign).
    if !opts.keep_journal && !result.breaker_tripped {
        if let Err(e) = sink.remove(&journal_path) {
            eprintln!("error: cannot remove journal {}: {e}", journal_path.display());
            return 2;
        }
    }

    if !result.passed() {
        if result.failures.is_empty() {
            eprintln!("campaign incomplete: {} plan(s) never ran", result.skipped_plans);
        } else {
            eprintln!("{} failing plan(s); replay with: specrun-lab fuzz --replay <file>", {
                result.failures.len()
            });
        }
        return 1;
    }
    println!("all invariants held on every plan");
    0
}
