//! `specrun-lab chaos`: the fault-injection drill harness.
//!
//! Chaos mode does not look for simulator bugs — the fuzzer does that. It
//! drills the *recovery machinery* itself: every failure path the
//! crash-safety work added (trial panic isolation, structured budget
//! errors, artifact-write failures, torn temp files, torn journal tails,
//! journal digest corruption) is driven deterministically and its
//! recovery contract checked. A drill passes when the campaign degrades
//! exactly as documented: reported failure instead of a dead process,
//! old-or-new artifacts instead of truncated hybrids, byte-identical
//! reports after `--resume`.
//!
//! Faults are injected at three seams:
//!
//! * [`ChaosSink`] — numbered IO operations fail
//!   (optionally leaving a torn temp file) at the artifact boundary;
//! * [`FuzzOptions::chaos_panic_plans`] (and its flaky/sick siblings) —
//!   named plan evaluations fail at the trial boundary;
//! * [`ChaosClock`] — virtual time at the supervision boundary, so the
//!   hung-unit, slow-unit, retry and circuit-breaker drills march wall
//!   clocks forward deterministically instead of sleeping.
//!
//! Everything is derived from the chaos seed; drills use one worker
//! thread so IO operation numbering (and supervision outcome ordering) is
//! reproducible run to run.

use std::path::{Path, PathBuf};

use specrun_workloads::clock::ChaosClock;
use specrun_workloads::harness::RunError;
use specrun_workloads::plan::Plan;
use specrun_workloads::supervisor::{supervised_map_with, SupervisorConfig, UnitOutcome};

use crate::fuzz::{self, FuzzOptions, RUN_ERROR_VIOLATION};
use crate::sink::{tmp_path, ArtifactSink, ChaosSink, FsSink};

/// Every drill, in execution order. `--drill NAME` validates against this
/// list; the supervision self-test in CI runs a subset of it.
pub const DRILL_NAMES: &[&str] = &[
    "panic_isolation",
    "budget_exhaustion",
    "report_write_failure",
    "torn_temp_write",
    "torn_journal_tail",
    "digest_corruption",
    "stalled_unit",
    "deadline_overrun",
    "quarantine_identical_failure",
    "transient_flake_retry",
    "breaker_trip_resume",
];

/// The drills that compare against the uninterrupted reference report (the
/// reference campaign is only built when one of these is selected).
const REFERENCE_DRILLS: &[&str] = &[
    "report_write_failure",
    "torn_temp_write",
    "torn_journal_tail",
    "transient_flake_retry",
    "breaker_trip_resume",
];

/// Options of a chaos run (the `specrun-lab chaos` arguments).
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Small campaigns (the CI scale).
    pub quick: bool,
    /// Seed for the drill campaigns.
    pub seed: u64,
    /// Scratch directory (default: a per-process temp dir, removed when
    /// every drill passes).
    pub dir: Option<PathBuf>,
    /// Drill names to run (empty = all, in [`DRILL_NAMES`] order).
    pub drills: Vec<String>,
}

impl Default for ChaosOptions {
    fn default() -> ChaosOptions {
        ChaosOptions { quick: false, seed: fuzz::DEFAULT_FUZZ_SEED, dir: None, drills: Vec::new() }
    }
}

/// How many plans each drill campaign runs.
fn drill_plans(quick: bool) -> u64 {
    if quick {
        4
    } else {
        12
    }
}

/// The drill campaign options rooted at `dir`. One worker thread keeps
/// the sink's operation numbering deterministic.
fn drill_opts(opts: &ChaosOptions, dir: &Path) -> FuzzOptions {
    FuzzOptions {
        plans: drill_plans(opts.quick),
        seed: opts.seed,
        threads: 1,
        quick: true,
        fail_dir: dir.join("failures"),
        report_path: dir.join(fuzz::FUZZ_REPORT_NAME),
        ..FuzzOptions::default()
    }
}

/// On a clean single-threaded campaign the counted sink operations are:
/// one journal header append, one append per plan, then the report
/// write — so the report write's operation number is `plans + 1`.
fn report_write_op(plans: u64) -> u64 {
    plans + 1
}

type DrillResult = Result<String, String>;

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

/// A panicking trial must become a reported failing plan, not a dead
/// campaign: the other plans still evaluate and the report says so.
fn drill_panic_isolation(opts: &ChaosOptions, dir: &Path) -> DrillResult {
    let mut fo = drill_opts(opts, dir);
    fo.chaos_panic_plans = vec![1];
    let result = fuzz::campaign(&fo);
    if result.panics != 1 {
        return Err(format!("expected exactly 1 panic, saw {}", result.panics));
    }
    let case = result
        .failures
        .iter()
        .find(|f| f.plan_index == 1)
        .ok_or("the panicking plan is missing from the failures")?;
    if !case.violated.iter().any(|v| v == "panic") {
        return Err(format!("plan 1 violated {:?}, expected a panic signature", case.violated));
    }
    if !result.report.contains("\"panics\": 1") {
        return Err("report does not record the panic tally".to_string());
    }
    Ok(format!(
        "injected panic on plan 1 became a reported failure; {} sibling plan(s) unharmed",
        fo.plans - 1
    ))
}

/// A starved cycle budget must surface as a structured [`RunError`] (and,
/// inside a campaign, as a `run_error` violation) — never as a panic.
/// The strict `CycleBudgetExceeded` check uses a PHT plan (straight-line
/// training code, so starvation means the cycle limit, not a wedge); a
/// starved BTB/RSB plan may legitimately wedge instead, which is the
/// other [`RunError`] variant and equally non-fatal.
fn drill_budget_exhaustion(opts: &ChaosOptions) -> DrillResult {
    let mut plan = (0..32)
        .map(|i| Plan::generate(opts.seed, i, true))
        .find(|p| matches!(p.victim.gadget, specrun_workloads::plan::GadgetKind::Pht))
        .ok_or("no PHT-gadget plan in the first 32 indices")?;
    plan.victim.max_cycles = 40; // far below any gadget's runtime
    match fuzz::try_evaluate(&plan) {
        Err(RunError::CycleBudgetExceeded { budget: 40, .. }) => {}
        Err(e) => return Err(format!("expected CycleBudgetExceeded, got: {e}")),
        Ok(_) => return Err("a 40-cycle budget cannot complete a gadget".to_string()),
    }
    let violations = fuzz::checked_violations(&plan, None);
    match violations.as_slice() {
        [v] if v.invariant == RUN_ERROR_VIOLATION => {
            Ok(format!("starved budget degraded to a `{RUN_ERROR_VIOLATION}` violation"))
        }
        other => Err(format!("expected a single {RUN_ERROR_VIOLATION} violation, got {other:?}")),
    }
}

/// A failed report write must exit 2 and keep the journal; resuming with
/// a healthy sink reproduces the reference report byte for byte.
fn drill_report_write_failure(opts: &ChaosOptions, dir: &Path, reference: &str) -> DrillResult {
    let fo = drill_opts(opts, dir);
    let chaos = ChaosSink::new(&FsSink, &[report_write_op(fo.plans)]);
    let code = fuzz::run_with(&fo, &chaos);
    if code != 2 {
        return Err(format!("injected report-write failure exited {code}, expected 2"));
    }
    if fo.report_path.exists() {
        return Err("the report exists despite the failed write".to_string());
    }
    if !fo.journal_path().exists() {
        return Err("the journal was discarded on failure".to_string());
    }
    let mut resumed = fo.clone();
    resumed.resume = true;
    let code = fuzz::run_with(&resumed, &FsSink);
    if code != 0 {
        return Err(format!("resume after the failure exited {code}, expected 0"));
    }
    if read(&fo.report_path)? != reference {
        return Err("resumed report differs from the uninterrupted reference".to_string());
    }
    if fo.journal_path().exists() {
        return Err("the journal survived a completed resume".to_string());
    }
    Ok("exit 2 on write failure; resume reproduced the reference report byte for byte".to_string())
}

/// A crash between the temp write and the rename must leave the old
/// artifact untouched; the resumed run replaces it atomically.
fn drill_torn_temp_write(opts: &ChaosOptions, dir: &Path, reference: &str) -> DrillResult {
    let fo = drill_opts(opts, dir);
    let stale = "stale artifact from a previous campaign\n";
    std::fs::write(&fo.report_path, stale).map_err(|e| format!("cannot seed stale report: {e}"))?;
    let chaos = ChaosSink::new(&FsSink, &[report_write_op(fo.plans)]).torn();
    let code = fuzz::run_with(&fo, &chaos);
    if code != 2 {
        return Err(format!("torn report write exited {code}, expected 2"));
    }
    if read(&fo.report_path)? != stale {
        return Err("the torn write mutated the previous artifact".to_string());
    }
    if !tmp_path(&fo.report_path).exists() {
        return Err("torn mode left no orphan temp file to recover over".to_string());
    }
    let mut resumed = fo.clone();
    resumed.resume = true;
    let code = fuzz::run_with(&resumed, &FsSink);
    if code != 0 {
        return Err(format!("resume after the torn write exited {code}, expected 0"));
    }
    if read(&fo.report_path)? != reference {
        return Err("resumed report differs from the uninterrupted reference".to_string());
    }
    if tmp_path(&fo.report_path).exists() {
        return Err("the orphan temp file survived the resumed rename".to_string());
    }
    Ok("old artifact survived the torn write; resume atomically installed the new one".to_string())
}

/// A torn final journal line (the crash mode `append_line` documents) is
/// dropped on resume; the lost plan re-runs and the report is unchanged.
fn drill_torn_journal_tail(opts: &ChaosOptions, dir: &Path, reference: &str) -> DrillResult {
    let mut fo = drill_opts(opts, dir);
    fo.keep_journal = true;
    let code = fuzz::run_with(&fo, &FsSink);
    if code != 0 {
        return Err(format!("setup campaign exited {code}, expected 0"));
    }
    let journal = fo.journal_path();
    let body = read(&journal)?;
    let torn = &body[..body.len() - 4]; // clip mid-digest, losing the newline
    std::fs::write(&journal, torn).map_err(|e| format!("cannot tear journal: {e}"))?;
    FsSink.remove(&fo.report_path).map_err(|e| format!("cannot drop report before resume: {e}"))?;
    let mut resumed = fo.clone();
    resumed.keep_journal = false;
    resumed.resume = true;
    let code = fuzz::run_with(&resumed, &FsSink);
    if code != 0 {
        return Err(format!("resume over the torn tail exited {code}, expected 0"));
    }
    if read(&fo.report_path)? != reference {
        return Err("resumed report differs from the uninterrupted reference".to_string());
    }
    Ok("torn final journal line tolerated; the clipped plan re-ran".to_string())
}

/// A complete journal entry whose digest does not match is corruption —
/// resume must refuse (exit 2) rather than trust it.
fn drill_digest_corruption(opts: &ChaosOptions, dir: &Path) -> DrillResult {
    let mut fo = drill_opts(opts, dir);
    fo.keep_journal = true;
    let code = fuzz::run_with(&fo, &FsSink);
    if code != 0 {
        return Err(format!("setup campaign exited {code}, expected 0"));
    }
    let journal = fo.journal_path();
    let body = read(&journal)?;
    let mut lines: Vec<String> = body.lines().map(str::to_string).collect();
    if lines.len() < 2 {
        return Err("setup journal has no entries to corrupt".to_string());
    }
    // Flip the last digest character of the first *entry* (line 1; line 0
    // is the header) — the line stays well-formed, the digest lies.
    let entry = &mut lines[1];
    let flipped = if entry.ends_with('0') { '1' } else { '0' };
    entry.pop();
    entry.push(flipped);
    std::fs::write(&journal, format!("{}\n", lines.join("\n")))
        .map_err(|e| format!("cannot corrupt journal: {e}"))?;
    let mut resumed = fo.clone();
    resumed.resume = true;
    let code = fuzz::run_with(&resumed, &FsSink);
    let _ = FsSink.remove(&journal);
    if code != 2 {
        return Err(format!("resume over a lying digest exited {code}, expected 2"));
    }
    Ok("digest mismatch on a complete entry refused with exit 2".to_string())
}

/// A unit that hangs — it spins without ever publishing a heartbeat — must
/// be cancelled by the monitor and classified as *stalled*, not merely
/// slow. Virtual time makes the verdict instant and deterministic: no
/// deadline is armed, so only the no-heartbeat window can fire.
fn drill_stalled_unit() -> DrillResult {
    let clock = ChaosClock::new();
    let cfg = SupervisorConfig { stall_ms: 50, poll_ms: 5, ..SupervisorConfig::default() };
    let items = [0u64];
    let report = supervised_map_with(
        &items,
        1,
        &cfg,
        &clock,
        |i, _, ctx| -> Result<u64, RunError> {
            // A hung unit: cooperative cancel polls, zero heartbeats.
            while !ctx.token.is_cancelled() {
                ctx.clock.sleep_ms(1);
            }
            Err(RunError::Cancelled { what: format!("unit {i}"), committed: 0 })
        },
        |_, _| {},
    );
    match &report.outcomes[0] {
        UnitOutcome::Failed { error: RunError::Stalled { stall_ms: 50, .. }, .. } => {
            Ok("hung unit cancelled and classified as stalled on the virtual clock".to_string())
        }
        other => Err(format!("expected a Stalled classification, got {other:?}")),
    }
}

/// A unit that is slow but demonstrably progressing (heartbeats advance
/// every virtual millisecond) must be classified as a *deadline* overrun,
/// never a stall — the stall window is set far beyond the deadline so the
/// distinction is what is under test.
fn drill_deadline_overrun() -> DrillResult {
    let clock = ChaosClock::new();
    let cfg = SupervisorConfig {
        deadline_ms: 50,
        stall_ms: 5000,
        poll_ms: 5,
        ..SupervisorConfig::default()
    };
    let items = [0u64];
    let report = supervised_map_with(
        &items,
        1,
        &cfg,
        &clock,
        |i, _, ctx| -> Result<u64, RunError> {
            let mut committed = 0;
            while !ctx.token.is_cancelled() {
                committed += 1;
                ctx.token.beat(committed, committed);
                ctx.clock.sleep_ms(1);
            }
            Err(RunError::Cancelled { what: format!("unit {i}"), committed })
        },
        |_, _| {},
    );
    match &report.outcomes[0] {
        UnitOutcome::Failed {
            error: RunError::DeadlineExceeded { deadline_ms: 50, committed, .. },
            ..
        } if *committed > 0 => {
            Ok("progressing unit past its budget classified as a deadline overrun".to_string())
        }
        other => Err(format!("expected a DeadlineExceeded classification, got {other:?}")),
    }
}

/// A plan failing *identically* on every attempt must be quarantined after
/// exactly two attempts — a generous retry budget must not be burned on a
/// deterministic failure.
fn drill_quarantine_identical_failure(opts: &ChaosOptions, dir: &Path) -> DrillResult {
    let mut fo = drill_opts(opts, dir);
    fo.chaos_sick_plans = vec![1];
    fo.retries = 5;
    let result = fuzz::campaign(&fo);
    if result.quarantined != 1 {
        return Err(format!("expected 1 quarantined plan, saw {}", result.quarantined));
    }
    let case = result
        .failures
        .iter()
        .find(|f| f.plan_index == 1)
        .ok_or("the quarantined plan is missing from the failures")?;
    let detail = case.details.first().map(|v| v.detail.as_str()).unwrap_or_default();
    if !detail.contains("quarantined after 2 attempt(s)") {
        return Err(format!("expected quarantine after exactly 2 attempts, got: {detail}"));
    }
    if !result.report.contains("\"quarantined\": 1") {
        return Err("report does not record the quarantine tally".to_string());
    }
    Ok("identically failing plan quarantined after 2 of 6 allowed attempts".to_string())
}

/// A transient flake (first attempt fails with an IO error, later attempts
/// are clean) must heal through retry and leave **byte-identical**
/// artifacts — retries may cost wall-clock time but never change results.
fn drill_transient_flake_retry(opts: &ChaosOptions, dir: &Path, reference: &str) -> DrillResult {
    let mut fo = drill_opts(opts, dir);
    fo.chaos_flaky_plans = vec![1];
    fo.retries = 2;
    let code = fuzz::run_with(&fo, &FsSink);
    if code != 0 {
        return Err(format!("flaky campaign exited {code}, expected a healed 0"));
    }
    if read(&fo.report_path)? != reference {
        return Err("healed report differs from the uninterrupted reference".to_string());
    }
    Ok("transient flake healed on retry; report byte-identical to the reference".to_string())
}

/// Once the failure rate crosses the threshold the breaker must stop
/// launching plans and drain into an explicitly partial report (exit 1,
/// skipped plans counted, journal kept); a later `--resume` with the cause
/// fixed completes the campaign byte-identically to the reference.
fn drill_breaker_trip_resume(opts: &ChaosOptions, dir: &Path, reference: &str) -> DrillResult {
    let mut fo = drill_opts(opts, dir);
    fo.chaos_sick_plans = vec![0, 1];
    fo.max_failure_rate = 0.3;
    fo.breaker_min_units = 2;
    let code = fuzz::run_with(&fo, &FsSink);
    if code != 1 {
        return Err(format!("tripped campaign exited {code}, expected 1"));
    }
    let skipped = fo.plans - 2;
    let body = read(&fo.report_path)?;
    if !body.contains("\"breaker_tripped\": true") {
        return Err("partial report does not record the breaker trip".to_string());
    }
    if !body.contains(&format!("\"skipped_plans\": {skipped}")) {
        return Err(format!("partial report does not count {skipped} skipped plan(s)"));
    }
    if !fo.journal_path().exists() {
        return Err("the journal was discarded after a breaker trip".to_string());
    }
    let journal = read(&fo.journal_path())?;
    for i in 2..fo.plans {
        if journal.contains(&format!("plan:{i} ")) {
            return Err(format!("skipped plan {i} was journaled; a resume would not re-run it"));
        }
    }
    // The cause fixed (no sick plans), --resume completes the campaign.
    let mut resumed = drill_opts(opts, dir);
    resumed.resume = true;
    let code = fuzz::run_with(&resumed, &FsSink);
    if code != 0 {
        return Err(format!("resume after the trip exited {code}, expected 0"));
    }
    if read(&fo.report_path)? != reference {
        return Err("resumed report differs from the uninterrupted reference".to_string());
    }
    Ok(format!(
        "breaker tripped after 2 failures, {skipped} plan(s) drained to skipped; \
         resume completed the campaign byte for byte"
    ))
}

/// Runs every chaos drill and returns the process exit code: 0 when all
/// recovery paths behave, 1 when any drill fails, 2 when the harness
/// cannot even set up.
pub fn run(opts: &ChaosOptions) -> i32 {
    let root = opts.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("specrun-chaos-{}", std::process::id()))
    });
    if let Err(e) = std::fs::create_dir_all(&root) {
        eprintln!("error: cannot create {}: {e}", root.display());
        return 2;
    }
    let want = |name: &str| opts.drills.is_empty() || opts.drills.iter().any(|d| d == name);
    let selected: Vec<&str> = DRILL_NAMES.iter().copied().filter(|n| want(n)).collect();
    println!(
        "chaos: {} drill(s), seed {:#x}, {} plans per campaign, scratch {}",
        selected.len(),
        opts.seed,
        drill_plans(opts.quick),
        root.display()
    );

    // The uninterrupted reference the recovery drills must reproduce —
    // built only when a selected drill compares against it, so the pure
    // supervision drills (CI's hang self-test) stay fast.
    let mut reference = String::new();
    if REFERENCE_DRILLS.iter().any(|n| want(n)) {
        let ref_dir = root.join("reference");
        if let Err(e) = std::fs::create_dir_all(&ref_dir) {
            eprintln!("error: cannot create {}: {e}", ref_dir.display());
            return 2;
        }
        let ref_opts = drill_opts(opts, &ref_dir);
        if fuzz::run_with(&ref_opts, &FsSink) != 0 {
            eprintln!(
                "error: the reference campaign (seed {:#x}) does not pass cleanly; \
                 chaos drills need a green baseline",
                opts.seed
            );
            return 2;
        }
        reference = match std::fs::read_to_string(&ref_opts.report_path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: cannot read reference report: {e}");
                return 2;
            }
        };
    }

    let scratch_for = |tag: &str| -> Result<PathBuf, String> {
        let d = root.join(tag);
        std::fs::create_dir_all(&d).map_err(|e| format!("cannot create {}: {e}", d.display()))?;
        Ok(d)
    };
    let mut drills: Vec<(&str, DrillResult)> = Vec::new();
    for name in selected {
        let outcome =
            match name {
                "panic_isolation" => {
                    scratch_for("panic").and_then(|d| drill_panic_isolation(opts, &d))
                }
                "budget_exhaustion" => drill_budget_exhaustion(opts),
                "report_write_failure" => scratch_for("write_fail")
                    .and_then(|d| drill_report_write_failure(opts, &d, &reference)),
                "torn_temp_write" => scratch_for("torn_write")
                    .and_then(|d| drill_torn_temp_write(opts, &d, &reference)),
                "torn_journal_tail" => scratch_for("torn_tail")
                    .and_then(|d| drill_torn_journal_tail(opts, &d, &reference)),
                "digest_corruption" => {
                    scratch_for("digest").and_then(|d| drill_digest_corruption(opts, &d))
                }
                "stalled_unit" => drill_stalled_unit(),
                "deadline_overrun" => drill_deadline_overrun(),
                "quarantine_identical_failure" => scratch_for("quarantine")
                    .and_then(|d| drill_quarantine_identical_failure(opts, &d)),
                "transient_flake_retry" => scratch_for("flake")
                    .and_then(|d| drill_transient_flake_retry(opts, &d, &reference)),
                "breaker_trip_resume" => scratch_for("breaker")
                    .and_then(|d| drill_breaker_trip_resume(opts, &d, &reference)),
                other => Err(format!("drill {other} is named in DRILL_NAMES but not dispatched")),
            };
        drills.push((name, outcome));
    }

    let mut failed = 0u32;
    println!();
    for (name, outcome) in &drills {
        match outcome {
            Ok(detail) => println!("  [ok] {name}: {detail}"),
            Err(detail) => {
                failed += 1;
                println!("  [FAILED] {name}: {detail}");
            }
        }
    }
    if failed == 0 {
        println!("all {} chaos drills recovered as documented", drills.len());
        if opts.dir.is_none() {
            let _ = std::fs::remove_dir_all(&root);
        }
        0
    } else {
        eprintln!("{failed} chaos drill(s) failed; scratch kept at {}", root.display());
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("chaos_{}_{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn budget_drill_passes_standalone() {
        let opts = ChaosOptions::default();
        drill_budget_exhaustion(&opts).unwrap();
    }

    #[test]
    fn panic_drill_passes_standalone() {
        let opts = ChaosOptions { quick: true, ..ChaosOptions::default() };
        let dir = scratch("panic");
        let outcome = drill_panic_isolation(&opts, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        outcome.unwrap();
    }

    #[test]
    fn supervision_drills_pass_standalone() {
        drill_stalled_unit().unwrap();
        drill_deadline_overrun().unwrap();
        let opts = ChaosOptions { quick: true, ..ChaosOptions::default() };
        let dir = scratch("quarantine");
        let outcome = drill_quarantine_identical_failure(&opts, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        outcome.unwrap();
    }

    #[test]
    fn drill_filter_runs_the_named_subset_only() {
        let dir = scratch("filter");
        let opts = ChaosOptions {
            quick: true,
            dir: Some(dir.clone()),
            drills: vec!["stalled_unit".to_string(), "deadline_overrun".to_string()],
            ..ChaosOptions::default()
        };
        assert_eq!(run(&opts), 0, "the supervision subset must recover");
        assert!(
            !dir.join("reference").exists(),
            "pure supervision drills must not build the reference campaign"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_chaos_run_is_clean() {
        let dir = scratch("full");
        let opts = ChaosOptions {
            quick: true,
            seed: fuzz::DEFAULT_FUZZ_SEED,
            dir: Some(dir.clone()),
            drills: Vec::new(),
        };
        assert_eq!(run(&opts), 0, "every drill must recover");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
