//! `specrun-lab chaos`: the fault-injection drill harness.
//!
//! Chaos mode does not look for simulator bugs — the fuzzer does that. It
//! drills the *recovery machinery* itself: every failure path the
//! crash-safety work added (trial panic isolation, structured budget
//! errors, artifact-write failures, torn temp files, torn journal tails,
//! journal digest corruption) is driven deterministically and its
//! recovery contract checked. A drill passes when the campaign degrades
//! exactly as documented: reported failure instead of a dead process,
//! old-or-new artifacts instead of truncated hybrids, byte-identical
//! reports after `--resume`.
//!
//! Faults are injected at two seams:
//!
//! * [`ChaosSink`](crate::sink::ChaosSink) — numbered IO operations fail
//!   (optionally leaving a torn temp file) at the artifact boundary;
//! * [`FuzzOptions::chaos_panic_plans`] — named plan evaluations panic at
//!   the trial boundary.
//!
//! Everything is derived from the chaos seed; drills use one worker
//! thread so IO operation numbering is reproducible run to run.

use std::path::{Path, PathBuf};

use specrun_workloads::harness::RunError;
use specrun_workloads::plan::Plan;

use crate::fuzz::{self, FuzzOptions, RUN_ERROR_VIOLATION};
use crate::sink::{tmp_path, ArtifactSink, ChaosSink, FsSink};

/// Options of a chaos run (the `specrun-lab chaos` arguments).
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Small campaigns (the CI scale).
    pub quick: bool,
    /// Seed for the drill campaigns.
    pub seed: u64,
    /// Scratch directory (default: a per-process temp dir, removed when
    /// every drill passes).
    pub dir: Option<PathBuf>,
}

impl Default for ChaosOptions {
    fn default() -> ChaosOptions {
        ChaosOptions { quick: false, seed: fuzz::DEFAULT_FUZZ_SEED, dir: None }
    }
}

/// How many plans each drill campaign runs.
fn drill_plans(quick: bool) -> u64 {
    if quick {
        4
    } else {
        12
    }
}

/// The drill campaign options rooted at `dir`. One worker thread keeps
/// the sink's operation numbering deterministic.
fn drill_opts(opts: &ChaosOptions, dir: &Path) -> FuzzOptions {
    FuzzOptions {
        plans: drill_plans(opts.quick),
        seed: opts.seed,
        threads: 1,
        quick: true,
        fail_dir: dir.join("failures"),
        report_path: dir.join(fuzz::FUZZ_REPORT_NAME),
        ..FuzzOptions::default()
    }
}

/// On a clean single-threaded campaign the counted sink operations are:
/// one journal header append, one append per plan, then the report
/// write — so the report write's operation number is `plans + 1`.
fn report_write_op(plans: u64) -> u64 {
    plans + 1
}

type DrillResult = Result<String, String>;

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

/// A panicking trial must become a reported failing plan, not a dead
/// campaign: the other plans still evaluate and the report says so.
fn drill_panic_isolation(opts: &ChaosOptions, dir: &Path) -> DrillResult {
    let mut fo = drill_opts(opts, dir);
    fo.chaos_panic_plans = vec![1];
    let result = fuzz::campaign(&fo);
    if result.panics != 1 {
        return Err(format!("expected exactly 1 panic, saw {}", result.panics));
    }
    let case = result
        .failures
        .iter()
        .find(|f| f.plan_index == 1)
        .ok_or("the panicking plan is missing from the failures")?;
    if !case.violated.iter().any(|v| v == "panic") {
        return Err(format!("plan 1 violated {:?}, expected a panic signature", case.violated));
    }
    if !result.report.contains("\"panics\": 1") {
        return Err("report does not record the panic tally".to_string());
    }
    Ok(format!(
        "injected panic on plan 1 became a reported failure; {} sibling plan(s) unharmed",
        fo.plans - 1
    ))
}

/// A starved cycle budget must surface as a structured [`RunError`] (and,
/// inside a campaign, as a `run_error` violation) — never as a panic.
/// The strict `CycleBudgetExceeded` check uses a PHT plan (straight-line
/// training code, so starvation means the cycle limit, not a wedge); a
/// starved BTB/RSB plan may legitimately wedge instead, which is the
/// other [`RunError`] variant and equally non-fatal.
fn drill_budget_exhaustion(opts: &ChaosOptions) -> DrillResult {
    let mut plan = (0..32)
        .map(|i| Plan::generate(opts.seed, i, true))
        .find(|p| matches!(p.victim.gadget, specrun_workloads::plan::GadgetKind::Pht))
        .ok_or("no PHT-gadget plan in the first 32 indices")?;
    plan.victim.max_cycles = 40; // far below any gadget's runtime
    match fuzz::try_evaluate(&plan) {
        Err(RunError::CycleBudgetExceeded { budget: 40, .. }) => {}
        Err(e) => return Err(format!("expected CycleBudgetExceeded, got: {e}")),
        Ok(_) => return Err("a 40-cycle budget cannot complete a gadget".to_string()),
    }
    let violations = fuzz::checked_violations(&plan, None);
    match violations.as_slice() {
        [v] if v.invariant == RUN_ERROR_VIOLATION => {
            Ok(format!("starved budget degraded to a `{RUN_ERROR_VIOLATION}` violation"))
        }
        other => Err(format!("expected a single {RUN_ERROR_VIOLATION} violation, got {other:?}")),
    }
}

/// A failed report write must exit 2 and keep the journal; resuming with
/// a healthy sink reproduces the reference report byte for byte.
fn drill_report_write_failure(opts: &ChaosOptions, dir: &Path, reference: &str) -> DrillResult {
    let fo = drill_opts(opts, dir);
    let chaos = ChaosSink::new(&FsSink, &[report_write_op(fo.plans)]);
    let code = fuzz::run_with(&fo, &chaos);
    if code != 2 {
        return Err(format!("injected report-write failure exited {code}, expected 2"));
    }
    if fo.report_path.exists() {
        return Err("the report exists despite the failed write".to_string());
    }
    if !fo.journal_path().exists() {
        return Err("the journal was discarded on failure".to_string());
    }
    let mut resumed = fo.clone();
    resumed.resume = true;
    let code = fuzz::run_with(&resumed, &FsSink);
    if code != 0 {
        return Err(format!("resume after the failure exited {code}, expected 0"));
    }
    if read(&fo.report_path)? != reference {
        return Err("resumed report differs from the uninterrupted reference".to_string());
    }
    if fo.journal_path().exists() {
        return Err("the journal survived a completed resume".to_string());
    }
    Ok("exit 2 on write failure; resume reproduced the reference report byte for byte".to_string())
}

/// A crash between the temp write and the rename must leave the old
/// artifact untouched; the resumed run replaces it atomically.
fn drill_torn_temp_write(opts: &ChaosOptions, dir: &Path, reference: &str) -> DrillResult {
    let fo = drill_opts(opts, dir);
    let stale = "stale artifact from a previous campaign\n";
    std::fs::write(&fo.report_path, stale).map_err(|e| format!("cannot seed stale report: {e}"))?;
    let chaos = ChaosSink::new(&FsSink, &[report_write_op(fo.plans)]).torn();
    let code = fuzz::run_with(&fo, &chaos);
    if code != 2 {
        return Err(format!("torn report write exited {code}, expected 2"));
    }
    if read(&fo.report_path)? != stale {
        return Err("the torn write mutated the previous artifact".to_string());
    }
    if !tmp_path(&fo.report_path).exists() {
        return Err("torn mode left no orphan temp file to recover over".to_string());
    }
    let mut resumed = fo.clone();
    resumed.resume = true;
    let code = fuzz::run_with(&resumed, &FsSink);
    if code != 0 {
        return Err(format!("resume after the torn write exited {code}, expected 0"));
    }
    if read(&fo.report_path)? != reference {
        return Err("resumed report differs from the uninterrupted reference".to_string());
    }
    if tmp_path(&fo.report_path).exists() {
        return Err("the orphan temp file survived the resumed rename".to_string());
    }
    Ok("old artifact survived the torn write; resume atomically installed the new one".to_string())
}

/// A torn final journal line (the crash mode `append_line` documents) is
/// dropped on resume; the lost plan re-runs and the report is unchanged.
fn drill_torn_journal_tail(opts: &ChaosOptions, dir: &Path, reference: &str) -> DrillResult {
    let mut fo = drill_opts(opts, dir);
    fo.keep_journal = true;
    let code = fuzz::run_with(&fo, &FsSink);
    if code != 0 {
        return Err(format!("setup campaign exited {code}, expected 0"));
    }
    let journal = fo.journal_path();
    let body = read(&journal)?;
    let torn = &body[..body.len() - 4]; // clip mid-digest, losing the newline
    std::fs::write(&journal, torn).map_err(|e| format!("cannot tear journal: {e}"))?;
    FsSink.remove(&fo.report_path).map_err(|e| format!("cannot drop report before resume: {e}"))?;
    let mut resumed = fo.clone();
    resumed.keep_journal = false;
    resumed.resume = true;
    let code = fuzz::run_with(&resumed, &FsSink);
    if code != 0 {
        return Err(format!("resume over the torn tail exited {code}, expected 0"));
    }
    if read(&fo.report_path)? != reference {
        return Err("resumed report differs from the uninterrupted reference".to_string());
    }
    Ok("torn final journal line tolerated; the clipped plan re-ran".to_string())
}

/// A complete journal entry whose digest does not match is corruption —
/// resume must refuse (exit 2) rather than trust it.
fn drill_digest_corruption(opts: &ChaosOptions, dir: &Path) -> DrillResult {
    let mut fo = drill_opts(opts, dir);
    fo.keep_journal = true;
    let code = fuzz::run_with(&fo, &FsSink);
    if code != 0 {
        return Err(format!("setup campaign exited {code}, expected 0"));
    }
    let journal = fo.journal_path();
    let body = read(&journal)?;
    let mut lines: Vec<String> = body.lines().map(str::to_string).collect();
    if lines.len() < 2 {
        return Err("setup journal has no entries to corrupt".to_string());
    }
    // Flip the last digest character of the first *entry* (line 1; line 0
    // is the header) — the line stays well-formed, the digest lies.
    let entry = &mut lines[1];
    let flipped = if entry.ends_with('0') { '1' } else { '0' };
    entry.pop();
    entry.push(flipped);
    std::fs::write(&journal, format!("{}\n", lines.join("\n")))
        .map_err(|e| format!("cannot corrupt journal: {e}"))?;
    let mut resumed = fo.clone();
    resumed.resume = true;
    let code = fuzz::run_with(&resumed, &FsSink);
    let _ = FsSink.remove(&journal);
    if code != 2 {
        return Err(format!("resume over a lying digest exited {code}, expected 2"));
    }
    Ok("digest mismatch on a complete entry refused with exit 2".to_string())
}

/// Runs every chaos drill and returns the process exit code: 0 when all
/// recovery paths behave, 1 when any drill fails, 2 when the harness
/// cannot even set up.
pub fn run(opts: &ChaosOptions) -> i32 {
    let root = opts.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("specrun-chaos-{}", std::process::id()))
    });
    if let Err(e) = std::fs::create_dir_all(&root) {
        eprintln!("error: cannot create {}: {e}", root.display());
        return 2;
    }
    println!(
        "chaos: {} drills, seed {:#x}, {} plans per campaign, scratch {}",
        6,
        opts.seed,
        drill_plans(opts.quick),
        root.display()
    );

    // The uninterrupted reference every recovery drill must reproduce.
    let ref_dir = root.join("reference");
    if let Err(e) = std::fs::create_dir_all(&ref_dir) {
        eprintln!("error: cannot create {}: {e}", ref_dir.display());
        return 2;
    }
    let ref_opts = drill_opts(opts, &ref_dir);
    if fuzz::run_with(&ref_opts, &FsSink) != 0 {
        eprintln!(
            "error: the reference campaign (seed {:#x}) does not pass cleanly; \
             chaos drills need a green baseline",
            opts.seed
        );
        return 2;
    }
    let reference = match std::fs::read_to_string(&ref_opts.report_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot read reference report: {e}");
            return 2;
        }
    };

    let drills: Vec<(&str, DrillResult)> = vec![
        ("panic_isolation", {
            let d = root.join("panic");
            std::fs::create_dir_all(&d).unwrap();
            drill_panic_isolation(opts, &d)
        }),
        ("budget_exhaustion", drill_budget_exhaustion(opts)),
        ("report_write_failure", {
            let d = root.join("write_fail");
            std::fs::create_dir_all(&d).unwrap();
            drill_report_write_failure(opts, &d, &reference)
        }),
        ("torn_temp_write", {
            let d = root.join("torn_write");
            std::fs::create_dir_all(&d).unwrap();
            drill_torn_temp_write(opts, &d, &reference)
        }),
        ("torn_journal_tail", {
            let d = root.join("torn_tail");
            std::fs::create_dir_all(&d).unwrap();
            drill_torn_journal_tail(opts, &d, &reference)
        }),
        ("digest_corruption", {
            let d = root.join("digest");
            std::fs::create_dir_all(&d).unwrap();
            drill_digest_corruption(opts, &d)
        }),
    ];

    let mut failed = 0u32;
    println!();
    for (name, outcome) in &drills {
        match outcome {
            Ok(detail) => println!("  [ok] {name}: {detail}"),
            Err(detail) => {
                failed += 1;
                println!("  [FAILED] {name}: {detail}");
            }
        }
    }
    if failed == 0 {
        println!("all {} chaos drills recovered as documented", drills.len());
        if opts.dir.is_none() {
            let _ = std::fs::remove_dir_all(&root);
        }
        0
    } else {
        eprintln!("{failed} chaos drill(s) failed; scratch kept at {}", root.display());
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("chaos_{}_{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn budget_drill_passes_standalone() {
        let opts = ChaosOptions::default();
        drill_budget_exhaustion(&opts).unwrap();
    }

    #[test]
    fn panic_drill_passes_standalone() {
        let opts = ChaosOptions { quick: true, ..ChaosOptions::default() };
        let dir = scratch("panic");
        let outcome = drill_panic_isolation(&opts, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        outcome.unwrap();
    }

    #[test]
    fn full_chaos_run_is_clean() {
        let dir = scratch("full");
        let opts =
            ChaosOptions { quick: true, seed: fuzz::DEFAULT_FUZZ_SEED, dir: Some(dir.clone()) };
        assert_eq!(run(&opts), 0, "every drill must recover");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
